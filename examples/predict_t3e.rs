//! Early prediction of the next machine — the use the paper's companion
//! work puts these models to ("Early Prediction of MPP Performance:
//! SP2, T3D, and Paragon Experiences", Xu & Hwang 1996).
//!
//! The Cray T3E was announced as this paper was written: same 3-D torus,
//! roughly double the link bandwidth (~600 MB/s sustained), E-registers
//! cutting the messaging overhead several-fold, and the hardware barrier
//! retained. We build that *predicted* machine from public architecture
//! figures with [`MachineBuilder`], run the paper's measurement grid on
//! it, fit Table-3-style formulas, and report the predicted speedups
//! over the measured T3D — the workflow the paper proposes for machines
//! that do not exist yet (for us, a machine that no longer exists).
//!
//! ```sh
//! cargo run --release --example predict_t3e
//! ```

use mpi_collectives_eval::prelude::*;
use netmodel::{ClassCosts, MachineBuilder, SendEngine};

/// Predicted T3E parameters from architecture disclosures: ~600 MB/s
/// sustained per link, ~1 µs puts via E-registers (we assume the MPI
/// shell above them keeps ~1/3 of the T3D's per-message cost).
fn predicted_t3e() -> Result<Machine, SimMpiError> {
    let t3d = netmodel::t3d();
    let mut b = MachineBuilder::new("Cray T3E (predicted)");
    b.torus3d()
        .hop_ns(15.0)
        .link_bandwidth_mb_s(600.0)
        .min_packet_bytes(32)
        .compute_ns_per_byte(6.0) // 300 MHz EV5 vs 150 MHz EV4
        .send_engine(SendEngine::BlockTransfer {
            threshold_bytes: 512,
            setup_us: 0.7,
            ns_per_byte: 0.3,
        })
        .hw_barrier(2.0, 0.008)
        .max_nodes(128);
    // One-third of the T3D's software costs per class.
    for class in OpClass::COLLECTIVES
        .into_iter()
        .chain([OpClass::PointToPoint])
    {
        let c = *t3d.costs.get(class);
        b.class_costs(
            class,
            ClassCosts {
                entry_us: c.entry_us / 3.0,
                o_send_us: c.o_send_us / 3.0,
                o_recv_us: c.o_recv_us / 3.0,
                byte_send_ns: c.byte_send_ns / 3.0,
                byte_recv_ns: c.byte_recv_ns / 3.0,
                offload: c.offload,
            },
        );
    }
    Machine::custom(b.build().map_err(SimMpiError::InvalidSpec)?)
}

fn main() -> Result<(), SimMpiError> {
    let t3d = Machine::t3d();
    let t3e = predicted_t3e()?;

    // Run the paper's grid on both and fit the closed forms.
    let data = SweepBuilder::new()
        .machines([t3d.clone(), t3e.clone()])
        .message_sizes([4, 1_024, 16_384, 65_536])
        .node_counts([2, 4, 8, 16, 32, 64])
        .protocol(Protocol::quick())
        .run()?;

    println!("Predicted Cray T3E vs measured-model Cray T3D (fitted formulas)\n");
    for op in OpClass::COLLECTIVES {
        let f_t3d = fit_surface(&data, t3d.name(), op).expect("fit");
        let f_t3e = fit_surface(&data, t3e.name(), op).expect("fit");
        println!("{:<16} T3D: {f_t3d}", op.paper_name());
        println!("{:<16} T3E: {f_t3e}", "");
        for (m, p) in [(16u32, 64usize), (65_536, 64)] {
            let a = f_t3d.predict_us(m, p);
            let b = f_t3e.predict_us(m, p);
            println!(
                "{:<16}      predicted speedup at ({m} B, {p} nodes): {:.1}x",
                "",
                a / b
            );
        }
        println!();
    }
    println!(
        "Reading: with the software shell cut to a third and links doubled, the\n\
         model predicts ~3x across the board — software costs, not wires, were\n\
         the T3D's collective bottleneck, so the software improvement carries\n\
         through both regimes. The hardwired barrier stays at microseconds."
    );
    Ok(())
}
