//! MPPs versus a workstation cluster — the other platform of the
//! paper's opening sentence ("programming multicomputers or clusters of
//! workstations") and of its related work ([26], [29]: MPI on
//! workstation clusters).
//!
//! We model a mid-1990s NOW-style cluster with [`MachineBuilder`]:
//! switched 10 Mb/s Ethernet (1.25 MB/s), ~400 µs TCP/IP per-message
//! software overhead, and compare its collectives with the three MPPs.
//! The exercise shows *why* the paper's trade-off methodology matters:
//! on a cluster the startup term dwarfs everything, so the optimal
//! decomposition shifts toward fewer, larger messages.
//!
//! ```sh
//! cargo run --release --example workstation_cluster
//! ```

use mpi_collectives_eval::prelude::*;
use netmodel::MachineBuilder;

fn now_cluster() -> Result<Machine, SimMpiError> {
    let spec = MachineBuilder::new("NOW cluster")
        .crossbar() // switched Ethernet: single hop, no backbone contention
        .link_bandwidth_mb_s(1.25) // 10 Mb/s Ethernet
        .hop_ns(5_000.0) // switch + serialization preamble
        .uniform_overheads_us(400.0, 350.0) // TCP/IP + kernel sockets
        .uniform_byte_costs_ns(80.0, 80.0) // checksum + copies
        .compute_ns_per_byte(10.0)
        .max_nodes(32)
        .build()
        .map_err(SimMpiError::InvalidSpec)?;
    Machine::custom(spec)
}

fn main() -> Result<(), SimMpiError> {
    const NODES: usize = 16;
    let cluster = now_cluster()?;
    let machines = [Machine::sp2(), Machine::paragon(), Machine::t3d(), cluster];

    for (label, bytes) in [("short (64 B)", 64u32), ("long (64 KB)", 65_536)] {
        println!("\n== {label} messages, {NODES} nodes ==");
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>12}",
            "machine", "broadcast", "alltoall", "reduce", "barrier"
        );
        for machine in &machines {
            let comm = machine.communicator(NODES)?;
            println!(
                "{:<16} {:>12} {:>12} {:>12} {:>12}",
                machine.name(),
                format!("{}", comm.bcast(Rank(0), bytes)?.time()),
                format!("{}", comm.alltoall(bytes)?.time()),
                format!("{}", comm.reduce(Rank(0), bytes)?.time()),
                format!("{}", comm.barrier()?.time()),
            );
        }
    }

    // Where does the cluster's time go? Decompose with the fitted model.
    let cluster = now_cluster()?;
    let data = SweepBuilder::new()
        .machines([cluster.clone()])
        .ops([OpClass::Alltoall])
        .message_sizes([64, 4_096, 65_536])
        .node_counts([2, 4, 8, 16, 32])
        .protocol(Protocol::quick())
        .run()?;
    let f = fit_surface(&data, "NOW cluster", OpClass::Alltoall).expect("fit");
    println!("\nfitted NOW-cluster total exchange: T(m,p) = {f}");
    println!(
        "startup share at (4 KB, 16 nodes): {:.0}%",
        100.0 * f.startup_us(16) / f.predict_us(4_096, 16)
    );
    println!(
        "\nReading: the cluster's per-message software cost (~0.75 ms round)\n\
         puts its short-message collectives 1-2 orders of magnitude behind\n\
         the MPPs, while its long-message gap tracks the ~30x link-bandwidth\n\
         difference — the same startup/bandwidth decomposition the paper\n\
         applies to the MPPs, at cluster scale."
    );
    Ok(())
}
