//! Using the fitted timing formulas to optimize a parallel application —
//! the use case the paper's abstract promises ("useful to those who wish
//! to … optimize parallel applications by trade-offs between divided
//! computation and collective communication").
//!
//! We fit Table-3-style closed forms from a simulated sweep, then use
//! them *analytically* to choose the best machine size for a distributed
//! matrix transpose + reduce workload, and finally validate the choice by
//! simulating the predicted optimum and its neighbours.
//!
//! ```sh
//! cargo run --release --example optimizer
//! ```

use mpi_collectives_eval::prelude::*;

/// Problem: transpose an N×N f32 matrix (alltoall of (N²/p²)·4 bytes)
/// then reduce a length-N row (N·4 bytes), with O(N²/p) local work.
const N: u64 = 2_048;
const FLOP_PER_ELEM: f64 = 6.0;
const MFLOPS: f64 = 150.0;

fn predicted_us(a2a: &TimingFormula, red: &TimingFormula, p: usize) -> f64 {
    let block = ((N * N * 4) / (p as u64 * p as u64)).max(4) as u32;
    let compute = (N * N) as f64 * FLOP_PER_ELEM / p as f64 / MFLOPS;
    compute + a2a.predict_us(block, p) + red.predict_us((N * 4) as u32, p)
}

fn simulated_us(machine: &Machine, p: usize) -> Result<f64, SimMpiError> {
    let comm = machine.communicator(p)?;
    let block = ((N * N * 4) / (p as u64 * p as u64)).max(4) as u32;
    let compute = (N * N) as f64 * FLOP_PER_ELEM / p as f64 / MFLOPS;
    let a2a = comm.alltoall(block)?.time().as_micros_f64();
    let red = comm.reduce(Rank(0), (N * 4) as u32)?.time().as_micros_f64();
    Ok(compute + a2a + red)
}

fn main() -> Result<(), SimMpiError> {
    let machine = Machine::t3d();
    println!(
        "Optimizing machine size for a {N}x{N} transpose+reduce on the {}\n",
        machine.name()
    );

    // Step 1: fit the closed forms from a small calibration sweep.
    let data = SweepBuilder::new()
        .machines([machine.clone()])
        .ops([OpClass::Alltoall, OpClass::Reduce])
        .message_sizes([4, 1_024, 16_384, 65_536])
        .node_counts([2, 4, 8, 16, 32, 64])
        .protocol(Protocol::quick())
        .run()?;
    let a2a = fit_surface(&data, machine.name(), OpClass::Alltoall).expect("fit");
    let red = fit_surface(&data, machine.name(), OpClass::Reduce).expect("fit");
    println!("fitted total exchange: T(m,p) = {a2a}");
    println!("fitted reduce:         T(m,p) = {red}\n");

    // Step 2: evaluate the model over candidate sizes (cheap).
    println!("{:>5} {:>14} {:>14}", "p", "predicted", "simulated");
    let mut best = (0usize, f64::MAX);
    for p in [2usize, 4, 8, 16, 32, 64] {
        let pred = predicted_us(&a2a, &red, p);
        if pred < best.1 {
            best = (p, pred);
        }
        let sim = simulated_us(&machine, p)?;
        println!("{p:>5} {:>12.2}ms {:>12.2}ms", pred / 1000.0, sim / 1000.0);
    }

    // Step 3: confirm the analytic optimum against the simulator.
    let (p_star, pred) = best;
    let neighbours: Vec<usize> = [p_star / 2, p_star, (p_star * 2).min(64)]
        .into_iter()
        .filter(|&p| p >= 2)
        .collect();
    let mut sim_best = (0usize, f64::MAX);
    for &p in &neighbours {
        let t = simulated_us(&machine, p)?;
        if t < sim_best.1 {
            sim_best = (p, t);
        }
    }
    println!(
        "\nmodel picks p = {p_star} ({:.2} ms predicted); simulation of the \
         neighbourhood picks p = {} ({:.2} ms)",
        pred / 1000.0,
        sim_best.0,
        sim_best.1 / 1000.0
    );
    Ok(())
}
