//! "What if these machines had fast messages?" — the paper's suggested
//! further research (§9: "We suggest extended research be conducted in
//! evaluating the use of active messages or fast messages in MPI
//! applications").
//!
//! Active Messages (Culler et al.) and Fast Messages (Chien et al.)
//! slashed the *software* overhead of communication while leaving the
//! hardware untouched. We model that: clone each machine's spec, cut
//! every per-message software overhead to a few microseconds and halve
//! the per-byte copy costs (payload handling still touches memory), and
//! re-measure the collectives. The result quantifies how much of each
//! machine's collective cost was software — large for the Paragon's NX
//! path, small for the T3D's already-lean shell.
//!
//! ```sh
//! cargo run --release --example fast_messages
//! ```

use mpi_collectives_eval::prelude::*;
use netmodel::{ClassCosts, CostTable};

/// Overhead of a fast-messages send/receive handler, microseconds
/// (FM on Myrinet reported a few microseconds end to end).
const FM_OVERHEAD_US: f64 = 2.5;

/// Rebuilds a cost table with fast-messages software costs.
fn fast_messages_table(base: &Machine) -> CostTable {
    let mut table = CostTable::uniform(ClassCosts::FREE);
    for class in OpClass::COLLECTIVES
        .into_iter()
        .chain([OpClass::PointToPoint])
    {
        let c = *base.spec().costs.get(class);
        table = table.with(
            class,
            ClassCosts {
                entry_us: c.entry_us.min(5.0),
                o_send_us: c.o_send_us.min(FM_OVERHEAD_US),
                o_recv_us: c.o_recv_us.min(FM_OVERHEAD_US),
                byte_send_ns: c.byte_send_ns / 2.0,
                byte_recv_ns: c.byte_recv_ns / 2.0,
                offload: c.offload,
            },
        );
    }
    table
}

fn main() -> Result<(), SimMpiError> {
    const NODES: usize = 64;
    println!(
        "Collective speedup from a fast-messages layer ({} nodes)\n",
        NODES
    );
    println!(
        "{:<16} {:<16} {:>12} {:>12} {:>9}  {:>12} {:>12} {:>9}",
        "machine",
        "operation",
        "vendor 16B",
        "FM 16B",
        "speedup",
        "vendor 64KB",
        "FM 64KB",
        "speedup"
    );
    for base in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
        let mut fm_spec = base.spec().clone();
        fm_spec.costs = fast_messages_table(&base);
        let fm = Machine::custom(fm_spec)?;
        for op in [
            OpClass::Bcast,
            OpClass::Alltoall,
            OpClass::Gather,
            OpClass::Reduce,
        ] {
            let mut cells = Vec::new();
            for m in [16u32, 65_536] {
                let t_vendor = run(&base, op, m, NODES)?;
                let t_fm = run(&fm, op, m, NODES)?;
                cells.push((t_vendor, t_fm));
            }
            println!(
                "{:<16} {:<16} {:>10.0}us {:>10.0}us {:>8.1}x  {:>10.0}us {:>10.0}us {:>8.1}x",
                base.name(),
                op.paper_name(),
                cells[0].0,
                cells[0].1,
                cells[0].0 / cells[0].1,
                cells[1].0,
                cells[1].1,
                cells[1].0 / cells[1].1,
            );
        }
        println!();
    }
    println!(
        "Reading: short-message collectives are almost pure software overhead\n\
         (huge wins, especially on the Paragon's NX path); long messages are\n\
         bandwidth-bound, so fast messages help far less — the hardware link\n\
         rates still rule, as the paper's bandwidth analysis predicts."
    );
    Ok(())
}

fn run(machine: &Machine, op: OpClass, m: u32, p: usize) -> Result<f64, SimMpiError> {
    let comm = machine.communicator(p)?;
    let out = match op {
        OpClass::Bcast => comm.bcast(Rank(0), m)?,
        OpClass::Alltoall => comm.alltoall(m)?,
        OpClass::Gather => comm.gather(Rank(0), m)?,
        OpClass::Reduce => comm.reduce(Rank(0), m)?,
        _ => unreachable!("not exercised here"),
    };
    Ok(out.time().as_micros_f64())
}
