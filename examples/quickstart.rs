//! Quickstart: time the paper's seven collectives on all three machines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpi_collectives_eval::prelude::*;

fn main() -> Result<(), SimMpiError> {
    const NODES: usize = 32;
    const BYTES: u32 = 1_024;

    println!("MPI collective times, {NODES} nodes, {BYTES} B per message (cold start)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "operation", "IBM SP2", "Intel Paragon", "Cray T3D"
    );
    for op in OpClass::COLLECTIVES {
        let mut cells = Vec::new();
        for machine in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
            let comm = machine.communicator(NODES)?;
            let outcome = match op {
                OpClass::Barrier => comm.barrier()?,
                OpClass::Bcast => comm.bcast(Rank(0), BYTES)?,
                OpClass::Scatter => comm.scatter(Rank(0), BYTES)?,
                OpClass::Gather => comm.gather(Rank(0), BYTES)?,
                OpClass::Reduce => comm.reduce(Rank(0), BYTES)?,
                OpClass::Scan => comm.scan(BYTES)?,
                OpClass::Alltoall => comm.alltoall(BYTES)?,
                OpClass::PointToPoint => unreachable!("not a collective"),
            };
            cells.push(format!("{}", outcome.time()));
        }
        println!(
            "{:<16} {:>12} {:>12} {:>12}",
            op.paper_name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    // The paper's measurement methodology (warm-up + k-iteration loop +
    // max-reduce) gives steadier numbers than a cold start:
    let comm = Machine::t3d().communicator(NODES)?;
    let point = measure(&comm, OpClass::Alltoall, BYTES, &Protocol::paper())?;
    println!(
        "\nPaper-methodology total exchange on the T3D: {:.1} us \
         (min {:.1}, mean {:.1} across ranks)",
        point.time_us, point.min_time_us, point.mean_time_us
    );
    Ok(())
}
