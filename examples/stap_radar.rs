//! STAP radar pipeline — the workload behind the paper.
//!
//! The timing data in the paper comes from the STAP (Space-Time Adaptive
//! Processing) benchmark experiments run at USC/HKU for MIT Lincoln
//! Laboratory. This example drives the `stap` crate: a radar data cube
//! flows through Doppler filtering, a corner-turn total exchange,
//! adaptive weight broadcast, beamforming, CFAR detection, and a
//! report reduce; compute is costed per machine, communication runs on
//! the simulator. The output is the computation/communication trade-off
//! study the paper's conclusions propose.
//!
//! ```sh
//! cargo run --release --example stap_radar
//! ```

use mpi_collectives_eval::prelude::*;
use stap::{best_partition, DataCube, StapRun};

fn main() -> Result<(), SimMpiError> {
    let cube = DataCube::medium();
    println!(
        "STAP iteration: {} range gates x {} pulses x {} channels ({} MB cube)\n",
        cube.range_gates,
        cube.pulses,
        cube.channels,
        cube.bytes() / (1 << 20)
    );
    println!(
        "{:<16} {:>5} {:>12} {:>12} {:>12} {:>7}  bottleneck",
        "machine", "p", "compute", "comm", "total", "comm %"
    );
    for machine in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
        for p in [4usize, 8, 16, 32, 64] {
            if p > machine.spec().max_nodes {
                continue;
            }
            let run = StapRun::execute(&machine, cube, p)?;
            println!(
                "{:<16} {:>5} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>6.0}%  {}",
                machine.name(),
                p,
                run.compute_us() / 1000.0,
                run.comm_us() / 1000.0,
                run.total_us() / 1000.0,
                100.0 * run.comm_fraction(),
                run.bottleneck().stage,
            );
        }
        let (_, best) = best_partition(&machine, cube, &[4, 8, 16, 32, 64])?;
        println!(
            "  -> best machine size for {}: p = {best}\n",
            machine.name()
        );
    }
    println!(
        "Observation (paper §1): the sweet spot balances divided computation\n\
         against growing collective-communication cost — the corner turn's\n\
         alltoall eventually dominates as p rises."
    );
    Ok(())
}
