//! Machine-ranking crossovers (paper §5–§6).
//!
//! The paper's most quoted qualitative result: *which machine wins
//! depends on the message length*. The SP2 beats the Paragon for short
//! messages (its startup latency is lower) but loses for long ones (its
//! 40 MB/s links saturate); the T3D wins almost everywhere. This example
//! sweeps the message length for each collective and prints the winner
//! per regime plus the SP2↔Paragon crossover point.
//!
//! ```sh
//! cargo run --release --example machine_ranking
//! ```

use mpi_collectives_eval::prelude::*;

const NODES: usize = 64;
const SIZES: [u32; 8] = [4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];

fn time_us(machine: &Machine, op: OpClass, m: u32) -> Result<f64, SimMpiError> {
    let comm = machine.communicator(NODES)?;
    let outcome = match op {
        OpClass::Barrier => comm.barrier()?,
        OpClass::Bcast => comm.bcast(Rank(0), m)?,
        OpClass::Scatter => comm.scatter(Rank(0), m)?,
        OpClass::Gather => comm.gather(Rank(0), m)?,
        OpClass::Reduce => comm.reduce(Rank(0), m)?,
        OpClass::Scan => comm.scan(m)?,
        OpClass::Alltoall => comm.alltoall(m)?,
        OpClass::PointToPoint => unreachable!(),
    };
    Ok(outcome.time().as_micros_f64())
}

fn main() -> Result<(), SimMpiError> {
    let machines = [Machine::sp2(), Machine::paragon(), Machine::t3d()];
    println!("Fastest machine per (operation, message length) at {NODES} nodes\n");
    print!("{:<16}", "operation");
    for m in SIZES {
        print!("{:>9}", m);
    }
    println!("  SP2/Paragon crossover");

    for op in [
        OpClass::Bcast,
        OpClass::Alltoall,
        OpClass::Scatter,
        OpClass::Gather,
        OpClass::Scan,
        OpClass::Reduce,
    ] {
        let mut winners = Vec::new();
        let mut crossover: Option<u32> = None;
        let mut sp2_was_ahead = false;
        for (i, &m) in SIZES.iter().enumerate() {
            let times: Vec<f64> = machines
                .iter()
                .map(|mach| time_us(mach, op, m))
                .collect::<Result<_, _>>()?;
            let best = times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("three machines");
            winners.push(match best {
                0 => "SP2",
                1 => "Paragon",
                _ => "T3D",
            });
            let sp2_ahead = times[0] < times[1];
            if i == 0 {
                sp2_was_ahead = sp2_ahead;
            } else if sp2_was_ahead && !sp2_ahead && crossover.is_none() {
                crossover = Some(m);
            }
        }
        print!("{:<16}", op.paper_name());
        for w in &winners {
            print!("{w:>9}");
        }
        match crossover {
            Some(m) => println!("  near {m} B"),
            None => println!("  none in range"),
        }
    }

    println!(
        "\nExpected shape (paper §5): T3D fastest almost everywhere; for the\n\
         SP2-vs-Paragon pair the SP2 wins short messages (< ~1 KB) and the\n\
         Paragon wins long ones, except reduce, which the SP2 keeps."
    );
    Ok(())
}
