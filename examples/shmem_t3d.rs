//! The T3D's native SHMEM layer vs its MPI library.
//!
//! §4 of the paper credits the T3D's speed to hardware "fast messaging,
//! … prefetch queue and remote processor store" — the same machinery
//! Cray exposed directly through the SHMEM one-sided API, which was
//! famously several times faster than MPI on this machine (put latency
//! of a few microseconds versus tens). This example asks the question
//! the paper's §9 invites (evaluating faster messaging layers under the
//! collectives): *how much of the T3D's MPI collective time was the MPI
//! software shell?*
//!
//! We model SHMEM as a cost table with one-sided semantics: ~1.5 µs to
//! issue a remote put, no receive-side matching overhead (the hardware
//! writes directly into remote memory), payload streaming via the same
//! BLT engine, and barrier synchronization on the hardwired tree. The
//! collective schedules are unchanged — only the software shell differs.
//!
//! ```sh
//! cargo run --release --example shmem_t3d
//! ```

use mpi_collectives_eval::prelude::*;
use netmodel::{ClassCosts, CostTable};

/// SHMEM-style costs: one-sided puts, no matching on the target side.
fn shmem_costs() -> ClassCosts {
    ClassCosts {
        entry_us: 1.0,     // library call, no communicator bookkeeping
        o_send_us: 1.5,    // issue the put (E-register setup)
        o_recv_us: 0.5,    // target-side completion check (shmem_wait)
        byte_send_ns: 2.0, // local load path
        byte_recv_ns: 1.0, // remote store path is hardware
        offload: true,     // BLT streams large puts
    }
}

fn shmem_t3d() -> Result<Machine, SimMpiError> {
    let mut spec = netmodel::t3d();
    spec.name = "Cray T3D (SHMEM)";
    spec.costs = CostTable::uniform(shmem_costs());
    Machine::custom(spec)
}

fn main() -> Result<(), SimMpiError> {
    const NODES: usize = 64;
    let mpi = Machine::t3d();
    let shmem = shmem_t3d()?;

    println!(
        "Cray T3D, {NODES} nodes: CRI/EPCC MPI vs a SHMEM-style shell\n\
         (same algorithms, same hardware; only the software path differs)\n"
    );
    println!(
        "{:<16} {:>8} {:>14} {:>14} {:>9}",
        "operation", "m (B)", "MPI", "SHMEM-style", "speedup"
    );
    for op in [
        OpClass::Bcast,
        OpClass::Alltoall,
        OpClass::Scatter,
        OpClass::Gather,
        OpClass::Reduce,
        OpClass::Scan,
    ] {
        for m in [16u32, 65_536] {
            let run = |machine: &Machine| -> Result<f64, SimMpiError> {
                let comm = machine.communicator(NODES)?;
                let out = match op {
                    OpClass::Bcast => comm.bcast(Rank(0), m)?,
                    OpClass::Alltoall => comm.alltoall(m)?,
                    OpClass::Scatter => comm.scatter(Rank(0), m)?,
                    OpClass::Gather => comm.gather(Rank(0), m)?,
                    OpClass::Reduce => comm.reduce(Rank(0), m)?,
                    OpClass::Scan => comm.scan(m)?,
                    _ => unreachable!("not exercised"),
                };
                Ok(out.time().as_micros_f64())
            };
            let t_mpi = run(&mpi)?;
            let t_shmem = run(&shmem)?;
            println!(
                "{:<16} {:>8} {:>12.0}us {:>12.0}us {:>8.1}x",
                op.paper_name(),
                m,
                t_mpi,
                t_shmem,
                t_mpi / t_shmem
            );
        }
    }
    println!(
        "\nReading: short-message collectives shrink several-fold — the MPI\n\
         shell (matching, buffering, communicator checks) was most of their\n\
         cost. Long-message times converge toward the wire/BLT limits that\n\
         both layers share, echoing the paper's §5 decomposition."
    );
    Ok(())
}
