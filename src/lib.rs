//! # mpi-collectives-eval — umbrella crate
//!
//! Re-exports the whole reproduction stack of *"Evaluating MPI Collective
//! Communication on the SP2, T3D, and Paragon Multicomputers"* (Hwang,
//! Wang & Wang, HPCA 1997). See the README for the architecture tour and
//! `DESIGN.md`/`EXPERIMENTS.md` for the experiment index.
//!
//! ```
//! use mpi_collectives_eval::prelude::*;
//!
//! let comm = Machine::t3d().communicator(64)?;
//! let barrier = comm.barrier()?;
//! assert!(barrier.time().as_micros_f64() < 4.0); // the 3 us hardwired barrier
//! # Ok::<(), mpisim::SimMpiError>(())
//! ```

pub use collectives;
pub use desim;
pub use harness;
pub use mpisim;
pub use netmodel;
pub use perfmodel;
pub use report;
pub use stap;
pub use topo;

/// Convenient single import for examples and downstream users.
pub mod prelude {
    pub use collectives::{Rank, Schedule, Step};
    pub use desim::{SimDuration, SimTime};
    pub use harness::{measure, Dataset, Protocol, SweepBuilder};
    pub use mpisim::{
        AlgorithmPolicy, CollectiveOutcome, Communicator, Machine, MachineId, OpClass, SimMpiError,
        WireConfig,
    };
    pub use perfmodel::{fit_surface, TimingFormula};
}
