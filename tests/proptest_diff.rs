//! Property tests for the differential comparator (`obs::diff`):
//!
//! * a run self-diffed is always certified byte-identical,
//! * a single injected event perturbation — time, rank, or payload —
//!   localizes to exactly that event as the first divergence, with a
//!   causal context window,
//! * per-category blame deltas sum to the elapsed-time delta
//!   (conservation, mirroring `proptest_critpath`).

use bench::diffsuite::record_point;
use desim::check::{forall, Gen};
use mpisim::TieBreakPolicy;
use mpisim::{Machine, OpClass};
use obs::diff::diff;
use obs::Verdict;

fn random_point(g: &mut Gen) -> (Machine, OpClass, usize, u32) {
    let machine = Machine::all()[g.usize(0, 2)].clone();
    let op = *g.pick(&OpClass::COLLECTIVES);
    let p = 1 << g.usize(1, 5); // 2..32 ranks
    let bytes = if op == OpClass::Barrier {
        0
    } else {
        1 << g.usize(2, 14) // 4 B .. 16 KB
    };
    (machine, op, p, bytes)
}

#[test]
fn self_diff_is_always_certified_byte_identical() {
    forall("diff_self_identity", 16, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let rec = record_point(
            &machine,
            op,
            p,
            bytes,
            TieBreakPolicy::InsertionOrder,
            None,
            false,
        );
        let report = diff(&rec, &rec.clone());
        let label = format!("{} {} p={p} m={bytes}", machine.name(), op.key());
        assert_eq!(report.verdict, Verdict::ByteIdentical, "{label}");
        assert!(report.certified, "{label}: no drops, must certify");
        assert!(report.first.is_none(), "{label}: nothing to explain");
        assert_eq!(report.elapsed_delta_ns(), 0, "{label}");
    });
}

#[test]
fn single_event_perturbation_localizes_to_that_event() {
    forall("diff_perturbation_localizes", 16, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let a = record_point(
            &machine,
            op,
            p,
            bytes,
            TieBreakPolicy::InsertionOrder,
            None,
            false,
        );
        assert!(!a.events.is_empty(), "instrumented run records events");
        let mut b = a.clone();
        let idx = g.usize(0, a.events.len() - 1);
        // One of the three perturbation axes the issue names: firing
        // time, rank operand, or payload kind.
        match g.usize(0, 2) {
            0 => b.events[idx].at_ns += 1 + g.u64(0, 1_000),
            1 => b.events[idx].a += 1 + g.u64(0, 64),
            _ => b.events[idx].kind = "timer".into(),
        }
        let report = diff(&a, &b);
        let label = format!(
            "{} {} p={p} m={bytes} perturbed at {idx}",
            machine.name(),
            op.key()
        );
        assert_eq!(report.verdict, Verdict::Divergent, "{label}");
        let first = report.first.as_ref().expect("divergence located");
        assert_eq!(first.component, "events", "{label}");
        assert_eq!(first.index, idx, "{label}: exact localization");
        assert_ne!(first.expected, first.got, "{label}");
        if idx > 0 {
            assert!(
                !first.context.is_empty(),
                "{label}: non-first event has ancestry"
            );
        }
    });
}

#[test]
fn blame_deltas_sum_to_the_elapsed_delta() {
    // Both sides carry conserving critical-path decompositions
    // (proptest_critpath), so the differential tables conserve too:
    // per-category deltas tile the elapsed-time delta exactly.
    forall("diff_blame_conservation", 12, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let a = record_point(
            &machine,
            op,
            p,
            bytes,
            TieBreakPolicy::InsertionOrder,
            None,
            false,
        );
        // B is a genuinely different execution of the same point: the
        // tie-break-inverted variant, or a doubled message size.
        let b = if op == OpClass::Barrier || g.usize(0, 1) == 0 {
            record_point(
                &machine,
                op,
                p,
                bytes,
                TieBreakPolicy::InvertAll,
                None,
                false,
            )
        } else {
            record_point(
                &machine,
                op,
                p,
                bytes * 2,
                TieBreakPolicy::InsertionOrder,
                None,
                false,
            )
        };
        let report = diff(&a, &b);
        let label = format!("{} {} p={p} m={bytes}", machine.name(), op.key());
        assert_eq!(
            report.blame_delta_sum_ns(),
            report.elapsed_delta_ns(),
            "{label}: blame deltas tile the elapsed delta"
        );
    });
}
