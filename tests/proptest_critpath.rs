//! Property tests for the critical-path profiler's conservation
//! invariant: the blame spans on the reconstructed path tile the
//! end-to-end elapsed interval *exactly* — per-category totals sum to
//! elapsed nanoseconds, and the path segments are contiguous from the
//! completion instant back to the earliest start — across every
//! collective, machine, size, skew, and trace truncation.

use desim::check::{forall, Gen};
use mpisim::comm::RunOptions;
use mpisim::critpath::{analyze, CritPath};
use mpisim::{Machine, OpClass, Rank};
use obs::critpath::Blame;

/// Asserts the conservation invariant and segment-tiling structure.
fn assert_conserved(cp: &CritPath, label: &str) {
    let d = &cp.decomposition;
    assert_eq!(
        d.total_ns(),
        d.elapsed_ns(),
        "{label}: blame totals must sum to elapsed time"
    );
    let seg_sum: u64 = d.segments.iter().map(|s| s.end_ns - s.start_ns).sum();
    assert_eq!(
        seg_sum,
        d.elapsed_ns(),
        "{label}: segments cover the interval"
    );
    if d.elapsed_ns() > 0 {
        let first = d.segments.first().expect("non-empty path");
        let last = d.segments.last().expect("non-empty path");
        assert_eq!(first.end_ns, d.end_ns, "{label}: path starts at completion");
        assert_eq!(last.start_ns, d.start_ns, "{label}: path reaches the start");
        // Newest-first and contiguous: each tile abuts the next-older one.
        for (i, w) in d.segments.windows(2).enumerate() {
            assert_eq!(
                w[0].start_ns,
                w[1].end_ns,
                "{label}: hole or overlap between segments {i} and {}",
                i + 1
            );
        }
    }
    for s in &d.segments {
        assert!(s.end_ns > s.start_ns, "{label}: empty tile");
    }
    assert!(cp.census.uncontended <= cp.census.transfers, "{label}");
}

/// The deterministic cross product the issue pins down: all seven
/// collectives on all three machines at a representative size.
#[test]
fn conservation_all_collectives_all_machines() {
    for machine in Machine::all() {
        for op in OpClass::COLLECTIVES {
            let bytes = if op == OpClass::Barrier { 0 } else { 2048 };
            let comm = machine.communicator(16).expect("communicator");
            let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
            let (out, obs) = comm
                .run_observed(&[&s], RunOptions::default())
                .expect("observed run");
            let cp = analyze(&out, &obs);
            let label = format!("{} {}", machine.name(), op.key());
            assert_conserved(&cp, &label);
            assert_eq!(
                cp.decomposition.end_ns,
                out.completed().as_nanos(),
                "{label}: walk ends at the completion instant"
            );
        }
    }
}

fn random_point(g: &mut Gen) -> (Machine, OpClass, usize, u32) {
    let machine = Machine::all()[g.usize(0, 2)].clone();
    let op = *g.pick(&OpClass::COLLECTIVES);
    let p = 1 << g.usize(1, 5); // 2..32 ranks
    let bytes = if op == OpClass::Barrier {
        0
    } else {
        1 << g.usize(2, 14) // 4 B .. 16 KB
    };
    (machine, op, p, bytes)
}

#[test]
fn conservation_holds_at_random_points() {
    forall("critpath_conservation", 24, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let (out, obs) = comm
            .run_observed(&[&s], RunOptions::default())
            .expect("observed run");
        let cp = analyze(&out, &obs);
        assert_conserved(
            &cp,
            &format!("{} {} p={p} m={bytes}", machine.name(), op.key()),
        );
    });
}

#[test]
fn conservation_survives_start_skew() {
    forall("critpath_conservation_skewed", 12, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let skew: Vec<desim::SimTime> = (0..p)
            .map(|_| desim::SimTime::from_nanos(g.u64(0, 50_000)))
            .collect();
        let min_start = skew.iter().map(|t| t.as_nanos()).min().expect("p >= 2");
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let (out, obs) = comm
            .run_observed(
                &[&s],
                RunOptions {
                    start_times: Some(skew),
                    ..RunOptions::default()
                },
            )
            .expect("observed run");
        let cp = analyze(&out, &obs);
        let label = format!("{} {} p={p} m={bytes} skewed", machine.name(), op.key());
        assert_conserved(&cp, &label);
        assert_eq!(cp.decomposition.start_ns, min_start, "{label}");
    });
}

#[test]
fn truncated_traces_degrade_to_idle_but_conserve() {
    forall("critpath_conservation_truncated", 12, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let cfg = mpisim::ExecConfig {
            wire: machine.wire_config(),
            placement: machine.placement(),
            trace_limit: Some(g.usize(0, 5)),
            ..mpisim::ExecConfig::default()
        };
        let (out, obs) =
            mpisim::execute_observed(machine.spec(), &[&s], &cfg).expect("observed run");
        let cp = analyze(&out, &obs);
        assert_conserved(
            &cp,
            &format!("{} {} p={p} m={bytes} truncated", machine.name(), op.key()),
        );
    });
}

#[test]
fn busy_categories_match_the_end_ranks_software_profile() {
    // On a quiet single-collective run nothing is unattributed, and the
    // walker's software categories are drawn from the executor's own
    // span vocabulary — so the path's CPU-busy time can never exceed
    // the total software time the ranks recorded.
    forall("critpath_busy_bounded_by_sw", 12, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let (out, obs) = comm
            .run_observed(&[&s], RunOptions::default())
            .expect("observed run");
        let cp = analyze(&out, &obs);
        let busy_on_path: u64 = [
            Blame::Entry,
            Blame::SendSw,
            Blame::Copy,
            Blame::RecvSw,
            Blame::Compute,
        ]
        .into_iter()
        .map(|b| cp.decomposition.get(b))
        .sum();
        let sw_total: u64 = out.phases.iter().map(|ph| ph.sw.as_nanos()).sum();
        assert!(
            busy_on_path <= sw_total,
            "{} {} p={p} m={bytes}: path busy {busy_on_path} > total sw {sw_total}",
            machine.name(),
            op.key()
        );
    });
}
