//! Golden-value regression pins.
//!
//! The simulator is fully deterministic, so a handful of exact outputs
//! serve as drift detectors: any unintended change to the wire model,
//! executor ordering, cost tables, or measurement methodology shows up
//! here immediately. **These values are expected to change whenever the
//! calibration constants in `netmodel::machines` are retuned on
//! purpose** — update them alongside, and re-check `bench --bin
//! calibrate` before doing so.

#![allow(clippy::unwrap_used)]

use harness::{measure, Protocol};
use mpi_collectives_eval::prelude::*;

fn cold_us(machine: &Machine, op: OpClass, m: u32, p: usize) -> f64 {
    let comm = machine.communicator(p).unwrap();
    let out = match op {
        OpClass::Barrier => comm.barrier().unwrap(),
        OpClass::Bcast => comm.bcast(Rank(0), m).unwrap(),
        OpClass::Alltoall => comm.alltoall(m).unwrap(),
        OpClass::Gather => comm.gather(Rank(0), m).unwrap(),
        OpClass::Scatter => comm.scatter(Rank(0), m).unwrap(),
        OpClass::Reduce => comm.reduce(Rank(0), m).unwrap(),
        OpClass::Scan => comm.scan(m).unwrap(),
        OpClass::PointToPoint => unreachable!(),
    };
    out.time().as_micros_f64()
}

#[test]
fn cold_start_collectives_are_pinned() {
    // 32 nodes, 1 KB — the quickstart table, to the nanosecond.
    let sp2 = Machine::sp2();
    let paragon = Machine::paragon();
    let t3d = Machine::t3d();
    let cases: [(&Machine, OpClass, f64); 9] = [
        (&sp2, OpClass::Bcast, 676.460),
        (&paragon, OpClass::Bcast, 690.200),
        (&t3d, OpClass::Bcast, 365.740),
        (&sp2, OpClass::Alltoall, 3_103.140),
        (&t3d, OpClass::Alltoall, 1_945.917),
        (&sp2, OpClass::Gather, 927.800),
        (&paragon, OpClass::Scatter, 647.763),
        (&t3d, OpClass::Scan, 491.671),
        (&t3d, OpClass::Barrier, 3.055),
    ];
    for (machine, op, expected) in cases {
        let got = cold_us(machine, op, 1_024, 32);
        assert!(
            (got - expected).abs() < 0.5,
            "{}/{op}: {got:.3} us, pinned {expected:.3}",
            machine.name()
        );
    }
}

#[test]
fn paper_methodology_measurement_is_pinned() {
    // T3D alltoall under the full paper protocol (seeded skew included).
    let comm = Machine::t3d().communicator(32).unwrap();
    let m = measure(&comm, OpClass::Alltoall, 1_024, &Protocol::paper()).unwrap();
    assert!(
        (m.time_us - 1_936.8).abs() < 1.0,
        "max-reduced time drifted: {:.1}",
        m.time_us
    );
    assert!(m.min_time_us <= m.time_us);
}

#[test]
fn message_and_event_counts_are_pinned() {
    // Structural pins: traffic counts are calibration-independent.
    let comm = Machine::sp2().communicator(64).unwrap();
    let a2a = comm.alltoall(4_096).unwrap();
    assert_eq!(a2a.messages(), 64 * 63);
    assert_eq!(a2a.bytes(), 64 * 63 * 4_096);
    let bcast = comm.bcast(Rank(0), 4_096).unwrap();
    assert_eq!(bcast.messages(), 63);
}
