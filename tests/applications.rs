//! Application-level integration: the STAP workload and the
//! point-to-point communication patterns running end to end on the
//! machine models, with scaling analysis on top.

#![allow(clippy::unwrap_used)]

use collectives::patterns;
use mpi_collectives_eval::prelude::*;
use perfmodel::ScalingCurve;
use stap::{DataCube, StapRun, StapStage};

#[test]
fn stap_pipeline_reproduces_tradeoff_narrative() {
    // The paper's motivation: growing p divides computation but inflates
    // collective cost; communication share rises monotonically.
    let cube = DataCube::medium();
    let machine = Machine::t3d();
    let mut last_fraction = 0.0;
    for p in [4usize, 8, 16, 32, 64] {
        let run = StapRun::execute(&machine, cube, p).unwrap();
        assert!(
            run.comm_fraction() >= last_fraction - 0.02,
            "comm share fell at p={p}: {} -> {}",
            last_fraction,
            run.comm_fraction()
        );
        last_fraction = run.comm_fraction();
        // Corner turn is the dominant communication stage everywhere.
        let ct = run
            .stages
            .iter()
            .find(|s| s.stage == StapStage::CornerTurn)
            .unwrap()
            .comm_us;
        assert!(ct > run.comm_us() * 0.4, "p={p}");
    }
}

#[test]
fn stap_scaling_curve_analysis() {
    let cube = DataCube::small();
    let machine = Machine::paragon();
    let samples: Vec<(usize, f64)> = [2usize, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|p| {
            let run = StapRun::execute(&machine, cube, p).unwrap();
            (p, run.total_us())
        })
        .collect();
    let curve = ScalingCurve::new(samples);
    // Speedup grows then saturates; efficiency decays monotonically at
    // the tail.
    let eff = curve.efficiency();
    assert!(eff.first().unwrap().1 > eff.last().unwrap().1);
    // The small cube on the slow-communication Paragon stops scaling
    // before the largest size.
    let sweet = curve.fastest().unwrap();
    assert!(sweet >= 4, "some parallelism helps: {sweet}");
    // Karp–Flatt on the largest point yields a sensible serial fraction.
    let (p_last, s_last) = *curve.speedup().last().unwrap();
    let f = perfmodel::karp_flatt(s_last, p_last).unwrap();
    assert!((0.0..1.0).contains(&f), "serial fraction {f}");
}

#[test]
fn halo_exchange_is_cheap_on_all_machines() {
    // A ring halo swap is two messages per rank, independent of p: its
    // cost must stay far below an alltoall of the same payload.
    for machine in Machine::all() {
        let comm = machine.communicator(32).unwrap();
        let halo = comm.run(&patterns::halo_ring(32, 8_192)).unwrap();
        let a2a = comm.alltoall(8_192).unwrap();
        assert!(
            halo.time().as_micros_f64() * 4.0 < a2a.time().as_micros_f64(),
            "{}: halo {} vs alltoall {}",
            machine.name(),
            halo.time(),
            a2a.time()
        );
    }
}

#[test]
fn stencil_matches_mesh_structure() {
    // An 8x8 stencil on the Paragon's 8x8 mesh maps neighbours onto
    // physical links: every message is a single hop, so the exchange
    // completes in near-constant time regardless of grid position.
    let machine = Machine::paragon();
    let comm = machine.communicator(64).unwrap();
    let out = comm.run(&patterns::stencil2d(8, 8, 4_096)).unwrap();
    assert_eq!(out.messages(), 2 * 2 * (8 * 7));
    // All interior ranks finish within a tight band.
    let times: Vec<f64> = out.per_rank().iter().map(|d| d.as_micros_f64()).collect();
    let max = times.iter().cloned().fold(f64::MIN, f64::max);
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max < min * 3.0, "stencil spread too wide: {min}..{max}");
}

#[test]
fn master_worker_bottlenecks_on_master() {
    let machine = Machine::sp2();
    let comm = machine.communicator(16).unwrap();
    let s = patterns::master_worker(16, 4, 1_024, 1_024, 10_000);
    let out = comm.run(&s).unwrap();
    // The master's elapsed time is the maximum: it serializes all task
    // handout and result collection.
    let master = out.per_rank()[0];
    assert_eq!(out.time(), master);
}

#[test]
fn traced_run_matches_untraced_timing() {
    let comm = Machine::t3d().communicator(16).unwrap();
    let s = comm.schedule(OpClass::Bcast, Rank(0), 4_096).unwrap();
    let plain = comm.run(&s).unwrap();
    let (traced, trace) = comm.run_traced(&s).unwrap();
    assert_eq!(plain, traced, "tracing must not perturb timing");
    assert_eq!(trace.len(), 15);
    // Trace sanity: every delivery follows its posting.
    for m in &trace {
        assert!(m.delivered >= m.posted);
        assert!(m.bytes == 4_096);
    }
}

#[test]
fn diagnosed_run_reports_hot_links() {
    let comm = Machine::paragon().communicator(64).unwrap();
    let s = comm.schedule(OpClass::Alltoall, Rank(0), 1_024).unwrap();
    let out = comm.run_diagnosed(&s).unwrap();
    assert!(!out.link_loads.is_empty());
    // Sorted hottest-first.
    assert!(out.link_loads.windows(2).all(|w| w[0].1 >= w[1].1));
}
