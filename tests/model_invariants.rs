//! Cross-cutting model invariants: relationships between wire-model
//! variants, placements, and topologies that must hold for *any*
//! calibration — violations indicate executor or model bugs rather than
//! miscalibrated constants.

#![allow(clippy::unwrap_used)]

use harness::{measure, Protocol};
use mpi_collectives_eval::prelude::*;
use mpisim::Placement;

fn t(machine: &Machine, op: OpClass, m: u32, p: usize) -> f64 {
    let comm = machine.communicator(p).unwrap();
    measure(&comm, op, m, &Protocol::quick()).unwrap().time_us
}

#[test]
fn removing_contention_never_slows_anything() {
    for base in Machine::all() {
        let relaxed = base.clone().with_wire_config(WireConfig {
            link_contention: false,
            nic_serialization: false,
            ..WireConfig::default()
        });
        for op in [OpClass::Alltoall, OpClass::Scatter, OpClass::Bcast] {
            let full = t(&base, op, 8_192, 32);
            let no_contention = t(&relaxed, op, 8_192, 32);
            assert!(
                no_contention <= full * 1.001,
                "{}/{op}: {no_contention} vs {full}",
                base.name()
            );
        }
    }
}

#[test]
fn store_and_forward_never_beats_wormhole_uncontended() {
    // Without contention the comparison is pure pipelining: paying the
    // full serialization on every hop can only be slower. (With
    // contention, SAF's staggered link holds can occasionally interleave
    // competing messages better — a real effect, not asserted.)
    let quiet = WireConfig {
        link_contention: false,
        nic_serialization: false,
        ..WireConfig::default()
    };
    for base in Machine::all() {
        let wormhole = base.clone().with_wire_config(quiet);
        let saf = base.clone().with_wire_config(WireConfig {
            wormhole: false,
            ..quiet
        });
        for op in [OpClass::Bcast, OpClass::Alltoall] {
            let wh = t(&wormhole, op, 16_384, 32);
            let sf = t(&saf, op, 16_384, 32);
            assert!(sf >= wh * 0.999, "{}/{op}: {sf} vs {wh}", base.name());
        }
    }
}

#[test]
fn segmentation_overhead_is_bounded() {
    // Packetizing may shuffle contention order but must stay within a
    // modest band of the whole-message model for a quiet collective.
    for base in Machine::all() {
        let seg = base.clone().with_wire_config(WireConfig {
            segment_bytes: Some(4_096),
            ..WireConfig::default()
        });
        let whole = t(&base, OpClass::Bcast, 65_536, 16);
        let packetized = t(&seg, OpClass::Bcast, 65_536, 16);
        let ratio = packetized / whole;
        assert!((0.7..1.3).contains(&ratio), "{}: {ratio}", base.name());
    }
}

#[test]
fn scattered_placement_never_helps_much_on_direct_networks() {
    // On the mesh and torus, random placement lengthens routes, so it is
    // roughly neutral or worse (small wins possible from contention
    // reshuffling, hence the 5% band). The SP2's Omega is deliberately
    // excluded: its route lengths are placement-invariant and scattering
    // can genuinely reduce internal wire-column blocking.
    for base in [Machine::t3d(), Machine::paragon()] {
        let scattered = base
            .clone()
            .with_placement(Placement::Scattered { seed: 77 });
        for op in [OpClass::Bcast, OpClass::Alltoall] {
            let contiguous = t(&base, op, 4_096, 32);
            let moved = t(&scattered, op, 4_096, 32);
            assert!(
                moved >= contiguous * 0.95,
                "{}/{op}: scattered {moved} vs contiguous {contiguous}",
                base.name()
            );
        }
    }
}

#[test]
fn ideal_crossbar_never_slower_for_rootless_ops() {
    // Replacing the real interconnect with dedicated per-pair links can
    // only help (same software costs, no shared-wire serialization).
    for base in Machine::all() {
        let mut spec = base.spec().clone();
        spec.topology = netmodel::TopologyKind::Crossbar;
        let ideal = Machine::custom(spec).unwrap();
        for op in [OpClass::Alltoall, OpClass::Gather, OpClass::Bcast] {
            let real = t(&base, op, 8_192, 32);
            let xbar = t(&ideal, op, 8_192, 32);
            assert!(
                xbar <= real * 1.02,
                "{}/{op}: crossbar {xbar} vs real {real}",
                base.name()
            );
        }
    }
}

#[test]
fn hypercube_machine_runs_all_collectives() {
    // A what-if T3D on a hypercube: everything still executes and the
    // timings stay in the same decade as the torus.
    let torus = Machine::t3d();
    let mut spec = torus.spec().clone();
    spec.topology = netmodel::TopologyKind::Hypercube;
    let cube = Machine::custom(spec).unwrap();
    for op in OpClass::COLLECTIVES {
        let m = if op == OpClass::Barrier { 0 } else { 4_096 };
        let a = t(&torus, op, m, 32);
        let b = t(&cube, op, m, 32);
        let ratio = b / a.max(1e-9);
        assert!((0.3..3.0).contains(&ratio), "{op}: {ratio}");
    }
}

#[test]
fn subgroup_times_consistent_with_full_group() {
    // A contiguous subgroup of half the partition behaves like a
    // communicator of that size (same software costs; route lengths can
    // only match or shrink on the torus).
    let machine = Machine::t3d();
    let full = machine.communicator(32).unwrap();
    let sub = full.group(&(0..16).collect::<Vec<_>>()).unwrap();
    let direct = machine.communicator(16).unwrap();
    let a = sub.alltoall(2_048).unwrap().time().as_micros_f64();
    let b = direct.alltoall(2_048).unwrap().time().as_micros_f64();
    let ratio = a / b;
    assert!((0.8..1.6).contains(&ratio), "subgroup {a} vs direct {b}");
}

#[test]
fn calendar_engine_reproduces_heap_results_end_to_end() {
    // The backend choice must not change simulated physics. Run the same
    // schedule through both engine backends via the low-level executor.
    use mpisim::{execute, ExecConfig};
    let machine = Machine::paragon();
    let comm = machine.communicator(16).unwrap();
    let s = comm.schedule(OpClass::Alltoall, Rank(0), 2_048).unwrap();
    let a = execute(machine.spec(), &[&s], &ExecConfig::default()).unwrap();
    let b = execute(machine.spec(), &[&s], &ExecConfig::default()).unwrap();
    assert_eq!(a.finish, b.finish);
}
