//! Paper-reproduction validation: the shape criteria of DESIGN.md §4.
//!
//! Absolute numbers are checked against the paper's headlines with
//! generous tolerances (our substrate is a simulator, not the authors'
//! testbed); orderings, growth families, and crossovers are checked
//! strictly.

use harness::{measure, Protocol, SweepBuilder};
use mpi_collectives_eval::prelude::*;
use perfmodel::{fit_surface, paper, Growth};

fn quick() -> Protocol {
    Protocol::quick()
}

fn t_us(machine: &Machine, op: OpClass, m: u32, p: usize) -> f64 {
    let comm = machine.communicator(p).expect("size");
    measure(&comm, op, m, &quick()).expect("measure").time_us
}

#[test]
fn t3d_hardwired_barrier_is_3us_and_30x_faster() {
    let t3d = t_us(&Machine::t3d(), OpClass::Barrier, 0, 64);
    let sp2 = t_us(&Machine::sp2(), OpClass::Barrier, 0, 64);
    let paragon = t_us(&Machine::paragon(), OpClass::Barrier, 0, 64);
    assert!((2.0..5.0).contains(&t3d), "T3D barrier {t3d} us");
    assert!(sp2 / t3d >= 30.0, "SP2/T3D = {}", sp2 / t3d);
    assert!(paragon / t3d >= 30.0, "Paragon/T3D = {}", paragon / t3d);
}

#[test]
fn t3d_64_node_startup_latencies_within_30_percent() {
    let machine = Machine::t3d();
    for (op, published) in paper::T3D_64_NODE_LATENCIES_US {
        let sim = t_us(&machine, op, 4, 64);
        let ratio = sim / published;
        assert!(
            (0.7..1.3).contains(&ratio),
            "{op}: {sim:.0} vs {published} ({ratio:.2})"
        );
    }
}

#[test]
fn sp2_64kb_total_exchange_near_317ms() {
    let sim_ms = t_us(&Machine::sp2(), OpClass::Alltoall, 65_536, 64) / 1000.0;
    let ratio = sim_ms / paper::SP2_ALLTOALL_64KB_64N_MS;
    assert!((0.75..1.25).contains(&ratio), "{sim_ms:.0} ms ({ratio:.2})");
}

#[test]
fn aggregated_bandwidths_match_section8() {
    let data = SweepBuilder::new()
        .ops([OpClass::Alltoall])
        .message_sizes([4, 1_024, 16_384, 65_536])
        .node_counts([2, 8, 32, 64])
        .protocol(quick())
        .run()
        .expect("sweep");
    for (id, published_gb) in paper::ALLTOALL_64_BANDWIDTH_GB_S {
        let machine = Machine::from_id(id);
        let series =
            perfmodel::bandwidth_series(&data, machine.name(), OpClass::Alltoall).expect("fit");
        let sim_gb = series
            .iter()
            .find(|b| b.nodes == 64)
            .expect("64-node point")
            .mb_s
            / 1000.0;
        let ratio = sim_gb / published_gb;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{}: {sim_gb:.3} vs {published_gb} GB/s",
            machine.name()
        );
    }
    // And the published ranking: T3D > Paragon > SP2.
    let get = |name: &str| {
        perfmodel::bandwidth_series(&data, name, OpClass::Alltoall)
            .expect("fit")
            .iter()
            .find(|b| b.nodes == 64)
            .expect("point")
            .mb_s
    };
    assert!(get("Cray T3D") > get("Intel Paragon"));
    assert!(get("Intel Paragon") > get("IBM SP2"));
}

#[test]
fn startup_growth_families_fit_correctly() {
    // O(log p) for barrier/bcast/reduce/scan; O(p) for scatter/gather/
    // alltoall — on every machine (§8).
    let data = SweepBuilder::new()
        .message_sizes([4, 1_024, 65_536])
        .node_counts([2, 4, 8, 16, 32, 64])
        .protocol(quick())
        .run()
        .expect("sweep");
    for machine in Machine::all() {
        for op in OpClass::COLLECTIVES {
            let f = fit_surface(&data, machine.name(), op).expect("fit");
            let expect = if op.startup_is_logarithmic() {
                Growth::Logarithmic
            } else {
                Growth::Linear
            };
            assert_eq!(
                f.startup.growth,
                expect,
                "{}/{op}: fitted {}",
                machine.name(),
                f.startup
            );
        }
    }
}

#[test]
fn sp2_beats_paragon_short_messages_loses_long() {
    // §5: short messages — SP2 wins barrier, total exchange, scatter,
    // gather; long messages — Paragon wins almost all except reduce.
    let sp2 = Machine::sp2();
    let paragon = Machine::paragon();
    for op in [OpClass::Alltoall, OpClass::Scatter, OpClass::Gather] {
        let s = t_us(&sp2, op, 16, 64);
        let g = t_us(&paragon, op, 16, 64);
        assert!(s < g, "{op} short: SP2 {s:.0} vs Paragon {g:.0}");
    }
    let sb = t_us(&sp2, OpClass::Barrier, 0, 64);
    let gb = t_us(&paragon, OpClass::Barrier, 0, 64);
    assert!(sb < gb, "barrier: SP2 {sb:.0} vs Paragon {gb:.0}");

    for op in [OpClass::Bcast, OpClass::Alltoall, OpClass::Scatter] {
        let s = t_us(&sp2, op, 65_536, 64);
        let g = t_us(&paragon, op, 65_536, 64);
        assert!(g < s, "{op} long: Paragon {g:.0} vs SP2 {s:.0}");
    }
    // Reduce is the long-message exception: the SP2 keeps it.
    let s = t_us(&sp2, OpClass::Reduce, 65_536, 64);
    let g = t_us(&paragon, OpClass::Reduce, 65_536, 64);
    assert!(s < g, "reduce long: SP2 {s:.0} vs Paragon {g:.0}");
}

#[test]
fn t3d_fastest_except_paragon_scan() {
    // §9: T3D does uniformly best except trailing the Paragon in scan on
    // 16 nodes or more.
    // Reduce is excluded at long lengths: "to reduce long messages
    // beyond 64 KBytes, the SP2 shows the lowest messaging time" (§5).
    for op in [OpClass::Bcast, OpClass::Alltoall, OpClass::Gather] {
        for m in [16u32, 65_536] {
            let t = t_us(&Machine::t3d(), op, m, 64);
            let s = t_us(&Machine::sp2(), op, m, 64);
            let g = t_us(&Machine::paragon(), op, m, 64);
            assert!(
                t <= s * 1.05 && t <= g * 1.05,
                "{op}@{m}: T3D {t:.0} vs SP2 {s:.0} / Paragon {g:.0}"
            );
        }
    }
    // Reduce: T3D fastest for short messages, SP2 for long (§5).
    let t = t_us(&Machine::t3d(), OpClass::Reduce, 16, 64);
    let s = t_us(&Machine::sp2(), OpClass::Reduce, 16, 64);
    assert!(t < s, "reduce short: T3D {t:.0} vs SP2 {s:.0}");
    let t = t_us(&Machine::t3d(), OpClass::Scan, 16, 64);
    let g = t_us(&Machine::paragon(), OpClass::Scan, 16, 64);
    assert!(
        g < t,
        "Paragon scan beats T3D at 64 nodes: {g:.0} vs {t:.0}"
    );
}

#[test]
fn total_exchange_demands_longest_time() {
    // Fig. 4: at p=32, m=1KB the total exchange towers over the rest.
    for machine in Machine::all() {
        let a2a = t_us(&machine, OpClass::Alltoall, 1_024, 32);
        for op in [
            OpClass::Bcast,
            OpClass::Scatter,
            OpClass::Gather,
            OpClass::Scan,
            OpClass::Reduce,
        ] {
            let other = t_us(&machine, op, 1_024, 32);
            assert!(
                a2a > other,
                "{}: alltoall {a2a:.0} vs {op} {other:.0}",
                machine.name()
            );
        }
    }
}

#[test]
fn completion_range_64kb_64_nodes() {
    // §1: all collectives with 64 KB over 64 nodes finish within
    // (5.12 ms, 675 ms); allow slack on both ends.
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for machine in Machine::all() {
        for op in [
            OpClass::Bcast,
            OpClass::Alltoall,
            OpClass::Scatter,
            OpClass::Gather,
            OpClass::Scan,
            OpClass::Reduce,
        ] {
            let t = t_us(&machine, op, 65_536, 64);
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    assert!(lo / 1000.0 > 2.0, "fastest {lo:.0} us");
    assert!(hi / 1000.0 > 100.0, "slowest {hi:.0} us");
    assert!(hi / 1000.0 < 1_000.0, "slowest {hi:.0} us");
}

#[test]
fn paragon_alltoall_gather_startup_is_multiples_of_others() {
    // §7: at p=32 the Paragon's alltoall/gather latencies are about 4 to
    // 15 times the SP2/T3D counterparts.
    for op in [OpClass::Alltoall, OpClass::Gather] {
        let g = t_us(&Machine::paragon(), op, 4, 32);
        let s = t_us(&Machine::sp2(), op, 4, 32);
        let t = t_us(&Machine::t3d(), op, 4, 32);
        assert!(g > 2.0 * s, "{op}: Paragon {g:.0} vs SP2 {s:.0}");
        assert!(g > 2.0 * t, "{op}: Paragon {g:.0} vs T3D {t:.0}");
    }
}

#[test]
fn startup_latency_monotone_in_machine_size() {
    // T0(p) is "a monotonic increasing function of the machine size" (§4).
    for machine in Machine::all() {
        for op in OpClass::COLLECTIVES {
            let mut last = 0.0;
            for p in [2usize, 4, 8, 16, 32, 64] {
                let m = if op == OpClass::Barrier { 0 } else { 4 };
                let t = t_us(&machine, op, m, p);
                assert!(
                    t >= last * 0.98, // tiny tolerance for skew noise
                    "{}/{op}: T0({p}) = {t:.1} < T0(prev) = {last:.1}",
                    machine.name()
                );
                last = t;
            }
        }
    }
}
