//! Property tests for the event-elision fast path (`ExecConfig::elide`):
//!
//! * an elided run and the event-by-event reference run of the same
//!   point produce canonically-identical run records — byte-identical
//!   after [`obs::record::RunRecord::canonicalized`] erases the
//!   scheduling bookkeeping (event seqs / provenance parents) that
//!   elision legitimately changes — across all seven collectives, all
//!   three machines, random sizes, and random per-rank start skew;
//! * critical-path blame totals and the contention census are exactly
//!   equal, not just canonically equal (the FIFO occupancy watermark
//!   commits are preserved on the fast path);
//! * points where admission mostly fails (root-serialized gather and
//!   scatter funnel every transfer through one node's links) exercise
//!   the fallback and still certify.

use desim::check::{forall, Gen};
use desim::SimTime;
use mpisim::exec::ExecConfig;
use mpisim::{Machine, OpClass, Rank};
use obs::diff::diff;
use obs::{MetricsRegistry, RunRecord, Verdict};

/// Runs one point under full instrumentation with per-rank start skew,
/// returning the run record plus the elision admission counters
/// `(attempts, admitted)`.
fn record_skewed(
    machine: &Machine,
    op: OpClass,
    p: usize,
    m: u32,
    skew_ns: &[u64],
    elide: bool,
) -> (RunRecord, (u64, u64)) {
    let bytes = if op == OpClass::Barrier { 0 } else { m };
    let comm = machine.communicator(p).expect("communicator size");
    let schedule = comm.schedule(op, Rank(0), bytes).expect("schedule build");
    let cfg = ExecConfig {
        wire: machine.wire_config(),
        placement: machine.placement(),
        record_trace: true,
        provenance: true,
        event_log: true,
        start_times: Some(skew_ns.iter().map(|&ns| SimTime::from_nanos(ns)).collect()),
        elide,
        ..ExecConfig::default()
    };
    let (out, observed) =
        mpisim::execute_observed(machine.spec(), &[&schedule], &cfg).expect("observed execution");
    let stats = (observed.elide.attempts(), observed.elide.admitted);
    let cp = mpisim::critpath::analyze(&out, &observed);
    let mut reg = MetricsRegistry::new();
    mpisim::observe::export_metrics(&out, &observed, &mut reg);
    cp.export_metrics(&mut reg);
    let rec = mpisim::record::run_record(machine.name(), &out, &observed, Some(&cp), Some(&reg));
    (rec, stats)
}

fn random_point(g: &mut Gen) -> (Machine, OpClass, usize, u32) {
    let machine = Machine::all()[g.usize(0, 2)].clone();
    let op = *g.pick(&OpClass::COLLECTIVES);
    let p = 1 << g.usize(1, 5); // 2..32 ranks
    let bytes = 1 << g.usize(2, 14); // 4 B .. 16 KB
    (machine, op, p, bytes)
}

/// Asserts the elision-equivalence contract for one point: canonical
/// byte-identity with certification, plus exact blame/census equality.
fn assert_equivalent(base: &RunRecord, fast: &RunRecord, label: &str) {
    let report = diff(&base.canonicalized(), &fast.canonicalized());
    assert_eq!(
        report.verdict,
        Verdict::ByteIdentical,
        "{label}: elided timeline must canonicalize identically\nfirst divergence: {:#?}",
        report.first
    );
    assert!(report.certified, "{label}: no drops, must certify");
    assert_eq!(
        base.blame_ns, fast.blame_ns,
        "{label}: critical-path blame totals must match exactly"
    );
    assert_eq!(
        base.census, fast.census,
        "{label}: contention census must match exactly (FIFO commits preserved)"
    );
    assert_eq!(base.elapsed_ns, fast.elapsed_ns, "{label}: elapsed time");
    assert_eq!(
        base.finish_ns, fast.finish_ns,
        "{label}: completion instants"
    );
}

#[test]
fn elided_runs_are_canonically_identical_under_random_skew() {
    forall("elide_equivalence_skewed", 14, |g| {
        let (machine, op, p, bytes) = random_point(g);
        // Half the points run with zero skew (the symmetric worst case
        // for tie ordering), half with random per-rank start offsets.
        let skew: Vec<u64> = if g.usize(0, 1) == 0 {
            vec![0; p]
        } else {
            (0..p).map(|_| g.u64(0, 5_000)).collect()
        };
        let label = format!(
            "{} {} p={p} m={bytes} skew={skew:?}",
            machine.name(),
            op.key()
        );
        let (base, _) = record_skewed(&machine, op, p, bytes, &skew, false);
        let (fast, _) = record_skewed(&machine, op, p, bytes, &skew, true);
        assert_equivalent(&base, &fast, &label);
    });
}

#[test]
fn every_collective_on_every_machine_elides_identically() {
    for machine in Machine::all() {
        for &op in OpClass::COLLECTIVES.iter() {
            let skew = vec![0u64; 8];
            let label = format!("{} {} p=8 m=512", machine.name(), op.key());
            let (base, _) = record_skewed(&machine, op, 8, 512, &skew, false);
            let (fast, _) = record_skewed(&machine, op, 8, 512, &skew, true);
            assert_equivalent(&base, &fast, &label);
        }
    }
}

#[test]
fn forced_fallback_points_exercise_the_slow_path_and_still_certify() {
    // Root-serialized funnels: every transfer crosses the root's links,
    // so the path-busy admission test fails for almost every send and
    // the engine falls back to the event-by-event path mid-run.
    let points = [
        (Machine::sp2(), OpClass::Gather),
        (Machine::paragon(), OpClass::Scatter),
        (Machine::paragon(), OpClass::Gather),
    ];
    for (machine, op) in points {
        let skew = vec![0u64; 64];
        let label = format!("{} {} p=64 m=16384", machine.name(), op.key());
        let (base, base_stats) = record_skewed(&machine, op, 64, 16384, &skew, false);
        let (fast, (attempts, admitted)) = record_skewed(&machine, op, 64, 16384, &skew, true);
        assert_eq!(base_stats, (0, 0), "{label}: reference run never elides");
        assert!(attempts > 0, "{label}: elision was attempted");
        assert!(
            admitted < attempts,
            "{label}: funnel points must hit the fallback"
        );
        // Known admission ceiling for these funnels is ~3.2%; a loose
        // 10% bound catches the fast path silently over-admitting.
        assert!(
            admitted * 10 <= attempts,
            "{label}: admission {admitted}/{attempts} should stay under 10%"
        );
        assert_equivalent(&base, &fast, &label);
    }
}
