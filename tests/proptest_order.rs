//! Property tests for the order analysis (`ordercheck`):
//!
//! * statically-independent same-instant pairs commute — inverting one
//!   never survives canonicalization, so the census has zero
//!   unexplained pairs on any point,
//! * an invert-all run that breaks record certification is always
//!   caught by the demo analysis with a concrete minimal divergent
//!   pair,
//! * the suite census is byte-identical between a serial and a
//!   4-worker run (determinism of the work-distributing executor).

use desim::check::{forall, Gen};
use mpisim::{Machine, OpClass};
use ordercheck::{analyze_point, demo_broken, suite_census, ExploreOptions, PointSpec};

fn random_point(g: &mut Gen) -> PointSpec {
    let machine = Machine::all()[g.usize(0, 2)].clone();
    let op = *g.pick(&OpClass::COLLECTIVES);
    let p = 1 << g.usize(1, 4); // 2..16 ranks — exploration reruns the point
    let m = if op == OpClass::Barrier {
        0
    } else {
        1 << g.usize(2, 12) // 4 B .. 4 KB
    };
    PointSpec { machine, op, p, m }
}

fn cheap_opts() -> ExploreOptions {
    ExploreOptions {
        per_class: 1,
        max_explore: 4,
        ..ExploreOptions::default()
    }
}

#[test]
fn statically_independent_pairs_always_commute() {
    // The admission claim: a pair the static relation calls independent
    // must be canonically invisible under inversion. Any sensitive pair
    // the explorer finds has to be one the relation already predicted.
    forall("order_independent_commute", 10, |g| {
        let spec = random_point(g);
        let census = analyze_point(&spec, &cheap_opts());
        let label = format!(
            "{} {} p={} m={}",
            census.machine, census.op, census.p, census.m
        );
        assert_eq!(
            census.unexplained, 0,
            "{label}: {:?}",
            census.sensitive_examples
        );
        // Accounting closes: every selected candidate is explored or
        // missed, and every explored one is commuting or sensitive.
        assert_eq!(
            census.explored,
            census.commuting + census.sensitive,
            "{label}"
        );
        assert!(
            census.independent + census.dependent == census.candidates,
            "{label}"
        );
    });
}

#[test]
fn invert_all_divergence_is_always_caught_with_a_minimal_pair() {
    // Whenever inverting every tie perturbs the raw record at all, the
    // demo analysis must flag it (caught) and name a concrete minimal
    // divergent pair; and a canonical (semantic) divergence is
    // impossible without a raw one.
    forall("order_invert_all_flagged", 10, |g| {
        let spec = random_point(g);
        let report = demo_broken(&spec, &cheap_opts());
        let label = format!(
            "{} {} p={} m={}",
            spec.machine.name(),
            spec.op.key(),
            spec.p,
            spec.m
        );
        assert_eq!(
            report.caught,
            !report.raw.verdict.identical(),
            "{label}: caught iff the raw records diverge"
        );
        if report.semantic {
            assert!(report.caught, "{label}: semantic divergence implies raw");
        }
        if report.caught {
            let m = report.minimal.as_ref().expect(&label);
            assert_ne!(m.expected, m.got, "{label}: pair names a real difference");
            assert!(report.render().contains("CAUGHT"), "{label}");
        }
    });
}

#[test]
fn suite_census_is_identical_serial_vs_parallel() {
    forall("order_census_determinism", 4, |g| {
        let points: Vec<PointSpec> = (0..3).map(|_| random_point(g)).collect();
        let opts = ExploreOptions {
            per_class: 1,
            max_explore: 3,
            ..ExploreOptions::default()
        };
        let (serial, _) = suite_census(&points, 1, &opts);
        let (parallel, stats) = suite_census(&points, 4, &opts);
        assert!(stats.threads > 1, "parallel run must actually fan out");
        assert_eq!(
            serial.to_json_string(),
            parallel.to_json_string(),
            "census must not depend on worker count"
        );
    });
}
