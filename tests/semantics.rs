//! Semantic coverage of every collective algorithm: the data-influence
//! closure ([`Schedule::influence`]) must show each operation actually
//! delivers data where its MPI semantics require — independent of
//! timing, for every generator and communicator size. Runs on the
//! in-repo deterministic harness ([`desim::check`]).

use collectives::{alltoall, barrier, bcast, extra, gather, reduce, scan, scatter, Rank, Schedule};
use desim::check::forall;

/// `influence[r][s]`: can rank s's data have reached rank r?
fn influence(s: &Schedule) -> Vec<Vec<bool>> {
    s.influence().expect("deadlock-free schedule")
}

fn root_reaches_all(s: &Schedule, root: usize) {
    for (r, set) in influence(s).iter().enumerate() {
        assert!(set[root], "rank {r} never hears from root {root}");
    }
}

fn all_reach_root(s: &Schedule, root: usize) {
    let inf = influence(s);
    for (src, &heard) in inf[root].iter().enumerate() {
        assert!(heard, "root misses rank {src}'s data");
    }
}

fn complete(s: &Schedule) {
    let inf = influence(s);
    for (r, set) in inf.iter().enumerate() {
        for (src, &ok) in set.iter().enumerate() {
            assert!(ok, "rank {r} misses rank {src}");
        }
    }
}

#[test]
fn broadcasts_reach_everyone() {
    forall("broadcasts reach everyone", 48, |g| {
        let p = g.usize(1, 48);
        let root = g.usize(0, 999) % p;
        root_reaches_all(&bcast::binomial(p, Rank(root), 64), root);
        root_reaches_all(&bcast::linear(p, Rank(root), 64), root);
        root_reaches_all(&bcast::scatter_allgather(p, Rank(root), 6_400), root);
        root_reaches_all(&bcast::pipelined(p, Rank(root), 6_400, 1_024), root);
    });
}

#[test]
fn scatters_reach_everyone() {
    forall("scatters reach everyone", 48, |g| {
        // Scatter delivers root data to each rank: same reachability
        // requirement as broadcast.
        let p = g.usize(1, 48);
        let root = g.usize(0, 999) % p;
        root_reaches_all(&scatter::linear(p, Rank(root), 64), root);
        root_reaches_all(&scatter::binomial(p, Rank(root), 64), root);
    });
}

#[test]
fn gathers_and_reduces_hear_everyone() {
    forall("gathers and reduces hear everyone", 48, |g| {
        let p = g.usize(1, 48);
        let root = g.usize(0, 999) % p;
        all_reach_root(&gather::linear(p, Rank(root), 64), root);
        all_reach_root(&gather::binomial(p, Rank(root), 64), root);
        all_reach_root(&reduce::binomial(p, Rank(root), 64), root);
        all_reach_root(&reduce::linear(p, Rank(root), 64), root);
    });
}

#[test]
fn total_exchanges_are_complete() {
    forall("total exchanges are complete", 48, |g| {
        let p = g.usize(1, 24);
        complete(&alltoall::ring(p, 16));
        complete(&alltoall::bruck(p, 16));
        if p.is_power_of_two() {
            complete(&alltoall::pairwise(p, 16));
        }
    });
}

#[test]
fn all_variants_of_allreduce_are_complete() {
    forall("allreduce variants are complete", 48, |g| {
        let p = g.usize(1, 24);
        complete(&extra::allreduce_recursive_doubling(p, 64));
        complete(&extra::allreduce_rabenseifner(p, 6_400));
        complete(&extra::allgather_ring(p, 64));
    });
}

#[test]
fn scans_cover_their_prefixes() {
    forall("scans cover their prefixes", 48, |g| {
        let p = g.usize(1, 48);
        for s in [scan::recursive_doubling(p, 64), scan::linear(p, 64)] {
            let inf = influence(&s);
            for (r, set) in inf.iter().enumerate() {
                for (src, &ok) in set.iter().enumerate().take(r + 1) {
                    assert!(ok, "scan rank {r} misses prefix rank {src}");
                }
            }
        }
    });
}

#[test]
fn software_barriers_synchronize_transitively() {
    forall("software barriers synchronize", 48, |g| {
        // A correct barrier: after it, every rank has (transitively)
        // heard from every other — otherwise some rank could exit before
        // another entered.
        let p = g.usize(1, 48);
        complete(&barrier::dissemination(p));
        complete(&barrier::tree(p));
        if p.is_power_of_two() {
            complete(&barrier::pairwise(p));
        }
    });
}
