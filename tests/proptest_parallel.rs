//! Property tests for the parallel sweep executor: for any sub-grid,
//! seed, and worker count, a parallel sweep must produce exactly the
//! dataset the serial sweep produces — same points, same order, same
//! bytes — and progress callbacks must report every point exactly once
//! with a strictly increasing completed count.

use desim::check::forall;
use harness::{Protocol, SweepBuilder};
use mpisim::{Machine, OpClass};
use std::sync::Mutex;

/// A random sub-grid of the paper's measurement space: 1–3 machines,
/// 1–3 operations, 1–2 message sizes, 1–2 node counts, random seed.
fn random_sweep(g: &mut desim::check::Gen) -> (SweepBuilder, usize) {
    let mut machines = vec![Machine::sp2(), Machine::t3d(), Machine::paragon()];
    let keep = g.usize(1, 3);
    while machines.len() > keep {
        let drop = g.usize(0, machines.len() - 1);
        machines.remove(drop);
    }

    let mut ops = Vec::new();
    for _ in 0..g.usize(1, 3) {
        let op = *g.pick(&OpClass::COLLECTIVES);
        if !ops.contains(&op) {
            ops.push(op);
        }
    }

    let sizes: Vec<u32> = (0..g.usize(1, 2)).map(|_| 1 << g.usize(2, 12)).collect();
    let nodes: Vec<usize> = (0..g.usize(1, 2)).map(|_| 1 << g.usize(1, 4)).collect();
    let seed = g.u64(0, u64::MAX / 2);

    let builder = SweepBuilder::new()
        .machines(machines)
        .ops(ops)
        .message_sizes(sizes)
        .node_counts(nodes)
        .protocol(Protocol::quick().with_seed(seed));
    let threads = g.usize(2, 8);
    (builder, threads)
}

#[test]
fn parallel_sweep_equals_serial_for_any_grid_and_thread_count() {
    forall("parallel_equals_serial", 12, |g| {
        let (builder, threads) = random_sweep(g);
        let serial = builder.clone().threads(1).run().expect("serial sweep");
        let parallel = builder
            .clone()
            .threads(threads)
            .run()
            .expect("parallel sweep");
        assert_eq!(
            serial, parallel,
            "dataset must not depend on worker count (threads={threads})"
        );
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "serialized bytes must be identical (threads={threads})"
        );
    });
}

#[test]
fn parallel_progress_reports_each_point_once_and_monotonically() {
    forall("progress_exactly_once_monotonic", 8, |g| {
        let (builder, threads) = random_sweep(g);
        let builder = builder.threads(threads);
        let expected = builder.points();
        let calls: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        builder
            .run_with_progress(|done, total| {
                calls.lock().expect("progress lock").push((done, total));
            })
            .expect("sweep");

        let calls = calls.into_inner().expect("progress lock");
        assert_eq!(
            calls.len(),
            expected,
            "one callback per (machine, op, p, m) point (threads={threads})"
        );
        for (i, &(done, total)) in calls.iter().enumerate() {
            assert_eq!(total, expected, "total is the full point count");
            assert_eq!(
                done,
                i + 1,
                "completed count increases by exactly one per delivery"
            );
        }
    });
}
