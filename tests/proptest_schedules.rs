//! Property-based tests over the collective algorithm generators and the
//! executor: for *any* (algorithm, operation, size, root, bytes) combo,
//! schedules must validate, execute to completion deterministically, and
//! respect basic physical invariants. Runs on the in-repo deterministic
//! harness ([`desim::check`]).

#![allow(clippy::unwrap_used)]

use collectives::{build, Algorithm, Rank};
use desim::check::forall;
use mpisim::{Machine, OpClass};

/// Algorithms valid for a given op (mirrors `select::build`).
fn algorithms_for(op: OpClass) -> Vec<Algorithm> {
    match op {
        OpClass::Bcast | OpClass::Scatter | OpClass::Gather | OpClass::Reduce => {
            vec![Algorithm::Binomial, Algorithm::Linear]
        }
        OpClass::Scan => vec![Algorithm::RecursiveDoubling, Algorithm::Linear],
        OpClass::Alltoall => vec![Algorithm::Pairwise, Algorithm::Ring, Algorithm::Bruck],
        OpClass::Barrier => vec![
            Algorithm::Dissemination,
            Algorithm::Tree,
            Algorithm::Hardware,
        ],
        OpClass::PointToPoint => vec![],
    }
}

/// Every generated schedule passes the abstract checker.
#[test]
fn schedules_always_validate() {
    forall("schedules always validate", 64, |g| {
        let op = *g.pick(&OpClass::COLLECTIVES);
        let p = g.usize(1, 40);
        let root = Rank(g.usize(0, 999) % p);
        let bytes = g.u32(0, 1_000_000);
        for alg in algorithms_for(op) {
            let s = build(alg, op, p, root, bytes).expect("supported pairing");
            assert!(s.check().is_ok(), "{op}/{alg:?} p={p}");
            assert_eq!(s.ranks(), p);
            assert_eq!(s.class(), op);
        }
    });
}

/// One-to-all / all-to-one operations move exactly (p-1) messages
/// under their vendor algorithms, and the aggregated volume matches
/// the paper's f(m, p).
#[test]
fn message_counts_match_theory() {
    forall("message counts match theory", 64, |g| {
        let p = g.usize(1, 48);
        let bytes = g.u32(1, 65_536);
        for op in [
            OpClass::Bcast,
            OpClass::Scatter,
            OpClass::Gather,
            OpClass::Reduce,
        ] {
            let alg = if matches!(op, OpClass::Bcast | OpClass::Reduce) {
                Algorithm::Binomial
            } else {
                Algorithm::Linear
            };
            let s = build(alg, op, p, Rank(0), bytes).expect("supported");
            assert_eq!(s.total_messages(), p - 1, "{op}");
        }
        let ring = build(Algorithm::Ring, OpClass::Alltoall, p, Rank(0), bytes).expect("ring");
        assert_eq!(ring.total_messages(), p * (p - 1));
        assert_eq!(
            ring.total_bytes(),
            OpClass::Alltoall.aggregated_bytes(u64::from(bytes), p as u64)
        );
    });
}

/// Execution completes with a positive makespan and is deterministic.
#[test]
fn execution_is_deterministic_and_positive() {
    forall("execution deterministic and positive", 64, |g| {
        let op = *g.pick(&OpClass::COLLECTIVES);
        let p = g.usize(2, 24);
        let bytes = g.u32(0, 262_144);
        let machine = &Machine::all()[g.usize(0, 2)];
        let comm = machine.communicator(p).expect("in range");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let a = comm.run(&s).expect("run");
        let b = comm.run(&s).expect("run");
        assert_eq!(a, b);
        assert!(a.time().as_nanos() > 0);
        assert!(a.min_time() <= a.time());
    });
}

/// Collective time is monotone (weakly) in the message length.
#[test]
fn time_weakly_monotone_in_bytes() {
    forall("time weakly monotone in bytes", 64, |g| {
        let op = *g.pick(&[
            OpClass::Bcast,
            OpClass::Scatter,
            OpClass::Gather,
            OpClass::Reduce,
            OpClass::Scan,
            OpClass::Alltoall,
        ]);
        let p = g.usize(2, 16);
        let machine = &Machine::all()[g.usize(0, 2)];
        let small = g.u32(1, 4_096);
        let factor = g.u32(2, 16);
        let comm = machine.communicator(p).expect("in range");
        let t_small = comm
            .run(&comm.schedule(op, Rank(0), small).unwrap())
            .unwrap()
            .time();
        let t_big = comm
            .run(
                &comm
                    .schedule(op, Rank(0), small.saturating_mul(factor))
                    .unwrap(),
            )
            .unwrap()
            .time();
        assert!(
            t_big >= t_small,
            "{op} p={p} {}: T({}) = {} < T({small}) = {}",
            machine.name(),
            small * factor,
            t_big,
            t_small
        );
    });
}

/// Root symmetry: on a symmetric machine the broadcast root choice
/// never changes message counts and keeps times in a narrow band.
#[test]
fn bcast_root_choice_is_benign() {
    forall("bcast root choice benign", 64, |g| {
        let p = g.usize(2, 32);
        let root = Rank(g.usize(0, 31) % p);
        let bytes = g.u32(1, 16_384);
        let machine = Machine::t3d();
        let comm = machine.communicator(p).expect("in range");
        let s0 = comm.schedule(OpClass::Bcast, Rank(0), bytes).unwrap();
        let sr = comm.schedule(OpClass::Bcast, root, bytes).unwrap();
        assert_eq!(s0.total_messages(), sr.total_messages());
        let t0 = comm.run(&s0).unwrap().time().as_micros_f64();
        let tr = comm.run(&sr).unwrap().time().as_micros_f64();
        // The torus is node-symmetric; only tree-to-topology embedding
        // differs. Allow 50% band.
        assert!(
            tr < t0 * 1.5 + 5.0 && t0 < tr * 1.5 + 5.0,
            "t0={t0} tr={tr}"
        );
    });
}

/// The hardware barrier time is independent of everything but the
/// slowest arrival.
#[test]
fn hw_barrier_is_arrival_bound() {
    forall("hw barrier is arrival bound", 64, |g| {
        let p = g.usize(2, 64);
        let machine = Machine::t3d();
        let comm = machine.communicator(p).expect("in range");
        let out = comm.barrier().expect("barrier");
        assert!(out.time().as_micros_f64() < 4.0, "{}", out.time());
        // Every rank observes the same release instant.
        let times = out.per_rank();
        assert!(times.iter().all(|&t| t == times[0]));
    });
}
