//! Property-based tests over the collective algorithm generators and the
//! executor: for *any* (algorithm, operation, size, root, bytes) combo,
//! schedules must validate, execute to completion deterministically, and
//! respect basic physical invariants.

use collectives::{build, Algorithm, Rank};
use mpisim::{Machine, OpClass};
use proptest::prelude::*;

/// Algorithms valid for a given op (mirrors `select::build`).
fn algorithms_for(op: OpClass) -> Vec<Algorithm> {
    match op {
        OpClass::Bcast | OpClass::Scatter | OpClass::Gather | OpClass::Reduce => {
            vec![Algorithm::Binomial, Algorithm::Linear]
        }
        OpClass::Scan => vec![Algorithm::RecursiveDoubling, Algorithm::Linear],
        OpClass::Alltoall => vec![Algorithm::Pairwise, Algorithm::Ring, Algorithm::Bruck],
        OpClass::Barrier => vec![
            Algorithm::Dissemination,
            Algorithm::Tree,
            Algorithm::Hardware,
        ],
        OpClass::PointToPoint => vec![],
    }
}

fn arb_op() -> impl Strategy<Value = OpClass> {
    prop::sample::select(OpClass::COLLECTIVES.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated schedule passes the abstract checker.
    #[test]
    fn schedules_always_validate(
        op in arb_op(),
        p in 1usize..=40,
        root_seed in 0usize..1000,
        bytes in 0u32..=1_000_000,
    ) {
        let root = Rank(root_seed % p);
        for alg in algorithms_for(op) {
            let s = build(alg, op, p, root, bytes).expect("supported pairing");
            prop_assert!(s.check().is_ok(), "{op}/{alg:?} p={p}");
            prop_assert_eq!(s.ranks(), p);
            prop_assert_eq!(s.class(), op);
        }
    }

    /// One-to-all / all-to-one operations move exactly (p-1) messages
    /// under their vendor algorithms, and the aggregated volume matches
    /// the paper's f(m, p).
    #[test]
    fn message_counts_match_theory(
        p in 1usize..=48,
        bytes in 1u32..=65_536,
    ) {
        for op in [OpClass::Bcast, OpClass::Scatter, OpClass::Gather, OpClass::Reduce] {
            let alg = if matches!(op, OpClass::Bcast | OpClass::Reduce) {
                Algorithm::Binomial
            } else {
                Algorithm::Linear
            };
            let s = build(alg, op, p, Rank(0), bytes).expect("supported");
            prop_assert_eq!(s.total_messages(), p - 1, "{}", op);
        }
        let ring = build(Algorithm::Ring, OpClass::Alltoall, p, Rank(0), bytes).expect("ring");
        prop_assert_eq!(ring.total_messages(), p * (p - 1));
        prop_assert_eq!(
            ring.total_bytes(),
            OpClass::Alltoall.aggregated_bytes(u64::from(bytes), p as u64)
        );
    }

    /// Execution completes with a positive makespan and is deterministic.
    #[test]
    fn execution_is_deterministic_and_positive(
        op in arb_op(),
        p in 2usize..=24,
        bytes in 0u32..=262_144,
        machine_idx in 0usize..3,
    ) {
        let machine = &Machine::all()[machine_idx];
        let comm = machine.communicator(p).expect("in range");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let a = comm.run(&s).expect("run");
        let b = comm.run(&s).expect("run");
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.time().as_nanos() > 0);
        prop_assert!(a.min_time() <= a.time());
    }

    /// Collective time is monotone (weakly) in the message length.
    #[test]
    fn time_weakly_monotone_in_bytes(
        op in prop::sample::select(vec![
            OpClass::Bcast, OpClass::Scatter, OpClass::Gather,
            OpClass::Reduce, OpClass::Scan, OpClass::Alltoall,
        ]),
        p in 2usize..=16,
        machine_idx in 0usize..3,
        small in 1u32..=4_096,
        factor in 2u32..=16,
    ) {
        let machine = &Machine::all()[machine_idx];
        let comm = machine.communicator(p).expect("in range");
        let t_small = comm.run(&comm.schedule(op, Rank(0), small).unwrap()).unwrap().time();
        let t_big = comm
            .run(&comm.schedule(op, Rank(0), small.saturating_mul(factor)).unwrap())
            .unwrap()
            .time();
        prop_assert!(
            t_big >= t_small,
            "{op} p={p} {}: T({}) = {} < T({small}) = {}",
            machine.name(), small * factor, t_big, t_small
        );
    }

    /// Root symmetry: on a symmetric machine the broadcast root choice
    /// never changes message counts and keeps times in a narrow band.
    #[test]
    fn bcast_root_choice_is_benign(
        p in 2usize..=32,
        root in 0usize..32,
        bytes in 1u32..=16_384,
    ) {
        let root = Rank(root % p);
        let machine = Machine::t3d();
        let comm = machine.communicator(p).expect("in range");
        let s0 = comm.schedule(OpClass::Bcast, Rank(0), bytes).unwrap();
        let sr = comm.schedule(OpClass::Bcast, root, bytes).unwrap();
        prop_assert_eq!(s0.total_messages(), sr.total_messages());
        let t0 = comm.run(&s0).unwrap().time().as_micros_f64();
        let tr = comm.run(&sr).unwrap().time().as_micros_f64();
        // The torus is node-symmetric; only tree-to-topology embedding
        // differs. Allow 50% band.
        prop_assert!(tr < t0 * 1.5 + 5.0 && t0 < tr * 1.5 + 5.0, "t0={t0} tr={tr}");
    }

    /// The hardware barrier time is independent of everything but the
    /// slowest arrival.
    #[test]
    fn hw_barrier_is_arrival_bound(p in 2usize..=64) {
        let machine = Machine::t3d();
        let comm = machine.communicator(p).expect("in range");
        let out = comm.barrier().expect("barrier");
        prop_assert!(out.time().as_micros_f64() < 4.0, "{}", out.time());
        // Every rank observes the same release instant.
        let times = out.per_rank();
        prop_assert!(times.iter().all(|&t| t == times[0]));
    }
}
