//! Property tests for the observability trace invariants: causal
//! message timestamps, same-seed determinism, and agreement between the
//! per-link byte counters and the message trace.

use desim::check::forall;
use harness::Protocol;
use mpisim::comm::RunOptions;
use mpisim::{Machine, OpClass, Rank};

fn random_point(g: &mut desim::check::Gen) -> (Machine, OpClass, usize, u32) {
    let machine = Machine::all()[g.usize(0, 2)].clone();
    let op = *g.pick(&OpClass::COLLECTIVES);
    let p = 1 << g.usize(1, 4); // 2..16 ranks
    let bytes = if op == OpClass::Barrier {
        0
    } else {
        1 << g.usize(2, 13) // 4 B .. 8 KB
    };
    (machine, op, p, bytes)
}

#[test]
fn traced_messages_are_causal() {
    forall("posted_not_after_delivered", 24, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let (out, _) = comm
            .run_observed(&[&s], RunOptions::default())
            .expect("observed run");
        for m in &out.trace {
            assert!(
                m.posted <= m.delivered,
                "{} {op:?} p={p} m={bytes}: message {}->{} posted {:?} after delivery {:?}",
                machine.name(),
                m.src,
                m.dst,
                m.posted,
                m.delivered
            );
        }
    });
}

#[test]
fn same_seed_runs_trace_identically() {
    forall("trace_determinism", 12, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let seed = g.u64(0, u64::MAX / 2);
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let mut proto = Protocol::quick();
        proto.max_skew = desim::SimDuration::from_micros(25);
        proto = proto.with_seed(seed);
        let run = || {
            let skew: Vec<desim::SimTime> = {
                let mut rng = desim::SplitMix64::new(proto.seed);
                (0..p)
                    .map(|_| desim::SimTime::from_nanos(rng.next_below(25_001)))
                    .collect()
            };
            comm.run_observed(
                &[&s],
                RunOptions {
                    start_times: Some(skew),
                    record_trace: true,
                    ..RunOptions::default()
                },
            )
            .expect("observed run")
        };
        let (a, oa) = run();
        let (b, ob) = run();
        assert_eq!(a.trace, b.trace, "same seed must reproduce the trace");
        assert_eq!(a.finish, b.finish);
        assert_eq!(oa.spans, ob.spans);
        assert_eq!(oa.net, ob.net);
    });
}

#[test]
fn link_byte_counters_match_traced_sizes() {
    forall("link_bytes_equal_trace_bytes_x_hops", 24, |g| {
        let (machine, op, p, bytes) = random_point(g);
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let (out, obs) = comm
            .run_observed(&[&s], RunOptions::default())
            .expect("observed run");
        assert_eq!(out.dropped_messages, 0, "small runs never hit the cap");

        // Independently recompute what the per-link counters must total:
        // each traced message contributes its payload once per hop of
        // its (deterministic) route.
        let table = machine.placement().table(p).expect("placement");
        let topo = machine.spec().topology.build(p);
        let expected: u64 = out
            .trace
            .iter()
            .map(|m| {
                let hops = topo.route(table[m.src], table[m.dst]).links().len() as u64;
                hops * u64::from(m.bytes)
            })
            .sum();
        let counted: u64 = obs.net.link_bytes.iter().sum();
        assert_eq!(
            counted,
            expected,
            "{} {op:?} p={p} m={bytes}",
            machine.name()
        );
        // And the message totals agree with the executor's counters.
        assert_eq!(out.trace.len() as u64, out.messages);
    });
}
