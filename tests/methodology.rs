//! Integration tests of the measurement methodology (harness) against
//! the executor: warm-up behaviour, skew robustness, aggregation
//! semantics, sweep/dataset/fit plumbing on real simulated data.

#![allow(clippy::unwrap_used)]

use harness::{measure, Dataset, Protocol, SweepBuilder};
use mpi_collectives_eval::prelude::*;
use perfmodel::{breakdown, fit_surface};

#[test]
fn measurement_is_reproducible_end_to_end() {
    let comm = Machine::paragon().communicator(16).unwrap();
    let a = measure(&comm, OpClass::Alltoall, 2_048, &Protocol::paper()).unwrap();
    let b = measure(&comm, OpClass::Alltoall, 2_048, &Protocol::paper()).unwrap();
    assert_eq!(a, b, "same protocol + seed => identical measurement");
}

#[test]
fn max_reduce_dominates_min_and_mean() {
    let comm = Machine::sp2().communicator(32).unwrap();
    let m = measure(&comm, OpClass::Gather, 4_096, &Protocol::paper()).unwrap();
    assert!(m.min_time_us <= m.mean_time_us + 1e-9);
    assert!(m.mean_time_us <= m.time_us + 1e-9);
    assert_eq!(m.per_repetition_us.len(), 5);
}

#[test]
fn skew_perturbs_but_does_not_dominate() {
    // The barrier fence means start skew (~10 us) amortized over k = 20
    // iterations shifts the answer by far less than the skew itself.
    let comm = Machine::sp2().communicator(16).unwrap();
    let no_skew = {
        let mut p = Protocol::paper();
        p.max_skew = SimDuration::ZERO;
        measure(&comm, OpClass::Bcast, 1_024, &p).unwrap()
    };
    let skewed = {
        let mut p = Protocol::paper();
        p.max_skew = SimDuration::from_micros(50);
        measure(&comm, OpClass::Bcast, 1_024, &p).unwrap()
    };
    let diff = (skewed.time_us - no_skew.time_us).abs();
    assert!(
        diff < 25.0,
        "50 us skew moved a 20-iteration mean by {diff:.1} us"
    );
}

#[test]
fn warmup_iterations_are_discarded() {
    // With zero warm-up the first (cold, pipeline-filling) iteration is
    // included; the measured mean over k=1 from cold start is at least
    // the steady-state per-iteration time.
    let comm = Machine::t3d().communicator(16).unwrap();
    let mut cold = Protocol::ideal();
    cold.iterations = 1;
    let mut warm = Protocol::ideal();
    warm.warmup = 2;
    warm.iterations = 10;
    let t_cold = measure(&comm, OpClass::Alltoall, 8_192, &cold)
        .unwrap()
        .time_us;
    let t_warm = measure(&comm, OpClass::Alltoall, 8_192, &warm)
        .unwrap()
        .time_us;
    assert!(
        t_warm <= t_cold * 1.05,
        "steady-state {t_warm:.0} should not exceed cold-start {t_cold:.0}"
    );
}

#[test]
fn sweep_feeds_fitting_pipeline() {
    let data = SweepBuilder::new()
        .machines([Machine::t3d()])
        .ops([OpClass::Scatter])
        .message_sizes([4, 1_024, 16_384, 65_536])
        .node_counts([2, 4, 8, 16, 32])
        .protocol(Protocol::quick())
        .run()
        .unwrap();
    assert_eq!(data.len(), 4 * 5);
    let f = fit_surface(&data, "Cray T3D", OpClass::Scatter).unwrap();
    // Scatter startup is O(p) with a positive slope.
    assert_eq!(f.startup.growth, perfmodel::Growth::Linear);
    assert!(f.startup.coeff > 0.0);
    // The fitted surface predicts the measured grid within 2x everywhere
    // (tight at large p, looser at p=2 where fits degenerate).
    for point in data.iter() {
        let pred = f.predict_us(point.bytes, point.nodes);
        let ratio = pred.max(1.0) / point.time_us.max(1.0);
        assert!(
            (0.4..2.5).contains(&ratio),
            "({}, {}): pred {pred:.0} vs meas {:.0}",
            point.bytes,
            point.nodes,
            point.time_us
        );
    }
}

#[test]
fn breakdown_startup_fraction_falls_with_message_length() {
    // Fig. 4 narrative: as m grows, transmission dominates.
    let data = SweepBuilder::new()
        .machines([Machine::sp2()])
        .ops([OpClass::Alltoall])
        .message_sizes([4, 1_024, 65_536])
        .node_counts([2, 4, 8, 16, 32])
        .protocol(Protocol::quick())
        .run()
        .unwrap();
    let short = breakdown(&data, "IBM SP2", OpClass::Alltoall, 4, 32).unwrap();
    let mid = breakdown(&data, "IBM SP2", OpClass::Alltoall, 1_024, 32).unwrap();
    let long = breakdown(&data, "IBM SP2", OpClass::Alltoall, 65_536, 32).unwrap();
    assert!(short.startup_fraction() > 0.9, "{short:?}");
    assert!(mid.startup_fraction() < short.startup_fraction());
    assert!(long.startup_fraction() < 0.1, "{long:?}");
}

#[test]
fn dataset_queries_cover_sweep_grid() {
    let data = SweepBuilder::new()
        .machines([Machine::sp2(), Machine::t3d()])
        .ops([OpClass::Bcast, OpClass::Barrier])
        .message_sizes([16, 1_024])
        .node_counts([2, 8])
        .protocol(Protocol::quick())
        .run()
        .unwrap();
    assert_eq!(data.machines(), vec!["IBM SP2", "Cray T3D"]);
    assert_eq!(data.ops(), vec![OpClass::Bcast, OpClass::Barrier]);
    let series = data.series_vs_nodes("IBM SP2", OpClass::Bcast, 16);
    assert_eq!(series.len(), 2);
    assert!(series[0].1 < series[1].1, "bcast grows with p");
    // Barrier rows exist once per (machine, p) with bytes = 0.
    assert!(data.at("Cray T3D", OpClass::Barrier, 0, 8).is_some());
}

#[test]
fn timer_resolution_floors_small_measurements() {
    let comm = Machine::t3d().communicator(8).unwrap();
    let mut p = Protocol::ideal();
    p.timer_resolution = SimDuration::from_micros(100);
    let m = measure(&comm, OpClass::Barrier, 0, &p).unwrap();
    // A ~3 us barrier against a 100 us timer quantum reads as zero —
    // the "resolution of the timer" accuracy factor from §9.
    assert_eq!(m.time_us, 0.0);
}

#[test]
fn csv_export_round_trips_counts() {
    let data: Dataset = SweepBuilder::new()
        .machines([Machine::paragon()])
        .ops([OpClass::Scan])
        .message_sizes([64])
        .node_counts([2, 4])
        .protocol(Protocol::quick())
        .run()
        .unwrap();
    let csv = report::csv::dataset_csv(&data);
    assert_eq!(csv.lines().count(), 1 + data.len());
    assert!(csv.contains("Intel Paragon,Scan,64,"));
}
