//! The commutability census: machine-readable per-point results naming
//! the event-class pairs whose same-instant order matters.
//!
//! Every field is a pure function of the simulation inputs, so the
//! serialized census is byte-identical across reruns and thread counts
//! — the same determinism contract the run-record and critpath
//! artifacts honor.

use obs::{Json, MetricsRegistry};

/// Per unordered event-class pair (e.g. `message_ready+rank_resume`)
/// exploration outcomes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassCensus {
    /// The unordered class-pair key.
    pub classes: String,
    /// Pairs of this class selected for exploration.
    pub candidates: u64,
    /// Of those, statically independent.
    pub independent: u64,
    /// Inversions that engaged (swap applied).
    pub explored: u64,
    /// Canonically invisible inversions.
    pub commuting: u64,
    /// Canonically visible inversions (order-sensitive).
    pub sensitive: u64,
    /// Sensitive pairs the static layer called independent.
    pub unexplained: u64,
    /// Requested swaps that never engaged (pair not co-enabled at pop).
    pub missed: u64,
}

impl ClassCensus {
    fn to_json(&self) -> Json {
        Json::object([
            ("classes", Json::str(self.classes.clone())),
            ("candidates", Json::UInt(self.candidates)),
            ("independent", Json::UInt(self.independent)),
            ("explored", Json::UInt(self.explored)),
            ("commuting", Json::UInt(self.commuting)),
            ("sensitive", Json::UInt(self.sensitive)),
            ("unexplained", Json::UInt(self.unexplained)),
            ("missed", Json::UInt(self.missed)),
        ])
    }
}

/// One point's commutability census.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointCensus {
    /// Machine display name (e.g. `Cray T3D`).
    pub machine: String,
    /// Collective key (e.g. `alltoall`).
    pub op: String,
    /// Communicator size.
    pub p: u64,
    /// Payload bytes.
    pub m: u64,
    /// Baseline fired events.
    pub events: u64,
    /// Adjacent same-instant pairs in the baseline log.
    pub tie_pairs: u64,
    /// Pairs pruned by provenance (parent → child, not co-enabled).
    pub pruned_causal: u64,
    /// Pairs pruned by the schedule happens-before graph.
    pub pruned_hb: u64,
    /// Co-enabled candidates surviving pruning.
    pub candidates: u64,
    /// Candidates with disjoint widened footprints.
    pub independent: u64,
    /// Candidates with conflicting footprints.
    pub dependent: u64,
    /// Inversions that engaged.
    pub explored: u64,
    /// Canonically invisible inversions.
    pub commuting: u64,
    /// Order-sensitive inversions.
    pub sensitive: u64,
    /// Sensitive + statically independent — the deny-gate condition.
    pub unexplained: u64,
    /// Requested swaps that never engaged.
    pub missed: u64,
    /// Per-class-pair breakdown, in first-seen order.
    pub classes: Vec<ClassCensus>,
    /// Rendered reports for the first few sensitive pairs.
    pub sensitive_examples: Vec<String>,
}

impl PointCensus {
    /// The per-class bucket for `key`, created on first use.
    pub fn class_mut(&mut self, key: &str) -> &mut ClassCensus {
        if let Some(i) = self.classes.iter().position(|c| c.classes == key) {
            return &mut self.classes[i];
        }
        self.classes.push(ClassCensus {
            classes: key.to_string(),
            ..ClassCensus::default()
        });
        self.classes.last_mut().expect("just pushed")
    }

    /// True when every explored order-sensitive pair was predicted by
    /// the static relation — the gate condition.
    pub fn clean(&self) -> bool {
        self.unexplained == 0
    }

    /// Serializes the census (deterministic key order).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("machine", Json::str(self.machine.clone())),
            ("op", Json::str(self.op.clone())),
            ("p", Json::UInt(self.p)),
            ("m_bytes", Json::UInt(self.m)),
            ("events", Json::UInt(self.events)),
            ("tie_pairs", Json::UInt(self.tie_pairs)),
            ("pruned_causal", Json::UInt(self.pruned_causal)),
            ("pruned_hb", Json::UInt(self.pruned_hb)),
            ("candidates", Json::UInt(self.candidates)),
            ("independent", Json::UInt(self.independent)),
            ("dependent", Json::UInt(self.dependent)),
            ("explored", Json::UInt(self.explored)),
            ("commuting", Json::UInt(self.commuting)),
            ("sensitive", Json::UInt(self.sensitive)),
            ("unexplained", Json::UInt(self.unexplained)),
            ("missed", Json::UInt(self.missed)),
            (
                "classes",
                Json::Array(self.classes.iter().map(ClassCensus::to_json).collect()),
            ),
            (
                "sensitive_examples",
                Json::Array(
                    self.sensitive_examples
                        .iter()
                        .map(|s| Json::str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Metric-name-safe point id, e.g. `cray_t3d.alltoall`.
    pub fn metric_id(&self) -> String {
        format!(
            "{}.{}",
            self.machine.to_ascii_lowercase().replace(' ', "_"),
            self.op
        )
    }
}

/// The whole suite's census.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SuiteCensus {
    /// One census per point, in canonical suite order.
    pub points: Vec<PointCensus>,
}

impl SuiteCensus {
    /// Total explored inversions.
    pub fn explored(&self) -> u64 {
        self.points.iter().map(|p| p.explored).sum()
    }

    /// Total order-sensitive pairs.
    pub fn sensitive(&self) -> u64 {
        self.points.iter().map(|p| p.sensitive).sum()
    }

    /// Total unexplained (gate-tripping) pairs.
    pub fn unexplained(&self) -> u64 {
        self.points.iter().map(|p| p.unexplained).sum()
    }

    /// True when every point is clean.
    pub fn clean(&self) -> bool {
        self.points.iter().all(PointCensus::clean)
    }

    /// Serializes the suite census as a JSON array document.
    pub fn to_json_string(&self) -> String {
        Json::Array(self.points.iter().map(PointCensus::to_json).collect()).to_string_pretty()
    }

    /// Exports the census as gauges: suite totals under
    /// `ordercheck.sensitive_pairs` / `ordercheck.explored`, plus one
    /// per-point family mirroring the critpath census exposition.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.gauge("ordercheck.sensitive_pairs", self.sensitive() as f64);
        reg.gauge("ordercheck.explored", self.explored() as f64);
        reg.gauge("ordercheck.unexplained", self.unexplained() as f64);
        for p in &self.points {
            let base = format!("ordercheck.{}", p.metric_id());
            reg.gauge(format!("{base}.tie_pairs"), p.tie_pairs as f64);
            reg.gauge(format!("{base}.explored"), p.explored as f64);
            reg.gauge(format!("{base}.sensitive"), p.sensitive as f64);
            reg.gauge(format!("{base}.unexplained"), p.unexplained as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointCensus {
        let mut c = PointCensus {
            machine: "Cray T3D".into(),
            op: "alltoall".into(),
            p: 8,
            m: 512,
            tie_pairs: 5,
            explored: 3,
            sensitive: 1,
            ..PointCensus::default()
        };
        c.class_mut("message_ready+rank_resume").sensitive = 1;
        c
    }

    #[test]
    fn class_buckets_are_created_once() {
        let mut c = sample();
        c.class_mut("message_ready+rank_resume").explored += 1;
        c.class_mut("a+b").explored += 1;
        assert_eq!(c.classes.len(), 2);
        assert_eq!(c.classes[0].explored, 1);
    }

    #[test]
    fn json_round_trip_is_deterministic_and_parseable() {
        let suite = SuiteCensus {
            points: vec![sample()],
        };
        let text = suite.to_json_string();
        assert_eq!(text, suite.to_json_string());
        let parsed = obs::json::validate(&text).expect("valid JSON");
        let arr = parsed.as_array().expect("array document");
        assert_eq!(
            arr[0].get("machine").and_then(Json::as_str),
            Some("Cray T3D")
        );
        assert_eq!(arr[0].get("tie_pairs").and_then(Json::as_f64), Some(5.0));
    }

    #[test]
    fn metrics_export_has_totals_and_per_point_series() {
        let suite = SuiteCensus {
            points: vec![sample()],
        };
        let mut reg = MetricsRegistry::new();
        suite.export_metrics(&mut reg);
        assert_eq!(
            reg.get("ordercheck.sensitive_pairs")
                .and_then(|m| m.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            reg.get("ordercheck.explored").and_then(|m| m.as_f64()),
            Some(3.0)
        );
        assert_eq!(
            reg.get("ordercheck.cray_t3d.alltoall.tie_pairs")
                .and_then(|m| m.as_f64()),
            Some(5.0)
        );
    }

    #[test]
    fn clean_tracks_unexplained_only() {
        let mut c = sample();
        assert!(c.clean());
        c.unexplained = 1;
        assert!(!c.clean());
        let suite = SuiteCensus { points: vec![c] };
        assert!(!suite.clean());
        assert_eq!(suite.unexplained(), 1);
    }
}
