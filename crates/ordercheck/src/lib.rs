//! Same-instant commutativity analysis for collective runs.
//!
//! The simulator breaks event-queue ties (same firing instant) by
//! insertion order. Earlier work showed that inverting *all* ties
//! (`TieBreakPolicy::InvertAll`) produces divergent runs on contended
//! points — so tie order is semantically load-bearing somewhere. This
//! crate answers *where*, and certifies everywhere else:
//!
//! 1. **Static layer** ([`model`]) — an independence relation over
//!    [`desim::TypedEvent`] variants derived from read/write footprints
//!    ([`desim::Footprint`]): the rank state an event resumes, the
//!    link/FIFO occupancy it may acquire, and the channel it delivers
//!    on. Footprints are widened by whole-program closure flags from
//!    the [`collectives::Schedule`] (a rank that ever sends couples to
//!    the network; a rank that ever barriers couples to the barrier
//!    line), so the relation is sound for the event's entire causal
//!    future, not just its immediate handler. Two same-instant events
//!    commute statically iff their widened footprints are disjoint.
//!
//! 2. **Dynamic layer** ([`explore`]) — a DPOR-style explorer over a
//!    recorded [`desim::EventLog`]: enumerate same-instant adjacent
//!    pairs, prune pairs already ordered by provenance (parent → child
//!    is not co-enabled) or by the schedule's happens-before graph
//!    ([`schedcheck::HbGraph`]), then re-execute the run with a
//!    targeted [`mpisim::TieBreakPolicy::InvertPair`] swap and compare
//!    the two runs under the canonical-order oracle
//!    ([`obs::RunRecord::canonicalized`]). A pair whose inversion
//!    changes the canonicalized record is **order-sensitive**; if the
//!    static layer called it independent, it is **unexplained** — the
//!    deny-gate failure condition.
//!
//! The output is a machine-readable commutability census per suite
//! point ([`census`]), naming the event-class pairs whose order
//! matters. [`demo`] seeds the known failure mode (invert *all* ties)
//! and reports the minimal divergent pair with provenance context —
//! the end-to-end proof that the analysis catches real reorder bugs.

pub mod census;
pub mod demo;
pub mod explore;
pub mod model;

pub use census::{ClassCensus, PointCensus, SuiteCensus};
pub use demo::{demo_broken, DemoReport, MinimalPair, Transposition};
pub use explore::{
    analyze_point, enumerate, suite_census, Candidate, Enumeration, ExploreOptions, PointSpec,
};
pub use model::StaticModel;
