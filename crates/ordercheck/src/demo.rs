//! Seeded-failure demonstration: invert *every* same-instant tie
//! ([`TieBreakPolicy::InvertAll`] — the eager-delivery failure mode)
//! and show that the order analysis catches it and explains exactly
//! how deep the damage goes.
//!
//! Two layers of verdict:
//!
//! * **Record layer** (`caught`) — the raw [`obs::RunRecord`]s diverge,
//!   so run-record certification (what `tracediff` vouches for) is
//!   broken. The report names the minimal divergent pair: the first
//!   same-instant payload permutation between the two streams, or —
//!   when the perturbation only renumbered sequence numbers — the first
//!   raw divergence with its provenance context window.
//! * **Canonical layer** (`semantic`) — the
//!   [`canonicalized`](obs::RunRecord::canonicalized) records diverge,
//!   meaning the reorder changed the *execution* (timing, transfers,
//!   spans), not just the bookkeeping. On the shipped vendor schedules
//!   invert-all is canonically invisible: the delivery/release posting
//!   order it flips never carries semantic weight — which is precisely
//!   what the census certifies pair by pair.

use crate::explore::{run_once, ExploreOptions, PointSpec};
use mpisim::exec::TieBreakPolicy;
use mpisim::Rank;
use obs::record::{describe_event, event_ranks, RecEvent};

/// A same-instant block whose payload order was permuted.
#[derive(Debug, Clone)]
pub struct Transposition {
    /// Firing index of the first reordered event (baseline stream).
    pub index: usize,
    /// The shared firing instant.
    pub at_ns: u64,
    /// Baseline's event at that index.
    pub first: RecEvent,
    /// Inverted run's event at that index.
    pub second: RecEvent,
}

/// The minimal divergent pair, rendered for the report.
#[derive(Debug, Clone)]
pub struct MinimalPair {
    /// Where the runs first disagree (firing index).
    pub index: usize,
    /// Baseline side.
    pub expected: String,
    /// Inverted side.
    pub got: String,
    /// Provenance-context ancestor events, newest first (rendered).
    pub context: Vec<String>,
    /// Ranks implicated by the pair and its context.
    pub ranks: Vec<u32>,
}

/// Outcome of the seeded invert-all demonstration.
#[derive(Debug, Clone)]
pub struct DemoReport {
    /// True iff the raw records diverge — certification is broken and
    /// the seeded reorder is detected.
    pub caught: bool,
    /// True iff the canonicalized records also diverge — the reorder
    /// changed the execution, not just sequence bookkeeping.
    pub semantic: bool,
    /// Raw structural diff (seq-sensitive) of the two records.
    pub raw: obs::DiffReport,
    /// Same-instant payload permutations found before the streams
    /// drift apart.
    pub transpositions: Vec<Transposition>,
    /// The minimal divergent pair; present whenever `caught`.
    pub minimal: Option<MinimalPair>,
}

fn payload_key(e: &RecEvent) -> (u64, &str, u64, u64) {
    (e.at_ns, e.kind.as_str(), e.a, e.b)
}

/// Scans the two event streams for same-instant blocks whose payload
/// *order* differs while their payload *multiset* matches — the
/// signature of a pure tie reorder. Stops at the first block where the
/// multisets differ (the reorder's consequences have arrived and
/// lockstep alignment is gone).
fn find_transpositions(a: &[RecEvent], b: &[RecEvent]) -> Vec<Transposition> {
    let mut out = Vec::new();
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n {
        let at = a[i].at_ns;
        let mut j = i;
        while j < n && a[j].at_ns == at && b[j].at_ns == at {
            j += 1;
        }
        if j == i {
            break; // instants disagree: drifted
        }
        let (block_a, block_b) = (&a[i..j], &b[i..j]);
        if block_a
            .iter()
            .zip(block_b)
            .any(|(x, y)| payload_key(x) != payload_key(y))
        {
            let mut sa: Vec<_> = block_a.iter().map(payload_key).collect();
            let mut sb: Vec<_> = block_b.iter().map(payload_key).collect();
            sa.sort_unstable();
            sb.sort_unstable();
            if sa != sb {
                break; // not a permutation: drifted
            }
            if let Some(k) =
                (0..block_a.len()).find(|&k| payload_key(&block_a[k]) != payload_key(&block_b[k]))
            {
                out.push(Transposition {
                    index: i + k,
                    at_ns: at,
                    first: block_a[k].clone(),
                    second: block_b[k].clone(),
                });
            }
        }
        i = j;
    }
    out
}

/// Runs the point twice — insertion order vs [`TieBreakPolicy::InvertAll`]
/// — and reports whether the analysis catches the seeded reorder.
pub fn demo_broken(spec: &PointSpec, opts: &ExploreOptions) -> DemoReport {
    let comm = spec
        .machine
        .communicator(spec.p)
        .expect("communicator size");
    let schedule = comm
        .schedule(spec.op, Rank(0), spec.bytes())
        .expect("schedule build");
    let (base, _, _) = run_once(spec, &schedule, TieBreakPolicy::InsertionOrder, opts);
    let (broken, _, _) = run_once(spec, &schedule, TieBreakPolicy::InvertAll, opts);

    let raw = obs::diff::diff(&base, &broken);
    let caught = !raw.verdict.identical();
    let semantic = base.canonicalized().to_json_string() != broken.canonicalized().to_json_string();
    let transpositions = find_transpositions(&base.events, &broken.events);

    let minimal = if let Some(t) = transpositions.first() {
        Some(MinimalPair {
            index: t.index,
            expected: describe_event(&t.first),
            got: describe_event(&t.second),
            context: Vec::new(),
            ranks: {
                let mut r = event_ranks(&t.first);
                for x in event_ranks(&t.second) {
                    if !r.contains(&x) {
                        r.push(x);
                    }
                }
                r.sort_unstable();
                r
            },
        })
    } else {
        raw.first.as_ref().map(|d| MinimalPair {
            index: d.index,
            expected: d.expected.clone(),
            got: d.got.clone(),
            context: d.context.iter().map(describe_event).collect(),
            ranks: d.ranks.clone(),
        })
    };

    DemoReport {
        caught,
        semantic,
        raw,
        transpositions,
        minimal,
    }
}

impl DemoReport {
    /// Human-readable rendering for the driver binary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if !self.caught {
            s.push_str(
                "invert-all left the record byte-identical: no same-instant pairs to reorder\n",
            );
            return s;
        }
        s.push_str("CAUGHT: inverting same-instant ties broke run-record certification\n");
        s.push_str(&format!(
            "  raw verdict: {} ({} reordered same-instant blocks in the clean prefix)\n",
            self.raw.verdict.label(),
            self.transpositions.len()
        ));
        if let Some(m) = &self.minimal {
            s.push_str(&format!(
                "  minimal divergent pair at firing index {}:\n",
                m.index
            ));
            s.push_str(&format!("    expected: {}\n", m.expected));
            s.push_str(&format!("    got:      {}\n", m.got));
            if !m.ranks.is_empty() {
                let ranks: Vec<String> = m.ranks.iter().map(u32::to_string).collect();
                s.push_str(&format!("    ranks: {}\n", ranks.join(", ")));
            }
            for c in m.context.iter().take(6) {
                s.push_str(&format!("    context: {c}\n"));
            }
        }
        if self.semantic {
            s.push_str(
                "  canonical oracle: EXECUTION CHANGED — the reordered ties are order-sensitive\n",
            );
        } else {
            s.push_str(
                "  canonical oracle: execution unchanged — the reorder is bookkeeping-only \
                 (every inverted tie commutes)\n",
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{Machine, OpClass};

    #[test]
    fn seeded_invert_all_is_caught_with_a_minimal_pair() {
        // The point the record-layer divergence test established as
        // tie-order visible.
        let spec = PointSpec {
            machine: Machine::t3d(),
            op: OpClass::Alltoall,
            p: 16,
            m: 2048,
        };
        let report = demo_broken(&spec, &ExploreOptions::default());
        assert!(report.caught, "known-divergent point must be caught");
        let m = report.minimal.as_ref().expect("minimal pair reported");
        assert_ne!(m.expected, m.got);
        let rendered = report.render();
        assert!(rendered.contains("CAUGHT"));
        // On the vendor schedules the delivery/release reorder is
        // certification-visible but canonically harmless.
        assert!(!report.semantic);
        assert!(rendered.contains("bookkeeping-only"));
    }

    #[test]
    fn block_scan_finds_same_instant_permutations() {
        let ev = |at_ns: u64, a: u64| RecEvent {
            seq: 0,
            at_ns,
            kind: "rank_resume".into(),
            a,
            b: 0,
            parent: None,
        };
        let base = vec![ev(1, 0), ev(5, 1), ev(5, 2), ev(5, 3), ev(9, 4)];
        // Rotation inside the t=5 block: a permutation, not adjacent.
        let rotated = vec![ev(1, 0), ev(5, 3), ev(5, 1), ev(5, 2), ev(9, 4)];
        let t = find_transpositions(&base, &rotated);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].index, t[0].at_ns), (1, 5));
        assert_eq!((t[0].first.a, t[0].second.a), (1, 3));
        // A block whose multiset differs stops the scan: that is real
        // drift, not a reorder.
        let drifted = vec![ev(1, 0), ev(5, 1), ev(5, 7), ev(5, 3), ev(9, 4)];
        assert!(find_transpositions(&base, &drifted).is_empty());
    }
}
