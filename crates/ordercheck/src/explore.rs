//! DPOR-style exploration: enumerate same-instant pairs, prune ordered
//! ones, re-execute with a targeted inversion, and judge commutation
//! with the canonical-order oracle.
//!
//! The explorer is bounded, not exhaustive: candidates are grouped by
//! unordered event-class pair (e.g. `message_ready+rank_resume`) and a
//! capped, evenly-strided sample of each group is explored — both
//! statically-independent pairs (validating the admission claim: their
//! inversion must be canonically invisible) and dependent pairs
//! (measuring how many predicted conflicts are real). The oracle is
//! [`RunRecord::canonicalized`]: a swap that only permutes sequence
//! numbers and same-instant log order is *commuting*; anything that
//! survives canonicalization is *order-sensitive*.

use crate::census::{PointCensus, SuiteCensus};
use crate::model::StaticModel;
use desim::eventlog::LoggedEvent;
use desim::{EventLog, Provenance};
use mpisim::exec::{execute_observed, ExecConfig, Observed, TieBreakPolicy};
use mpisim::{ExecOutcome, Machine, OpClass, Rank};
use obs::record::describe_event;
use obs::RunRecord;

/// One (machine, op, p, m) analysis point.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// The modeled machine.
    pub machine: Machine,
    /// The collective.
    pub op: OpClass,
    /// Communicator size.
    pub p: usize,
    /// Message size in bytes (forced to 0 for barrier).
    pub m: u32,
}

impl PointSpec {
    /// Payload bytes actually run (barrier carries none).
    pub fn bytes(&self) -> u32 {
        if self.op == OpClass::Barrier {
            0
        } else {
            self.m
        }
    }
}

/// Exploration bounds. Every knob is a determinism-preserving cap: the
/// selection is a pure function of the baseline log.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Explored representatives per (class-pair, independence) group.
    pub per_class: usize,
    /// Total explored inversions per point (round-robin across groups).
    pub max_explore: usize,
    /// Sensitive-pair example reports kept per point.
    pub examples: usize,
    /// Message-trace cap forwarded to the executor.
    pub trace_limit: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            per_class: 2,
            max_explore: 12,
            examples: 3,
            trace_limit: None,
        }
    }
}

/// A co-enabled same-instant pair eligible for inversion.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Firing index of the first event in the baseline log.
    pub pos: usize,
    /// The shared firing instant.
    pub at_ns: u64,
    /// First event (fires first under insertion order).
    pub first: LoggedEvent,
    /// Second event.
    pub second: LoggedEvent,
    /// Statically independent (disjoint widened footprints)?
    pub independent: bool,
}

impl Candidate {
    /// Unordered class-pair key, e.g. `message_ready+rank_resume`.
    pub fn class_pair(&self) -> String {
        let (a, b) = (self.first.kind.key(), self.second.kind.key());
        if a <= b {
            format!("{a}+{b}")
        } else {
            format!("{b}+{a}")
        }
    }
}

/// Enumeration result with pruning counters.
#[derive(Debug, Clone, Default)]
pub struct Enumeration {
    /// Surviving co-enabled candidates, in firing order.
    pub candidates: Vec<Candidate>,
    /// Events in the baseline log.
    pub events: u64,
    /// Adjacent same-instant pairs before pruning.
    pub tie_pairs: u64,
    /// Pairs pruned because provenance orders them (parent → child).
    pub pruned_causal: u64,
    /// Pairs pruned because the schedule's happens-before orders them.
    pub pruned_hb: u64,
}

/// Walks the baseline log's adjacent same-instant pairs and prunes the
/// ones already ordered by causality: a provenance parent → child edge
/// means the pair was never co-enabled (the swap could not engage), and
/// a happens-before edge between two `ScheduleStep`s means the order is
/// the program's, not the tie-breaker's.
pub fn enumerate(model: &StaticModel, log: &EventLog, prov: Option<&Provenance>) -> Enumeration {
    let mut e = Enumeration {
        events: log.len() as u64,
        ..Enumeration::default()
    };
    for pos in 0..log.len().saturating_sub(1) {
        let (first, second) = (log.get(pos), log.get(pos + 1));
        if first.at != second.at {
            continue;
        }
        e.tie_pairs += 1;
        if prov.and_then(|p| p.parent_of(second.seq)) == Some(first.seq) {
            e.pruned_causal += 1;
            continue;
        }
        if model.hb_ordered(&first, &second) {
            e.pruned_hb += 1;
            continue;
        }
        e.candidates.push(Candidate {
            pos,
            at_ns: first.at.as_nanos(),
            first,
            second,
            independent: model.independent(&first, &second),
        });
    }
    e
}

/// Evenly-strided sample of up to `k` items from `items`.
fn strided<T: Copy>(items: &[T], k: usize) -> Vec<T> {
    if items.len() <= k {
        return items.to_vec();
    }
    (0..k).map(|i| items[i * items.len() / k]).collect()
}

/// Selects the explored subset: up to `per_class` per (class-pair,
/// independence) group, then round-robin across groups up to
/// `max_explore`. Pure function of the candidate list.
fn select(candidates: &[Candidate], opts: &ExploreOptions) -> Vec<Candidate> {
    let mut groups: Vec<(String, Vec<Candidate>)> = Vec::new();
    for c in candidates {
        let key = format!("{}/{}", c.class_pair(), c.independent);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(*c),
            None => groups.push((key, vec![*c])),
        }
    }
    let sampled: Vec<Vec<Candidate>> = groups
        .iter()
        .map(|(_, v)| strided(v, opts.per_class))
        .collect();
    let mut picked = Vec::new();
    let mut round = 0;
    while picked.len() < opts.max_explore {
        let mut any = false;
        for group in &sampled {
            if let Some(&c) = group.get(round) {
                any = true;
                picked.push(c);
                if picked.len() >= opts.max_explore {
                    break;
                }
            }
        }
        if !any {
            break;
        }
        round += 1;
    }
    picked
}

fn exec_config(spec: &PointSpec, tie_break: TieBreakPolicy, opts: &ExploreOptions) -> ExecConfig {
    ExecConfig {
        wire: spec.machine.wire_config(),
        placement: spec.machine.placement(),
        record_trace: true,
        trace_limit: opts.trace_limit,
        provenance: true,
        event_log: true,
        tie_break,
        ..ExecConfig::default()
    }
}

/// Runs one fully instrumented execution of the point. The critical
/// path is deliberately skipped: the oracle compares structure, and
/// each explored pair costs one rerun.
pub(crate) fn run_once(
    spec: &PointSpec,
    schedule: &collectives::Schedule,
    tie_break: TieBreakPolicy,
    opts: &ExploreOptions,
) -> (RunRecord, Observed, ExecOutcome) {
    let cfg = exec_config(spec, tie_break, opts);
    let (out, observed) = execute_observed(spec.machine.spec(), &[schedule], &cfg)
        .expect("ordercheck point execution");
    let rec = mpisim::record::run_record(spec.machine.name(), &out, &observed, None, None);
    (rec, observed, out)
}

fn render_sensitive(c: &Candidate, report: &obs::diff::DiffReport) -> String {
    let mut s = format!(
        "pair @{}ns: [{}] <-> [{}] ({})",
        c.at_ns,
        describe_logged(&c.first),
        describe_logged(&c.second),
        if c.independent {
            "UNEXPLAINED: statically independent"
        } else {
            "explained: footprints conflict"
        },
    );
    if let Some(first) = &report.first {
        s.push_str(&format!(
            "\n  first raw divergence in {}: expected {} got {}",
            first.component, first.expected, first.got
        ));
        for ctx in first.context.iter().take(4) {
            s.push_str(&format!("\n    context: {}", describe_event(ctx)));
        }
    }
    s
}

fn describe_logged(ev: &LoggedEvent) -> String {
    format!("seq {} {} a={} b={}", ev.seq, ev.kind.key(), ev.a, ev.b)
}

/// Analyzes one point end to end: baseline run, enumeration, bounded
/// exploration, census assembly.
pub fn analyze_point(spec: &PointSpec, opts: &ExploreOptions) -> PointCensus {
    let comm = spec
        .machine
        .communicator(spec.p)
        .expect("communicator size");
    let schedule = comm
        .schedule(spec.op, Rank(0), spec.bytes())
        .expect("schedule build");
    let model = StaticModel::build(&schedule);
    let (base_rec, base_obs, _) = run_once(spec, &schedule, TieBreakPolicy::InsertionOrder, opts);
    let base_canon = base_rec.canonicalized();
    let base_canon_json = base_canon.to_json_string();

    let log = base_obs.event_log.as_ref().expect("event log enabled");
    let e = enumerate(&model, log, base_obs.provenance.as_ref());

    let mut census = PointCensus {
        machine: spec.machine.name().to_string(),
        op: spec.op.key().to_string(),
        p: spec.p as u64,
        m: u64::from(spec.bytes()),
        events: e.events,
        tie_pairs: e.tie_pairs,
        pruned_causal: e.pruned_causal,
        pruned_hb: e.pruned_hb,
        candidates: e.candidates.len() as u64,
        independent: e.candidates.iter().filter(|c| c.independent).count() as u64,
        ..PointCensus::default()
    };
    census.dependent = census.candidates - census.independent;

    for c in select(&e.candidates, opts) {
        let (rec, observed, _) = run_once(
            spec,
            &schedule,
            TieBreakPolicy::InvertPair {
                at_ns: c.at_ns,
                first_seq: c.first.seq,
                second_seq: c.second.seq,
            },
            opts,
        );
        let engaged = observed.tie_swap_applied == Some(true);
        let commutes = engaged && rec.canonicalized().to_json_string() == base_canon_json;
        let sensitive = engaged && !commutes;
        if sensitive && census.sensitive_examples.len() < opts.examples {
            // Diff the raw records: unlike the canonicalized pair, they
            // carry seq/parent, so the divergence arrives with its
            // provenance context window.
            let report = obs::diff::diff(&base_rec, &rec);
            census
                .sensitive_examples
                .push(render_sensitive(&c, &report));
        }
        census.missed += u64::from(!engaged);
        census.explored += u64::from(engaged);
        census.commuting += u64::from(commutes);
        census.sensitive += u64::from(sensitive);
        census.unexplained += u64::from(sensitive && c.independent);
        let class = census.class_mut(&c.class_pair());
        class.candidates += 1;
        class.independent += u64::from(c.independent);
        class.missed += u64::from(!engaged);
        class.explored += u64::from(engaged);
        class.commuting += u64::from(commutes);
        class.sensitive += u64::from(sensitive);
        class.unexplained += u64::from(sensitive && c.independent);
    }
    census
}

/// Analyzes a list of points with `threads` workers and merges the
/// censuses in canonical (input) order — byte-identical output for any
/// thread count.
pub fn suite_census(
    points: &[PointSpec],
    threads: usize,
    opts: &ExploreOptions,
) -> (SuiteCensus, harness::ParStats) {
    let (censuses, stats) = harness::map_indexed(
        points.len(),
        threads,
        |i| analyze_point(&points[i], opts),
        &|_, _| {},
    );
    (SuiteCensus { points: censuses }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(machine: Machine, op: OpClass, p: usize, m: u32) -> PointSpec {
        PointSpec { machine, op, p, m }
    }

    fn small_opts() -> ExploreOptions {
        ExploreOptions {
            per_class: 1,
            max_explore: 6,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn baseline_point_has_no_unexplained_pairs() {
        let census = analyze_point(
            &spec(Machine::t3d(), OpClass::Alltoall, 8, 512),
            &small_opts(),
        );
        assert!(census.tie_pairs > 0, "contended point must have ties");
        assert!(census.explored > 0, "explorer must engage");
        assert_eq!(census.unexplained, 0, "{:?}", census.sensitive_examples);
        assert_eq!(
            census.explored + census.missed,
            census.commuting + census.sensitive + census.missed
        );
    }

    #[test]
    fn independent_leaf_pairs_commute_under_inversion() {
        let census = analyze_point(
            &spec(Machine::sp2(), OpClass::Bcast, 8, 1024),
            &ExploreOptions {
                per_class: 4,
                max_explore: 16,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(census.unexplained, 0, "{:?}", census.sensitive_examples);
    }

    #[test]
    fn selection_is_bounded_and_deterministic() {
        let s = spec(Machine::paragon(), OpClass::Alltoall, 8, 512);
        let a = analyze_point(&s, &small_opts());
        let b = analyze_point(&s, &small_opts());
        assert!(a.explored + a.missed <= 6);
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact()
        );
    }

    #[test]
    fn strided_sampling_covers_ends() {
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(strided(&items, 3), vec![0, 3, 6]);
        assert_eq!(strided(&items, 20), items);
    }
}
