//! Static independence: schedule-widened footprints and happens-before
//! pruning.
//!
//! [`desim::TypedEvent::footprint`] describes what an event's *handler*
//! touches. That is not enough for commutation: dispatching a
//! `RankResume` advances the rank's whole tape segment at that instant,
//! and the tape may post sends (network state) or hit a hardware
//! barrier (global sync line). [`StaticModel`] therefore widens each
//! event's footprint with whole-program *closure flags* computed once
//! from the [`Schedule`]:
//!
//! * a rank whose program contains any `Send` couples to
//!   [`Resource::Network`] — resuming it earlier or later can change
//!   link/FIFO acquisition order;
//! * a rank whose program contains a `HwBarrier` couples to
//!   [`Resource::Barrier`] — its arrival order at the sync line is
//!   globally visible.
//!
//! A rank that only receives and computes keeps its narrow footprint:
//! its causal future is confined to its own state and the channels that
//! feed it, so same-instant swaps against disjoint ranks cannot
//! propagate. Two events are **independent** iff their widened
//! footprints are disjoint — the admission set for tie-order elision.

use collectives::{Rank, Schedule, Step};
use desim::eventlog::{EventKind, LoggedEvent};
use desim::{Footprint, Resource, TypedEvent};
use schedcheck::HbGraph;

/// Per-schedule static independence model.
#[derive(Debug)]
pub struct StaticModel {
    /// Rank's program posts at least one `Send` (network-coupled).
    net_coupled: Vec<bool>,
    /// Rank's program contains a `HwBarrier` (barrier-coupled).
    barrier_coupled: Vec<bool>,
    /// Program length per rank, for tape-position validation.
    steps: Vec<usize>,
    /// The schedule's happens-before graph (PR 5's schedcheck layer).
    hb: HbGraph,
}

impl StaticModel {
    /// Builds the model: one pass over the schedule for the closure
    /// flags, plus the happens-before graph.
    pub fn build(s: &Schedule) -> StaticModel {
        let p = s.ranks();
        let mut net_coupled = vec![false; p];
        let mut barrier_coupled = vec![false; p];
        let mut steps = vec![0usize; p];
        for (rank, prog) in s.iter() {
            steps[rank.0] = prog.len();
            for st in prog {
                match st {
                    Step::Send { .. } => net_coupled[rank.0] = true,
                    Step::HwBarrier => barrier_coupled[rank.0] = true,
                    Step::Recv { .. } | Step::Compute { .. } => {}
                }
            }
        }
        StaticModel {
            net_coupled,
            barrier_coupled,
            steps,
            hb: HbGraph::build(s),
        }
    }

    /// Whether `rank`'s causal future can touch the network.
    pub fn net_coupled(&self, rank: usize) -> bool {
        self.net_coupled.get(rank).copied().unwrap_or(true)
    }

    /// Whether `rank`'s causal future can touch the barrier line.
    pub fn barrier_coupled(&self, rank: usize) -> bool {
        self.barrier_coupled.get(rank).copied().unwrap_or(true)
    }

    /// The event's handler footprint widened by the closure flags of
    /// every rank whose tape the handler can advance.
    pub fn footprint(&self, ev: &LoggedEvent) -> Footprint {
        let Some(typed) = ev.typed() else {
            // Dynamic closures are opaque: global footprint.
            return Footprint::of(&[Resource::Global]);
        };
        let mut fp = typed.footprint();
        let advanced: &[u32] = match typed {
            TypedEvent::RankResume { rank } => &[rank],
            // Delivery can complete the destination's pending recv and
            // advance its tape.
            TypedEvent::MessageReady { dst, .. } => &[dst],
            // The deferred send touches the network by construction
            // (already in the base footprint) and releases the sender.
            TypedEvent::ScheduleStep { rank, .. } => &[rank],
            // A link grant resumes the granted rank's transfer.
            TypedEvent::LinkGrant { grantee, .. } => &[grantee],
            // A bulk completion drains the pending-send heap and can
            // wake the receiving rank of each drained transfer.
            TypedEvent::BulkComplete { rank, .. } => &[rank],
            TypedEvent::Timer { .. } | TypedEvent::Continuation { .. } => &[],
        };
        for &r in advanced {
            if self.net_coupled(r as usize) {
                fp = fp.with(Resource::Network);
            }
            if self.barrier_coupled(r as usize) {
                fp = fp.with(Resource::Barrier);
            }
        }
        fp
    }

    /// Static independence: disjoint widened footprints.
    pub fn independent(&self, x: &LoggedEvent, y: &LoggedEvent) -> bool {
        self.footprint(x).disjoint(&self.footprint(y))
    }

    /// Whether the happens-before graph orders two `ScheduleStep`
    /// events (either direction). Tape position `b` maps to program
    /// step `b - 1` (position 0 is the segment-entry marker); positions
    /// outside the single-segment program conservatively report
    /// unordered. Non-`ScheduleStep` events have no schedule node.
    pub fn hb_ordered(&self, x: &LoggedEvent, y: &LoggedEvent) -> bool {
        let Some((nx, ny)) = self.hb_node(x).zip(self.hb_node(y)) else {
            return false;
        };
        self.hb.reaches(nx, ny) || self.hb.reaches(ny, nx)
    }

    fn hb_node(&self, ev: &LoggedEvent) -> Option<usize> {
        if ev.kind != EventKind::ScheduleStep {
            return None;
        }
        let (rank, pos) = (ev.a as usize, ev.b as usize);
        let n = *self.steps.get(rank)?;
        if pos == 0 || pos > n {
            return None; // entry marker / segment-end: no program step
        }
        Some(self.hb.event(Rank(rank), pos - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;
    use mpisim::{Machine, OpClass};

    fn logged(kind: EventKind, a: u64, b: u64) -> LoggedEvent {
        LoggedEvent {
            seq: 0,
            at: SimTime::from_nanos(0),
            kind,
            a,
            b,
        }
    }

    fn schedule(op: OpClass, p: usize) -> Schedule {
        let comm = Machine::t3d().communicator(p).expect("communicator");
        comm.schedule(op, Rank(0), 1024).expect("schedule")
    }

    #[test]
    fn closure_flags_follow_the_program() {
        // Bcast root sends; pure leaves only recv.
        let m = StaticModel::build(&schedule(OpClass::Bcast, 8));
        assert!(m.net_coupled(0), "root sends");
        let leaf = (0..8).find(|&r| !m.net_coupled(r));
        assert!(leaf.is_some(), "a bcast tree has non-sending leaves");
        assert!(!m.barrier_coupled(0), "bcast has no hardware barrier");
    }

    #[test]
    fn sending_ranks_conflict_through_the_network() {
        let m = StaticModel::build(&schedule(OpClass::Alltoall, 8));
        // In alltoall every rank sends: resumes of distinct ranks still
        // conflict through the widened Network resource.
        let x = logged(EventKind::RankResume, 1, 0);
        let y = logged(EventKind::RankResume, 2, 0);
        assert!(!m.independent(&x, &y));
    }

    #[test]
    fn non_sending_leaves_commute() {
        let m = StaticModel::build(&schedule(OpClass::Bcast, 8));
        let leaves: Vec<usize> = (0..8).filter(|&r| !m.net_coupled(r)).collect();
        assert!(leaves.len() >= 2, "need two pure receivers");
        let x = logged(EventKind::RankResume, leaves[0] as u64, 0);
        let y = logged(EventKind::RankResume, leaves[1] as u64, 0);
        assert!(m.independent(&x, &y));
        // But a leaf resume never commutes with its own delivery.
        let d = logged(EventKind::MessageReady, 0, leaves[0] as u64);
        assert!(!m.independent(&x, &d));
    }

    #[test]
    fn hb_orders_dependent_schedule_steps_only() {
        let s = schedule(OpClass::Scan, 8);
        let m = StaticModel::build(&s);
        // Two tape positions of the same rank are program-ordered.
        if s.steps_of(Rank(1)) >= 2 {
            let x = logged(EventKind::ScheduleStep, 1, 1);
            let y = logged(EventKind::ScheduleStep, 1, 2);
            assert!(m.hb_ordered(&x, &y));
        }
        // Entry markers and out-of-range positions are unordered.
        let e = logged(EventKind::ScheduleStep, 1, 0);
        let z = logged(EventKind::ScheduleStep, 1, 999);
        assert!(!m.hb_ordered(&e, &z));
        // Non-ScheduleStep events have no schedule node.
        let r = logged(EventKind::RankResume, 1, 0);
        assert!(!m.hb_ordered(&r, &r));
    }

    #[test]
    fn unknown_ranks_are_conservatively_coupled() {
        let m = StaticModel::build(&schedule(OpClass::Bcast, 4));
        assert!(m.net_coupled(99));
        assert!(m.barrier_coupled(99));
    }
}
