//! Bridges an observed execution into the `obs` crate's exporters:
//! a Perfetto-loadable Chrome trace and a metrics snapshot.
//!
//! The executor stays free of serialization concerns — it hands back
//! [`ExecOutcome`] + [`Observed`], and this module turns them into the
//! artifacts the `observe` binary (and the harness) write to disk.
//!
//! # Examples
//!
//! ```
//! use mpisim::{Machine, Rank};
//! use mpisim::comm::RunOptions;
//!
//! let comm = Machine::t3d().communicator(8)?;
//! let s = comm.schedule(mpisim::OpClass::Bcast, Rank(0), 1024)?;
//! let (out, obs) = comm.run_observed(&[&s], RunOptions::default())?;
//! let trace = mpisim::observe::chrome_trace("t3d", &out, &obs);
//! assert!(trace.len() > 0);
//! # Ok::<(), mpisim::SimMpiError>(())
//! ```

use crate::critpath::CritPath;
use crate::exec::{ExecOutcome, Observed};
use desim::SimTime;
use obs::{ChromeTrace, Json, MetricsRegistry, RunManifest};

/// Flow-event id base for critical-path arrows, disjoint from the
/// message-flow ids `0..trace.len()`.
const CRITPATH_FLOW_BASE: u64 = 1 << 32;

fn us(t: SimTime) -> f64 {
    t.as_micros_f64()
}

/// Builds a Chrome Trace Event array from an observed run: one process
/// named after the machine, one thread track per rank carrying the
/// attributed phase spans, one flow arrow per traced message, and an
/// instant marker per segment boundary.
pub fn chrome_trace(machine: &str, out: &ExecOutcome, observed: &Observed) -> ChromeTrace {
    let mut t = ChromeTrace::new();
    t.process_name(0, machine);
    for r in 0..out.phases.len() {
        t.thread_name(0, r as u32, &format!("rank {r}"));
    }
    for sp in &observed.spans {
        t.complete(
            0,
            sp.rank as u32,
            sp.kind.label(),
            us(sp.start),
            us(sp.end),
            &[],
        );
    }
    for (i, m) in out.trace.iter().enumerate() {
        t.flow(
            m.class.key(),
            i as u64,
            (0, m.src as u32, us(m.posted)),
            (0, m.dst as u32, us(m.delivered)),
        );
    }
    for (si, seg) in out.finish.iter().enumerate() {
        let name = format!("seg {si} done");
        for (r, &f) in seg.iter().enumerate() {
            t.instant(0, r as u32, &name, us(f));
        }
    }
    t
}

/// Like [`chrome_trace`], plus a dedicated "critical path" track (tid
/// one past the last rank) carrying the reconstructed path tiles named
/// `critpath.<category>`, with flow arrows at every track switch so
/// Perfetto draws the causal chain across ranks.
pub fn chrome_trace_with_critpath(
    machine: &str,
    out: &ExecOutcome,
    observed: &Observed,
    cp: &CritPath,
) -> ChromeTrace {
    let mut t = chrome_trace(machine, out, observed);
    let path_tid = out.phases.len() as u32;
    t.thread_name(0, path_tid, "critical path");
    let us_ns = |ns: u64| ns as f64 / 1_000.0;
    for seg in &cp.decomposition.segments {
        t.complete(
            0,
            path_tid,
            &format!("critpath.{}", seg.blame.key()),
            us_ns(seg.start_ns),
            us_ns(seg.end_ns),
            &[("rank", &seg.track.to_string())],
        );
    }
    // Segments are newest-first; an arrow from each older segment's end
    // to its successor's start whenever the path hops ranks.
    for (i, w) in cp.decomposition.segments.windows(2).enumerate() {
        let (newer, older) = (w[0], w[1]);
        if newer.track != older.track {
            t.flow(
                "critpath",
                CRITPATH_FLOW_BASE + i as u64,
                (0, older.track, us_ns(older.end_ns)),
                (0, newer.track, us_ns(newer.start_ns)),
            );
        }
    }
    t
}

/// Exports the run's execution metrics into `reg`: traffic and event
/// totals, the trace-cap accounting, per-rank software/blocked split
/// (both as per-rank gauges and as distributions), and the network
/// instrumentation collected by the wire model.
pub fn export_metrics(out: &ExecOutcome, observed: &Observed, reg: &mut MetricsRegistry) {
    reg.counter("exec.messages", out.messages);
    reg.counter("exec.bytes", out.bytes);
    reg.counter("exec.events", out.events);
    reg.counter("exec.trace.recorded", out.trace.len() as u64);
    reg.counter("exec.trace.dropped", out.dropped_messages);
    reg.gauge("exec.completed_us", out.completed().as_micros_f64());
    reg.gauge("exec.segments", out.finish.len() as f64);
    reg.gauge("engine.queue.high_water", observed.queue_high_water as f64);
    let mut sw_total = 0.0;
    let mut blocked_total = 0.0;
    let mut blocked_max = 0.0f64;
    for (r, ph) in out.phases.iter().enumerate() {
        let sw = ph.sw.as_micros_f64();
        let blocked = ph.blocked.as_micros_f64();
        reg.gauge(format!("exec.rank.{r}.sw_us"), sw);
        reg.gauge(format!("exec.rank.{r}.blocked_us"), blocked);
        reg.gauge(
            format!("exec.rank.{r}.elapsed_us"),
            out.rank_elapsed(r).as_micros_f64(),
        );
        reg.observe("exec.rank.sw_ns", ph.sw.as_nanos());
        reg.observe("exec.rank.blocked_ns", ph.blocked.as_nanos());
        sw_total += sw;
        blocked_total += blocked;
        blocked_max = blocked_max.max(blocked);
    }
    reg.gauge("exec.sw.total_us", sw_total);
    reg.gauge("exec.blocked.total_us", blocked_total);
    reg.gauge("exec.blocked.max_us", blocked_max);
    observed.event_stats.export_metrics(reg);
    reg.counter("net.fifo.updates", observed.fifo_updates);
    reg.counter("net.fifo.commits", observed.fifo_commits);
    observed.net.export_metrics(reg);
    if observed.elide.attempts() > 0 {
        observed.elide.export_metrics(reg);
        reg.gauge(
            "net.elide.events_per_message",
            if out.messages > 0 {
                out.events as f64 / out.messages as f64
            } else {
                0.0
            },
        );
    }
    if let Some(prof) = &observed.engine_profile {
        prof.export_metrics(reg);
    }
}

/// The full snapshot document written next to a trace: the run manifest
/// (machine, parameters, seed, ablations) plus every metric.
pub fn snapshot(manifest: &RunManifest, reg: &MetricsRegistry) -> Json {
    Json::object([
        ("manifest", manifest.to_json()),
        ("metrics", reg.snapshot()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RunOptions;
    use crate::machine::Machine;
    use collectives::Rank;
    use netmodel::OpClass;
    use obs::validate;

    fn observed_bcast() -> (ExecOutcome, Observed) {
        let comm = Machine::t3d().communicator(64).expect("communicator");
        let s = comm
            .schedule(OpClass::Bcast, Rank(0), 4096)
            .expect("schedule");
        comm.run_observed(&[&s], RunOptions::default())
            .expect("observed run")
    }

    #[test]
    fn chrome_trace_is_valid_event_array() {
        let (out, obs) = observed_bcast();
        let trace = chrome_trace("t3d", &out, &obs);
        let parsed = validate(&trace.to_json_string()).expect("valid JSON");
        let events = parsed.as_array().expect("array container");
        assert_eq!(events.len(), trace.len());
        let mut spans = 0;
        let mut flows = 0;
        for ev in events {
            let ph = ev.get("ph").and_then(|j| j.as_str()).expect("ph field");
            assert!(ev.get("ts").is_some(), "every event has ts");
            assert!(ev.get("pid").is_some(), "every event has pid");
            match ph {
                "X" => spans += 1,
                "s" | "f" => flows += 1,
                _ => {}
            }
        }
        assert_eq!(spans, obs.spans.len());
        assert_eq!(flows, 2 * out.trace.len());
        assert!(spans > 0 && flows > 0);
    }

    #[test]
    fn critpath_trace_adds_path_track_and_arrows() {
        let (out, obs) = observed_bcast();
        let cp = crate::critpath::analyze(&out, &obs);
        let plain = chrome_trace("t3d", &out, &obs);
        let trace = chrome_trace_with_critpath("t3d", &out, &obs, &cp);
        let parsed = validate(&trace.to_json_string()).expect("valid JSON");
        let events = parsed.as_array().expect("array container");
        // Everything from the plain trace, plus one span per path
        // segment, the track name, and a flow pair per rank hop.
        assert!(events.len() > plain.len() + cp.decomposition.segments.len());
        let hops = cp
            .decomposition
            .segments
            .windows(2)
            .filter(|w| w[0].track != w[1].track)
            .count();
        assert!(hops > 0, "a 64-rank bcast path crosses ranks");
        assert_eq!(
            events.len(),
            plain.len() + 1 + cp.decomposition.segments.len() + 2 * hops
        );
        let path_spans = events
            .iter()
            .filter(|ev| {
                ev.get("name")
                    .and_then(|j| j.as_str())
                    .is_some_and(|n| n.starts_with("critpath."))
            })
            .count();
        assert_eq!(path_spans, cp.decomposition.segments.len());
    }

    #[test]
    fn snapshot_rank_phases_sum_to_elapsed() {
        let (out, obs) = observed_bcast();
        let mut reg = MetricsRegistry::new();
        export_metrics(&out, &obs, &mut reg);
        let manifest = RunManifest::new("t3d")
            .param("op", "bcast")
            .param("p", 64)
            .param("m", 4096);
        let snap = snapshot(&manifest, &reg);
        let metrics = snap.get("metrics").expect("metrics section");
        for r in 0..64 {
            let sw = metrics
                .get(&format!("exec.rank.{r}.sw_us"))
                .and_then(Json::as_f64)
                .expect("sw gauge");
            let blocked = metrics
                .get(&format!("exec.rank.{r}.blocked_us"))
                .and_then(Json::as_f64)
                .expect("blocked gauge");
            let elapsed = metrics
                .get(&format!("exec.rank.{r}.elapsed_us"))
                .and_then(Json::as_f64)
                .expect("elapsed gauge");
            assert!(
                (sw + blocked - elapsed).abs() < 1e-6,
                "rank {r}: {sw} + {blocked} != {elapsed}"
            );
        }
        assert_eq!(
            snap.get("manifest")
                .and_then(|m| m.get("machine"))
                .and_then(|j| j.as_str()),
            Some("t3d")
        );
    }
}
