//! Error types for the simulation MPI layer.

use collectives::{select::UnsupportedAlgorithm, ScheduleError};
use core::fmt;

/// Errors surfaced by the public `mpisim` API.
#[derive(Debug, Clone, PartialEq)]
pub enum SimMpiError {
    /// Requested communicator size is outside the machine's valid range.
    InvalidSize {
        /// The size requested.
        requested: usize,
        /// The machine's measured maximum.
        max: usize,
    },
    /// A rank argument was out of range for the communicator.
    InvalidRank {
        /// The offending rank index.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// The machine specification failed validation.
    InvalidSpec(String),
    /// A schedule failed validation before execution.
    BadSchedule(ScheduleError),
    /// The algorithm cannot implement the requested operation.
    Unsupported(UnsupportedAlgorithm),
    /// A schedule's rank count does not match the communicator.
    SizeMismatch {
        /// Ranks in the schedule.
        schedule: usize,
        /// Ranks in the communicator.
        communicator: usize,
    },
    /// `run_sequence` was called with per-rank start times of the wrong
    /// length.
    BadStartTimes {
        /// Entries supplied.
        got: usize,
        /// Entries required (one per rank).
        expected: usize,
    },
    /// `run_sequence` was called with no segments.
    EmptySequence,
    /// A rank's tape did not run to completion even though validation
    /// passed (or was skipped via `ExecConfig::skip_validation`): the
    /// executor stalled waiting on a message that never arrived.
    RankStalled {
        /// The stalled rank.
        rank: usize,
        /// Tape position reached.
        step: usize,
        /// Tape length.
        of: usize,
    },
}

impl fmt::Display for SimMpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimMpiError::InvalidSize { requested, max } => write!(
                f,
                "communicator size {requested} outside the machine's 1..={max} range"
            ),
            SimMpiError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for {size} ranks")
            }
            SimMpiError::InvalidSpec(msg) => write!(f, "invalid machine spec: {msg}"),
            SimMpiError::BadSchedule(e) => write!(f, "invalid schedule: {e}"),
            SimMpiError::Unsupported(e) => write!(f, "{e}"),
            SimMpiError::SizeMismatch {
                schedule,
                communicator,
            } => write!(
                f,
                "schedule built for {schedule} ranks, communicator has {communicator}"
            ),
            SimMpiError::BadStartTimes { got, expected } => {
                write!(f, "expected {expected} start times, got {got}")
            }
            SimMpiError::EmptySequence => write!(f, "sequence must contain a segment"),
            SimMpiError::RankStalled { rank, step, of } => {
                write!(f, "rank {rank} stalled at tape position {step}/{of}")
            }
        }
    }
}

impl std::error::Error for SimMpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimMpiError::BadSchedule(e) => Some(e),
            SimMpiError::Unsupported(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for SimMpiError {
    fn from(e: ScheduleError) -> Self {
        SimMpiError::BadSchedule(e)
    }
}

impl From<UnsupportedAlgorithm> for SimMpiError {
    fn from(e: UnsupportedAlgorithm) -> Self {
        SimMpiError::Unsupported(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimMpiError::InvalidSize {
            requested: 256,
            max: 128,
        };
        assert!(e.to_string().contains("256"));
        let e = SimMpiError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
    }

    #[test]
    fn conversions_wrap() {
        let se = ScheduleError::UnconsumedMessages { count: 2 };
        let e: SimMpiError = se.clone().into();
        assert_eq!(e, SimMpiError::BadSchedule(se));
    }
}
