//! Assembles the canonical [`obs::RunRecord`] from an observed
//! execution — the bridge between the executor's artifacts and the
//! differential-observability layer (`obs::diff`, the `tracediff`
//! binary).
//!
//! Recording is opt-in end to end: the event stream comes from
//! [`RunOptions::event_log`](crate::comm::RunOptions), the parent edges
//! from [`RunOptions::provenance`](crate::comm::RunOptions), and the
//! transfer rows from `record_trace`; each is independently zero-cost
//! when off, and the record simply omits what was not collected.
//!
//! # Examples
//!
//! ```
//! use mpisim::{Machine, Rank};
//! use mpisim::comm::RunOptions;
//!
//! let comm = Machine::t3d().communicator(8)?;
//! let s = comm.schedule(mpisim::OpClass::Bcast, Rank(0), 1024)?;
//! let opts = RunOptions { record_trace: true, provenance: true, event_log: true,
//!                         ..RunOptions::default() };
//! let (out, obs) = comm.run_observed(&[&s], opts)?;
//! let rec = mpisim::record::run_record("t3d", &out, &obs, None, None);
//! assert!(!rec.events.is_empty());
//! assert_eq!(rec.meta["machine"], "t3d");
//! # Ok::<(), mpisim::SimMpiError>(())
//! ```

use crate::critpath::CritPath;
use crate::exec::{ExecOutcome, Observed};
use obs::critpath::Blame;
use obs::record::{RecEvent, RecSpan, RecTransfer};
use obs::{MetricsRegistry, RunRecord};

/// Builds a run record from an observed execution. `machine` seeds the
/// meta map (extend it via [`RunRecord::meta`] before serializing);
/// `cp` adds blame totals and the contention census; `reg` adds a flat
/// metrics snapshot.
pub fn run_record(
    machine: &str,
    out: &ExecOutcome,
    observed: &Observed,
    cp: Option<&CritPath>,
    reg: Option<&MetricsRegistry>,
) -> RunRecord {
    let mut rec = RunRecord {
        elapsed_ns: out.completed().as_nanos(),
        dropped_messages: out.dropped_messages,
        ..RunRecord::default()
    };
    rec.meta.insert("machine".into(), machine.into());
    rec.meta
        .insert("schema".into(), obs::record::SCHEMA_VERSION.to_string());
    if let Some(log) = &observed.event_log {
        rec.events.reserve(log.len());
        for ev in log.iter() {
            rec.events.push(RecEvent {
                seq: ev.seq,
                at_ns: ev.at.as_nanos(),
                kind: ev.kind.key().into(),
                a: ev.a,
                b: ev.b,
                parent: observed
                    .provenance
                    .as_ref()
                    .and_then(|p| p.parent_of(ev.seq)),
            });
        }
    }
    rec.transfers.reserve(out.trace.len());
    for t in &out.trace {
        rec.transfers.push(RecTransfer {
            src: t.src as u32,
            dst: t.dst as u32,
            bytes: t.bytes as u64,
            class: t.class.key().into(),
            posted_ns: t.posted.as_nanos(),
            wire_start_ns: t.wire_start.as_nanos(),
            delivered_ns: t.delivered.as_nanos(),
            inject_wait_ns: t.inject_wait.as_nanos(),
            link_wait_ns: t.link_wait.as_nanos(),
        });
    }
    rec.spans.reserve(observed.spans.len());
    for sp in &observed.spans {
        rec.spans.push(RecSpan {
            rank: sp.rank as u32,
            kind: sp.kind.label().into(),
            start_ns: sp.start.as_nanos(),
            end_ns: sp.end.as_nanos(),
            woke_by: sp.woke_by,
        });
    }
    rec.finish_ns = out
        .finish
        .iter()
        .map(|seg| seg.iter().map(|t| t.as_nanos()).collect())
        .collect();
    if let Some(cp) = cp {
        for b in Blame::ALL {
            let ns = cp.decomposition.get(b);
            if ns > 0 {
                rec.blame_ns.insert(b.key().into(), ns);
            }
        }
        rec.census = Some((cp.census.transfers, cp.census.uncontended));
    }
    if let Some(reg) = reg {
        for (name, metric) in reg.iter() {
            if let Some(v) = metric.as_f64() {
                rec.metrics.insert(name.into(), v);
            }
        }
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RunOptions;
    use crate::machine::Machine;
    use collectives::Rank;
    use netmodel::OpClass;

    fn full_options() -> RunOptions {
        RunOptions {
            record_trace: true,
            provenance: true,
            event_log: true,
            ..RunOptions::default()
        }
    }

    fn recorded_run(machine: &Machine, op: OpClass, p: usize, bytes: u32) -> RunRecord {
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(op, Rank(0), bytes).expect("schedule");
        let (out, obs) = comm
            .run_observed(&[&s], full_options())
            .expect("observed run");
        let cp = crate::critpath::analyze(&out, &obs);
        let mut reg = MetricsRegistry::new();
        crate::observe::export_metrics(&out, &obs, &mut reg);
        run_record(machine.name(), &out, &obs, Some(&cp), Some(&reg))
    }

    #[test]
    fn record_captures_every_artifact() {
        let rec = recorded_run(&Machine::t3d(), OpClass::Bcast, 16, 2048);
        assert!(!rec.events.is_empty());
        assert!(!rec.transfers.is_empty());
        assert!(!rec.spans.is_empty());
        assert_eq!(rec.finish_ns.len(), 1);
        assert_eq!(rec.finish_ns[0].len(), 16);
        assert_eq!(rec.dropped_messages, 0);
        let blame_total: u64 = rec.blame_ns.values().sum();
        assert_eq!(blame_total, rec.elapsed_ns, "critpath conservation");
        let (transfers, uncontended) = rec.census.expect("census present");
        assert_eq!(transfers, rec.transfers.len() as u64);
        assert!(uncontended <= transfers);
        assert!(rec.metrics.contains_key("exec.messages"));
        // Every non-root event of the provenance-enabled run has a
        // resolvable parent or is a start stimulus.
        assert!(rec.events.iter().any(|e| e.parent.is_some()));
    }

    #[test]
    fn record_round_trips_and_self_diffs_byte_identical() {
        let rec = recorded_run(&Machine::sp2(), OpClass::Reduce, 8, 1024);
        let text = rec.to_json_string();
        let back = RunRecord::from_json(&text).expect("parse");
        assert_eq!(back, rec);
        let report = obs::diff::diff(&rec, &back);
        assert_eq!(report.verdict, obs::Verdict::ByteIdentical);
        assert!(report.certified);
    }

    #[test]
    fn same_seed_reruns_are_byte_identical() {
        let a = recorded_run(&Machine::paragon(), OpClass::Alltoall, 8, 512);
        let b = recorded_run(&Machine::paragon(), OpClass::Alltoall, 8, 512);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn inverted_ties_produce_an_explained_divergence() {
        let machine = Machine::t3d();
        let comm = machine.communicator(16).expect("communicator");
        let s = comm
            .schedule(OpClass::Alltoall, Rank(0), 2048)
            .expect("schedule");
        let (out_a, obs_a) = comm
            .run_observed(&[&s], full_options())
            .expect("observed run");
        let cfg = crate::exec::ExecConfig {
            wire: machine.wire_config(),
            placement: machine.placement(),
            record_trace: true,
            provenance: true,
            event_log: true,
            tie_break: crate::exec::TieBreakPolicy::InvertAll,
            ..crate::exec::ExecConfig::default()
        };
        let (out_b, obs_b) =
            crate::exec::execute_observed(machine.spec(), &[&s], &cfg).expect("perturbed run");
        let a = run_record(machine.name(), &out_a, &obs_a, None, None);
        let b = run_record(machine.name(), &out_b, &obs_b, None, None);
        let report = obs::diff::diff(&a, &b);
        assert_eq!(report.verdict, obs::Verdict::Divergent);
        let first = report.first.expect("first divergence located");
        assert_eq!(first.component, "events");
        assert!(!first.context.is_empty(), "causal context window present");
        assert!(!first.ranks.is_empty(), "ranks identified");
        assert_ne!(first.expected, first.got);
    }

    #[test]
    fn recording_off_yields_empty_streams() {
        let comm = Machine::t3d().communicator(8).expect("communicator");
        let s = comm
            .schedule(OpClass::Bcast, Rank(0), 1024)
            .expect("schedule");
        let (out, obs) = comm
            .run_observed(&[&s], RunOptions::default())
            .expect("observed run");
        let rec = run_record("t3d", &out, &obs, None, None);
        assert!(rec.events.is_empty());
        assert!(rec.blame_ns.is_empty());
        assert!(rec.census.is_none());
        assert!(rec.elapsed_ns > 0);
    }
}
