//! The schedule executor.
//!
//! Runs a sequence of collective [`Schedule`]s on the discrete-event
//! engine over a machine's [`NetState`]. Every rank is a small state
//! machine: it walks its concatenated step tape, charging software
//! overheads from the machine's cost table and wire time from the
//! network model. Ranks flow from one segment into the next without any
//! implicit synchronization — exactly like the paper's measurement loop,
//! where a barrier "only synchronizes the processes logically" (§2).
//!
//! All executor events ride the engine's typed path
//! ([`desim::TypedEvent`]): rank wakeups are `RankResume`, payload
//! arrivals are `MessageReady`, and deferred sends are `ScheduleStep`
//! carrying the tape position to re-read — no per-event allocation
//! anywhere in the hot loop.
//!
//! Per-rank completion timestamps are recorded at every segment boundary,
//! which is what the measurement harness needs to reconstruct the
//! paper's per-process `MPI_Wtime` readings.

use crate::error::SimMpiError;
use crate::placement::{ExplicitPlacement, Placement};
use collectives::{Schedule, Step};
use desim::{
    Engine, EventKind, EventLog, EventWorld, LoggedEvent, Scheduler, SimDuration, SimTime,
    SplitMix64, TypedEvent,
};
use netmodel::{ElideStats, MachineSpec, NetInstr, NetState, OpClass, WireConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use topo::NodeId;

/// Default cap on recorded [`MessageTrace`] entries (~1M): a 128-node
/// alltoall sweep would otherwise allocate without bound.
pub const DEFAULT_TRACE_LIMIT: usize = 1 << 20;

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Wire-model ablation switches.
    pub wire: WireConfig,
    /// Per-rank start instants (models unsynchronized node clocks /
    /// skewed arrival). Default: everyone starts at time zero.
    pub start_times: Option<Vec<SimTime>>,
    /// Validate every schedule before running (on by default via
    /// [`ExecConfig::default`] — turn off only in hot measurement loops
    /// that re-run already-validated schedules).
    pub skip_validation: bool,
    /// Record a per-message trace (see [`MessageTrace`]). Off by default:
    /// tracing a 128-node alltoall allocates one record per message.
    pub record_trace: bool,
    /// Maximum [`MessageTrace`] entries kept when tracing; further
    /// messages are counted in [`ExecOutcome::dropped_messages`] instead
    /// of allocated. `None` uses [`DEFAULT_TRACE_LIMIT`].
    pub trace_limit: Option<usize>,
    /// Rank-to-node placement (§9 accuracy factor: "runtime node
    /// allocation affects the … collective communication pattern").
    pub placement: Placement,
    /// Multiplicative per-rank CPU slowdown modeling interference from
    /// other users and OS daemons (§9 accuracy factor). Each rank draws
    /// a factor uniformly from `[1, 1 + amplitude]`.
    pub cpu_noise: Option<CpuNoise>,
    /// Subgroup execution: an explicit rank→node map together with the
    /// size of the full machine partition the topology is built for.
    /// Overrides `placement` when set.
    pub group: Option<(ExplicitPlacement, usize)>,
    /// Enable engine self-profiling (host wall-clock, events/sec, sampled
    /// queue depth). Zero cost when off; the collected
    /// [`desim::EngineProfile`] is returned via [`Observed`] on observed
    /// runs.
    pub profile: bool,
    /// Record causal event provenance ([`desim::Engine::with_provenance`]):
    /// one compact parent edge per event, returned via
    /// [`Observed::provenance`] on observed runs. Zero cost when off.
    pub provenance: bool,
    /// Record the canonical fired-event stream
    /// ([`desim::Engine::with_event_log`]), returned via
    /// [`Observed::event_log`] on observed runs — the input to run-record
    /// serialization and `obs::diff`. Zero cost when off.
    pub event_log: bool,
    /// How same-instant event ties are broken — see [`TieBreakPolicy`].
    /// The default ([`TieBreakPolicy::InsertionOrder`]) is the committed
    /// deterministic order; the other policies exist solely so
    /// differential tests, `tracediff --perturb`, and the `ordercheck`
    /// commutativity explorer can produce controlled perturbations.
    pub tie_break: TieBreakPolicy,
    /// Event-elision fast path: advance each rank's tape analytically and
    /// complete provably-uncontended messages in closed form, posting one
    /// [`TypedEvent::BulkComplete`] per drained batch instead of the
    /// per-message event chain. The produced timeline (finish times,
    /// phase split, spans, trace, FIFO watermarks) is identical to the
    /// event-by-event reference; only event counts, the event-log seq
    /// numbering/emission order, and provenance differ. Requires
    /// [`TieBreakPolicy::InsertionOrder`] (silently ignored under the
    /// perturbation policies, whose whole point is to reorder the events
    /// this path elides) and disables engine provenance (the elided
    /// chain has no per-message parents to record).
    pub elide: bool,
}

/// Same-instant tie-break policy for an execution.
///
/// Generalizes the old `invert_ties: bool` flag: `InvertAll` is the old
/// `true` (every send's delivery/release post order reversed — the
/// eager-delivery failure mode), while [`TieBreakPolicy::InvertPair`]
/// inverts exactly one targeted adjacent pair, leaving every other
/// firing decision untouched — the minimal reproducible perturbation
/// the `ordercheck` explorer replays per candidate pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TieBreakPolicy {
    /// The committed deterministic order: ties fire in insertion order.
    #[default]
    InsertionOrder,
    /// Deliberately invert the send-completion tie-break on *every*
    /// send: post the CPU release before the delivery event (the
    /// reverse of the committed order in `post_send`). Same-instant
    /// FIFO ties then fire in the opposite order — the exact failure
    /// mode of the abandoned eager-delivery prototype.
    InvertAll,
    /// Invert exactly one same-instant adjacent pair, identified by the
    /// firing instant and the scheduling seqs of the two events (from a
    /// baseline run's [`desim::EventLog`]). Plumbs through to
    /// [`desim::Engine::with_tie_swap`]; whether the swap actually
    /// engaged is reported via [`Observed::tie_swap_applied`].
    InvertPair {
        /// The shared firing instant, in nanoseconds.
        at_ns: u64,
        /// Scheduling seq of the event that fires first in the baseline.
        first_seq: u64,
        /// Scheduling seq of the event that fires immediately after it.
        second_seq: u64,
    },
}

/// Background-interference model: per-rank CPU slowdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuNoise {
    /// Maximum fractional slowdown (0.1 = up to 10% slower).
    pub amplitude: f64,
    /// Draw seed.
    pub seed: u64,
}

/// One traced message: who sent what to whom, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageTrace {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u32,
    /// Operation class the message belongs to.
    pub class: OpClass,
    /// Instant the sender's CPU finished its per-message overhead and
    /// handed the payload to the network.
    pub posted: SimTime,
    /// Instant the sending CPU was released (payload copy / engine setup
    /// done) — the start of the message's wire journey.
    pub wire_start: SimTime,
    /// Instant the full payload arrived at the destination node.
    pub delivered: SimTime,
    /// Time the message queued behind its node's injection engine.
    pub inject_wait: SimDuration,
    /// Time the message queued behind busy links (contention).
    pub link_wait: SimDuration,
}

impl MessageTrace {
    /// True when the message never waited for a busy injection engine or
    /// link — see [`netmodel::SendTiming::uncontended`].
    pub fn uncontended(&self) -> bool {
        self.inject_wait == SimDuration::ZERO && self.link_wait == SimDuration::ZERO
    }
}

/// Where one stretch of a rank's time went — the label on a
/// [`PhaseSpan`] and the granularity of the observability trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Collective-entry software overhead.
    Entry,
    /// Per-message send-side software overhead (`o_send`).
    SendOverhead,
    /// Payload copy / engine setup holding the sending CPU.
    Copy,
    /// Per-message receive-side software overhead plus receive copy.
    RecvOverhead,
    /// Reduction arithmetic.
    Compute,
    /// Blocked in a receive waiting for the payload to arrive.
    RecvWait,
    /// Waiting for the (hardware) barrier to release.
    BarrierWait,
}

impl PhaseKind {
    /// Short label used as the trace span name.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Entry => "entry",
            PhaseKind::SendOverhead => "send",
            PhaseKind::Copy => "copy",
            PhaseKind::RecvOverhead => "recv",
            PhaseKind::Compute => "compute",
            PhaseKind::RecvWait => "wait",
            PhaseKind::BarrierWait => "barrier",
        }
    }

    /// True for the blocked-waiting kinds (idle CPU), false for the
    /// software kinds (busy CPU).
    pub fn is_blocked(self) -> bool {
        matches!(self, PhaseKind::RecvWait | PhaseKind::BarrierWait)
    }
}

/// One attributed stretch of a rank's timeline, collected when running
/// under [`execute_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// The rank whose time this is.
    pub rank: usize,
    /// What the rank was doing.
    pub kind: PhaseKind,
    /// Span start instant.
    pub start: SimTime,
    /// Span end instant.
    pub end: SimTime,
    /// Who ended a blocked span: the sending rank for [`PhaseKind::RecvWait`],
    /// the last-arriving (triggering) rank for [`PhaseKind::BarrierWait`],
    /// `None` for CPU-busy spans. This is the causal edge the
    /// critical-path walker follows across ranks.
    pub woke_by: Option<u32>,
}

/// Always-collected per-rank split of execution time. The two buckets
/// partition the rank's end-to-end elapsed time exactly:
/// `sw + blocked == ExecOutcome::rank_elapsed(r)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankPhases {
    /// CPU-busy software time: entry/send/recv overheads, payload
    /// copies, reduction arithmetic.
    pub sw: SimDuration,
    /// Blocked-waiting time: receives waiting for data, barrier waits.
    pub blocked: SimDuration,
}

/// Extra observability collected by [`execute_observed`]: the span
/// timeline, network instrumentation, and engine queue statistics.
#[derive(Debug, Clone, Default)]
pub struct Observed {
    /// Every attributed phase span, in the order the executor emitted
    /// them (non-decreasing per rank, interleaved across ranks).
    pub spans: Vec<PhaseSpan>,
    /// Per-link / per-class network accounting.
    pub net: NetInstr,
    /// Event-queue high-water mark of the run.
    pub queue_high_water: usize,
    /// How events entered the queue: typed vs boxed vs slab
    /// continuations (the `engine.alloc.*` counters).
    pub event_stats: desim::EventStats,
    /// Logical per-segment FIFO occupancy updates the wire model
    /// performed.
    pub fifo_updates: u64,
    /// Batched watermark commits actually applied — one per
    /// (message, resource).
    pub fifo_commits: u64,
    /// Engine self-profile, when [`ExecConfig::profile`] was set.
    pub engine_profile: Option<desim::EngineProfile>,
    /// Causal event-parent log, when [`ExecConfig::provenance`] was set.
    pub provenance: Option<desim::Provenance>,
    /// Canonical fired-event stream, when [`ExecConfig::event_log`] was
    /// set.
    pub event_log: Option<desim::EventLog>,
    /// Whether a [`TieBreakPolicy::InvertPair`] swap actually engaged:
    /// `None` when no pair inversion was requested, `Some(false)` when
    /// the targeted pair never appeared adjacently (run unperturbed).
    pub tie_swap_applied: Option<bool>,
    /// Event-elision admission counters ([`ExecConfig::elide`]): how many
    /// sends completed in closed form vs fell back to the event-by-event
    /// wire walk, and why. All-zero when elision was off.
    pub elide: ElideStats,
}

/// The outcome of executing a schedule sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Per-rank start instants actually used.
    pub start: Vec<SimTime>,
    /// `finish[segment][rank]`: when each rank completed each segment.
    pub finish: Vec<Vec<SimTime>>,
    /// Total messages injected into the network.
    pub messages: u64,
    /// Total payload bytes injected.
    pub bytes: u64,
    /// Discrete events fired.
    pub events: u64,
    /// Message trace, when [`ExecConfig::record_trace`] was set.
    pub trace: Vec<MessageTrace>,
    /// Messages that exceeded [`ExecConfig::trace_limit`] and were
    /// counted instead of traced.
    pub dropped_messages: u64,
    /// Per-link busy times (hottest first), when
    /// [`ExecConfig::record_trace`] was set: the link-load distribution
    /// for hotspot analysis.
    pub link_loads: Vec<(usize, SimDuration)>,
    /// Per-rank software/blocked time split (always collected — two
    /// integer adds per charge).
    pub phases: Vec<RankPhases>,
}

impl ExecOutcome {
    /// The instant the last rank finished the final segment.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has no segments (cannot happen via the
    /// public API, which rejects empty sequences).
    pub fn completed(&self) -> SimTime {
        *self
            .finish
            .last()
            .expect("at least one segment")
            .iter()
            .max()
            .expect("at least one rank")
    }

    /// Elapsed span of segment `seg` on rank `r`: from that rank's finish
    /// of the previous segment (or its start) to its finish of `seg`.
    pub fn rank_segment_time(&self, seg: usize, r: usize) -> SimDuration {
        let end = self.finish[seg][r];
        let begin = if seg == 0 {
            self.start[r]
        } else {
            self.finish[seg - 1][r]
        };
        end.since(begin)
    }

    /// End-to-end elapsed time of rank `r`: from its start instant to
    /// its finish of the last segment. Equals
    /// `phases[r].sw + phases[r].blocked` exactly.
    pub fn rank_elapsed(&self, r: usize) -> SimDuration {
        self.finish.last().expect("at least one segment")[r].abs_diff(self.start[r])
    }
}

/// One item of a rank's execution tape.
#[derive(Debug, Clone, Copy)]
enum Tape {
    /// Charge the collective-entry overhead for `class`.
    Entry(OpClass),
    /// Execute a schedule step under `class` costs.
    Op(Step, OpClass),
    /// Record the finish timestamp of segment `idx`.
    SegEnd(usize),
}

struct RankState {
    tape: Vec<Tape>,
    pc: usize,
    blocked_on: Option<usize>,
    /// Arrived-but-unconsumed payload timestamps, indexed by source rank
    /// (dense — every rank pair can exchange in an alltoall anyway).
    mailbox: Vec<VecDeque<SimTime>>,
    /// CPU slowdown factor (1.0 = quiet node).
    slowdown: f64,
    /// Physical node this rank runs on.
    node: NodeId,
    /// Accumulated CPU-busy software time.
    sw: SimDuration,
    /// Accumulated blocked-waiting time.
    blocked: SimDuration,
    /// Set while the rank is parked (recv wait / barrier wait): when the
    /// wait began and what kind it is. Taken at the top of `advance`.
    wait_since: Option<(SimTime, PhaseKind)>,
    /// Which rank's action ends the current park (message source or
    /// barrier trigger). Set by `deliver` / the barrier release and
    /// consumed together with `wait_since`.
    wake_cause: Option<u32>,
    /// Dispatch lineage of the rank's current head event under elision
    /// (unused and empty on the event path).
    chain: Chain,
}

#[derive(Default)]
struct HwBarrierState {
    waiting: Vec<usize>,
}

/// The causal dispatch lineage of one would-be engine event under
/// elision: the firing instants of its ancestor chain (root start event
/// → … → the event itself) plus, per derived link, the insertion index
/// within the parent's dispatch. This is exactly the information the
/// event path encodes in scheduling seq numbers, reconstructed so that
/// same-instant pending sends can be drained in the reference engine's
/// tie order (see [`Chain::cmp_same_instant`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Chain {
    /// Firing instants, root first, own instant last.
    instants: Vec<SimTime>,
    /// Rank of the root start event (initial events are scheduled in
    /// rank order before the run).
    root: u32,
    /// For each derived element, how many events its parent's dispatch
    /// inserted before it (e.g. `post_send` inserts the delivery at 0
    /// and the CPU release at 1; a barrier release inserts one resume
    /// per waiter in arrival order).
    js: Vec<u32>,
}

impl Chain {
    /// A fresh chain rooted at rank `root`'s start event.
    fn start(root: u32, at: SimTime) -> Chain {
        Chain {
            instants: vec![at],
            root,
            js: Vec::new(),
        }
    }

    /// Extends the chain by one derived event.
    fn push(&mut self, at: SimTime, j: u32) {
        self.instants.push(at);
        self.js.push(j);
    }

    /// Reference-engine firing order between two events at the *same*
    /// instant. The engine fires ties in insertion order, and an event is
    /// inserted during its parent's dispatch, so the youngest differing
    /// ancestor instant decides (earlier dispatch → earlier insertion);
    /// a chain that bottoms out first reached a start event, which is
    /// scheduled before any derived event; equal-depth identical-instant
    /// chains compare their start ranks, then the intra-dispatch
    /// insertion indices root-first — the flattened form of the engine's
    /// recursive `(parent order, insertion index)` seq assignment.
    fn cmp_same_instant(&self, other: &Chain) -> std::cmp::Ordering {
        let a = &self.instants[..self.instants.len() - 1];
        let b = &other.instants[..other.instants.len() - 1];
        // Symmetric schedules tie with bitwise-identical histories almost
        // every comparison; a vectorized slice equality dodges the
        // element-wise walk (equal slices fall through to root/js anyway).
        if a == b {
            return self
                .root
                .cmp(&other.root)
                .then_with(|| self.js.cmp(&other.js));
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                std::cmp::Ordering::Equal => {}
                ord => return ord,
            }
        }
        a.len()
            .cmp(&b.len())
            .then(self.root.cmp(&other.root))
            .then_with(|| self.js.cmp(&other.js))
    }
}

/// One analytically-advanced send awaiting network execution, ordered by
/// `(posted, lineage)` — exactly the order the event path would have
/// fired the corresponding [`TypedEvent::ScheduleStep`]s, so draining
/// the heap acquires link/FIFO watermarks in the reference order even
/// when elided walks produced the sends out of virtual-time order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingSend {
    /// The instant the sender's CPU hands the payload to the network
    /// (`o_send` after the rank reached the Send step).
    posted: SimTime,
    /// Dispatch lineage of the would-be `ScheduleStep`, breaking
    /// same-instant ties in the event path's insertion order.
    chain: Chain,
    /// Creation sequence: a cheap final disambiguator keeping the order
    /// total.
    pseq: u64,
    /// Sending rank.
    rank: u32,
    /// Tape index of the Send entry (re-read at drain time).
    step: u32,
}

impl Ord for PendingSend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.posted
            .cmp(&other.posted)
            .then_with(|| self.chain.cmp_same_instant(&other.chain))
            .then_with(|| self.pseq.cmp(&other.pseq))
    }
}

impl PartialOrd for PendingSend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct World {
    spec: MachineSpec,
    net: NetState,
    ranks: Vec<RankState>,
    barrier: HwBarrierState,
    finish: Vec<Vec<SimTime>>,
    trace: Option<Vec<MessageTrace>>,
    trace_cap: usize,
    dropped: u64,
    /// Phase-span sink, allocated only under [`execute_observed`].
    spans: Option<Vec<PhaseSpan>>,
    /// See [`TieBreakPolicy::InvertAll`].
    invert_ties: bool,
    /// Event-elision fast path engaged ([`ExecConfig::elide`]).
    elide: bool,
    /// Sends produced by analytic walks, not yet executed on the network.
    pending: BinaryHeap<Reverse<PendingSend>>,
    /// Next [`PendingSend::pseq`].
    pseq: u64,
    /// Firing instant of the earliest outstanding
    /// [`TypedEvent::BulkComplete`], so [`drain`] posts at most one per
    /// distinct instant instead of one per deferred send.
    next_bulk: Option<SimTime>,
    /// Synthetic canonical event stream: elided runs fire almost no
    /// engine events, so when the caller asked for an event log the
    /// walks reconstruct the reference stream here (same multiset of
    /// `(at, kind, payload)`; seq numbering and emission order are the
    /// walk's, not the engine's).
    synth_log: Option<EventLog>,
    /// Next synthetic log seq.
    synth_seq: u64,
    /// Hardware-barrier arrivals under elision: `(rank, virtual arrival)`
    /// in walk order; resolved when all ranks have arrived.
    barrier_arrivals: Vec<(usize, SimTime)>,
}

impl EventWorld for World {
    /// The executor's entire event vocabulary, dispatched by `match` —
    /// this is the per-event hot path of every simulation.
    fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
        if self.elide {
            match ev {
                TypedEvent::RankResume { rank } => {
                    // Only the per-rank start events reach here; every
                    // later resume is applied inline by `walk`.
                    synth(self, s.now(), EventKind::RankResume, rank as u64, 0);
                    self.ranks[rank as usize].chain = Chain::start(rank, s.now());
                    walk(self, rank as usize, s.now());
                }
                TypedEvent::BulkComplete { .. } => {
                    if self.next_bulk == Some(s.now()) {
                        self.next_bulk = None;
                    }
                }
                other => unreachable!("elided executor never posts {other:?}"),
            }
            drain(s, self);
            return;
        }
        match ev {
            TypedEvent::RankResume { rank } => advance(s, self, rank as usize),
            TypedEvent::MessageReady { src, dst } => deliver(s, self, src as usize, dst as usize),
            TypedEvent::ScheduleStep { rank, step } => {
                post_send(s, self, rank as usize, step as usize);
            }
            other => unreachable!("executor never posts {other:?}"),
        }
    }
}

/// Executes `segments` back to back on a fresh network state.
///
/// # Errors
///
/// Returns [`SimMpiError`] if a schedule fails validation, rank counts
/// disagree across segments, or the start-time vector has the wrong
/// length.
///
/// # Panics
///
/// Panics if the engine's runaway-event backstop trips (indicates an
/// executor bug, not user error).
pub fn execute(
    spec: &MachineSpec,
    segments: &[&Schedule],
    cfg: &ExecConfig,
) -> Result<ExecOutcome, SimMpiError> {
    execute_inner(spec, segments, cfg, false).map(|(out, _)| out)
}

/// Executes like [`execute`] but with full observability: phase spans
/// for every rank, per-link/per-class network instrumentation, and
/// engine queue statistics. Implies message tracing.
///
/// Costs one allocation per span/message — use [`execute`] in
/// measurement hot loops.
///
/// # Errors
///
/// Same conditions as [`execute`].
pub fn execute_observed(
    spec: &MachineSpec,
    segments: &[&Schedule],
    cfg: &ExecConfig,
) -> Result<(ExecOutcome, Observed), SimMpiError> {
    execute_inner(spec, segments, cfg, true)
        .map(|(out, obs)| (out, obs.expect("observed run collects instrumentation")))
}

fn execute_inner(
    spec: &MachineSpec,
    segments: &[&Schedule],
    cfg: &ExecConfig,
    observe: bool,
) -> Result<(ExecOutcome, Option<Observed>), SimMpiError> {
    let Some(first) = segments.first() else {
        return Err(SimMpiError::EmptySequence);
    };
    let p = first.ranks();
    // Validate each *distinct* schedule once: measurement sequences repeat
    // the same collective 20+ times, and re-walking its steps per segment
    // would dominate small runs.
    let mut checked: Vec<*const Schedule> = Vec::new();
    for seg in segments {
        if seg.ranks() != p {
            return Err(SimMpiError::SizeMismatch {
                schedule: seg.ranks(),
                communicator: p,
            });
        }
        let key: *const Schedule = *seg;
        if !cfg.skip_validation && !checked.contains(&key) {
            seg.check()?;
            checked.push(key);
        }
    }
    let start = match &cfg.start_times {
        Some(v) => {
            if v.len() != p {
                return Err(SimMpiError::BadStartTimes {
                    got: v.len(),
                    expected: p,
                });
            }
            v.clone()
        }
        None => vec![SimTime::ZERO; p],
    };

    let (node_table, machine_nodes) = match &cfg.group {
        Some((explicit, machine_nodes)) => {
            if explicit.ranks() != p {
                return Err(SimMpiError::SizeMismatch {
                    schedule: p,
                    communicator: explicit.ranks(),
                });
            }
            (explicit.table().to_vec(), *machine_nodes)
        }
        None => (cfg.placement.table(p).map_err(SimMpiError::InvalidSpec)?, p),
    };
    let mut noise_rng = cfg
        .cpu_noise
        .map(|n| (n.amplitude, SplitMix64::new(n.seed)));

    // Build per-rank tapes: entry marker + steps per segment, then the
    // segment-end timestamp marker. The schedule's stepping hook
    // (`Schedule::steps_of`) sizes each tape up front so the build loop
    // never reallocates.
    let tape_cap: Vec<usize> = (0..p)
        .map(|r| {
            segments
                .iter()
                .map(|seg| seg.steps_of(collectives::Rank(r)) + 2)
                .sum()
        })
        .collect();
    let mut ranks: Vec<RankState> = (0..p)
        .map(|r| RankState {
            tape: Vec::with_capacity(tape_cap[r]),
            pc: 0,
            blocked_on: None,
            mailbox: vec![VecDeque::new(); p],
            slowdown: match &mut noise_rng {
                Some((amp, rng)) => 1.0 + *amp * rng.next_f64(),
                None => 1.0,
            },
            node: node_table[r],
            sw: SimDuration::ZERO,
            blocked: SimDuration::ZERO,
            wait_since: None,
            wake_cause: None,
            chain: Chain::default(),
        })
        .collect();
    for (si, seg) in segments.iter().enumerate() {
        for (rank, prog) in seg.iter() {
            let tape = &mut ranks[rank.0].tape;
            tape.push(Tape::Entry(seg.class()));
            tape.extend(prog.iter().map(|&st| Tape::Op(st, seg.class())));
            tape.push(Tape::SegEnd(si));
        }
    }

    // The elision walks apply continuations inline in the committed
    // insertion order; the perturbation tie-break policies exist to
    // reorder exactly those events, so they force the event path.
    let elide = cfg.elide && cfg.tie_break == TieBreakPolicy::InsertionOrder;
    let mut world = World {
        spec: spec.clone(),
        net: NetState::with_config(spec, machine_nodes, cfg.wire),
        ranks,
        barrier: HwBarrierState::default(),
        finish: vec![vec![SimTime::ZERO; p]; segments.len()],
        trace: (cfg.record_trace || observe).then(Vec::new),
        trace_cap: cfg.trace_limit.unwrap_or(DEFAULT_TRACE_LIMIT),
        dropped: 0,
        spans: observe.then(Vec::new),
        invert_ties: cfg.tie_break == TieBreakPolicy::InvertAll,
        elide,
        pending: BinaryHeap::new(),
        pseq: 0,
        next_bulk: None,
        synth_log: (elide && cfg.event_log).then(EventLog::default),
        synth_seq: 0,
        barrier_arrivals: Vec::new(),
    };
    if observe {
        world.net.enable_instrumentation();
    }
    let mut engine: Engine<World> = Engine::new();
    if cfg.profile {
        engine = engine.with_profiling();
    }
    if cfg.provenance && !elide {
        engine = engine.with_provenance();
    }
    if cfg.event_log && !elide {
        engine = engine.with_event_log();
    }
    if let TieBreakPolicy::InvertPair {
        at_ns,
        first_seq,
        second_seq,
    } = cfg.tie_break
    {
        engine = engine.with_tie_swap(SimTime::from_nanos(at_ns), first_seq, second_seq);
    }
    for (r, &t) in start.iter().enumerate() {
        engine.post_at(t, TypedEvent::RankResume { rank: r as u32 });
    }
    engine.run(&mut world);

    // Every rank must have drained its tape; anything else is a deadlock
    // that validation would have caught (reachable only via
    // `skip_validation`, so it is a typed error, not a panic — the
    // schedcheck property tests rely on observing it).
    for (r, rs) in world.ranks.iter().enumerate() {
        if rs.pc != rs.tape.len() {
            return Err(SimMpiError::RankStalled {
                rank: r,
                step: rs.pc,
                of: rs.tape.len(),
            });
        }
    }

    let link_loads = if cfg.record_trace || observe {
        world
            .net
            .link_loads()
            .into_iter()
            .map(|(id, busy)| (id.0, busy))
            .collect()
    } else {
        Vec::new()
    };
    let (fifo_updates, fifo_commits) = world.net.fifo_update_stats();
    let observed = observe.then(|| Observed {
        spans: world.spans.take().unwrap_or_default(),
        net: world.net.instrumentation().cloned().unwrap_or_default(),
        queue_high_water: engine.queue_high_water(),
        event_stats: engine.event_stats(),
        fifo_updates,
        fifo_commits,
        engine_profile: engine.profile().cloned(),
        provenance: engine.provenance().cloned(),
        event_log: engine
            .event_log()
            .cloned()
            .or_else(|| world.synth_log.take()),
        tie_swap_applied: engine.tie_swap_applied(),
        elide: world.net.elide_stats(),
    });
    let phases = world
        .ranks
        .iter()
        .map(|rs| RankPhases {
            sw: rs.sw,
            blocked: rs.blocked,
        })
        .collect();
    Ok((
        ExecOutcome {
            start,
            finish: world.finish,
            messages: world.net.messages_sent(),
            bytes: world.net.bytes_sent(),
            events: engine.events_fired(),
            trace: world.trace.unwrap_or_default(),
            dropped_messages: world.dropped,
            link_loads,
            phases,
        },
        observed,
    ))
}

/// The typed wakeup event for rank `r` ([`TypedEvent::RankResume`]).
fn resume(r: usize) -> TypedEvent {
    TypedEvent::RankResume { rank: r as u32 }
}

/// Records an attributed span when running observed; free otherwise.
fn push_span(w: &mut World, rank: usize, kind: PhaseKind, start: SimTime, end: SimTime) {
    push_span_woke(w, rank, kind, start, end, None);
}

/// Like [`push_span`], carrying the causal wake source for blocked spans.
fn push_span_woke(
    w: &mut World,
    rank: usize,
    kind: PhaseKind,
    start: SimTime,
    end: SimTime,
    woke_by: Option<u32>,
) {
    if let Some(spans) = &mut w.spans {
        if end > start {
            spans.push(PhaseSpan {
                rank,
                kind,
                start,
                end,
                woke_by,
            });
        }
    }
}

/// Scales a CPU-side duration by the rank's interference slowdown.
fn cpu_charge(w: &World, r: usize, d: SimDuration) -> SimDuration {
    let f = w.ranks[r].slowdown;
    if f == 1.0 {
        d
    } else {
        SimDuration::from_nanos_f64(d.as_nanos() as f64 * f)
    }
}

/// Advances rank `r`'s tape at the current instant until it blocks,
/// schedules a continuation, or finishes.
fn advance(s: &mut Scheduler<World>, w: &mut World, r: usize) {
    let now = s.now();
    // If the rank was parked (recv wait / barrier wait), the wakeup that
    // runs this advance ends the wait: attribute the idle stretch.
    if let Some((t0, kind)) = w.ranks[r].wait_since.take() {
        let woke = w.ranks[r].wake_cause.take();
        w.ranks[r].blocked += now.since(t0);
        push_span_woke(w, r, kind, t0, now, woke);
    }
    loop {
        let Some(&item) = w.ranks[r].tape.get(w.ranks[r].pc) else {
            return; // tape complete
        };
        match item {
            Tape::SegEnd(idx) => {
                w.finish[idx][r] = now;
                w.ranks[r].pc += 1;
            }
            Tape::Entry(class) => {
                w.ranks[r].pc += 1;
                let d = cpu_charge(w, r, w.spec.entry_overhead(class));
                if !d.is_zero() {
                    w.ranks[r].sw += d;
                    push_span(w, r, PhaseKind::Entry, now, now + d);
                    s.post_in(d, resume(r));
                    return;
                }
            }
            Tape::Op(step, class) => match step {
                Step::Send { .. } => {
                    let pc = w.ranks[r].pc;
                    w.ranks[r].pc += 1;
                    let o = cpu_charge(w, r, w.spec.send_overhead(class));
                    w.ranks[r].sw += o;
                    push_span(w, r, PhaseKind::SendOverhead, now, now + o);
                    // Perform the network send at exactly now + o so that
                    // link resources are acquired in true time order. The
                    // event carries only the tape position; `post_send`
                    // re-reads the step — the rank is parked until its
                    // CPU-release event, so the tape entry cannot change
                    // underneath the deferred event.
                    s.post_in(
                        o,
                        TypedEvent::ScheduleStep {
                            rank: r as u32,
                            step: u32::try_from(pc).expect("tape index fits u32"),
                        },
                    );
                    return;
                }
                Step::Recv { from, bytes } => {
                    let queued = w.ranks[r].mailbox[from.0].pop_front();
                    match queued {
                        Some(arrived) => {
                            w.ranks[r].pc += 1;
                            let o = cpu_charge(w, r, w.spec.recv_overhead(class, bytes));
                            let begin = now.max(arrived);
                            w.ranks[r].blocked += begin.since(now);
                            w.ranks[r].sw += o;
                            push_span_woke(
                                w,
                                r,
                                PhaseKind::RecvWait,
                                now,
                                begin,
                                Some(from.0 as u32),
                            );
                            push_span(w, r, PhaseKind::RecvOverhead, begin, begin + o);
                            s.post_at(begin + o, resume(r));
                        }
                        None => {
                            w.ranks[r].blocked_on = Some(from.0);
                            w.ranks[r].wait_since = Some((now, PhaseKind::RecvWait));
                        }
                    }
                    return;
                }
                Step::Compute { bytes } => {
                    w.ranks[r].pc += 1;
                    let d = cpu_charge(w, r, w.spec.compute_cost(bytes));
                    if !d.is_zero() {
                        w.ranks[r].sw += d;
                        push_span(w, r, PhaseKind::Compute, now, now + d);
                        s.post_in(d, resume(r));
                        return;
                    }
                }
                Step::HwBarrier => {
                    w.ranks[r].pc += 1;
                    w.ranks[r].wait_since = Some((now, PhaseKind::BarrierWait));
                    w.barrier.waiting.push(r);
                    if w.barrier.waiting.len() == w.ranks.len() {
                        let latency = w
                            .spec
                            .hw_barrier
                            .map(|hb| SimDuration::from_micros_f64(hb.latency_us(w.ranks.len())))
                            .unwrap_or(SimDuration::ZERO);
                        let release = now + latency;
                        for waiter in std::mem::take(&mut w.barrier.waiting) {
                            // The last arrival (this rank) triggers the
                            // release: it is the causal wake source for
                            // every waiter, including itself.
                            w.ranks[waiter].wake_cause = Some(r as u32);
                            s.post_at(release, resume(waiter));
                        }
                    }
                    return;
                }
            },
        }
    }
}

/// Executes the deferred network send at tape position `step` on rank
/// `r` — the [`TypedEvent::ScheduleStep`] handler, firing exactly
/// `o_send` after the rank charged its send overhead.
fn post_send(s: &mut Scheduler<World>, w: &mut World, r: usize, step: usize) {
    let Some(&Tape::Op(Step::Send { to, bytes }, class)) = w.ranks[r].tape.get(step) else {
        unreachable!("ScheduleStep must point at a Send tape entry");
    };
    let posted = s.now();
    let src_node = w.ranks[r].node;
    let dst_node = w.ranks[to.0].node;
    let World { spec, net, .. } = w;
    let t = net.send(spec, class, src_node, dst_node, bytes, posted);
    // The stretch until the CPU is released is the payload copy / engine
    // setup: software time.
    w.ranks[r].sw += t.cpu_release.since(posted);
    push_span(w, r, PhaseKind::Copy, posted, t.cpu_release);
    if let Some(trace) = &mut w.trace {
        if trace.len() < w.trace_cap {
            trace.push(MessageTrace {
                src: r,
                dst: to.0,
                bytes,
                class,
                posted,
                wire_start: t.cpu_release,
                delivered: t.delivered,
                inject_wait: t.inject_wait,
                link_wait: t.link_wait,
            });
        } else {
            w.dropped += 1;
        }
    }
    // Delivery first, CPU release second — FIFO tie-breaking depends on
    // this insertion order when the two instants coincide. (Delivering
    // eagerly at post time instead would invert same-instant tie-breaks
    // and reorder FIFO link acquisition — the timeline must be identical
    // to the per-event reference, so the arrival stays an event.)
    // `invert_ties` reverses the order on purpose, reproducing that
    // eager-delivery failure mode for differential testing.
    if w.invert_ties {
        let (at, ev) = t.release_event(r);
        s.post_at(at, ev);
        let (at, ev) = t.delivery_event(r, to.0);
        s.post_at(at, ev);
    } else {
        let (at, ev) = t.delivery_event(r, to.0);
        s.post_at(at, ev);
        let (at, ev) = t.release_event(r);
        s.post_at(at, ev);
    }
}

/// Handles a payload arrival at `dst` from `src` at the current instant.
fn deliver(s: &mut Scheduler<World>, w: &mut World, src: usize, dst: usize) {
    let now = s.now();
    w.ranks[dst].mailbox[src].push_back(now);
    if w.ranks[dst].blocked_on == Some(src) {
        w.ranks[dst].blocked_on = None;
        w.ranks[dst].wake_cause = Some(src as u32);
        advance(s, w, dst);
    }
}

/// Appends to the synthetic event log when one was requested; free
/// otherwise. Only the reference vocabulary is synthesized —
/// `BulkComplete` itself never appears, so differential tooling sees the
/// same logical stream an event-by-event run would record.
fn synth(w: &mut World, at: SimTime, kind: EventKind, a: u64, b: u64) {
    if let Some(log) = &mut w.synth_log {
        let seq = w.synth_seq;
        w.synth_seq += 1;
        log.append(LoggedEvent {
            seq,
            at,
            kind,
            a,
            b,
        });
    }
}

/// Advances rank `r`'s tape analytically from virtual time `vt` — the
/// event-elision counterpart of [`advance`]. Continuations the event
/// path would post as engine events are applied inline (and mirrored
/// into the synthetic log); network sends are *never* executed here but
/// deferred onto the pending heap, because a send's watermark commits
/// must happen in global posted order, which a single rank's walk cannot
/// know. Returns when the rank parks on an unfulfilled receive, joins a
/// still-filling barrier, or completes its tape.
fn walk(w: &mut World, r: usize, vt: SimTime) {
    let mut vt = vt;
    loop {
        let Some(&item) = w.ranks[r].tape.get(w.ranks[r].pc) else {
            return; // tape complete
        };
        match item {
            Tape::SegEnd(idx) => {
                w.finish[idx][r] = vt;
                w.ranks[r].pc += 1;
            }
            Tape::Entry(class) => {
                w.ranks[r].pc += 1;
                let d = cpu_charge(w, r, w.spec.entry_overhead(class));
                if !d.is_zero() {
                    w.ranks[r].sw += d;
                    push_span(w, r, PhaseKind::Entry, vt, vt + d);
                    vt += d;
                    synth(w, vt, EventKind::RankResume, r as u64, 0);
                    w.ranks[r].chain.push(vt, 0);
                }
            }
            Tape::Op(step, class) => match step {
                Step::Send { bytes, .. } => {
                    let pc = w.ranks[r].pc;
                    w.ranks[r].pc += 1;
                    let o = cpu_charge(w, r, w.spec.send_overhead(class));
                    w.ranks[r].sw += o;
                    push_span(w, r, PhaseKind::SendOverhead, vt, vt + o);
                    let posted = vt + o;
                    synth(w, posted, EventKind::ScheduleStep, r as u64, pc as u64);
                    w.ranks[r].chain.push(posted, 0);
                    let ss_chain = w.ranks[r].chain.clone();
                    // The CPU-release instant depends only on the engine
                    // model, never on link/FIFO occupancy, so the walk
                    // continues past the send without executing it.
                    let timing = w.spec.engine_timing(class, bytes, posted);
                    w.ranks[r].sw += timing.cpu_release.since(posted);
                    push_span(w, r, PhaseKind::Copy, posted, timing.cpu_release);
                    synth(w, timing.cpu_release, EventKind::RankResume, r as u64, 0);
                    // `post_send` inserts the delivery at index 0, the
                    // CPU release at index 1.
                    w.ranks[r].chain.push(timing.cpu_release, 1);
                    let pseq = w.pseq;
                    w.pseq += 1;
                    w.pending.push(Reverse(PendingSend {
                        posted,
                        chain: ss_chain,
                        pseq,
                        rank: r as u32,
                        step: u32::try_from(pc).expect("tape index fits u32"),
                    }));
                    vt = timing.cpu_release;
                }
                Step::Recv { from, bytes } => {
                    match w.ranks[r].mailbox[from.0].pop_front() {
                        Some(arrived) => {
                            // The mailbox may hold a *future* timestamp:
                            // drains deliver eagerly in real time, so the
                            // wait the event path would have parked
                            // through is reconstructed from `arrived`.
                            w.ranks[r].pc += 1;
                            let o = cpu_charge(w, r, w.spec.recv_overhead(class, bytes));
                            let begin = vt.max(arrived);
                            w.ranks[r].blocked += begin.since(vt);
                            w.ranks[r].sw += o;
                            push_span_woke(
                                w,
                                r,
                                PhaseKind::RecvWait,
                                vt,
                                begin,
                                Some(from.0 as u32),
                            );
                            push_span(w, r, PhaseKind::RecvOverhead, begin, begin + o);
                            vt = begin + o;
                            synth(w, vt, EventKind::RankResume, r as u64, 0);
                            w.ranks[r].chain.push(vt, 0);
                        }
                        None => {
                            w.ranks[r].blocked_on = Some(from.0);
                            w.ranks[r].wait_since = Some((vt, PhaseKind::RecvWait));
                            return;
                        }
                    }
                }
                Step::Compute { bytes } => {
                    w.ranks[r].pc += 1;
                    let d = cpu_charge(w, r, w.spec.compute_cost(bytes));
                    if !d.is_zero() {
                        w.ranks[r].sw += d;
                        push_span(w, r, PhaseKind::Compute, vt, vt + d);
                        vt += d;
                        synth(w, vt, EventKind::RankResume, r as u64, 0);
                        w.ranks[r].chain.push(vt, 0);
                    }
                }
                Step::HwBarrier => {
                    w.ranks[r].pc += 1;
                    w.barrier_arrivals.push((r, vt));
                    if w.barrier_arrivals.len() == w.ranks.len() {
                        let mut arrivals = std::mem::take(&mut w.barrier_arrivals);
                        // Reference arrival order: virtual instant, then
                        // the engine's same-instant dispatch order.
                        let ranks = &w.ranks;
                        arrivals.sort_by(|&(ra, ta), &(rb, tb)| {
                            ta.cmp(&tb)
                                .then_with(|| ranks[ra].chain.cmp_same_instant(&ranks[rb].chain))
                        });
                        let &(trigger, last_at) = arrivals.last().expect("all ranks arrived");
                        let trigger_chain = w.ranks[trigger].chain.clone();
                        let latency = w
                            .spec
                            .hw_barrier
                            .map(|hb| SimDuration::from_micros_f64(hb.latency_us(w.ranks.len())))
                            .unwrap_or(SimDuration::ZERO);
                        let release = last_at + latency;
                        for (j, &(waiter, at)) in arrivals.iter().enumerate() {
                            w.ranks[waiter].blocked += release.since(at);
                            push_span_woke(
                                w,
                                waiter,
                                PhaseKind::BarrierWait,
                                at,
                                release,
                                Some(trigger as u32),
                            );
                            synth(w, release, EventKind::RankResume, waiter as u64, 0);
                            // All release resumes are inserted during the
                            // trigger's dispatch, in arrival order.
                            let mut chain = trigger_chain.clone();
                            chain.push(release, u32::try_from(j).expect("rank count fits u32"));
                            w.ranks[waiter].chain = chain;
                        }
                        for &(waiter, _) in &arrivals {
                            walk(w, waiter, release);
                        }
                    }
                    return;
                }
            },
        }
    }
}

/// Executes one deferred send on the network — the elision counterpart
/// of [`post_send`] plus [`deliver`]: the arrival needs no engine event
/// because the payload timestamp lands straight in the mailbox, and a
/// receiver parked on it resumes its analytic walk immediately.
fn run_pending_send(w: &mut World, ps: PendingSend) {
    let r = ps.rank as usize;
    let Some(&Tape::Op(Step::Send { to, bytes }, class)) = w.ranks[r].tape.get(ps.step as usize)
    else {
        unreachable!("pending send must point at a Send tape entry");
    };
    let posted = ps.posted;
    let src_node = w.ranks[r].node;
    let dst_node = w.ranks[to.0].node;
    let World { spec, net, .. } = w;
    let t = net.send_elided(spec, class, src_node, dst_node, bytes, posted);
    if let Some(trace) = &mut w.trace {
        if trace.len() < w.trace_cap {
            trace.push(MessageTrace {
                src: r,
                dst: to.0,
                bytes,
                class,
                posted,
                wire_start: t.cpu_release,
                delivered: t.delivered,
                inject_wait: t.inject_wait,
                link_wait: t.link_wait,
            });
        } else {
            w.dropped += 1;
        }
    }
    synth(
        w,
        t.delivered,
        EventKind::MessageReady,
        r as u64,
        to.0 as u64,
    );
    let dst = to.0;
    w.ranks[dst].mailbox[r].push_back(t.delivered);
    if w.ranks[dst].blocked_on == Some(r) {
        w.ranks[dst].blocked_on = None;
        let (park_vt, kind) = w.ranks[dst]
            .wait_since
            .take()
            .expect("parked rank records its wait start");
        // Would the event path have parked this rank? Only if the rank's
        // resume reaching the Recv fired before the delivery: then the
        // receive continuation is inserted during the delivery's
        // dispatch, so the rank's lineage reroutes through the message;
        // otherwise the mailbox was already full when the rank got there
        // and its own chain continues.
        let parked_first = match park_vt.cmp(&t.delivered) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                let mut mr_chain = ps.chain.clone();
                mr_chain.push(t.delivered, 0);
                w.ranks[dst].chain.cmp_same_instant(&mr_chain) == std::cmp::Ordering::Less
            }
        };
        if parked_first {
            let mut chain = ps.chain;
            chain.push(t.delivered, 0);
            w.ranks[dst].chain = chain;
        }
        let begin = park_vt.max(t.delivered);
        w.ranks[dst].blocked += begin.since(park_vt);
        push_span_woke(w, dst, kind, park_vt, begin, Some(r as u32));
        walk(w, dst, begin);
    }
}

/// Drains every pending send whose posted instant is provably final —
/// strictly earlier than any event still in the engine queue, so no
/// future dispatch can create an earlier-posted send — then parks the
/// remainder behind a single [`TypedEvent::BulkComplete`] at the head's
/// posted instant. Draining can wake parked receivers whose walks push
/// further sends, so the loop re-examines the heap until it is empty or
/// blocked on the horizon.
fn drain(s: &mut Scheduler<World>, w: &mut World) {
    loop {
        let Some(Reverse(head)) = w.pending.peek() else {
            return;
        };
        let (posted, rank, step) = (head.posted, head.rank, head.step);
        match s.horizon() {
            Some(h) if posted >= h => {
                if w.next_bulk.is_none_or(|at| at > posted) {
                    s.post_at(posted, TypedEvent::BulkComplete { rank, step });
                    w.next_bulk = Some(posted);
                }
                return;
            }
            _ => {
                let Reverse(ps) = w.pending.pop().expect("peeked head exists");
                run_pending_send(w, ps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::{barrier, bcast, scatter, Rank};
    use netmodel::{sp2, t3d};

    fn run(spec: &MachineSpec, s: &Schedule) -> ExecOutcome {
        execute(spec, &[s], &ExecConfig::default()).expect("execution")
    }

    #[test]
    fn empty_sequence_rejected() {
        let e = execute(&sp2(), &[], &ExecConfig::default()).unwrap_err();
        assert_eq!(e, SimMpiError::EmptySequence);
    }

    #[test]
    fn invalid_schedule_rejected() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(
            Rank(0),
            Step::Recv {
                from: Rank(1),
                bytes: 4,
            },
        );
        let e = execute(&sp2(), &[&s], &ExecConfig::default()).unwrap_err();
        assert!(matches!(e, SimMpiError::BadSchedule(_)));
    }

    #[test]
    fn unvalidated_deadlock_returns_typed_stall() {
        // With validation skipped, a deadlocking schedule must surface
        // as a typed RankStalled error rather than a panic.
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(
            Rank(0),
            Step::Recv {
                from: Rank(1),
                bytes: 4,
            },
        );
        s.push(
            Rank(1),
            Step::Recv {
                from: Rank(0),
                bytes: 4,
            },
        );
        let e = execute(
            &sp2(),
            &[&s],
            &ExecConfig {
                skip_validation: true,
                ..ExecConfig::default()
            },
        )
        .unwrap_err();
        match &e {
            SimMpiError::RankStalled { rank, step, of } => {
                assert_eq!(*rank, 0);
                assert!(step < of, "stall must be mid-tape: {step}/{of}");
            }
            other => panic!("expected RankStalled, got {other:?}"),
        }
        assert!(e.to_string().contains("stalled"));
    }

    #[test]
    fn bcast_executes_and_orders_ranks() {
        let spec = sp2();
        let s = bcast::binomial(8, Rank(0), 1024);
        let out = run(&spec, &s);
        // Root finishes its sends before the deepest leaf gets the data.
        assert!(out.finish[0][0] < out.finish[0][7]);
        assert_eq!(out.messages, 7);
        assert_eq!(out.bytes, 7 * 1024);
        assert!(out.completed() > SimTime::ZERO);
    }

    #[test]
    fn deeper_trees_take_longer() {
        let spec = sp2();
        let t8 = run(&spec, &bcast::binomial(8, Rank(0), 1024)).completed();
        let t64 = run(&spec, &bcast::binomial(64, Rank(0), 1024)).completed();
        assert!(t64 > t8);
    }

    #[test]
    fn hw_barrier_releases_all_at_once() {
        let spec = t3d();
        let s = barrier::hardware(16);
        let skew: Vec<SimTime> = (0..16)
            .map(|i| SimTime::from_nanos(i as u64 * 500))
            .collect();
        let out = execute(
            &spec,
            &[&s],
            &ExecConfig {
                start_times: Some(skew),
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let finishes = &out.finish[0];
        let first = finishes[0];
        assert!(finishes.iter().all(|&f| f == first), "single release time");
        // Release = last arrival (7.5us) + ~3us hardware latency.
        let expect_us = 7.5 + 3.0 + 0.011 * 4.0;
        assert!((first.as_micros_f64() - expect_us).abs() < 0.1);
    }

    #[test]
    fn hw_barrier_without_hardware_is_instant_sync() {
        let spec = sp2(); // no hw barrier: latency 0, still synchronizes
        let s = barrier::hardware(4);
        let out = run(&spec, &s);
        let f = &out.finish[0];
        assert!(f.iter().all(|&t| t == f[0]));
    }

    #[test]
    fn sequence_segments_flow_without_sync() {
        let spec = sp2();
        let b = barrier::dissemination(4);
        let c = bcast::binomial(4, Rank(0), 64);
        let out = execute(&spec, &[&b, &c, &c], &ExecConfig::default()).unwrap();
        assert_eq!(out.finish.len(), 3);
        for r in 0..4 {
            assert!(out.finish[0][r] <= out.finish[1][r]);
            assert!(out.finish[1][r] <= out.finish[2][r]);
            assert!(out.rank_segment_time(1, r) > SimDuration::ZERO);
        }
    }

    #[test]
    fn start_time_length_checked() {
        let spec = sp2();
        let s = bcast::binomial(4, Rank(0), 64);
        let e = execute(
            &spec,
            &[&s],
            &ExecConfig {
                start_times: Some(vec![SimTime::ZERO; 3]),
                ..ExecConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            e,
            SimMpiError::BadStartTimes {
                got: 3,
                expected: 4
            }
        ));
    }

    #[test]
    fn mismatched_segment_sizes_rejected() {
        let spec = sp2();
        let a = bcast::binomial(4, Rank(0), 64);
        let b = bcast::binomial(8, Rank(0), 64);
        let e = execute(&spec, &[&a, &b], &ExecConfig::default()).unwrap_err();
        assert!(matches!(e, SimMpiError::SizeMismatch { .. }));
    }

    #[test]
    fn scatter_root_serializes_sends() {
        // Root-side O(p) behaviour: doubling p roughly doubles the
        // scatter time for fixed m.
        let spec = sp2();
        let t16 = run(&spec, &scatter::linear(16, Rank(0), 4096)).completed();
        let t32 = run(&spec, &scatter::linear(32, Rank(0), 4096)).completed();
        let ratio = t32.as_micros_f64() / t16.as_micros_f64();
        assert!((1.5..=2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn execution_is_deterministic() {
        let spec = t3d();
        let s = collectives::alltoall::pairwise(16, 2048);
        let a = run(&spec, &s);
        let b = run(&spec, &s);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
    }

    fn span_sum(spans: &[PhaseSpan], r: usize, blocked: bool) -> SimDuration {
        spans
            .iter()
            .filter(|sp| sp.rank == r && sp.kind.is_blocked() == blocked)
            .fold(SimDuration::ZERO, |acc, sp| acc + sp.end.since(sp.start))
    }

    #[test]
    fn phase_split_partitions_rank_time() {
        for spec in [sp2(), t3d()] {
            for s in [
                bcast::binomial(16, Rank(0), 4096),
                collectives::alltoall::pairwise(8, 1024),
                barrier::dissemination(8),
                scatter::linear(8, Rank(0), 2048),
            ] {
                let out = run(&spec, &s);
                for r in 0..s.ranks() {
                    assert_eq!(
                        out.phases[r].sw + out.phases[r].blocked,
                        out.rank_elapsed(r),
                        "rank {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn phase_split_covers_barrier_waits() {
        let spec = t3d();
        let s = barrier::hardware(8);
        let skew: Vec<SimTime> = (0..8).map(SimTime::from_micros).collect();
        let out = execute(
            &spec,
            &[&s],
            &ExecConfig {
                start_times: Some(skew),
                ..ExecConfig::default()
            },
        )
        .unwrap();
        for r in 0..8 {
            assert_eq!(
                out.phases[r].sw + out.phases[r].blocked,
                out.rank_elapsed(r)
            );
        }
        // The earliest starter waits longest at the barrier.
        assert!(out.phases[0].blocked > out.phases[7].blocked);
    }

    #[test]
    fn trace_cap_drops_and_counts() {
        let spec = sp2();
        let s = collectives::alltoall::pairwise(8, 64);
        let out = execute(
            &spec,
            &[&s],
            &ExecConfig {
                record_trace: true,
                trace_limit: Some(5),
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.trace.len(), 5);
        assert_eq!(out.dropped_messages, out.messages - 5);
        let untraced = run(&spec, &s);
        assert!(untraced.trace.is_empty());
        assert_eq!(untraced.dropped_messages, 0);
    }

    #[test]
    fn observed_run_matches_plain_and_spans_sum_to_phases() {
        let spec = t3d();
        let s = bcast::binomial(16, Rank(0), 4096);
        let plain = run(&spec, &s);
        let (out, obs) = execute_observed(&spec, &[&s], &ExecConfig::default()).unwrap();
        // Observation must not perturb timing.
        assert_eq!(out.finish, plain.finish);
        assert_eq!(out.phases, plain.phases);
        assert!(obs.queue_high_water > 0);
        assert!(obs.net.link_msgs.iter().sum::<u64>() > 0);
        // The span timeline tiles each rank's sw/blocked split exactly.
        for r in 0..16 {
            assert_eq!(span_sum(&obs.spans, r, false), out.phases[r].sw);
            assert_eq!(span_sum(&obs.spans, r, true), out.phases[r].blocked);
        }
    }

    #[test]
    fn profiled_run_collects_engine_profile_without_perturbing() {
        let spec = t3d();
        let s = collectives::alltoall::pairwise(16, 2048);
        let plain = run(&spec, &s);
        let (out, obs) = execute_observed(
            &spec,
            &[&s],
            &ExecConfig {
                profile: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.finish, plain.finish, "profiling must not change timing");
        let prof = obs.engine_profile.expect("profile collected");
        assert!(prof.wall_ns() > 0);
        assert_eq!(prof.events_timed(), out.events);
        // Unprofiled observed runs carry no profile.
        let (_, obs2) = execute_observed(&spec, &[&s], &ExecConfig::default()).unwrap();
        assert!(obs2.engine_profile.is_none());
    }

    #[test]
    fn provenance_run_collects_chain_without_perturbing() {
        let spec = t3d();
        let s = collectives::alltoall::pairwise(16, 2048);
        let plain = run(&spec, &s);
        let (out, obs) = execute_observed(
            &spec,
            &[&s],
            &ExecConfig {
                provenance: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            out.finish, plain.finish,
            "provenance must not change timing"
        );
        assert_eq!(out.events, plain.events);
        let prov = obs.provenance.expect("provenance collected");
        assert_eq!(prov.len() as u64, out.events, "one record per event");
        // The final completion event chains back through real causality.
        let chain = prov.chain(prov.last_fired().expect("events fired"));
        assert!(chain.len() > 2, "chain depth {}", chain.len());
    }

    #[test]
    fn provenance_off_allocates_nothing_extra() {
        // The disabled provenance path must leave the event-allocation
        // profile byte-identical: same EventStats, zero dynamic events.
        let spec = t3d();
        let s = collectives::alltoall::pairwise(16, 2048);
        let observe = |provenance: bool| {
            let cfg = ExecConfig {
                provenance,
                ..ExecConfig::default()
            };
            execute_observed(&spec, &[&s], &cfg).unwrap().1
        };
        let off = observe(false);
        let on = observe(true);
        assert!(off.provenance.is_none());
        assert_eq!(off.event_stats, on.event_stats);
        assert_eq!(off.event_stats.dynamic, 0, "hot path stays allocation-free");
        assert_eq!(off.event_stats.continuations, 0);
    }

    /// Spot-check of the self-profiling, provenance, and event-log
    /// overhead claims (run manually):
    ///
    /// ```text
    /// cargo test -p mpisim --release -- --ignored --nocapture profiling_overhead
    /// ```
    ///
    /// Times a 64-node alltoall repeatedly with instrumentation off and
    /// on and prints the wall-clock ratios; each enabled path should stay
    /// within a couple percent of the disabled one, and the off path pays
    /// only one predictable branch per gated feature.
    #[test]
    #[ignore = "wall-clock measurement; run manually in release mode"]
    fn profiling_overhead_spotcheck() {
        let spec = t3d();
        let s = collectives::alltoall::pairwise(64, 4096);
        let time = |profile: bool, provenance: bool, event_log: bool| {
            let cfg = ExecConfig {
                profile,
                provenance,
                event_log,
                ..ExecConfig::default()
            };
            // Warmup, then best-of-5 timing batches to shed scheduler noise.
            for _ in 0..5 {
                execute_observed(&spec, &[&s], &cfg).unwrap();
            }
            let reps = 30;
            (0..5)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    for _ in 0..reps {
                        execute_observed(&spec, &[&s], &cfg).unwrap();
                    }
                    t0.elapsed().as_secs_f64() / reps as f64
                })
                .fold(f64::INFINITY, f64::min)
        };
        let off = time(false, false, false);
        let prof = time(true, false, false);
        let prov = time(false, true, false);
        let elog = time(false, false, true);
        println!(
            "instrumentation off {:.3} ms/run; profiling on {:.3} ms/run ({:+.2}%); \
             provenance on {:.3} ms/run ({:+.2}%); event log on {:.3} ms/run ({:+.2}%)",
            off * 1e3,
            prof * 1e3,
            (prof / off - 1.0) * 100.0,
            prov * 1e3,
            (prov / off - 1.0) * 100.0,
            elog * 1e3,
            (elog / off - 1.0) * 100.0
        );
        assert!(
            prof / off < 1.10,
            "profiling overhead {:.1}% >= 10%",
            (prof / off - 1.0) * 100.0
        );
        assert!(
            prov / off < 1.15,
            "provenance overhead {:.1}% >= 15%",
            (prov / off - 1.0) * 100.0
        );
        // Recording every fired event is real work (one slab push per
        // event), so the enabled path gets a looser budget; the
        // disabled path is the zero-cost claim and is covered by `off`
        // being the baseline all ratios compare against.
        assert!(
            elog / off < 1.25,
            "event-log overhead {:.1}% >= 25%",
            (elog / off - 1.0) * 100.0
        );
    }

    /// Spans in a canonical order (the elision path emits the same
    /// multiset but interleaves ranks differently).
    fn canon_spans(mut spans: Vec<PhaseSpan>) -> Vec<PhaseSpan> {
        spans.sort_by_key(|sp| (sp.rank, sp.start, sp.end, sp.kind.label(), sp.woke_by));
        spans
    }

    fn canon_log(log: &desim::EventLog) -> Vec<(SimTime, desim::EventKind, u64, u64)> {
        let mut v: Vec<_> = log.iter().map(|e| (e.at, e.kind, e.a, e.b)).collect();
        v.sort();
        v
    }

    /// The tentpole invariant: an elided run is *semantically identical*
    /// to the event-by-event reference — same finish times, phase split,
    /// message trace (same order!), link loads, FIFO watermark stats,
    /// span multiset, and canonical event-stream multiset — while firing
    /// far fewer engine events.
    #[test]
    fn elision_is_timeline_identical_to_event_path() {
        use collectives::{alltoall, reduce};
        let skew: Vec<SimTime> = (0..8).map(|i| SimTime::from_nanos(i * 731)).collect();
        for spec in [sp2(), t3d(), netmodel::paragon()] {
            for (s, skewed) in [
                (bcast::binomial(16, Rank(0), 4096), false),
                (alltoall::pairwise(8, 1024), false),
                (alltoall::pairwise(8, 2048), true),
                (barrier::dissemination(8), false),
                (barrier::hardware(8), true),
                (scatter::linear(8, Rank(0), 2048), false),
                (reduce::binomial(8, Rank(0), 512), true),
            ] {
                let cfg = ExecConfig {
                    start_times: skewed.then(|| skew[..s.ranks()].to_vec()),
                    event_log: true,
                    ..ExecConfig::default()
                };
                let (base, base_obs) = execute_observed(&spec, &[&s], &cfg).unwrap();
                let ecfg = ExecConfig {
                    elide: true,
                    ..cfg.clone()
                };
                let (fast, fast_obs) = execute_observed(&spec, &[&s], &ecfg).unwrap();
                let tag = format!("{} {:?}", spec.name, s.class());
                assert_eq!(base.start, fast.start, "{tag}");
                assert_eq!(base.finish, fast.finish, "{tag}");
                assert_eq!(base.phases, fast.phases, "{tag}");
                assert_eq!(base.trace, fast.trace, "{tag}: trace order must match");
                assert_eq!(base.link_loads, fast.link_loads, "{tag}");
                assert_eq!(base.messages, fast.messages, "{tag}");
                assert_eq!(base.bytes, fast.bytes, "{tag}");
                assert_eq!(
                    canon_spans(base_obs.spans),
                    canon_spans(fast_obs.spans),
                    "{tag}"
                );
                assert_eq!(base_obs.fifo_commits, fast_obs.fifo_commits, "{tag}");
                assert_eq!(base_obs.fifo_updates, fast_obs.fifo_updates, "{tag}");
                assert_eq!(
                    canon_log(base_obs.event_log.as_ref().unwrap()),
                    canon_log(fast_obs.event_log.as_ref().unwrap()),
                    "{tag}: synthetic log must reconstruct the fired stream"
                );
                assert!(
                    fast.events < base.events,
                    "{tag}: {} !< {}",
                    fast.events,
                    base.events
                );
            }
        }
    }

    #[test]
    fn elision_cuts_events_per_message_on_alltoall() {
        let spec = sp2();
        let s = collectives::alltoall::pairwise(64, 4096);
        let base = run(&spec, &s);
        let cfg = ExecConfig {
            elide: true,
            ..ExecConfig::default()
        };
        let fast = execute(&spec, &[&s], &cfg).unwrap();
        assert_eq!(base.finish, fast.finish);
        let ratio = base.events as f64 / fast.events as f64;
        assert!(
            ratio >= 5.0,
            "events/message reduction {ratio:.1}x below the 5x gate \
             ({} -> {} events)",
            base.events,
            fast.events
        );
    }

    #[test]
    fn elision_yields_to_perturbation_policies() {
        // The perturbation tie-breaks exist to reorder the very events
        // elision removes, so `elide` must be a no-op under them.
        let spec = sp2();
        let s = collectives::alltoall::pairwise(8, 1024);
        let perturbed = ExecConfig {
            tie_break: TieBreakPolicy::InvertAll,
            ..ExecConfig::default()
        };
        let a = execute(&spec, &[&s], &perturbed).unwrap();
        let b = execute(
            &spec,
            &[&s],
            &ExecConfig {
                elide: true,
                ..perturbed.clone()
            },
        )
        .unwrap();
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events, "event path must be taken verbatim");
    }

    #[test]
    fn elision_disables_provenance_and_synthesizes_log() {
        let spec = t3d();
        let s = bcast::binomial(8, Rank(0), 1024);
        let cfg = ExecConfig {
            elide: true,
            provenance: true,
            event_log: true,
            ..ExecConfig::default()
        };
        let (out, obs) = execute_observed(&spec, &[&s], &cfg).unwrap();
        assert!(obs.provenance.is_none(), "no per-message parents to record");
        let log = obs.event_log.expect("synthetic log stands in");
        assert!(
            log.len() as u64 > out.events,
            "log covers elided events too"
        );
        assert!(obs.elide.admitted > 0);
        assert_eq!(
            obs.elide.attempts(),
            out.messages,
            "every send goes through the admission check"
        );
    }

    #[test]
    fn skew_delays_completion() {
        let spec = sp2();
        let s = bcast::binomial(4, Rank(0), 64);
        let base = run(&spec, &s).completed();
        let skewed = execute(
            &spec,
            &[&s],
            &ExecConfig {
                start_times: Some(vec![
                    SimTime::from_micros(100),
                    SimTime::ZERO,
                    SimTime::ZERO,
                    SimTime::ZERO,
                ]),
                ..ExecConfig::default()
            },
        )
        .unwrap()
        .completed();
        assert!(skewed >= base + SimDuration::from_micros(90));
    }
}
