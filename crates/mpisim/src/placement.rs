//! Rank-to-node placement.
//!
//! §9 of the paper lists "the runtime node allocation affects the
//! implementation of a collective communication pattern" among its
//! accuracy factors: the scheduler rarely hands out physically
//! contiguous nodes, so rank *r* does not sit on node *r*, and the
//! collective's embedding into the topology changes. [`Placement`]
//! models that mapping; the executor routes every message through it.

use desim::SplitMix64;
use topo::NodeId;

/// How ranks map onto physical nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Rank `r` on node `r` — a perfectly contiguous allocation (the
    /// default, and the best case).
    #[default]
    Contiguous,
    /// A deterministic pseudo-random permutation drawn from the seed —
    /// the fragmented allocation a busy scheduler produces.
    Scattered {
        /// Permutation seed.
        seed: u64,
    },
    /// Ranks placed with a fixed stride (`node = (r · stride) mod p`,
    /// valid when `gcd(stride, p) == 1`); models round-robin allocation
    /// across cabinets.
    Strided {
        /// The stride.
        stride: usize,
    },
}

/// An explicit rank→node map onto a (possibly larger) machine partition
/// — the mechanism behind subgroup communicators.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExplicitPlacement {
    nodes: Vec<NodeId>,
}

impl ExplicitPlacement {
    /// Builds an explicit placement of `ranks.len()` ranks onto the named
    /// nodes of a `machine_nodes`-node partition.
    ///
    /// # Errors
    ///
    /// Rejects duplicate nodes and nodes outside `0..machine_nodes`.
    pub fn new(nodes: Vec<usize>, machine_nodes: usize) -> Result<Self, String> {
        let mut seen = vec![false; machine_nodes];
        for &n in &nodes {
            if n >= machine_nodes {
                return Err(format!("node {n} outside 0..{machine_nodes}"));
            }
            if seen[n] {
                return Err(format!("node {n} assigned twice"));
            }
            seen[n] = true;
        }
        Ok(ExplicitPlacement {
            nodes: nodes.into_iter().map(NodeId).collect(),
        })
    }

    /// Number of ranks placed.
    pub fn ranks(&self) -> usize {
        self.nodes.len()
    }

    /// The rank→node table.
    pub fn table(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl Placement {
    /// Materializes the rank→node table for a `p`-node partition.
    ///
    /// # Errors
    ///
    /// Returns a message when the placement cannot produce a bijection
    /// (strided placement with `gcd(stride, p) != 1`).
    pub fn table(&self, p: usize) -> Result<Vec<NodeId>, String> {
        match *self {
            Placement::Contiguous => Ok((0..p).map(NodeId).collect()),
            Placement::Scattered { seed } => {
                let mut table: Vec<NodeId> = (0..p).map(NodeId).collect();
                let mut rng = SplitMix64::new(seed);
                // Fisher–Yates.
                for i in (1..p).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    table.swap(i, j);
                }
                Ok(table)
            }
            Placement::Strided { stride } => {
                if p == 0 {
                    return Ok(Vec::new());
                }
                if gcd(stride % p.max(1), p) != 1 && p > 1 {
                    return Err(format!(
                        "stride {stride} is not coprime with {p}: not a bijection"
                    ));
                }
                Ok((0..p).map(|r| NodeId((r * stride) % p)).collect())
            }
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_bijection(table: &[NodeId]) -> bool {
        let mut seen = vec![false; table.len()];
        for n in table {
            if n.0 >= table.len() || seen[n.0] {
                return false;
            }
            seen[n.0] = true;
        }
        true
    }

    #[test]
    fn contiguous_is_identity() {
        let t = Placement::Contiguous.table(8).unwrap();
        assert_eq!(t, (0..8).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn scattered_is_bijective_and_seeded() {
        for p in [1usize, 2, 7, 64] {
            let t = Placement::Scattered { seed: 42 }.table(p).unwrap();
            assert!(is_bijection(&t), "p={p}");
        }
        let a = Placement::Scattered { seed: 1 }.table(64).unwrap();
        let b = Placement::Scattered { seed: 1 }.table(64).unwrap();
        let c = Placement::Scattered { seed: 2 }.table(64).unwrap();
        assert_eq!(a, b, "deterministic");
        assert_ne!(a, c, "seed-dependent");
        assert_ne!(a, Placement::Contiguous.table(64).unwrap());
    }

    #[test]
    fn explicit_placement_validation() {
        let p = ExplicitPlacement::new(vec![3, 1, 5], 8).unwrap();
        assert_eq!(p.ranks(), 3);
        assert_eq!(p.table()[0], NodeId(3));
        assert!(ExplicitPlacement::new(vec![1, 1], 8).is_err(), "dup");
        assert!(ExplicitPlacement::new(vec![9], 8).is_err(), "range");
        assert_eq!(ExplicitPlacement::new(vec![], 4).unwrap().ranks(), 0);
    }

    #[test]
    fn strided_requires_coprimality() {
        let t = Placement::Strided { stride: 3 }.table(8).unwrap();
        assert!(is_bijection(&t));
        assert_eq!(t[1], NodeId(3));
        assert!(Placement::Strided { stride: 2 }.table(8).is_err());
        assert!(Placement::Strided { stride: 5 }.table(1).is_ok());
    }
}
