//! Builds the [`obs::critpath`] causal graph from an observed execution
//! and runs the backward walk.
//!
//! The executor already records everything the walker needs: attributed
//! [`PhaseSpan`]s with causal wake edges (`woke_by`), and a
//! [`MessageTrace`] per message carrying the wire-model's measured FIFO
//! and link-contention waits. [`analyze`] translates those into the
//! walker's plain-data vocabulary, walks backward from the completion
//! instant, and returns the blame decomposition plus the contention
//! census — the per-run answer to "where did the time go, and how much
//! of the traffic was provably contention-free".
//!
//! # Examples
//!
//! ```
//! use mpisim::{Machine, Rank, RunOptions};
//!
//! let comm = Machine::t3d().communicator(16)?;
//! let s = comm.schedule(mpisim::OpClass::Bcast, Rank(0), 4096)?;
//! let (out, obs) = comm.run_observed(&[&s], RunOptions::default())?;
//! let cp = mpisim::critpath::analyze(&out, &obs);
//! // The decomposition tiles end-to-end elapsed time exactly.
//! assert_eq!(cp.decomposition.total_ns(), cp.decomposition.elapsed_ns());
//! # Ok::<(), mpisim::SimMpiError>(())
//! ```

use crate::exec::{ExecOutcome, MessageTrace, Observed, PhaseKind, PhaseSpan};
use obs::critpath::{walk, Blame, Cause, Census, Decomposition, Span, Transfer};
use obs::MetricsRegistry;
use std::collections::HashMap;

/// The critical-path analysis of one observed run.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPath {
    /// The blame decomposition of end-to-end elapsed time.
    pub decomposition: Decomposition,
    /// The contention census over remote transfers.
    pub census: Census,
    /// The rank whose completion defines the end-to-end time (first such
    /// rank when several tie).
    pub end_rank: usize,
    /// Causal chain depth from the engine's provenance log, when the run
    /// recorded one ([`crate::exec::ExecConfig::provenance`]).
    pub chain_depth: Option<usize>,
}

impl CritPath {
    /// Exports the decomposition, census, and path endpoints under
    /// `critpath.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.decomposition.export_metrics(reg);
        self.census.export_metrics(reg);
        reg.gauge("critpath.end_rank", self.end_rank as f64);
        reg.gauge(
            "critpath.segments",
            self.decomposition.segments.len() as f64,
        );
        if let Some(depth) = self.chain_depth {
            reg.counter("critpath.chain_depth", depth as u64);
        }
    }
}

/// Maps a CPU-busy executor phase to its blame category.
fn busy_blame(kind: PhaseKind) -> Blame {
    match kind {
        PhaseKind::Entry => Blame::Entry,
        PhaseKind::SendOverhead => Blame::SendSw,
        PhaseKind::Copy => Blame::Copy,
        PhaseKind::RecvOverhead => Blame::RecvSw,
        PhaseKind::Compute => Blame::Compute,
        // Blocked kinds are translated through their causal edges, not
        // this table.
        PhaseKind::RecvWait | PhaseKind::BarrierWait => Blame::Idle,
    }
}

/// Translates the observed run into walker spans and transfers.
///
/// Every traced message becomes a [`Transfer`] (indices aligned with
/// `out.trace`). A blocked `RecvWait` span whose waker sent a message
/// delivered exactly at the span's end gets a [`Cause::Message`] edge;
/// a `BarrierWait` span gets a [`Cause::Barrier`] edge to its trigger.
/// Unmatched blocked spans (truncated trace) degrade to unattributed
/// local idle time rather than failing.
fn build_graph(out: &ExecOutcome, observed: &Observed) -> (Vec<Span>, Vec<Transfer>) {
    let transfers: Vec<Transfer> = out
        .trace
        .iter()
        .map(|m| Transfer {
            src_track: m.src as u32,
            wire_start_ns: m.wire_start.as_nanos(),
            delivered_ns: m.delivered.as_nanos(),
            fifo_wait_ns: m.inject_wait.as_nanos(),
            link_wait_ns: m.link_wait.as_nanos(),
        })
        .collect();
    // (src, dst) -> [(delivered_ns, trace index)], delivery-sorted, for
    // matching a recv wait's end instant to the message that caused it.
    let mut arrivals: HashMap<(usize, usize), Vec<(u64, u32)>> = HashMap::new();
    for (i, m) in out.trace.iter().enumerate() {
        arrivals
            .entry((m.src, m.dst))
            .or_default()
            .push((m.delivered.as_nanos(), i as u32));
    }
    for list in arrivals.values_mut() {
        list.sort_unstable();
    }
    let match_message = |span: &PhaseSpan, src: usize| -> Option<u32> {
        let list = arrivals.get(&(src, span.rank))?;
        let end = span.end.as_nanos();
        let pos = list.partition_point(|&(d, _)| d < end);
        (pos < list.len() && list[pos].0 == end).then(|| list[pos].1)
    };

    let spans = observed
        .spans
        .iter()
        .map(|sp| {
            let (blame, cause) = match (sp.kind, sp.woke_by) {
                (PhaseKind::RecvWait, Some(src)) => match match_message(sp, src as usize) {
                    Some(msg) => (Blame::Idle, Cause::Message { msg }),
                    None => (Blame::Idle, Cause::Local),
                },
                (PhaseKind::BarrierWait, Some(trigger)) => {
                    (Blame::BarrierSync, Cause::Barrier { track: trigger })
                }
                (PhaseKind::RecvWait | PhaseKind::BarrierWait, None) => (Blame::Idle, Cause::Local),
                (kind, _) => (busy_blame(kind), Cause::Local),
            };
            Span {
                track: sp.rank as u32,
                blame,
                start_ns: sp.start.as_nanos(),
                end_ns: sp.end.as_nanos(),
                cause,
            }
        })
        .collect();
    (spans, transfers)
}

/// Reconstructs the critical path of an observed run and decomposes its
/// end-to-end elapsed time into blame categories, plus the contention
/// census over its remote transfers.
///
/// The walk runs from the completion instant of the last-finishing rank
/// back to the earliest rank start. Requires an [`Observed`] from
/// [`crate::exec::execute_observed`] (which implies message tracing); a
/// trace truncated by the cap degrades the affected stretches to
/// [`Blame::Idle`] instead of failing.
pub fn analyze(out: &ExecOutcome, observed: &Observed) -> CritPath {
    let end = out.completed();
    let last_seg = out.finish.last().expect("at least one segment");
    let end_rank = last_seg
        .iter()
        .position(|&f| f == end)
        .expect("some rank finishes last");
    let start_ns = out.start.iter().map(|t| t.as_nanos()).min().unwrap_or(0);
    let (spans, transfers) = build_graph(out, observed);
    let decomposition = walk(
        &spans,
        &transfers,
        end_rank as u32,
        start_ns,
        end.as_nanos(),
    );
    let remote: Vec<Transfer> = out
        .trace
        .iter()
        .zip(&transfers)
        .filter(|(m, _)| m.src != m.dst)
        .map(|(_, t)| *t)
        .collect();
    CritPath {
        decomposition,
        census: Census::of(&remote),
        end_rank,
        chain_depth: observed.provenance.as_ref().map(|p| p.chain_depth()),
    }
}

/// Convenience predicate for tests and tooling: true when `m` is a
/// remote transfer counted by the census.
pub fn is_remote(m: &MessageTrace) -> bool {
    m.src != m.dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RunOptions;
    use crate::exec::{execute_observed, ExecConfig};
    use crate::machine::Machine;
    use collectives::Rank;
    use desim::SimTime;
    use netmodel::OpClass;

    fn analyzed(machine: &Machine, class: OpClass, p: usize, m: u32) -> CritPath {
        let comm = machine.communicator(p).expect("communicator");
        let s = comm.schedule(class, Rank(0), m).expect("schedule");
        let (out, obs) = comm
            .run_observed(&[&s], RunOptions::default())
            .expect("observed run");
        analyze(&out, &obs)
    }

    #[test]
    fn decomposition_conserves_elapsed_time() {
        for machine in Machine::all() {
            for class in [OpClass::Bcast, OpClass::Scan, OpClass::Alltoall] {
                let cp = analyzed(&machine, class, 16, 4096);
                assert_eq!(
                    cp.decomposition.total_ns(),
                    cp.decomposition.elapsed_ns(),
                    "{} {}",
                    machine.name(),
                    class.key()
                );
            }
        }
    }

    #[test]
    fn bcast_path_is_wire_and_software_not_idle() {
        let cp = analyzed(&Machine::t3d(), OpClass::Bcast, 16, 4096);
        assert!(cp.decomposition.get(Blame::Wire) > 0, "wire time on path");
        assert!(cp.decomposition.get(Blame::RecvSw) > 0, "recv sw on path");
        // A clean single-collective run attributes everything.
        assert_eq!(cp.decomposition.get(Blame::Idle), 0, "{cp:?}");
    }

    #[test]
    fn census_sees_contention_in_alltoall() {
        let cp = analyzed(&Machine::paragon(), OpClass::Alltoall, 16, 4096);
        assert!(cp.census.transfers > 0);
        assert!(
            cp.census.uncontended < cp.census.transfers,
            "a 16-node total exchange must contend somewhere"
        );
        // Fraction is consistent with the counts.
        let f = cp.census.fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn barrier_skew_lands_on_barrier_sync_or_trigger() {
        // Hardware barrier with skewed starts: the path runs through the
        // last arrival; no stretch may be unattributed.
        let comm = Machine::t3d().communicator(8).expect("communicator");
        let s = comm
            .schedule(OpClass::Barrier, Rank(0), 0)
            .expect("schedule");
        let skew: Vec<SimTime> = (0..8).map(|i| SimTime::from_micros(i as u64)).collect();
        let (out, obs) = comm
            .run_observed(
                &[&s],
                RunOptions {
                    start_times: Some(skew),
                    ..RunOptions::default()
                },
            )
            .expect("observed run");
        let cp = analyze(&out, &obs);
        assert_eq!(cp.decomposition.total_ns(), cp.decomposition.elapsed_ns());
        assert!(cp.decomposition.get(Blame::BarrierSync) > 0, "{cp:?}");
    }

    #[test]
    fn truncated_trace_degrades_to_idle_not_panic() {
        let machine = Machine::sp2();
        let comm = machine.communicator(8).expect("communicator");
        let s = comm
            .schedule(OpClass::Alltoall, Rank(0), 1024)
            .expect("schedule");
        let (out, obs) = execute_observed(
            machine.spec(),
            &[&s],
            &ExecConfig {
                wire: machine.wire_config(),
                trace_limit: Some(3),
                ..ExecConfig::default()
            },
        )
        .expect("observed run");
        assert!(out.dropped_messages > 0, "cap must bite");
        let cp = analyze(&out, &obs);
        assert_eq!(
            cp.decomposition.total_ns(),
            cp.decomposition.elapsed_ns(),
            "conservation holds even when messages were dropped"
        );
    }

    #[test]
    fn chain_depth_present_only_with_provenance() {
        let comm = Machine::t3d().communicator(8).expect("communicator");
        let s = comm
            .schedule(OpClass::Bcast, Rank(0), 1024)
            .expect("schedule");
        let (out, obs) = comm
            .run_observed(&[&s], RunOptions::default())
            .expect("observed");
        assert!(analyze(&out, &obs).chain_depth.is_none());
        let (out, obs) = comm
            .run_observed(
                &[&s],
                RunOptions {
                    provenance: true,
                    ..RunOptions::default()
                },
            )
            .expect("observed");
        let depth = analyze(&out, &obs).chain_depth.expect("provenance on");
        assert!(depth > 2, "bcast chains span the tree: {depth}");
    }

    #[test]
    fn export_writes_critpath_metrics() {
        let cp = analyzed(&Machine::sp2(), OpClass::Scan, 8, 1024);
        let mut reg = MetricsRegistry::new();
        cp.export_metrics(&mut reg);
        assert!(reg.get("critpath.total_ns").is_some());
        assert!(reg.get("critpath.census.transfers").is_some());
        assert!(reg.get("critpath.end_rank").is_some());
    }
}
