//! # mpisim — an MPI-like collective layer over simulated multicomputers
//!
//! The public API of the reproduction: open a [`Machine`] (SP2, T3D, or
//! Paragon, or a custom spec), derive a [`Communicator`], and invoke the
//! collective operations the paper evaluates. Each call compiles the
//! machine's vendor algorithm to a per-rank schedule
//! ([`collectives`]) and executes it event by event on the machine model
//! ([`netmodel`] over [`desim`]), returning per-rank elapsed times.
//!
//! ```
//! use mpisim::{Machine, Rank};
//!
//! // Total exchange of 64 KB messages on 64 T3D nodes (paper §5):
//! let machine = Machine::t3d();
//! let comm = machine.communicator(64)?;
//! let outcome = comm.alltoall(65_536)?;
//! println!("T(64KB, 64) = {}", outcome.time());
//! assert!(outcome.time().as_millis_f64() > 1.0); // tens of ms territory
//! # Ok::<(), mpisim::SimMpiError>(())
//! ```
//!
//! For the paper's exact measurement methodology (warm-up discards,
//! k-iteration loops, max-reduction over unsynchronized clocks) see the
//! `harness` crate, which drives [`Communicator::run_sequence`].

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod comm;
pub mod critpath;
pub mod datatype;
pub mod error;
pub mod exec;
pub mod machine;
pub mod observe;
pub mod placement;
pub mod record;

pub use collectives::{Rank, Schedule, Step};
pub use comm::{CollectiveOutcome, Communicator, RunOptions};
pub use critpath::{analyze, CritPath};
pub use datatype::Datatype;
pub use error::SimMpiError;
pub use exec::{
    execute, execute_observed, CpuNoise, ExecConfig, ExecOutcome, MessageTrace, Observed,
    PhaseKind, PhaseSpan, RankPhases, TieBreakPolicy,
};
pub use machine::{AlgorithmPolicy, Machine};
pub use netmodel::{MachineId, OpClass, WireConfig};
pub use placement::{ExplicitPlacement, Placement};
