//! The [`Communicator`]: MPI-style collective entry points over a
//! simulated partition.

use crate::datatype::Datatype;
use crate::error::SimMpiError;
use crate::exec::{execute, CpuNoise, ExecConfig, ExecOutcome};
use crate::machine::Machine;
use collectives::{build, extra, Rank, Schedule, Step};
use desim::{SimDuration, SimTime};
use netmodel::OpClass;

/// Per-run execution options for [`Communicator::run_with`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Per-rank start instants (skewed clocks); default all-zero.
    pub start_times: Option<Vec<SimTime>>,
    /// Background-interference CPU noise.
    pub cpu_noise: Option<CpuNoise>,
    /// Record message traces and link loads.
    pub record_trace: bool,
    /// Collect an engine self-profile (wall-clock, events/sec, sampled
    /// queue depth); surfaced via [`crate::exec::Observed`] on observed
    /// runs. Zero cost when off.
    pub profile: bool,
    /// Record causal event provenance; surfaced via
    /// [`crate::exec::Observed::provenance`] on observed runs. Zero cost
    /// when off.
    pub provenance: bool,
    /// Record the canonical fired-event stream; surfaced via
    /// [`crate::exec::Observed::event_log`] on observed runs. Zero cost
    /// when off.
    pub event_log: bool,
    /// Cap on recorded [`crate::exec::MessageTrace`] entries (the
    /// `--trace-cap` CLI flag); `None` uses
    /// [`crate::exec::DEFAULT_TRACE_LIMIT`].
    pub trace_limit: Option<usize>,
    /// Event-elision fast path ([`crate::exec::ExecConfig::elide`]):
    /// complete provably-uncontended messages in closed form instead of
    /// event by event. Timeline-identical to the reference; disables
    /// provenance.
    pub elide: bool,
}

/// How a communicator's ranks map onto the machine.
#[derive(Debug, Clone, Default)]
enum CommScope {
    /// Ranks 0..p on nodes 0..p via the machine's placement policy.
    #[default]
    Whole,
    /// A subgroup on explicit nodes of a larger partition.
    Group {
        placement: crate::placement::ExplicitPlacement,
        machine_nodes: usize,
    },
}

/// The outcome of one collective operation: per-rank elapsed times plus
/// traffic counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveOutcome {
    per_rank: Vec<SimDuration>,
    messages: u64,
    bytes: u64,
}

impl CollectiveOutcome {
    /// The paper's headline number: the **maximum** elapsed time over all
    /// ranks ("it reflects the condition that all processes involved …
    /// have finished the operation", §2).
    pub fn time(&self) -> SimDuration {
        self.per_rank
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The minimum per-rank elapsed time.
    pub fn min_time(&self) -> SimDuration {
        self.per_rank
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The mean per-rank elapsed time, microseconds.
    pub fn mean_time_us(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.per_rank.iter().map(|d| d.as_micros_f64()).sum::<f64>() / self.per_rank.len() as f64
    }

    /// Per-rank elapsed times.
    pub fn per_rank(&self) -> &[SimDuration] {
        &self.per_rank
    }

    /// Messages injected into the network.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes injected into the network.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A group of `p` simulated processes, one per node, on one machine.
///
/// Each collective call executes the machine's algorithm for that
/// operation on a *fresh* network state (a quiet machine in dedicated
/// mode, as the paper's runs were), returning per-rank timings. Rank
/// stepping runs entirely on the engine's typed-event path
/// ([`desim::TypedEvent`]) — no per-event allocation in the execution
/// hot loop. For the paper's full measurement methodology (warm-up,
/// k-iteration loops, max-reduction) use the `harness` crate, which
/// drives [`Communicator::run_sequence`].
#[derive(Debug, Clone)]
pub struct Communicator {
    machine: Machine,
    size: usize,
    scope: CommScope,
}

impl Communicator {
    pub(crate) fn new(machine: Machine, size: usize) -> Self {
        Communicator {
            machine,
            size,
            scope: CommScope::Whole,
        }
    }

    pub(crate) fn new_group(
        machine: Machine,
        placement: crate::placement::ExplicitPlacement,
        machine_nodes: usize,
    ) -> Self {
        Communicator {
            machine,
            size: placement.ranks(),
            scope: CommScope::Group {
                placement,
                machine_nodes,
            },
        }
    }

    /// Derives a subgroup communicator over the named member ranks (the
    /// `MPI_Comm_split`/group mechanism): member `i` of the new group
    /// keeps running on the physical node member `ranks[i]` occupies in
    /// this communicator, while the machine partition — and therefore
    /// the network the subgroup shares — stays the full size.
    ///
    /// # Errors
    ///
    /// Rejects empty, duplicate, or out-of-range member lists.
    pub fn group(&self, ranks: &[usize]) -> Result<Communicator, SimMpiError> {
        if ranks.is_empty() {
            return Err(SimMpiError::InvalidSize {
                requested: 0,
                max: self.size,
            });
        }
        // Resolve each member through this communicator's own mapping.
        let parent_nodes: Vec<usize> = match &self.scope {
            CommScope::Whole => {
                let table = self
                    .machine
                    .placement()
                    .table(self.size)
                    .map_err(SimMpiError::InvalidSpec)?;
                ranks
                    .iter()
                    .map(|&r| table.get(r).map(|n| n.0))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or(SimMpiError::InvalidRank {
                        rank: *ranks.iter().max().expect("non-empty"),
                        size: self.size,
                    })?
            }
            CommScope::Group { placement, .. } => ranks
                .iter()
                .map(|&r| placement.table().get(r).map(|n| n.0))
                .collect::<Option<Vec<usize>>>()
                .ok_or(SimMpiError::InvalidRank {
                    rank: *ranks.iter().max().expect("non-empty"),
                    size: self.size,
                })?,
        };
        let machine_nodes = match &self.scope {
            CommScope::Whole => self.size,
            CommScope::Group { machine_nodes, .. } => *machine_nodes,
        };
        let placement = crate::placement::ExplicitPlacement::new(parent_nodes, machine_nodes)
            .map_err(SimMpiError::InvalidSpec)?;
        Ok(Communicator::new_group(
            self.machine.clone(),
            placement,
            machine_nodes,
        ))
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine this communicator lives on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    fn check_rank(&self, r: Rank) -> Result<(), SimMpiError> {
        if r.0 >= self.size {
            return Err(SimMpiError::InvalidRank {
                rank: r.0,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Builds this machine's schedule for `class` (vendor or generic per
    /// the machine policy).
    ///
    /// # Errors
    ///
    /// Propagates rank validation and algorithm-selection failures.
    pub fn schedule(
        &self,
        class: OpClass,
        root: Rank,
        bytes: u32,
    ) -> Result<Schedule, SimMpiError> {
        self.check_rank(root)?;
        let alg = self.machine.algorithm_for(class);
        Ok(build(alg, class, self.size, root, bytes)?)
    }

    /// Runs one schedule from a cold start and returns per-rank timings.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from the executor.
    pub fn run(&self, schedule: &Schedule) -> Result<CollectiveOutcome, SimMpiError> {
        let out = self.run_sequence(&[schedule], None)?;
        Ok(self.outcome_from(&out, 0))
    }

    /// Like [`Communicator::run`], but also records every message's
    /// posting and delivery instants (for timeline rendering and
    /// debugging).
    ///
    /// # Errors
    ///
    /// Propagates validation failures from the executor.
    pub fn run_traced(
        &self,
        schedule: &Schedule,
    ) -> Result<(CollectiveOutcome, Vec<crate::exec::MessageTrace>), SimMpiError> {
        let out = self.run_with(
            &[schedule],
            RunOptions {
                record_trace: true,
                ..RunOptions::default()
            },
        )?;
        Ok((self.outcome_from(&out, 0), out.trace))
    }

    /// Runs one schedule with full diagnostics: per-rank timings, the
    /// message trace, and the link-load distribution (hottest first).
    ///
    /// # Errors
    ///
    /// Propagates validation failures from the executor.
    pub fn run_diagnosed(&self, schedule: &Schedule) -> Result<ExecOutcome, SimMpiError> {
        self.run_with(
            &[schedule],
            RunOptions {
                record_trace: true,
                ..RunOptions::default()
            },
        )
    }

    /// Runs several schedules back to back (no implicit sync between
    /// them), optionally with skewed per-rank start times. This is the
    /// harness entry point.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from the executor.
    pub fn run_sequence(
        &self,
        segments: &[&Schedule],
        start_times: Option<Vec<SimTime>>,
    ) -> Result<ExecOutcome, SimMpiError> {
        self.run_with(
            segments,
            RunOptions {
                start_times,
                ..RunOptions::default()
            },
        )
    }

    /// Runs segments with full per-run options (skew, interference noise,
    /// tracing). The most general execution entry point.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from the executor.
    pub fn run_with(
        &self,
        segments: &[&Schedule],
        options: RunOptions,
    ) -> Result<ExecOutcome, SimMpiError> {
        let cfg = self.exec_config(options);
        execute(self.machine.spec(), segments, &cfg)
    }

    /// Runs segments under full observability: message trace, per-rank
    /// phase spans, per-link/per-class network instrumentation, and
    /// engine queue statistics (see [`crate::exec::execute_observed`]).
    ///
    /// # Errors
    ///
    /// Propagates validation failures from the executor.
    pub fn run_observed(
        &self,
        segments: &[&Schedule],
        options: RunOptions,
    ) -> Result<(ExecOutcome, crate::exec::Observed), SimMpiError> {
        let cfg = self.exec_config(options);
        crate::exec::execute_observed(self.machine.spec(), segments, &cfg)
    }

    fn exec_config(&self, options: RunOptions) -> ExecConfig {
        ExecConfig {
            wire: self.machine.wire_config(),
            start_times: options.start_times,
            skip_validation: false,
            record_trace: options.record_trace,
            trace_limit: options.trace_limit,
            placement: self.machine.placement(),
            cpu_noise: options.cpu_noise,
            profile: options.profile,
            provenance: options.provenance,
            event_log: options.event_log,
            tie_break: crate::exec::TieBreakPolicy::InsertionOrder,
            elide: options.elide,
            group: match &self.scope {
                CommScope::Whole => None,
                CommScope::Group {
                    placement,
                    machine_nodes,
                } => Some((placement.clone(), *machine_nodes)),
            },
        }
    }

    fn outcome_from(&self, out: &ExecOutcome, seg: usize) -> CollectiveOutcome {
        CollectiveOutcome {
            per_rank: (0..self.size)
                .map(|r| out.rank_segment_time(seg, r))
                .collect(),
            messages: out.messages,
            bytes: out.bytes,
        }
    }

    fn collective(
        &self,
        class: OpClass,
        root: Rank,
        bytes: u32,
    ) -> Result<CollectiveOutcome, SimMpiError> {
        let s = self.schedule(class, root, bytes)?;
        self.run(&s)
    }

    /// `MPI_Bcast`: `bytes` from `root` to every rank.
    ///
    /// # Errors
    ///
    /// Fails if `root` is out of range.
    pub fn bcast(&self, root: Rank, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(OpClass::Bcast, root, bytes)
    }

    /// `MPI_Scatter`: a distinct `bytes` block from `root` to each rank.
    ///
    /// # Errors
    ///
    /// Fails if `root` is out of range.
    pub fn scatter(&self, root: Rank, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(OpClass::Scatter, root, bytes)
    }

    /// `MPI_Gather`: a `bytes` block from each rank to `root`.
    ///
    /// # Errors
    ///
    /// Fails if `root` is out of range.
    pub fn gather(&self, root: Rank, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(OpClass::Gather, root, bytes)
    }

    /// `MPI_Reduce`: combine `bytes`-sized vectors onto `root`.
    ///
    /// # Errors
    ///
    /// Fails if `root` is out of range.
    pub fn reduce(&self, root: Rank, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(OpClass::Reduce, root, bytes)
    }

    /// `MPI_Scan`: inclusive prefix combination of `bytes`-sized vectors.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn scan(&self, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(OpClass::Scan, Rank(0), bytes)
    }

    /// `MPI_Alltoall` (total exchange): `bytes` between every rank pair.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn alltoall(&self, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(OpClass::Alltoall, Rank(0), bytes)
    }

    /// `MPI_Barrier`.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn barrier(&self) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(OpClass::Barrier, Rank(0), 0)
    }

    /// `MPI_Allgather` via the ring schedule (extension operation).
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn allgather(&self, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.run(&extra::allgather_ring(self.size, bytes))
    }

    /// `MPI_Allreduce` via recursive doubling (extension operation).
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn allreduce(&self, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.run(&extra::allreduce_recursive_doubling(self.size, bytes))
    }

    /// `MPI_Allreduce` via Rabenseifner's reduce-scatter + allgather
    /// (extension operation; bandwidth-optimal for long vectors).
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn allreduce_rabenseifner(&self, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.run(&extra::allreduce_rabenseifner(self.size, bytes))
    }

    /// `MPI_Reduce_scatter` via pairwise exchange (extension operation).
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn reduce_scatter(&self, bytes: u32) -> Result<CollectiveOutcome, SimMpiError> {
        self.run(&extra::reduce_scatter_pairwise(self.size, bytes))
    }

    /// Typed collective entry point: `count` elements of `datatype` per
    /// pairwise message, the way the paper states its parameters
    /// ("the data type of the message elements is always MPI_FLOAT").
    ///
    /// # Errors
    ///
    /// Fails if `root` is out of range for rooted operations.
    ///
    /// # Examples
    ///
    /// ```
    /// use mpisim::{Datatype, Machine, OpClass, Rank};
    ///
    /// let comm = Machine::t3d().communicator(16)?;
    /// // Broadcast 256 floats = 1 KB, the paper's mid-size point.
    /// let out = comm.collective_typed(OpClass::Bcast, Rank(0), 256, Datatype::Float)?;
    /// assert!(out.time().as_micros_f64() > 0.0);
    /// # Ok::<(), mpisim::SimMpiError>(())
    /// ```
    pub fn collective_typed(
        &self,
        class: OpClass,
        root: Rank,
        count: u32,
        datatype: Datatype,
    ) -> Result<CollectiveOutcome, SimMpiError> {
        self.collective(class, root, datatype.message_bytes(count))
    }

    /// A single point-to-point message `src → dst`, returning the
    /// end-to-end latency.
    ///
    /// # Errors
    ///
    /// Fails if either rank is out of range.
    pub fn ping(&self, src: Rank, dst: Rank, bytes: u32) -> Result<SimDuration, SimMpiError> {
        self.check_rank(src)?;
        self.check_rank(dst)?;
        let mut s = Schedule::new(OpClass::PointToPoint, self.size);
        s.push(src, Step::Send { to: dst, bytes });
        s.push(dst, Step::Recv { from: src, bytes });
        let out = self.run(&s)?;
        Ok(out.per_rank()[dst.0])
    }
}

/// The harness's parallel sweep executor shards `(machine, op, p, m)`
/// points across worker threads, each building its own [`Communicator`]
/// and running independent simulations. That only holds if the types it
/// moves across threads stay plain data; this compile-time assertion
/// turns an accidental `Rc`/`RefCell`/raw-pointer addition into a build
/// error instead of a distant trait-bound failure in `harness::par`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Machine>();
    assert_send_sync::<Communicator>();
    assert_send_sync::<RunOptions>();
    assert_send_sync::<SimMpiError>();
};

#[cfg(test)]
mod tests {
    //! These tests return `Result<(), SimMpiError>` and propagate
    //! failures with `?` instead of unwrapping, so a failing collective
    //! reports the typed error (the same vocabulary `schedcheck` emits)
    //! rather than a bare panic site.
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn all_collectives_run_on_all_machines() -> Result<(), SimMpiError> {
        for machine in Machine::all() {
            let comm = machine.communicator(16)?;
            for out in [
                comm.bcast(Rank(0), 1024)?,
                comm.scatter(Rank(0), 1024)?,
                comm.gather(Rank(0), 1024)?,
                comm.reduce(Rank(0), 1024)?,
                comm.scan(1024)?,
                comm.alltoall(1024)?,
                comm.barrier()?,
                comm.allgather(1024)?,
                comm.allreduce(1024)?,
                comm.reduce_scatter(1024)?,
            ] {
                assert!(out.time() > SimDuration::ZERO, "{}", machine.name());
                assert!(out.time() >= out.min_time());
                assert!(out.mean_time_us() <= out.time().as_micros_f64() + 1e-9);
            }
        }
        Ok(())
    }

    #[test]
    fn t3d_barrier_is_microseconds_not_hundreds() -> Result<(), SimMpiError> {
        let t3d = Machine::t3d();
        let sp2 = Machine::sp2();
        let tb = t3d.communicator(64)?.barrier()?.time();
        let sb = sp2.communicator(64)?.barrier()?.time();
        assert!(tb.as_micros_f64() < 5.0, "T3D barrier {tb}");
        assert!(
            sb.as_micros_f64() > 30.0 * tb.as_micros_f64(),
            "paper: at least 30x faster; SP2 {sb} vs T3D {tb}"
        );
        Ok(())
    }

    #[test]
    fn alltoall_dominates_other_collectives() -> Result<(), SimMpiError> {
        // Fig. 4: total exchange demands the longest time.
        let comm = Machine::sp2().communicator(32)?;
        let a2a = comm.alltoall(1024)?.time();
        for other in [
            comm.bcast(Rank(0), 1024)?.time(),
            comm.gather(Rank(0), 1024)?.time(),
            comm.scan(1024)?.time(),
        ] {
            assert!(a2a > other);
        }
        Ok(())
    }

    #[test]
    fn rank_validation() -> Result<(), SimMpiError> {
        let comm = Machine::sp2().communicator(8)?;
        assert!(matches!(
            comm.bcast(Rank(8), 4),
            Err(SimMpiError::InvalidRank { rank: 8, size: 8 })
        ));
        assert!(comm.ping(Rank(0), Rank(9), 4).is_err());
        Ok(())
    }

    #[test]
    fn ping_scales_with_bytes() -> Result<(), SimMpiError> {
        let comm = Machine::paragon().communicator(16)?;
        let small = comm.ping(Rank(0), Rank(15), 16)?;
        let large = comm.ping(Rank(0), Rank(15), 65_536)?;
        assert!(large > small * 10);
        Ok(())
    }

    #[test]
    fn self_ping_is_local() -> Result<(), SimMpiError> {
        let comm = Machine::t3d().communicator(4)?;
        let t = comm.ping(Rank(1), Rank(1), 1024)?;
        let remote = comm.ping(Rank(1), Rank(2), 1024)?;
        assert!(t < remote);
        Ok(())
    }

    #[test]
    fn bigger_messages_take_longer() -> Result<(), SimMpiError> {
        let comm = Machine::sp2().communicator(32)?;
        let t1 = comm.alltoall(64)?.time();
        let t2 = comm.alltoall(65_536)?.time();
        assert!(t2 > t1 * 5);
        Ok(())
    }

    #[test]
    fn subgroup_collectives_run() -> Result<(), SimMpiError> {
        let comm = Machine::t3d().communicator(16)?;
        // The even ranks form a group of 8 spread across the partition.
        let group = comm.group(&[0, 2, 4, 6, 8, 10, 12, 14])?;
        assert_eq!(group.size(), 8);
        let out = group.bcast(Rank(0), 4_096)?;
        assert!(out.time() > SimDuration::ZERO);
        assert_eq!(out.messages(), 7);
        // A group of a group resolves through both mappings.
        let inner = group.group(&[0, 1, 2, 3])?;
        assert_eq!(inner.size(), 4);
        assert!(inner.barrier()?.time() > SimDuration::ZERO);
        Ok(())
    }

    #[test]
    fn subgroup_validation() -> Result<(), SimMpiError> {
        let comm = Machine::sp2().communicator(8)?;
        assert!(comm.group(&[]).is_err(), "empty");
        assert!(comm.group(&[0, 0]).is_err(), "duplicate");
        assert!(comm.group(&[0, 9]).is_err(), "out of range");
        Ok(())
    }

    #[test]
    fn outcome_traffic_counts() -> Result<(), SimMpiError> {
        let comm = Machine::t3d().communicator(8)?;
        let out = comm.alltoall(100)?;
        assert_eq!(out.messages(), 8 * 7);
        assert_eq!(out.bytes(), 8 * 7 * 100);
        Ok(())
    }
}
