//! MPI datatypes.
//!
//! The paper's experiments use `MPI_FLOAT` throughout ("in all
//! operations, single-precision (4-Byte) floating-point numbers are
//! used", §2). This module gives element counts a type so callers can
//! speak the paper's language (`bcast_typed(root, 256, Datatype::Float)`
//! = 1 KB) instead of raw byte counts.

use core::fmt;

/// An MPI basic datatype (the subset the era's benchmarks used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Datatype {
    /// `MPI_FLOAT` — 4 bytes; the paper's element type.
    #[default]
    Float,
    /// `MPI_DOUBLE` — 8 bytes.
    Double,
    /// `MPI_INT` — 4 bytes.
    Int,
    /// `MPI_CHAR`/`MPI_BYTE` — 1 byte.
    Byte,
    /// `MPI_LONG_LONG` — 8 bytes.
    LongLong,
}

impl Datatype {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            Datatype::Float | Datatype::Int => 4,
            Datatype::Double | Datatype::LongLong => 8,
            Datatype::Byte => 1,
        }
    }

    /// The MPI name.
    pub fn mpi_name(self) -> &'static str {
        match self {
            Datatype::Float => "MPI_FLOAT",
            Datatype::Double => "MPI_DOUBLE",
            Datatype::Int => "MPI_INT",
            Datatype::Byte => "MPI_BYTE",
            Datatype::LongLong => "MPI_LONG_LONG",
        }
    }

    /// Message length in bytes for `count` elements, saturating at
    /// `u32::MAX`.
    pub fn message_bytes(self, count: u32) -> u32 {
        count.saturating_mul(self.size_bytes())
    }
}

impl fmt::Display for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mpi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_mpi() {
        assert_eq!(Datatype::Float.size_bytes(), 4);
        assert_eq!(Datatype::Double.size_bytes(), 8);
        assert_eq!(Datatype::Byte.size_bytes(), 1);
        assert_eq!(Datatype::default(), Datatype::Float, "the paper's type");
    }

    #[test]
    fn message_bytes_saturate() {
        assert_eq!(Datatype::Float.message_bytes(256), 1_024);
        assert_eq!(Datatype::Double.message_bytes(u32::MAX), u32::MAX);
    }

    #[test]
    fn names() {
        assert_eq!(Datatype::Float.to_string(), "MPI_FLOAT");
        assert_eq!(Datatype::LongLong.mpi_name(), "MPI_LONG_LONG");
    }
}
