//! The [`Machine`] handle: a validated machine model plus its vendor
//! algorithm table.

use crate::comm::Communicator;
use crate::error::SimMpiError;
use crate::placement::Placement;
use collectives::{generic_algorithm, vendor_algorithm, Algorithm};
use netmodel::{MachineId, MachineSpec, OpClass, WireConfig};

/// How collective algorithms are selected on this machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgorithmPolicy {
    /// The vendor library's choices (default; T3D barriers go to the
    /// hardware AND tree).
    #[default]
    Vendor,
    /// Force the generic MPICH table on every machine (ablation).
    Generic,
}

/// A multicomputer available for simulation: spec + algorithm policy +
/// wire-model configuration.
///
/// # Examples
///
/// ```
/// use mpisim::Machine;
///
/// let t3d = Machine::t3d();
/// let comm = t3d.communicator(64)?;
/// let out = comm.barrier()?;
/// // The T3D's hardwired barrier completes in ~3 us (paper §1).
/// assert!(out.time().as_micros_f64() < 4.0);
/// # Ok::<(), mpisim::SimMpiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    id: Option<MachineId>,
    policy: AlgorithmPolicy,
    wire: WireConfig,
    placement: Placement,
}

impl Machine {
    /// The calibrated IBM SP2.
    pub fn sp2() -> Self {
        Machine::from_id(MachineId::Sp2)
    }

    /// The calibrated Cray T3D.
    pub fn t3d() -> Self {
        Machine::from_id(MachineId::T3d)
    }

    /// The calibrated Intel Paragon.
    pub fn paragon() -> Self {
        Machine::from_id(MachineId::Paragon)
    }

    /// Builds the calibrated machine for `id`.
    pub fn from_id(id: MachineId) -> Self {
        Machine {
            spec: id.spec(),
            id: Some(id),
            policy: AlgorithmPolicy::default(),
            wire: WireConfig::default(),
            placement: Placement::default(),
        }
    }

    /// All three machines of the study.
    pub fn all() -> [Machine; 3] {
        [Machine::sp2(), Machine::t3d(), Machine::paragon()]
    }

    /// Builds a machine from a custom spec (validated).
    ///
    /// # Errors
    ///
    /// Returns [`SimMpiError::InvalidSpec`] when the spec is not
    /// physically sensible.
    pub fn custom(spec: MachineSpec) -> Result<Self, SimMpiError> {
        spec.validate().map_err(SimMpiError::InvalidSpec)?;
        Ok(Machine {
            spec,
            id: None,
            policy: AlgorithmPolicy::default(),
            wire: WireConfig::default(),
            placement: Placement::default(),
        })
    }

    /// Replaces the algorithm selection policy (builder style).
    pub fn with_policy(mut self, policy: AlgorithmPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the wire-model configuration (builder style; used by the
    /// ablation benches).
    pub fn with_wire_config(mut self, wire: WireConfig) -> Self {
        self.wire = wire;
        self
    }

    /// Replaces the rank-to-node placement (builder style); models the
    /// paper's "runtime node allocation" accuracy factor.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The active rank-to-node placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The machine's specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The study identity, if this is one of the three calibrated
    /// machines.
    pub fn id(&self) -> Option<MachineId> {
        self.id
    }

    /// The active wire configuration.
    pub fn wire_config(&self) -> WireConfig {
        self.wire
    }

    /// Human-readable machine name.
    pub fn name(&self) -> &str {
        self.spec.name
    }

    /// The algorithm this machine uses for `class` under the active
    /// policy.
    pub fn algorithm_for(&self, class: OpClass) -> Algorithm {
        match (self.policy, self.id) {
            (AlgorithmPolicy::Vendor, Some(id)) => vendor_algorithm(id, class),
            _ => {
                let alg = generic_algorithm(class);
                // Custom machines with barrier hardware still use it.
                if class == OpClass::Barrier
                    && self.spec.hw_barrier.is_some()
                    && self.policy == AlgorithmPolicy::Vendor
                {
                    Algorithm::Hardware
                } else {
                    alg
                }
            }
        }
    }

    /// Opens a `p`-rank communicator (one process per node, as in the
    /// paper's runs).
    ///
    /// # Errors
    ///
    /// Returns [`SimMpiError::InvalidSize`] when `p` is zero or exceeds
    /// the machine's measured maximum.
    pub fn communicator(&self, p: usize) -> Result<Communicator, SimMpiError> {
        if p == 0 || p > self.spec.max_nodes {
            return Err(SimMpiError::InvalidSize {
                requested: p,
                max: self.spec.max_nodes,
            });
        }
        Ok(Communicator::new(self.clone(), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::Algorithm;

    #[test]
    fn constructors_and_names() {
        assert_eq!(Machine::sp2().name(), "IBM SP2");
        assert_eq!(Machine::t3d().id(), Some(MachineId::T3d));
        assert_eq!(Machine::all().len(), 3);
    }

    #[test]
    fn size_limits_enforced() {
        assert!(Machine::t3d().communicator(64).is_ok());
        assert!(matches!(
            Machine::t3d().communicator(128),
            Err(SimMpiError::InvalidSize { max: 64, .. })
        ));
        assert!(Machine::sp2().communicator(128).is_ok());
        assert!(Machine::sp2().communicator(0).is_err());
    }

    #[test]
    fn vendor_vs_generic_barrier() {
        let vendor = Machine::t3d();
        assert_eq!(vendor.algorithm_for(OpClass::Barrier), Algorithm::Hardware);
        let generic = Machine::t3d().with_policy(AlgorithmPolicy::Generic);
        assert_eq!(
            generic.algorithm_for(OpClass::Barrier),
            Algorithm::Dissemination
        );
    }

    #[test]
    fn custom_spec_validation() {
        let mut spec = netmodel::sp2();
        spec.link_ns_per_byte = -1.0;
        assert!(matches!(
            Machine::custom(spec),
            Err(SimMpiError::InvalidSpec(_))
        ));
        let ok = Machine::custom(netmodel::sp2()).unwrap();
        assert_eq!(ok.id(), None);
        // Custom machine without hw barrier: generic dissemination.
        assert_eq!(ok.algorithm_for(OpClass::Barrier), Algorithm::Dissemination);
    }

    #[test]
    fn placement_builder() {
        let m = Machine::t3d().with_placement(Placement::Scattered { seed: 9 });
        assert_eq!(m.placement(), Placement::Scattered { seed: 9 });
        assert_eq!(Machine::sp2().placement(), Placement::Contiguous);
    }

    #[test]
    fn custom_spec_with_hw_barrier_uses_it() {
        let m = Machine::custom(netmodel::t3d()).unwrap();
        assert_eq!(m.algorithm_for(OpClass::Barrier), Algorithm::Hardware);
    }
}
