//! Parameter sweeps over (machine, operation, message length, nodes).
//!
//! The paper's grid: `m ∈ {4, 16, …, 64K}` bytes (powers of four) and
//! `p ∈ {2, 4, …, 128}` (powers of two), with the T3D capped at 64
//! nodes (§2). [`SweepBuilder`] produces that grid or any sub-grid, runs
//! the [`measure()`](crate::measure::measure) procedure at every point,
//! and collects a [`Dataset`].
//!
//! Every grid point is a self-contained deterministic simulation, so
//! sweeps shard across threads ([`SweepBuilder::threads`]): workers
//! pull whole `(machine, op, p, m)` points from a shared work index and
//! results are merged back in canonical point order, making the output
//! byte-identical to a serial run for any thread count.

use crate::dataset::Dataset;
use crate::measure::measure;
use crate::par::{self, ParStats};
use crate::protocol::Protocol;
use mpisim::{Machine, OpClass, SimMpiError};

/// The paper's message-length grid: 4 B to 64 KB in powers of four.
pub const PAPER_MESSAGE_SIZES: [u32; 8] = [4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];

/// The paper's machine-size grid: 2 to 128 nodes in powers of two.
pub const PAPER_NODE_COUNTS: [usize; 7] = [2, 4, 8, 16, 32, 64, 128];

/// One grid point in canonical sweep order.
#[derive(Debug, Clone)]
struct PointSpec {
    machine: Machine,
    op: OpClass,
    bytes: u32,
    nodes: usize,
}

/// Builds and runs measurement sweeps.
///
/// # Examples
///
/// ```
/// use harness::{Protocol, SweepBuilder};
/// use mpisim::{Machine, OpClass};
///
/// let data = SweepBuilder::new()
///     .machines([Machine::t3d()])
///     .ops([OpClass::Bcast])
///     .message_sizes([16])
///     .node_counts([2, 4])
///     .protocol(Protocol::quick())
///     .run()?;
/// assert_eq!(data.len(), 2);
/// # Ok::<(), mpisim::SimMpiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepBuilder {
    machines: Vec<Machine>,
    ops: Vec<OpClass>,
    sizes: Vec<u32>,
    nodes: Vec<usize>,
    protocol: Protocol,
    threads: usize,
}

impl Default for SweepBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepBuilder {
    /// A sweep over the paper's full grid: all three machines, all seven
    /// collectives, all message sizes and node counts.
    pub fn new() -> Self {
        SweepBuilder {
            machines: Machine::all().to_vec(),
            ops: OpClass::COLLECTIVES.to_vec(),
            sizes: PAPER_MESSAGE_SIZES.to_vec(),
            nodes: PAPER_NODE_COUNTS.to_vec(),
            protocol: Protocol::paper(),
            threads: 1,
        }
    }

    /// Restricts the machines.
    pub fn machines(mut self, machines: impl IntoIterator<Item = Machine>) -> Self {
        self.machines = machines.into_iter().collect();
        self
    }

    /// Restricts the operations.
    pub fn ops(mut self, ops: impl IntoIterator<Item = OpClass>) -> Self {
        self.ops = ops.into_iter().collect();
        self
    }

    /// Restricts the message lengths (bytes).
    pub fn message_sizes(mut self, sizes: impl IntoIterator<Item = u32>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Restricts the machine sizes (node counts).
    pub fn node_counts(mut self, nodes: impl IntoIterator<Item = usize>) -> Self {
        self.nodes = nodes.into_iter().collect();
        self
    }

    /// Replaces the measurement protocol.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the worker-thread count: `1` (the default) runs serially on
    /// the calling thread, `0` auto-detects the host's parallelism, any
    /// other value spawns exactly that many workers. The resulting
    /// [`Dataset`] is byte-identical for every setting — points merge
    /// in canonical grid order regardless of scheduling.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The grid in canonical order: machine → nodes → op → size, with
    /// barrier measured once per `(machine, p)` and node counts beyond
    /// a machine's maximum skipped.
    fn point_specs(&self) -> Vec<PointSpec> {
        let mut specs = Vec::new();
        for machine in &self.machines {
            for &p in &self.nodes {
                if p > machine.spec().max_nodes {
                    continue;
                }
                for &op in &self.ops {
                    // Barrier ignores the message length: measure it once
                    // per (machine, p), regardless of the size grid.
                    let mut barrier_done = false;
                    for &m in &self.sizes {
                        if op == OpClass::Barrier {
                            if barrier_done {
                                continue;
                            }
                            barrier_done = true;
                        }
                        specs.push(PointSpec {
                            machine: machine.clone(),
                            op,
                            bytes: if op == OpClass::Barrier { 0 } else { m },
                            nodes: p,
                        });
                    }
                }
            }
        }
        specs
    }

    /// Number of grid points this sweep will measure (after per-machine
    /// node caps).
    pub fn points(&self) -> usize {
        self.point_specs().len()
    }

    /// Runs the sweep and returns the dataset plus the executor's
    /// wall-clock/utilization statistics.
    fn run_collect(
        &self,
        progress: &(impl Fn(usize, usize) + Sync),
    ) -> Result<(Dataset, ParStats), SimMpiError> {
        let specs = self.point_specs();
        let (res, stats) = par::run_indexed(
            specs.len(),
            self.threads,
            |i| {
                let s = &specs[i];
                let comm = s.machine.communicator(s.nodes)?;
                measure(&comm, s.op, s.bytes, &self.protocol)
            },
            progress,
        );
        res.map(|points| (points.into_iter().collect(), stats))
    }

    /// Runs the sweep, invoking `progress(done, total)` once per
    /// completed `(machine, op, p, m)` point — per-point granularity,
    /// so long points (e.g. a 64-node alltoall) advance the count as
    /// soon as they finish instead of only at `(machine, p)` group
    /// boundaries. Under threads, delivery is serialized and `done` is
    /// strictly monotonic; completion order may differ from canonical
    /// order, but the returned [`Dataset`] never does.
    ///
    /// Node counts beyond a machine's measured maximum are skipped (the
    /// paper reports the T3D only to 64 nodes for the same reason).
    ///
    /// # Errors
    ///
    /// Propagates the measurement failure with the smallest canonical
    /// point index (serial runs stop at the first failure).
    pub fn run_with_progress(
        &self,
        progress: impl Fn(usize, usize) + Send + Sync,
    ) -> Result<Dataset, SimMpiError> {
        self.run_collect(&progress).map(|(data, _)| data)
    }

    /// Runs the sweep silently.
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure.
    pub fn run(&self) -> Result<Dataset, SimMpiError> {
        self.run_with_progress(|_, _| {})
    }

    /// A provenance manifest for this sweep: the grid, the machine list,
    /// and every protocol knob, so an exported dataset is reproducible
    /// from its own header.
    pub fn manifest(&self) -> obs::RunManifest {
        let names: Vec<&str> = self.machines.iter().map(Machine::name).collect();
        let ops: Vec<&str> = self.ops.iter().map(|o| o.paper_name()).collect();
        obs::RunManifest::new(names.join(", "))
            .param("ops", ops.join(", "))
            .param(
                "m_bytes",
                self.sizes
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            )
            .param(
                "p",
                self.nodes
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            )
            .param("warmup", self.protocol.warmup)
            .param("iterations", self.protocol.iterations)
            .param("repetitions", self.protocol.repetitions)
            .param("max_skew_us", self.protocol.max_skew.as_micros_f64())
            .param(
                "timer_resolution_us",
                self.protocol.timer_resolution.as_micros_f64(),
            )
            .param("os_noise", self.protocol.os_noise)
            .param("seed", format!("{:#x}", self.protocol.seed))
    }

    /// Runs the sweep and exports coverage metrics into `reg`: points
    /// measured per machine and per operation, the distribution of
    /// measured times, and host wall-clock metering — per-point
    /// wall-clock histogram plus quantiles (`sweep.wall_ns` /
    /// `sweep.wall.*`), total wall time, measured points per second,
    /// and the parallel executor's worker-utilization statistics
    /// (`sweep.par.*`: thread count, busy time, utilization, per-worker
    /// point/busy distributions). Per-worker wall numbers aggregate
    /// exactly once regardless of thread count; only the `sweep.par.*`
    /// and wall-clock values vary with threading — the dataset and the
    /// coverage counters never do.
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure.
    pub fn run_metered(&self, reg: &mut obs::MetricsRegistry) -> Result<Dataset, SimMpiError> {
        let (data, stats) = self.run_collect(&|_, _| {})?;
        let mut wall = obs::QuantileSketch::new();
        for &point_ns in &stats.point_ns {
            reg.observe("sweep.wall_ns", point_ns);
            wall.record(point_ns as f64);
        }
        let total_ns = stats.wall_ns as f64;
        reg.counter("sweep.points", data.len() as u64);
        reg.gauge("sweep.wall.total_ns", total_ns);
        if !data.is_empty() && total_ns > 0.0 {
            reg.gauge(
                "sweep.wall.points_per_sec",
                data.len() as f64 / (total_ns / 1e9),
            );
        }
        if !wall.is_empty() {
            reg.gauge("sweep.wall.point_p50_ns", wall.quantile(0.5).unwrap_or(0.0));
            reg.gauge(
                "sweep.wall.point_p99_ns",
                wall.quantile(0.99).unwrap_or(0.0),
            );
            reg.gauge("sweep.wall.point_max_ns", wall.max().unwrap_or(0.0));
        }
        stats.export_metrics(reg);
        for m in data.iter() {
            reg.counter(format!("sweep.points.{}", m.machine), 1);
            reg.counter(format!("sweep.points.op.{}", m.op.paper_name()), 1);
            reg.observe("sweep.time_ns", (m.time_us * 1e3).max(0.0) as u64);
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn small_sweep_produces_grid() {
        let data = SweepBuilder::new()
            .machines([Machine::t3d(), Machine::sp2()])
            .ops([OpClass::Bcast, OpClass::Gather])
            .message_sizes([16, 1024])
            .node_counts([2, 8])
            .protocol(Protocol::quick())
            .run()
            .unwrap();
        assert_eq!(data.len(), 2 * 2 * 2 * 2);
    }

    #[test]
    fn t3d_capped_at_64_nodes() {
        let b = SweepBuilder::new()
            .machines([Machine::t3d()])
            .ops([OpClass::Bcast])
            .message_sizes([16])
            .node_counts([64, 128]);
        assert_eq!(b.points(), 1);
        let data = b.protocol(Protocol::quick()).run().unwrap();
        assert_eq!(data.len(), 1);
        assert_eq!(data.iter().next().unwrap().nodes, 64);
    }

    #[test]
    fn barrier_measured_once_per_size_grid() {
        let data = SweepBuilder::new()
            .machines([Machine::sp2()])
            .ops([OpClass::Barrier])
            .message_sizes([4, 16, 64])
            .node_counts([4])
            .protocol(Protocol::quick())
            .run()
            .unwrap();
        assert_eq!(data.len(), 1, "barrier has no message length");
        assert_eq!(data.iter().next().unwrap().bytes, 0);
    }

    #[test]
    fn duplicate_sizes_measure_barrier_once() {
        let b = SweepBuilder::new()
            .machines([Machine::t3d()])
            .ops([OpClass::Barrier])
            .message_sizes([4, 4, 16])
            .node_counts([2]);
        assert_eq!(b.points(), 1);
        let calls = AtomicUsize::new(0);
        let data = b
            .protocol(Protocol::quick())
            .run_with_progress(|done, total| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert!(done <= total, "{done} > {total}");
            })
            .unwrap();
        assert_eq!(data.len(), 1);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn metered_sweep_exports_coverage_and_manifest() {
        let mut reg = obs::MetricsRegistry::new();
        let b = SweepBuilder::new()
            .machines([Machine::t3d()])
            .ops([OpClass::Bcast])
            .message_sizes([16, 64])
            .node_counts([2])
            .protocol(Protocol::quick());
        let data = b.run_metered(&mut reg).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(reg.get("sweep.points").unwrap().as_f64(), Some(2.0));
        assert!(reg.get("sweep.wall.total_ns").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            reg.get("sweep.wall.points_per_sec")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert!(reg.get("sweep.wall.point_p50_ns").is_some());
        assert_eq!(reg.get("sweep.par.threads").unwrap().as_f64(), Some(1.0));
        assert!(reg.get("sweep.par.utilization").is_some());
        assert!(reg.get("sweep.points.Cray T3D").is_some());
        assert!(
            reg.get("sweep.points.op.broadcast").is_some() || {
                // Accept whichever paper name bcast carries.
                reg.iter().any(|(k, _)| k.starts_with("sweep.points.op."))
            }
        );
        let man = b.manifest();
        assert_eq!(man.machine(), "Cray T3D");
        assert_eq!(man.get("p"), Some("2"));
        assert_eq!(man.get("seed"), Some("0x7"));
    }

    #[test]
    fn progress_reported() {
        let calls = AtomicUsize::new(0);
        SweepBuilder::new()
            .machines([Machine::t3d()])
            .ops([OpClass::Scan])
            .message_sizes([4])
            .node_counts([2, 4])
            .protocol(Protocol::quick())
            .run_with_progress(|done, total| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert!(done <= total);
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn parallel_sweep_equals_serial_byte_for_byte() {
        let base = SweepBuilder::new()
            .machines([Machine::sp2(), Machine::t3d()])
            .ops([OpClass::Bcast, OpClass::Alltoall, OpClass::Barrier])
            .message_sizes([64, 1024])
            .node_counts([2, 8])
            .protocol(Protocol::quick());
        let serial = base.clone().threads(1).run().unwrap();
        for threads in [0, 2, 4, 8] {
            let par = base.clone().threads(threads).run().unwrap();
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(par.to_csv(), serial.to_csv(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_progress_per_point_and_monotonic() {
        let b = SweepBuilder::new()
            .machines([Machine::t3d()])
            .ops([OpClass::Bcast, OpClass::Reduce])
            .message_sizes([16, 256])
            .node_counts([2, 4])
            .protocol(Protocol::quick())
            .threads(4);
        let total = b.points();
        assert_eq!(total, 8);
        let seen = Mutex::new(Vec::new());
        b.run_with_progress(|done, t| seen.lock().unwrap().push((done, t)))
            .unwrap();
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), total, "one callback per point");
        for (k, &(done, t)) in seen.iter().enumerate() {
            assert_eq!(done, k + 1, "strictly monotonic completed-count");
            assert_eq!(t, total);
        }
    }

    #[test]
    fn metered_parallel_sweep_reports_worker_stats() {
        let mut reg = obs::MetricsRegistry::new();
        let data = SweepBuilder::new()
            .machines([Machine::paragon()])
            .ops([OpClass::Scatter])
            .message_sizes([16, 64, 256, 1024])
            .node_counts([2, 4])
            .protocol(Protocol::quick())
            .threads(2)
            .run_metered(&mut reg)
            .unwrap();
        assert_eq!(data.len(), 8);
        assert_eq!(reg.get("sweep.par.threads").unwrap().as_f64(), Some(2.0));
        let util = reg.get("sweep.par.utilization").unwrap().as_f64().unwrap();
        assert!(util > 0.0, "workers did measurable work: {util}");
        assert_eq!(reg.get("sweep.points").unwrap().as_f64(), Some(8.0));
    }
}
