//! Point-to-point measurement with the paper's methodology.
//!
//! The collectives harness measures group operations; this module gives
//! point-to-point paths the same treatment — warm-up discards, an
//! averaged k-iteration ping-pong loop — producing the `(m, time)`
//! samples Hockney fitting (`perfmodel::hockney`) consumes.

use crate::protocol::Protocol;
use collectives::{Rank, Schedule, Step};
use mpisim::{Communicator, OpClass, SimMpiError};

/// One point-to-point sample: one-way latency for a message size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongSample {
    /// Message size, bytes.
    pub bytes: u32,
    /// One-way latency (half the averaged round trip), microseconds.
    pub one_way_us: f64,
}

/// Builds a single ping-pong round trip schedule between two ranks.
fn round_trip(p: usize, a: Rank, b: Rank, bytes: u32) -> Schedule {
    let mut s = Schedule::new(OpClass::PointToPoint, p);
    s.push(a, Step::Send { to: b, bytes });
    s.push(b, Step::Recv { from: a, bytes });
    s.push(b, Step::Send { to: a, bytes });
    s.push(a, Step::Recv { from: b, bytes });
    s
}

/// Measures one-way point-to-point latency between `a` and `b` for each
/// message size, using the protocol's warm-up/iteration structure over
/// ping-pong round trips.
///
/// # Errors
///
/// Fails on invalid ranks, identical endpoints, or an invalid protocol.
pub fn measure_pingpong(
    comm: &Communicator,
    a: Rank,
    b: Rank,
    sizes: &[u32],
    protocol: &Protocol,
) -> Result<Vec<PingPongSample>, SimMpiError> {
    protocol.validate().map_err(SimMpiError::InvalidSpec)?;
    if protocol.iterations < 2 {
        // The timed window spans iterations-1 round trips; a single
        // iteration would silently measure an empty span.
        return Err(SimMpiError::InvalidSpec(
            "ping-pong needs at least 2 timed iterations".into(),
        ));
    }
    if a == b {
        return Err(SimMpiError::InvalidRank {
            rank: b.0,
            size: comm.size(),
        });
    }
    let p = comm.size();
    let mut out = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let rt = round_trip(p, a, b, bytes);
        let segments: Vec<&Schedule> =
            std::iter::repeat_n(&rt, protocol.runs_per_repetition()).collect();
        let run = comm.run_sequence(&segments, None)?;
        // Rank a's local clock across the timed window, averaged per
        // round trip, halved for one-way.
        let start = run.finish[protocol.warmup][a.0];
        let end = run.finish[protocol.warmup + protocol.iterations - 1][a.0];
        let per_rt_us = end.since(start).as_micros_f64() / (protocol.iterations - 1) as f64;
        out.push(PingPongSample {
            bytes,
            one_way_us: per_rt_us / 2.0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Machine;

    fn samples(machine: Machine) -> Vec<PingPongSample> {
        let comm = machine.communicator(8).unwrap();
        measure_pingpong(
            &comm,
            Rank(0),
            Rank(7),
            &[64, 1_024, 16_384, 65_536],
            &Protocol::quick(),
        )
        .unwrap()
    }

    #[test]
    fn latency_grows_with_size() {
        let s = samples(Machine::sp2());
        assert_eq!(s.len(), 4);
        assert!(s.windows(2).all(|w| w[1].one_way_us > w[0].one_way_us));
    }

    #[test]
    fn t3d_beats_sp2_at_both_ends() {
        let t3d = samples(Machine::t3d());
        let sp2 = samples(Machine::sp2());
        assert!(t3d[0].one_way_us < sp2[0].one_way_us, "latency end");
        assert!(t3d[3].one_way_us < sp2[3].one_way_us, "bandwidth end");
    }

    #[test]
    fn hockney_fit_integrates() {
        let s = samples(Machine::paragon());
        let pts: Vec<(u32, f64)> = s.iter().map(|x| (x.bytes, x.one_way_us)).collect();
        let fit = perfmodel_fit(&pts);
        assert!(fit.is_some());
        let f = fit.unwrap();
        // Effective bandwidth cannot exceed the 175 MB/s link.
        assert!(f.1 <= 180.0, "r_inf {} MB/s", f.1);
        assert!(f.0 > 0.0, "positive latency");
    }

    /// Local mini-fit (avoids a dev-dependency cycle with perfmodel):
    /// least squares of t = t0 + m/r.
    fn perfmodel_fit(pts: &[(u32, f64)]) -> Option<(f64, f64)> {
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|&(m, _)| f64::from(m)).sum();
        let sy: f64 = pts.iter().map(|&(_, t)| t).sum();
        let sxx: f64 = pts.iter().map(|&(m, _)| f64::from(m).powi(2)).sum();
        let sxy: f64 = pts.iter().map(|&(m, t)| f64::from(m) * t).sum();
        let det = n * sxx - sx * sx;
        if det.abs() < 1e-9 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / det;
        let t0 = (sy - slope * sx) / n;
        (slope > 0.0).then(|| (t0, 1.0 / slope))
    }

    #[test]
    fn same_rank_rejected() {
        let comm = Machine::t3d().communicator(4).unwrap();
        assert!(measure_pingpong(&comm, Rank(1), Rank(1), &[64], &Protocol::quick()).is_err());
    }

    #[test]
    fn single_iteration_protocol_rejected() {
        // An empty timed window must be an error, not a silent 0 us.
        let comm = Machine::t3d().communicator(4).unwrap();
        let e = measure_pingpong(&comm, Rank(0), Rank(1), &[64], &Protocol::ideal());
        assert!(e.is_err());
    }
}
