//! The measurement procedure.
//!
//! Reproduces the paper's pseudo-code (§2):
//!
//! ```text
//! barrier synchronization
//! get start-time
//! for (i = 0; i < k; i++) the-collective-routine-being-measured
//! get end-time
//! local-time = (end-time - start-time) / k
//! communication-time = maximum reduce(local-time)
//! ```
//!
//! plus the warm-up discard and the five outer repetitions. Timestamps
//! are quantized to the protocol's timer resolution, and nodes enter the
//! program with randomized skew — the barrier "only synchronizes the
//! processes logically. It does not time-synchronize the processes."

use crate::protocol::Protocol;
use desim::{SimTime, SplitMix64};
use mpisim::{comm::RunOptions, Communicator, CpuNoise, OpClass, Rank, Schedule, SimMpiError};

/// One measured data point `T(m, p)` for an operation on a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Machine display name.
    pub machine: String,
    /// Operation measured.
    pub op: OpClass,
    /// Message length in bytes (`m`).
    pub bytes: u32,
    /// Machine size (`p`).
    pub nodes: usize,
    /// The paper's reported number: max over processes of the per-process
    /// mean iteration time, averaged over repetitions. Microseconds.
    pub time_us: f64,
    /// Min over processes (averaged over repetitions), microseconds.
    pub min_time_us: f64,
    /// Mean over processes (averaged over repetitions), microseconds.
    pub mean_time_us: f64,
    /// The max-reduced time of each individual repetition, microseconds.
    pub per_repetition_us: Vec<f64>,
}

impl Measurement {
    /// Aggregated message volume `f(m, p)` of this point (§3).
    pub fn aggregated_bytes(&self) -> u64 {
        self.op
            .aggregated_bytes(u64::from(self.bytes), self.nodes as u64)
    }

    /// Aggregated bandwidth `R(m, p) = f(m, p) / D` in MB/s, given a
    /// startup latency `t0_us` to subtract. Returns `None` when the
    /// transmission delay is non-positive (startup-dominated points).
    pub fn aggregated_bandwidth_mb_s(&self, t0_us: f64) -> Option<f64> {
        let d_us = self.time_us - t0_us;
        if d_us <= 0.0 || self.aggregated_bytes() == 0 {
            return None;
        }
        Some(self.aggregated_bytes() as f64 / d_us) // B/us == MB/s
    }
}

/// Quantizes `t` down to a multiple of `res` (timer tick floor).
fn quantize(t: SimTime, res: desim::SimDuration) -> f64 {
    let us = t.as_micros_f64();
    let q = res.as_micros_f64();
    if q <= 0.0 {
        us
    } else {
        (us / q).floor() * q
    }
}

/// Measures one collective on one communicator per the protocol.
///
/// The executed program per repetition is
/// `[barrier, op × (warmup + k)]` with per-rank start skew; timestamps
/// are taken at each rank's segment completions, exactly as
/// `MPI_Wtime()` calls between the loop iterations would.
///
/// # Errors
///
/// Propagates schedule/executor failures, and reports an invalid
/// protocol as [`SimMpiError::InvalidSpec`].
pub fn measure(
    comm: &Communicator,
    op: OpClass,
    bytes: u32,
    protocol: &Protocol,
) -> Result<Measurement, SimMpiError> {
    protocol.validate().map_err(SimMpiError::InvalidSpec)?;
    let p = comm.size();
    let barrier = comm.schedule(OpClass::Barrier, Rank(0), 0)?;
    let coll = comm.schedule(op, Rank(0), bytes)?;

    let mut rng = SplitMix64::new(protocol.seed);
    let mut per_rep_max = Vec::with_capacity(protocol.repetitions);
    let mut per_rep_min = Vec::with_capacity(protocol.repetitions);
    let mut per_rep_mean = Vec::with_capacity(protocol.repetitions);

    for _rep in 0..protocol.repetitions {
        let skew: Vec<SimTime> = (0..p)
            .map(|_| {
                let max_ns = protocol.max_skew.as_nanos();
                if max_ns == 0 {
                    SimTime::ZERO
                } else {
                    SimTime::from_nanos(rng.next_below(max_ns + 1))
                }
            })
            .collect();

        let mut segments: Vec<&Schedule> = Vec::with_capacity(1 + protocol.runs_per_repetition());
        segments.push(&barrier);
        for _ in 0..protocol.runs_per_repetition() {
            segments.push(&coll);
        }
        let cpu_noise = (protocol.os_noise > 0.0).then(|| CpuNoise {
            amplitude: protocol.os_noise,
            seed: rng.next_u64(),
        });
        let out = comm.run_with(
            &segments,
            RunOptions {
                start_times: Some(skew),
                cpu_noise,
                ..RunOptions::default()
            },
        )?;

        // Per-rank local time: (end - start) / k, where start is the
        // timestamp after the warm-up segment and end after the last.
        let start_seg = protocol.warmup; // segment index: 0 = barrier, 1.. = runs
        let end_seg = protocol.warmup + protocol.iterations;
        let mut local_means = Vec::with_capacity(p);
        for r in 0..p {
            let t_start = quantize(out.finish[start_seg][r], protocol.timer_resolution);
            let t_end = quantize(out.finish[end_seg][r], protocol.timer_resolution);
            local_means.push((t_end - t_start) / protocol.iterations as f64);
        }
        let max = local_means.iter().copied().fold(f64::MIN, f64::max);
        let min = local_means.iter().copied().fold(f64::MAX, f64::min);
        let mean = local_means.iter().sum::<f64>() / p as f64;
        per_rep_max.push(max);
        per_rep_min.push(min);
        per_rep_mean.push(mean);
    }

    let reps = protocol.repetitions as f64;
    Ok(Measurement {
        machine: comm.machine().name().to_string(),
        op,
        bytes,
        nodes: p,
        time_us: per_rep_max.iter().sum::<f64>() / reps,
        min_time_us: per_rep_min.iter().sum::<f64>() / reps,
        mean_time_us: per_rep_mean.iter().sum::<f64>() / reps,
        per_repetition_us: per_rep_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Machine;

    #[test]
    fn measurement_basics() {
        let comm = Machine::t3d().communicator(8).unwrap();
        let m = measure(&comm, OpClass::Bcast, 1024, &Protocol::quick()).unwrap();
        assert_eq!(m.nodes, 8);
        assert_eq!(m.bytes, 1024);
        assert_eq!(m.machine, "Cray T3D");
        assert!(m.time_us > 0.0);
        assert!(m.min_time_us <= m.mean_time_us);
        assert!(m.mean_time_us <= m.time_us + 1e-9);
        assert_eq!(m.per_repetition_us.len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let comm = Machine::sp2().communicator(8).unwrap();
        let a = measure(&comm, OpClass::Alltoall, 256, &Protocol::quick()).unwrap();
        let b = measure(&comm, OpClass::Alltoall, 256, &Protocol::quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn skew_seed_changes_results_slightly() {
        let comm = Machine::sp2().communicator(8).unwrap();
        let mut proto = Protocol::quick();
        proto.max_skew = desim::SimDuration::from_micros(50);
        let a = measure(&comm, OpClass::Bcast, 64, &proto.clone().with_seed(1)).unwrap();
        let b = measure(&comm, OpClass::Bcast, 64, &proto.with_seed(2)).unwrap();
        assert_ne!(a.time_us, b.time_us);
        // But not wildly: skew amortizes over iterations.
        let rel = (a.time_us - b.time_us).abs() / a.time_us;
        assert!(rel < 0.5, "rel diff {rel}");
    }

    #[test]
    fn pipelined_iterations_cheaper_than_cold_start() {
        // Amortized per-iteration time over k runs is at most the
        // cold-start single-run time.
        let comm = Machine::paragon().communicator(16).unwrap();
        let cold = comm.bcast(Rank(0), 4096).unwrap().time().as_micros_f64();
        let meas = measure(&comm, OpClass::Bcast, 4096, &Protocol::quick()).unwrap();
        assert!(
            meas.time_us <= cold * 1.6,
            "meas {} vs cold {}",
            meas.time_us,
            cold
        );
    }

    #[test]
    fn aggregated_bandwidth_computation() {
        let comm = Machine::t3d().communicator(16).unwrap();
        let m = measure(&comm, OpClass::Alltoall, 16_384, &Protocol::quick()).unwrap();
        let f = m.aggregated_bytes();
        assert_eq!(f, 16_384 * 16 * 15);
        let r = m.aggregated_bandwidth_mb_s(0.0).unwrap();
        assert!(r > 0.0);
        // Subtracting a huge startup makes D non-positive -> None.
        assert!(m.aggregated_bandwidth_mb_s(1e12).is_none());
    }

    #[test]
    fn os_noise_slows_and_spreads() {
        let comm = Machine::sp2().communicator(16).unwrap();
        let quiet = measure(&comm, OpClass::Bcast, 1_024, &Protocol::quick()).unwrap();
        let mut noisy_proto = Protocol::quick();
        noisy_proto.os_noise = 0.5;
        let noisy = measure(&comm, OpClass::Bcast, 1_024, &noisy_proto).unwrap();
        assert!(noisy.time_us > quiet.time_us, "interference slows the max");
        let quiet_spread = quiet.time_us - quiet.min_time_us;
        let noisy_spread = noisy.time_us - noisy.min_time_us;
        assert!(
            noisy_spread >= quiet_spread,
            "noise widens the min-max spread: {quiet_spread} vs {noisy_spread}"
        );
    }

    #[test]
    fn timer_resolution_quantizes() {
        let comm = Machine::t3d().communicator(4).unwrap();
        let mut proto = Protocol::quick();
        proto.timer_resolution = desim::SimDuration::from_micros(1000);
        let m = measure(&comm, OpClass::Barrier, 0, &proto).unwrap();
        // A ~3us barrier under a 1ms timer reads as 0.
        assert_eq!(m.time_us, 0.0);
    }

    #[test]
    fn invalid_protocol_is_reported() {
        let comm = Machine::t3d().communicator(4).unwrap();
        let mut proto = Protocol::quick();
        proto.iterations = 0;
        assert!(measure(&comm, OpClass::Bcast, 4, &proto).is_err());
    }
}
