//! # harness — the paper's measurement methodology
//!
//! Reimplements §2 of the paper over the simulator: warm-up discards,
//! `k`-iteration timing loops fenced by a (logically synchronizing)
//! barrier, per-process `MPI_Wtime` readings on skewed clocks with
//! finite timer resolution, max-reduction across processes, and five
//! independent repetitions.
//!
//! * [`Protocol`] — every methodology knob, defaulting to the paper's;
//! * [`measure()`](measure::measure) — one `T(m, p)` data point;
//! * [`SweepBuilder`] — grids of measurements over machines × operations
//!   × message lengths × node counts, optionally sharded across worker
//!   threads ([`SweepBuilder::threads`]) with a deterministic
//!   canonical-order merge;
//! * [`par`] — the work-distributing executor behind parallel sweeps
//!   (`thread::scope` + shared atomic work index, no dependencies);
//! * [`Dataset`] — series queries used by the figure/table generators.
//!
//! # Examples
//!
//! ```
//! use harness::{measure, Protocol};
//! use mpisim::{Machine, OpClass};
//!
//! let comm = Machine::t3d().communicator(16)?;
//! let point = measure(&comm, OpClass::Bcast, 1024, &Protocol::quick())?;
//! println!("T(1KB, 16) = {:.1} us on {}", point.time_us, point.machine);
//! # Ok::<(), mpisim::SimMpiError>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod dataset;
pub mod measure;
pub mod par;
pub mod pingpong;
pub mod protocol;
pub mod sweep;

pub use dataset::{Dataset, ParseDatasetError, CSV_HEADER};
pub use measure::{measure, Measurement};
pub use par::{map_indexed, resolve_threads, run_indexed, ParStats, WorkerStats};
pub use pingpong::{measure_pingpong, PingPongSample};
pub use protocol::Protocol;
pub use sweep::{SweepBuilder, PAPER_MESSAGE_SIZES, PAPER_NODE_COUNTS};
