//! Measurement collections and series extraction.
//!
//! A [`Dataset`] holds the `T(m, p)` grid for any number of machines and
//! operations and answers the queries the paper's figures need: time vs
//! machine size at fixed message length (Figs. 1, 3), time vs message
//! length at fixed size (Fig. 2), and the full grid for fitting
//! (Table 3).

use crate::measure::Measurement;
use mpisim::OpClass;

/// Header of the dataset CSV interchange format.
pub const CSV_HEADER: &str = "machine,operation,bytes,nodes,time_us,min_time_us,mean_time_us";

/// Why a dataset CSV failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDatasetError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDatasetError {}

fn op_from_name(name: &str) -> Option<OpClass> {
    OpClass::COLLECTIVES
        .into_iter()
        .chain([OpClass::PointToPoint])
        .find(|op| op.paper_name() == name)
}

/// A collection of measurements with series queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    points: Vec<Measurement>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a measurement.
    pub fn push(&mut self, m: Measurement) {
        self.points.push(m);
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over all measurements.
    pub fn iter(&self) -> impl Iterator<Item = &Measurement> {
        self.points.iter()
    }

    /// Merges another dataset into this one.
    pub fn extend(&mut self, other: Dataset) {
        self.points.extend(other.points);
    }

    /// All measurements of `op` on `machine`.
    pub fn slice<'a>(
        &'a self,
        machine: &'a str,
        op: OpClass,
    ) -> impl Iterator<Item = &'a Measurement> + 'a {
        self.points
            .iter()
            .filter(move |m| m.machine == machine && m.op == op)
    }

    /// Time-vs-nodes series at fixed message length: sorted
    /// `(p, time_us)` pairs.
    pub fn series_vs_nodes(&self, machine: &str, op: OpClass, bytes: u32) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .slice(machine, op)
            .filter(|m| m.bytes == bytes)
            .map(|m| (m.nodes, m.time_us))
            .collect();
        v.sort_unstable_by_key(|&(p, _)| p);
        v.dedup_by_key(|&mut (p, _)| p);
        v
    }

    /// Time-vs-message-length series at fixed machine size: sorted
    /// `(m, time_us)` pairs.
    pub fn series_vs_bytes(&self, machine: &str, op: OpClass, nodes: usize) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .slice(machine, op)
            .filter(|m| m.nodes == nodes)
            .map(|m| (m.bytes, m.time_us))
            .collect();
        v.sort_unstable_by_key(|&(b, _)| b);
        v.dedup_by_key(|&mut (b, _)| b);
        v
    }

    /// The full `(m, p, time_us)` grid for `machine`/`op`, the input to
    /// two-dimensional fitting.
    pub fn grid(&self, machine: &str, op: OpClass) -> Vec<(u32, usize, f64)> {
        let mut v: Vec<(u32, usize, f64)> = self
            .slice(machine, op)
            .map(|m| (m.bytes, m.nodes, m.time_us))
            .collect();
        v.sort_unstable_by_key(|&(b, p, _)| (b, p));
        v
    }

    /// The single measurement at exactly `(machine, op, bytes, nodes)`.
    pub fn at(&self, machine: &str, op: OpClass, bytes: u32, nodes: usize) -> Option<&Measurement> {
        self.points
            .iter()
            .find(|m| m.machine == machine && m.op == op && m.bytes == bytes && m.nodes == nodes)
    }

    /// Machine names present, in first-seen order.
    pub fn machines(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for m in &self.points {
            if !names.contains(&m.machine) {
                names.push(m.machine.clone());
            }
        }
        names
    }

    /// Operations present, in [`OpClass::COLLECTIVES`] order.
    pub fn ops(&self) -> Vec<OpClass> {
        OpClass::COLLECTIVES
            .into_iter()
            .filter(|&op| self.points.iter().any(|m| m.op == op))
            .collect()
    }
}

impl Dataset {
    /// Serializes to the CSV interchange format (per-repetition data is
    /// not retained).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for m in &self.points {
            // Machine names contain no commas/quotes by construction,
            // but escape defensively.
            let name = if m.machine.contains(',') || m.machine.contains('"') {
                format!("\"{}\"", m.machine.replace('"', "\"\""))
            } else {
                m.machine.clone()
            };
            out.push_str(&format!(
                "{},{},{},{},{:.3},{:.3},{:.3}\n",
                name,
                m.op.paper_name(),
                m.bytes,
                m.nodes,
                m.time_us,
                m.min_time_us,
                m.mean_time_us
            ));
        }
        out
    }

    /// Parses the CSV interchange format produced by [`Dataset::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseDatasetError`] with the offending line on malformed
    /// input (wrong header, field count, unknown operation, bad numbers).
    pub fn from_csv(text: &str) -> Result<Dataset, ParseDatasetError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == CSV_HEADER => {}
            Some((_, h)) => {
                return Err(ParseDatasetError {
                    line: 1,
                    message: format!("unexpected header {h:?}"),
                })
            }
            None => {
                return Err(ParseDatasetError {
                    line: 1,
                    message: "empty input".into(),
                })
            }
        }
        let mut data = Dataset::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let err = |message: String| ParseDatasetError {
                line: lineno,
                message,
            };
            // The machine name may be quoted (and contain commas); the
            // remaining six fields never are.
            let (machine, rest) = if let Some(stripped) = line.strip_prefix('"') {
                let close = stripped.find('"').and_then(|mut i| {
                    // Skip doubled quotes inside the name.
                    let b = stripped.as_bytes();
                    while b.get(i + 1) == Some(&b'"') {
                        i = match stripped[i + 2..].find('"') {
                            Some(j) => i + 2 + j,
                            None => return None,
                        };
                    }
                    Some(i)
                });
                let Some(close) = close else {
                    return Err(err("unterminated quoted machine name".into()));
                };
                let name = stripped[..close].replace("\"\"", "\"");
                let rest = stripped[close + 1..]
                    .strip_prefix(',')
                    .ok_or_else(|| err("expected ',' after quoted name".into()))?;
                (name, rest)
            } else {
                let Some((name, rest)) = line.split_once(',') else {
                    return Err(err("expected 7 fields, got 1".into()));
                };
                (name.to_string(), rest)
            };
            let fields: Vec<&str> = rest.split(',').collect();
            if fields.len() != 6 {
                return Err(err(format!("expected 7 fields, got {}", fields.len() + 1)));
            }
            // Re-index: fields[0] is now the operation.
            let fields: Vec<&str> = std::iter::once("").chain(fields).collect();
            let op = op_from_name(fields[1])
                .ok_or_else(|| err(format!("unknown operation {:?}", fields[1])))?;
            let parse_u = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|e| err(format!("bad {what} {s:?}: {e}")))
            };
            let parse_f = |s: &str, what: &str| {
                s.parse::<f64>()
                    .map_err(|e| err(format!("bad {what} {s:?}: {e}")))
            };
            let time_us = parse_f(fields[4], "time_us")?;
            data.push(Measurement {
                machine,
                op,
                bytes: parse_u(fields[2], "bytes")? as u32,
                nodes: parse_u(fields[3], "nodes")? as usize,
                time_us,
                min_time_us: parse_f(fields[5], "min_time_us")?,
                mean_time_us: parse_f(fields[6], "mean_time_us")?,
                per_repetition_us: vec![time_us],
            });
        }
        Ok(data)
    }
}

impl FromIterator<Measurement> for Dataset {
    fn from_iter<I: IntoIterator<Item = Measurement>>(iter: I) -> Self {
        Dataset {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<Measurement> for Dataset {
    fn extend<I: IntoIterator<Item = Measurement>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(machine: &str, op: OpClass, bytes: u32, nodes: usize, t: f64) -> Measurement {
        Measurement {
            machine: machine.into(),
            op,
            bytes,
            nodes,
            time_us: t,
            min_time_us: t * 0.9,
            mean_time_us: t * 0.95,
            per_repetition_us: vec![t],
        }
    }

    fn sample() -> Dataset {
        [
            point("A", OpClass::Bcast, 16, 2, 10.0),
            point("A", OpClass::Bcast, 16, 8, 30.0),
            point("A", OpClass::Bcast, 16, 4, 20.0),
            point("A", OpClass::Bcast, 64, 4, 25.0),
            point("A", OpClass::Gather, 16, 4, 40.0),
            point("B", OpClass::Bcast, 16, 4, 50.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn series_vs_nodes_sorted_and_filtered() {
        let d = sample();
        assert_eq!(
            d.series_vs_nodes("A", OpClass::Bcast, 16),
            vec![(2, 10.0), (4, 20.0), (8, 30.0)]
        );
        assert!(d.series_vs_nodes("C", OpClass::Bcast, 16).is_empty());
    }

    #[test]
    fn series_vs_bytes() {
        let d = sample();
        assert_eq!(
            d.series_vs_bytes("A", OpClass::Bcast, 4),
            vec![(16, 20.0), (64, 25.0)]
        );
    }

    #[test]
    fn grid_and_at() {
        let d = sample();
        assert_eq!(d.grid("A", OpClass::Bcast).len(), 4);
        assert_eq!(d.at("A", OpClass::Gather, 16, 4).unwrap().time_us, 40.0);
        assert!(d.at("A", OpClass::Gather, 999, 4).is_none());
    }

    #[test]
    fn machines_and_ops_enumeration() {
        let d = sample();
        assert_eq!(d.machines(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(d.ops(), vec![OpClass::Bcast, OpClass::Gather]);
    }

    #[test]
    fn csv_round_trips() {
        let d = sample();
        let csv = d.to_csv();
        let back = Dataset::from_csv(&csv).unwrap();
        assert_eq!(back.len(), d.len());
        for (a, b) in d.iter().zip(back.iter()) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.op, b.op);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.nodes, b.nodes);
            assert!((a.time_us - b.time_us).abs() < 1e-3);
        }
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(Dataset::from_csv("").is_err());
        assert!(Dataset::from_csv("not,the,header\n").is_err());
        let bad_row = format!("{CSV_HEADER}\nA,Broadcast,10\n");
        let e = Dataset::from_csv(&bad_row).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("7 fields"));
        let bad_op = format!("{CSV_HEADER}\nA,Bogus,1,2,3,4,5\n");
        assert!(Dataset::from_csv(&bad_op).is_err());
        let bad_num = format!("{CSV_HEADER}\nA,Broadcast,x,2,3,4,5\n");
        assert!(Dataset::from_csv(&bad_num).is_err());
    }

    #[test]
    fn csv_round_trips_quoted_machine_names() {
        let mut d = Dataset::new();
        d.push(point("Cluster, Inc. \"NOW\"", OpClass::Bcast, 4, 2, 10.0));
        let back = Dataset::from_csv(&d.to_csv()).unwrap();
        assert_eq!(back.iter().next().unwrap().machine, "Cluster, Inc. \"NOW\"");
        // Unterminated quote is a parse error, not a panic.
        let bad = format!("{CSV_HEADER}\n\"open,Broadcast,4,2,1,1,1\n");
        assert!(Dataset::from_csv(&bad).is_err());
    }

    #[test]
    fn csv_skips_blank_lines() {
        let csv = format!("{CSV_HEADER}\n\nA,Broadcast,4,2,10.000,9.000,9.500\n\n");
        let d = Dataset::from_csv(&csv).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn extend_merges() {
        let mut d = sample();
        let n = d.len();
        d.extend(sample());
        assert_eq!(d.len(), 2 * n);
        assert!(!d.is_empty());
    }
}
