//! The measurement protocol of §2 of the paper.
//!
//! > "Each node process executes a barrier. After the barrier, the
//! > collective operation is executed k times by all p processes … The
//! > test program is executed repeatedly for more than 22 times, with
//! > timing starting on the third iteration to exclude the warm-up
//! > effect … The test program is executed five times for each machine
//! > size p, with the value of k fixed at 20."
//!
//! [`Protocol`] captures every knob of that procedure, including the two
//! accuracy factors the paper's §9 lists that we can model: timer
//! resolution and unsynchronized node clocks (start skew).

use desim::SimDuration;

/// Measurement protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Protocol {
    /// Iterations discarded for warm-up (paper: 2).
    pub warmup: usize,
    /// Timed iterations `k` (paper: 20).
    pub iterations: usize,
    /// Independent repetitions of the whole program (paper: 5).
    pub repetitions: usize,
    /// Maximum per-node start skew, modeling unsynchronized clocks and
    /// OS scheduling jitter; each node's entry is drawn uniformly from
    /// `[0, max_skew]`.
    pub max_skew: SimDuration,
    /// Timer quantum of `MPI_Wtime` readings (0 = ideal timer).
    pub timer_resolution: SimDuration,
    /// Background-interference amplitude: each rank's CPU costs inflate
    /// by a factor drawn from `[1, 1 + os_noise]` per repetition. The
    /// paper ran in dedicated mode, so the default is 0; §9 lists shared
    /// use as an accuracy factor, modeled here for what-if studies.
    pub os_noise: f64,
    /// Seed for the skew and noise draws.
    pub seed: u64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol::paper()
    }
}

impl Protocol {
    /// The paper's exact protocol: 2 warm-up + 20 timed iterations, five
    /// repetitions, ±10 µs start skew, 0.1 µs timer quantum.
    pub fn paper() -> Self {
        Protocol {
            warmup: 2,
            iterations: 20,
            repetitions: 5,
            max_skew: SimDuration::from_micros(10),
            timer_resolution: SimDuration::from_nanos(100),
            os_noise: 0.0,
            seed: 0x48_50_43_41_39_37, // "HPCA97"
        }
    }

    /// A cheap protocol for unit tests and smoke runs: 1 warm-up + 3
    /// timed iterations, two repetitions, no skew, ideal timer.
    pub fn quick() -> Self {
        Protocol {
            warmup: 1,
            iterations: 3,
            repetitions: 2,
            max_skew: SimDuration::ZERO,
            timer_resolution: SimDuration::ZERO,
            os_noise: 0.0,
            seed: 7,
        }
    }

    /// An idealized protocol: no warm-up, one iteration, one repetition,
    /// perfectly synchronized clocks. Useful for isolating model
    /// behaviour from methodology effects.
    pub fn ideal() -> Self {
        Protocol {
            warmup: 0,
            iterations: 1,
            repetitions: 1,
            max_skew: SimDuration::ZERO,
            timer_resolution: SimDuration::ZERO,
            os_noise: 0.0,
            seed: 0,
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total collective executions per repetition (warm-up + timed).
    pub fn runs_per_repetition(&self) -> usize {
        self.warmup + self.iterations
    }

    /// Validates protocol sanity.
    ///
    /// # Errors
    ///
    /// Returns a message if `iterations` or `repetitions` is zero, or
    /// the noise amplitude is negative or non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.repetitions == 0 {
            return Err("repetitions must be positive".into());
        }
        if !self.os_noise.is_finite() || self.os_noise < 0.0 {
            return Err(format!(
                "os_noise must be finite and >= 0, got {}",
                self.os_noise
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_matches_section_2() {
        let p = Protocol::paper();
        assert_eq!(p.warmup, 2);
        assert_eq!(p.iterations, 20);
        assert_eq!(p.repetitions, 5);
        assert_eq!(p.runs_per_repetition(), 22, "\"more than 22 times\"");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(Protocol::default(), Protocol::paper());
    }

    #[test]
    fn invalid_protocols_rejected() {
        let mut p = Protocol::quick();
        p.iterations = 0;
        assert!(p.validate().is_err());
        let mut p = Protocol::quick();
        p.repetitions = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn noise_validation() {
        let mut p = Protocol::quick();
        p.os_noise = -0.1;
        assert!(p.validate().is_err());
        p.os_noise = f64::NAN;
        assert!(p.validate().is_err());
        p.os_noise = 0.25;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn seed_builder() {
        assert_eq!(Protocol::quick().with_seed(99).seed, 99);
    }
}
