//! Work-distributing parallel execution with deterministic merge.
//!
//! Every pipeline in this repository — sweeps, the perfgate suite, the
//! schedlint vendor sweep — is a grid of *independent* deterministic
//! simulation points, exactly like the paper's own methodology (one
//! timed run per machine/operation/size, §3). This module shards such
//! grids across OS threads with the repo's dependency-free convention:
//! [`std::thread::scope`] plus one shared atomic work index. Workers
//! pull whole items; results are merged back **in canonical input
//! order**, so the output is byte-identical to a serial run regardless
//! of thread count or scheduling.
//!
//! Determinism contract: given the same `work` closure (itself a pure
//! function of the item index), [`run_indexed`] returns the same
//! `Vec<T>` for every `threads` value. Only the [`ParStats`] wall-clock
//! numbers differ run to run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// An error type with no values: lets infallible workloads reuse
/// [`run_indexed`] via [`map_indexed`] without inventing a dummy error.
#[derive(Debug, Clone, Copy)]
pub enum Never {}

/// Resolves a requested worker count: `0` means auto-detect from
/// [`std::thread::available_parallelism`] (falling back to 1 when the
/// host does not report it), any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Per-worker accounting from one parallel run.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Items this worker completed.
    pub points: usize,
    /// Wall-clock spent inside `work` calls, nanoseconds.
    pub busy_ns: u64,
}

/// Timing and utilization statistics of one [`run_indexed`] call.
#[derive(Debug, Clone)]
pub struct ParStats {
    /// Worker count actually used (after [`resolve_threads`] and
    /// clamping to the item count).
    pub threads: usize,
    /// End-to-end wall-clock of the whole run, nanoseconds.
    pub wall_ns: u64,
    /// Per-item wall-clock in canonical item order, nanoseconds
    /// (0 for items never run because of an abort).
    pub point_ns: Vec<u64>,
    /// Per-worker accounting, one entry per spawned worker.
    pub workers: Vec<WorkerStats>,
}

impl ParStats {
    /// Fraction of total worker capacity spent inside `work`:
    /// `sum(busy) / (threads * wall)`. 1.0 means perfectly
    /// work-bound; low values mean workers starved (too few items) or
    /// the host had fewer cores than workers.
    pub fn utilization(&self) -> f64 {
        let capacity = self.threads as f64 * self.wall_ns as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        self.workers.iter().map(|w| w.busy_ns as f64).sum::<f64>() / capacity
    }

    /// Exports the `sweep.par.*` worker-utilization metrics.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.gauge("sweep.par.threads", self.threads as f64);
        reg.gauge("sweep.par.wall_ns", self.wall_ns as f64);
        reg.gauge(
            "sweep.par.busy_ns",
            self.workers.iter().map(|w| w.busy_ns as f64).sum(),
        );
        reg.gauge("sweep.par.utilization", self.utilization());
        for w in &self.workers {
            reg.observe("sweep.par.worker_busy_ns", w.busy_ns);
            reg.observe("sweep.par.worker_points", w.points as u64);
        }
    }
}

/// Runs `work(0..n)` on `threads` workers pulling items from a shared
/// atomic index, and merges the results **in item order**.
///
/// * `progress(done, n)` is invoked exactly once per completed item
///   with a monotonically increasing completed-count (delivery is
///   serialized, so a later call always carries a larger `done`).
/// * The first error **in canonical item order** among those observed
///   wins, matching a serial loop's error; remaining workers stop
///   pulling new items as soon as any error is seen.
/// * `threads <= 1` (after [`resolve_threads`]) runs the items inline
///   on the calling thread, in order, stopping at the first error —
///   the exact serial semantics, with no thread spawned.
pub fn run_indexed<T, E, F, P>(
    n: usize,
    threads: usize,
    work: F,
    progress: &P,
) -> (Result<Vec<T>, E>, ParStats)
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    P: Fn(usize, usize) + Sync + ?Sized,
{
    let threads = resolve_threads(threads).clamp(1, n.max(1));
    let t0 = Instant::now();
    let mut stats = ParStats {
        threads,
        wall_ns: 0,
        point_ns: vec![0; n],
        workers: vec![WorkerStats::default(); threads],
    };

    if threads == 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let p0 = Instant::now();
            match work(i) {
                Ok(v) => {
                    let dt = elapsed_ns(p0);
                    stats.point_ns[i] = dt;
                    stats.workers[0].points += 1;
                    stats.workers[0].busy_ns += dt;
                    out.push(v);
                    progress(i + 1, n);
                }
                Err(e) => {
                    stats.wall_ns = elapsed_ns(t0);
                    return (Err(e), stats);
                }
            }
        }
        stats.wall_ns = elapsed_ns(t0);
        return (Ok(out), stats);
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);
    // Progress delivery is serialized under this lock so the completed
    // count each observer sees is strictly increasing.
    let completed: Mutex<usize> = Mutex::new(0);

    // Per worker: its stats plus the `(canonical index, value,
    // duration)` triples it produced, merged into order below.
    type WorkerOut<T> = (WorkerStats, Vec<(usize, T, u64)>);
    let per_worker: Vec<WorkerOut<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = WorkerStats::default();
                    let mut items: Vec<(usize, T, u64)> = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let p0 = Instant::now();
                        match work(i) {
                            Ok(v) => {
                                let dt = elapsed_ns(p0);
                                ws.points += 1;
                                ws.busy_ns += dt;
                                items.push((i, v, dt));
                                let mut done = completed.lock().expect("progress lock poisoned");
                                *done += 1;
                                progress(*done, n);
                            }
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                let mut slot = first_err.lock().expect("error lock poisoned");
                                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                    *slot = Some((i, e));
                                }
                            }
                        }
                    }
                    (ws, items)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (w, (ws, items)) in per_worker.into_iter().enumerate() {
        stats.workers[w] = ws;
        for (i, v, dt) in items {
            stats.point_ns[i] = dt;
            slots[i] = Some(v);
        }
    }
    stats.wall_ns = elapsed_ns(t0);

    if let Some((_, e)) = first_err.into_inner().expect("error lock poisoned") {
        return (Err(e), stats);
    }
    let out: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("every item completed without error"))
        .collect();
    (Ok(out), stats)
}

/// [`run_indexed`] for infallible work: merges `work(0..n)` in item
/// order with no error channel.
pub fn map_indexed<T, F, P>(n: usize, threads: usize, work: F, progress: &P) -> (Vec<T>, ParStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize, usize) + Sync + ?Sized,
{
    let (res, stats) = run_indexed::<T, Never, _, _>(n, threads, |i| Ok(work(i)), progress);
    match res {
        Ok(v) => (v, stats),
        Err(never) => match never {},
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn merge_preserves_canonical_order_for_any_thread_count() {
        for threads in 1..=8 {
            let (out, stats) = map_indexed(100, threads, |i| i * i, &|_, _| {});
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.workers.iter().map(|w| w.points).sum::<usize>(), 100);
        }
    }

    #[test]
    fn zero_items_and_auto_detect() {
        let (out, stats) = map_indexed(0, 0, |i| i, &|_, _| {});
        assert!(out.is_empty());
        assert_eq!(stats.threads, 1, "clamped to item count");
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn first_canonical_error_wins() {
        // Items 30 and 60 fail; the canonical winner is 30 no matter
        // which worker hits which item first.
        for threads in [1, 2, 4, 8] {
            let (res, _) = run_indexed::<usize, usize, _, _>(
                100,
                threads,
                |i| if i == 30 || i == 60 { Err(i) } else { Ok(i) },
                &|_, _| {},
            );
            let err = res.expect_err("must fail");
            // Parallel schedules may reach 60 before 30 is *pulled*, but
            // never report 60 when 30 also failed; with an abort in
            // between, 30 may be the only error seen. Either way the
            // reported error index is <= 60 and == an actual failure.
            assert!(err == 30 || err == 60, "unexpected error {err}");
            if threads == 1 {
                assert_eq!(err, 30, "serial reports the first error");
            }
        }
    }

    #[test]
    fn serial_error_stops_later_work() {
        let ran = AtomicU32::new(0);
        let (res, _) = run_indexed::<(), &str, _, _>(
            10,
            1,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    Err("boom")
                } else {
                    Ok(())
                }
            },
            &|_, _| {},
        );
        assert!(res.is_err());
        assert_eq!(
            ran.load(Ordering::Relaxed),
            4,
            "items after the error never run"
        );
    }

    #[test]
    fn progress_is_exactly_once_and_monotonic() {
        for threads in [1, 2, 4, 7] {
            let seen = Mutex::new(Vec::new());
            let (_, _) = map_indexed(50, threads, |i| i, &|done, total| {
                seen.lock().expect("lock").push((done, total));
            });
            let seen = seen.into_inner().expect("lock");
            assert_eq!(seen.len(), 50, "threads={threads}");
            for (k, &(done, total)) in seen.iter().enumerate() {
                assert_eq!(done, k + 1, "monotonic completed-count, threads={threads}");
                assert_eq!(total, 50);
            }
        }
    }

    #[test]
    fn utilization_and_point_timings_recorded() {
        let (_, stats) = map_indexed(16, 2, |i| std::hint::black_box(i * 3), &|_, _| {});
        assert_eq!(stats.point_ns.len(), 16);
        assert!(stats.wall_ns > 0);
        let u = stats.utilization();
        assert!((0.0..=1.5).contains(&u), "utilization {u}");
        let mut reg = obs::MetricsRegistry::new();
        stats.export_metrics(&mut reg);
        assert!(reg.get("sweep.par.threads").is_some());
        assert!(reg.get("sweep.par.utilization").is_some());
        assert!(reg.get("sweep.par.worker_points").is_some());
    }
}
