//! Lightweight statistics collection for simulation output.
//!
//! The harness aggregates per-rank timings exactly as the paper does
//! (min / max / mean over processes and repetitions); [`Summary`] provides
//! those moments plus dispersion, and [`LogHistogram`] gives cheap
//! power-of-two latency histograms for diagnostics.

use crate::time::SimDuration;

/// Running summary statistics over `f64` samples (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use desim::stats::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a simulated duration as microseconds (the paper's unit).
    pub fn record_duration_us(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics when the summary is empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty summary");
        self.min
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics when the summary is empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty summary");
        self.max
    }

    /// Population variance; 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

/// A histogram with power-of-two nanosecond buckets, for latency spreads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros()) as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterator over `(bucket_floor_ns, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }

    /// Approximate quantile (returns the containing bucket's midpoint —
    /// floors would bias p50/p99 low by up to 2x for small counts).
    /// Bucket 0 spans `[0, 2)` ns and reports 1 ns; bucket `i >= 1`
    /// spans `[2^i, 2^(i+1))` and reports `1.5 * 2^i`. `q` in `[0, 1]`.
    ///
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let mid = if i == 0 { 1 } else { 3u64 << (i - 1) };
                return Some(SimDuration::from_nanos(mid));
            }
        }
        None
    }
}

/// A named monotonically increasing counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "min of empty")]
    fn empty_min_panics() {
        Summary::new().min();
    }

    #[test]
    fn merge_matches_bulk() {
        let all: Summary = (0..100).map(|i| i as f64).collect();
        let mut left: Summary = (0..37).map(|i| i as f64).collect();
        let right: Summary = (37..100).map(|i| i as f64).collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-6);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = LogHistogram::new();
        h.record(SimDuration::from_nanos(0));
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_nanos(1023));
        h.record(SimDuration::from_nanos(1024));
        assert_eq!(h.count(), 4);
        let buckets: Vec<_> = h.iter().collect();
        assert!(buckets.contains(&(0, 2))); // 0 and 1 share bucket 0
        assert!(buckets.contains(&(512, 1)));
        assert!(buckets.contains(&(1024, 1)));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LogHistogram::new();
        for ns in [1u64, 2, 4, 8, 1_000_000] {
            h.record(SimDuration::from_nanos(ns));
        }
        // Quantiles report bucket midpoints, not floors: 1 lands in
        // bucket 0 ([0,2) -> 1 ns), 1 ms lands in [2^19, 2^20) -> 1.5*2^19.
        assert_eq!(h.quantile(0.0).unwrap().as_nanos(), 1);
        assert_eq!(h.quantile(1.0).unwrap().as_nanos(), 3 << 18);
        assert!(LogHistogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.incr();
        c.add(u64::MAX);
        assert_eq!(c.value(), u64::MAX);
    }
}
