//! Deterministic pseudo-random numbers for the simulator.
//!
//! The paper's methodology is sensitive to *non*-determinism (clock skew,
//! OS noise); we model those effects with an explicitly seeded generator so
//! every run is reproducible. SplitMix64 is used: tiny, fast, and passes
//! BigCrush for this purpose.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use desim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's rejection-free-ish method with a widening multiply; the
        // slight modulo bias of a plain `%` would be fine for simulation
        // noise, but this is just as cheap.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// A fresh, statistically independent generator ("split").
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Normal-ish sample via the sum of 12 uniforms (Irwin–Hall), mean 0,
    /// standard deviation 1. Adequate for modeling measurement jitter.
    pub fn next_gaussian(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        sum - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive_and_degenerate() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.next_range(3, 5);
            assert!((3..=5).contains(&x));
        }
        assert_eq!(r.next_range(9, 9), 9);
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SplitMix64::new(123);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gaussian_roughly_centered() {
        let mut r = SplitMix64::new(2024);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_gaussian()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
    }

    #[test]
    fn split_streams_are_independent_seeds() {
        let mut parent = SplitMix64::new(11);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
