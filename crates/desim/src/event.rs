//! The typed event vocabulary of the engine.
//!
//! Historically every scheduled event was a `Box<dyn FnOnce>` closure: one
//! heap allocation plus one indirect call per event. Profiling showed the
//! simulator is dispatch-bound at millions of events per second, and the
//! closure path was the single largest per-event cost. [`TypedEvent`]
//! replaces it for the known hot events: a plain-data enum stored *inline*
//! in the calendar/heap queue and dispatched with a `match` through the
//! world's [`EventWorld::dispatch`] — zero allocations, static dispatch.
//!
//! The closure path still exists for the rare genuinely dynamic case:
//! [`Event::Dyn`] wraps the classic boxed closure (the
//! `schedule_in(Box::new(..))` API is a thin shim over it), and
//! [`TypedEvent::Continuation`] runs a closure parked in the engine's
//! slab (see `Scheduler::defer_in`), whose free-list recycles slots so
//! steady-state continuation traffic stops growing the slab.
//!
//! # Examples
//!
//! A world that counts timer firings:
//!
//! ```
//! use desim::{Engine, EventWorld, Scheduler, SimDuration, TypedEvent};
//!
//! #[derive(Default)]
//! struct Clock {
//!     fired: Vec<u64>,
//! }
//!
//! impl EventWorld for Clock {
//!     fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
//!         match ev {
//!             TypedEvent::Timer { id } => {
//!                 self.fired.push(id);
//!                 if id < 3 {
//!                     s.post_in(SimDuration::from_nanos(10), TypedEvent::Timer { id: id + 1 });
//!                 }
//!             }
//!             other => unreachable!("unexpected {other:?}"),
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let mut world = Clock::default();
//! engine.post_in(SimDuration::from_nanos(5), TypedEvent::Timer { id: 1 });
//! engine.run(&mut world);
//! assert_eq!(world.fired, vec![1, 2, 3]);
//! ```

use crate::engine::{EventFn, Scheduler};

/// A plain-data event payload, dispatched by the world via
/// [`EventWorld::dispatch`]. Variants cover the simulator's hot events;
/// their fields are opaque small integers whose meaning the world
/// assigns (ranks, link ids, tape positions, timer cookies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypedEvent {
    /// Resume a parked actor (a simulated rank un-blocking, an overhead
    /// charge elapsing).
    RankResume {
        /// The actor to resume.
        rank: u32,
    },
    /// A message payload (or a coalesced segment batch) has fully
    /// arrived at its destination.
    MessageReady {
        /// Sending actor.
        src: u32,
        /// Receiving actor.
        dst: u32,
    },
    /// A granted link / FIFO occupancy window has elapsed.
    LinkGrant {
        /// The link whose grant completed.
        link: u32,
        /// The actor holding the grant.
        grantee: u32,
    },
    /// Execute the schedule step at tape position `step` on `rank` (the
    /// world owns the step tape; the event carries only the position).
    ScheduleStep {
        /// The acting rank.
        rank: u32,
        /// Tape index of the step to execute.
        step: u32,
    },
    /// An opaque timer.
    Timer {
        /// User-assigned cookie.
        id: u64,
    },
    /// Resume an analytically-advanced actor whose pending elided work
    /// (a batch of closed-form message completions) becomes executable
    /// at this instant. Posted by the event-elision fast path instead of
    /// the per-segment/per-hop chain; one of these stands in for a whole
    /// uncontended transfer's event cascade.
    BulkComplete {
        /// The actor whose pending batch drains.
        rank: u32,
        /// Tape index of the first send in the batch (diagnostic).
        step: u32,
    },
    /// Run the dynamic continuation parked in the engine slab at `slot`
    /// (posted by `Scheduler::defer_in` / `Scheduler::defer_at`; never
    /// reaches [`EventWorld::dispatch`] — the engine resolves it).
    Continuation {
        /// Slab slot holding the closure.
        slot: u32,
    },
}

/// An event as stored inline in the pending queue: either a typed
/// plain-data payload or the classic boxed closure.
pub enum Event<W> {
    /// Allocation-free typed payload, dispatched via [`EventWorld`].
    Typed(TypedEvent),
    /// Boxed dynamic closure (one heap allocation; the legacy path).
    Dyn(EventFn<W>),
}

impl<W> From<TypedEvent> for Event<W> {
    fn from(ev: TypedEvent) -> Self {
        Event::Typed(ev)
    }
}

impl<W> std::fmt::Debug for Event<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Typed(t) => f.debug_tuple("Typed").field(t).finish(),
            Event::Dyn(_) => f.write_str("Dyn(<closure>)"),
        }
    }
}

/// A world that can receive [`TypedEvent`]s.
///
/// The engine's `step`/`run` loop requires this of the world type; firing
/// a typed event compiles down to a `match` in the monomorphized
/// implementation — no virtual call, no allocation. Worlds that only ever
/// use the closure API can rely on the default implementation, which
/// panics if a typed event somehow reaches it (closure-only worlds never
/// post any):
///
/// ```
/// struct MyWorld;
/// impl desim::EventWorld for MyWorld {}
/// ```
///
/// Implementations for `()`, the primitive integers, and `Vec<T>` are
/// provided so simple closure-driven simulations (tests, examples,
/// benchmarks) need no boilerplate.
pub trait EventWorld: Sized {
    /// Handles one typed event at the current instant. `s` schedules
    /// follow-up events and reads the clock.
    fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
        let _ = s;
        panic!("typed event {ev:?} dispatched to a world without an EventWorld::dispatch impl");
    }
}

macro_rules! closure_only_worlds {
    ($($t:ty),* $(,)?) => {
        $(impl EventWorld for $t {})*
    };
}

closure_only_worlds!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T> EventWorld for Vec<T> {}

/// Counts of how events entered the queue, for the `engine.alloc.*`
/// observability counters: typed events are allocation-free, every
/// dynamic closure is one heap allocation, and slab reuses measure how
/// well the continuation free-list recycles slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Typed events posted (inline, zero-allocation).
    pub typed: u64,
    /// Boxed-closure events scheduled (one heap allocation each).
    pub dynamic: u64,
    /// Slab continuations deferred.
    pub continuations: u64,
    /// Continuation posts that reused a freed slab slot.
    pub slab_reuses: u64,
}

impl EventStats {
    /// Exports the counters into `reg` under `engine.alloc.*`.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.alloc.typed_events", self.typed);
        reg.counter("engine.alloc.dyn_events", self.dynamic);
        reg.counter("engine.alloc.continuations", self.continuations);
        reg.counter("engine.alloc.slab_reuses", self.slab_reuses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_event_is_small_and_copyable() {
        // The whole point: a typed event must stay register-sized so the
        // queue holds it inline. 16 bytes = discriminant + two u64 words.
        assert!(std::mem::size_of::<TypedEvent>() <= 16);
        let ev = TypedEvent::MessageReady { src: 3, dst: 9 };
        let copy = ev;
        assert_eq!(ev, copy);
    }

    #[test]
    fn event_debug_does_not_expose_closures() {
        let typed: Event<u32> = TypedEvent::Timer { id: 7 }.into();
        assert!(format!("{typed:?}").contains("Timer"));
        let dynamic: Event<u32> = Event::Dyn(Box::new(|_, _| {}));
        assert_eq!(format!("{dynamic:?}"), "Dyn(<closure>)");
    }

    #[test]
    #[should_panic(expected = "without an EventWorld::dispatch impl")]
    fn default_dispatch_rejects_typed_events() {
        struct ClosureOnly;
        impl EventWorld for ClosureOnly {}
        let mut engine = crate::Engine::new();
        let mut w = ClosureOnly;
        engine.post_at(crate::SimTime::from_nanos(1), TypedEvent::Timer { id: 0 });
        engine.run(&mut w);
    }

    #[test]
    fn alloc_stats_export() {
        let stats = EventStats {
            typed: 10,
            dynamic: 2,
            continuations: 3,
            slab_reuses: 1,
        };
        let mut reg = obs::MetricsRegistry::new();
        stats.export_metrics(&mut reg);
        assert_eq!(
            reg.get("engine.alloc.typed_events")
                .and_then(|m| m.as_f64()),
            Some(10.0)
        );
        assert_eq!(
            reg.get("engine.alloc.dyn_events").and_then(|m| m.as_f64()),
            Some(2.0)
        );
    }
}
