//! Static read/write footprints for the typed event vocabulary.
//!
//! The commutativity analyzer (`ordercheck`) needs to know, for two
//! events firing at the *same instant*, whether swapping their order can
//! change the simulation: two events commute if the state each handler
//! reads or writes is disjoint from the other's. This module declares,
//! per [`TypedEvent`] variant, the conservative set of abstract
//! [`Resource`]s its handler may touch — rank-private state, a directed
//! communicator channel, the shared network (link/FIFO occupancy), the
//! hardware-barrier word, or (for opaque payloads) everything.
//!
//! The footprints here are the *world-agnostic base*: what the event
//! payload alone implies. Analyzers that know more about the world —
//! e.g. that a rank's remaining program contains sends, so resuming it
//! can reach the shared network — refine a base footprint with
//! [`Footprint::with`]. Disjointness is checked by
//! [`Footprint::disjoint`]; [`Resource::Global`] conflicts with
//! everything, including itself.
//!
//! # Examples
//!
//! ```
//! use desim::{Footprint, Resource, TypedEvent};
//!
//! let a = TypedEvent::MessageReady { src: 0, dst: 1 }.footprint();
//! let b = TypedEvent::MessageReady { src: 0, dst: 2 }.footprint();
//! assert!(a.disjoint(&b)); // different destination ranks commute
//!
//! let c = TypedEvent::ScheduleStep { rank: 5, step: 3 }.footprint();
//! let d = TypedEvent::ScheduleStep { rank: 6, step: 3 }.footprint();
//! assert!(!c.disjoint(&d)); // both acquire shared link/FIFO state
//!
//! // Refinement: a resume of a rank that still has sends ahead of it
//! // can reach the network, so the analyzer widens its footprint.
//! let e = TypedEvent::RankResume { rank: 2 }.footprint().with(Resource::Network);
//! assert!(!e.disjoint(&c));
//! ```

use crate::event::TypedEvent;

/// One abstract unit of simulation state an event handler may read or
/// write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resource {
    /// Everything private to one rank: its tape position, mailbox,
    /// blocked/wait state, and per-rank accounting.
    Rank(u32),
    /// The in-flight payload stream from `src` to `dst` (FIFO channel
    /// semantics: delivery order on a channel is observable).
    Channel { src: u32, dst: u32 },
    /// The shared network state: link and injection-FIFO occupancy.
    /// Any two acquisitions can contend, so Network conflicts with
    /// Network.
    Network,
    /// The hardware-barrier synchronization word.
    Barrier,
    /// Opaque payload (boxed closures): may touch anything. Conflicts
    /// with every resource including itself.
    Global,
}

impl Resource {
    /// True when two resources can alias: same rank, same channel, the
    /// shared network/barrier words, or [`Resource::Global`] against
    /// anything.
    pub fn conflicts(self, other: Resource) -> bool {
        match (self, other) {
            (Resource::Global, _) | (_, Resource::Global) => true,
            (Resource::Rank(a), Resource::Rank(b)) => a == b,
            (Resource::Channel { src: a, dst: b }, Resource::Channel { src: c, dst: d }) => {
                (a, b) == (c, d)
            }
            (Resource::Network, Resource::Network) => true,
            (Resource::Barrier, Resource::Barrier) => true,
            _ => false,
        }
    }
}

/// The set of resources one event handler may touch — at most
/// [`Footprint::MAX`] entries, stored inline (no allocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    slots: [Option<Resource>; Footprint::MAX],
}

impl Footprint {
    /// Maximum resources per footprint: a base footprint holds at most
    /// two entries, and refinement can add Network and Barrier.
    pub const MAX: usize = 4;

    /// Builds a footprint from up to [`Footprint::MAX`] resources.
    ///
    /// # Panics
    ///
    /// Panics if more than [`Footprint::MAX`] resources are given.
    pub fn of(resources: &[Resource]) -> Self {
        let mut fp = Footprint::default();
        for &r in resources {
            fp = fp.with(r);
        }
        fp
    }

    /// Returns this footprint extended by `r` (idempotent: adding a
    /// resource already present is a no-op).
    ///
    /// # Panics
    ///
    /// Panics if the footprint already holds [`Footprint::MAX`]
    /// distinct resources.
    pub fn with(mut self, r: Resource) -> Self {
        if self.iter().any(|have| have == r) {
            return self;
        }
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.is_none())
            .expect("footprint capacity exceeded");
        *slot = Some(r);
        self
    }

    /// Iterates the resources present.
    pub fn iter(&self) -> impl Iterator<Item = Resource> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// True when no resource of `self` can alias a resource of `other` —
    /// the commutation criterion for same-instant events.
    pub fn disjoint(&self, other: &Footprint) -> bool {
        !self.iter().any(|a| other.iter().any(|b| a.conflicts(b)))
    }
}

impl TypedEvent {
    /// The conservative world-agnostic footprint of this event's
    /// handler (see the [module docs](self) for the refinement
    /// contract).
    ///
    /// * `RankResume { rank }` — resumes one rank's tape: rank state.
    /// * `MessageReady { src, dst }` — delivers on channel `src→dst`
    ///   into `dst`'s mailbox and may advance `dst` inline.
    /// * `ScheduleStep { rank, .. }` — re-reads the rank's tape and
    ///   injects into the network, acquiring shared link/FIFO state.
    /// * `LinkGrant { link, grantee }` — releases shared link state to
    ///   `grantee`.
    /// * `BulkComplete { rank, .. }` — drains the rank's pending elided
    ///   sends into the network, acquiring shared link/FIFO state like
    ///   the step chain it replaces.
    /// * `Timer` / `Continuation` — opaque payloads: global.
    pub fn footprint(&self) -> Footprint {
        match *self {
            TypedEvent::RankResume { rank } => Footprint::of(&[Resource::Rank(rank)]),
            TypedEvent::MessageReady { src, dst } => {
                Footprint::of(&[Resource::Rank(dst), Resource::Channel { src, dst }])
            }
            TypedEvent::ScheduleStep { rank, .. } => {
                Footprint::of(&[Resource::Rank(rank), Resource::Network])
            }
            TypedEvent::LinkGrant { grantee, .. } => {
                Footprint::of(&[Resource::Rank(grantee), Resource::Network])
            }
            TypedEvent::BulkComplete { rank, .. } => {
                Footprint::of(&[Resource::Rank(rank), Resource::Network])
            }
            TypedEvent::Timer { .. } | TypedEvent::Continuation { .. } => {
                Footprint::of(&[Resource::Global])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_ranks_commute() {
        let a = TypedEvent::RankResume { rank: 0 }.footprint();
        let b = TypedEvent::RankResume { rank: 1 }.footprint();
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&a));
    }

    #[test]
    fn network_acquisitions_conflict() {
        let a = TypedEvent::ScheduleStep { rank: 0, step: 1 }.footprint();
        let b = TypedEvent::ScheduleStep { rank: 9, step: 4 }.footprint();
        assert!(!a.disjoint(&b));
    }

    #[test]
    fn deliveries_conflict_only_on_shared_destination() {
        let a = TypedEvent::MessageReady { src: 0, dst: 1 }.footprint();
        let b = TypedEvent::MessageReady { src: 2, dst: 1 }.footprint();
        let c = TypedEvent::MessageReady { src: 0, dst: 3 }.footprint();
        assert!(!a.disjoint(&b));
        assert!(a.disjoint(&c));
    }

    #[test]
    fn global_conflicts_with_everything() {
        let t = TypedEvent::Timer { id: 1 }.footprint();
        for other in [
            TypedEvent::RankResume { rank: 7 }.footprint(),
            TypedEvent::Timer { id: 2 }.footprint(),
        ] {
            assert!(!t.disjoint(&other));
        }
    }

    #[test]
    fn refinement_is_idempotent_and_widens() {
        let base = TypedEvent::RankResume { rank: 3 }.footprint();
        let widened = base.with(Resource::Network).with(Resource::Network);
        assert_eq!(widened.iter().count(), 2);
        let net = TypedEvent::ScheduleStep { rank: 8, step: 0 }.footprint();
        assert!(base.disjoint(&net));
        assert!(!widened.disjoint(&net));
    }

    #[test]
    fn footprint_of_dedupes() {
        let fp = Footprint::of(&[Resource::Network, Resource::Network, Resource::Barrier]);
        assert_eq!(fp.iter().count(), 2);
    }
}
