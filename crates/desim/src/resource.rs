//! Serializing resources.
//!
//! Network links, NIC injection ports, and DMA engines are all modeled as
//! FIFO servers: a request occupies the resource for a known duration and
//! requests queue in arrival order. Because occupancy durations are known
//! at request time, a resource reduces to a single `free_at` watermark —
//! no event-queue interaction is needed, which keeps the hot path of the
//! network model allocation-free.

use crate::time::{SimDuration, SimTime};

/// A single-server FIFO resource with deterministic service times.
///
/// # Examples
///
/// ```
/// use desim::resource::FifoResource;
/// use desim::time::{SimDuration, SimTime};
///
/// let mut link = FifoResource::new();
/// // Two back-to-back 10 ns transmissions requested at t=0:
/// let g1 = link.acquire(SimTime::ZERO, SimDuration::from_nanos(10));
/// let g2 = link.acquire(SimTime::ZERO, SimDuration::from_nanos(10));
/// assert_eq!(g1.start.as_nanos(), 0);
/// assert_eq!(g2.start.as_nanos(), 10); // serialized behind the first
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FifoResource {
    free_at: SimTime,
    busy: SimDuration,
    grants: u64,
}

/// The outcome of an [`FifoResource::acquire`]: when service starts and ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grant {
    /// Instant the resource begins serving this request.
    pub start: SimTime,
    /// Instant the resource becomes free again.
    pub end: SimTime,
}

impl Grant {
    /// Time the request spent waiting before service began.
    pub fn queue_delay(&self, requested_at: SimTime) -> SimDuration {
        self.start.since(requested_at)
    }
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the resource at `now` for `service` time; returns the grant.
    ///
    /// Requests made at an earlier `now` than a previous call are still
    /// serialized behind it (FIFO in *call* order), which is the order the
    /// deterministic engine produces.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let start = now.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        self.grants += 1;
        Grant { start, end }
    }

    /// Earliest instant a new request would begin service.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Applies a *batched* occupancy update: one commit standing in for
    /// `grants` consecutive [`FifoResource::acquire`] calls whose chained
    /// arithmetic the caller performed against a local copy of the
    /// watermark. `free_at` is the post-batch watermark, `service` the
    /// total service time of the batch. Used by the network model to
    /// coalesce per-segment FIFO updates into one commit per
    /// (message, link); equivalent to the acquire sequence by
    /// construction because a FIFO resource is a single watermark.
    pub fn commit(&mut self, free_at: SimTime, service: SimDuration, grants: u64) {
        debug_assert!(free_at >= self.free_at, "batch cannot rewind the watermark");
        self.free_at = free_at;
        self.busy += service;
        self.grants += grants;
    }

    /// Total service time granted so far (busy time).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Utilization of the resource over `[0, horizon]`, in `[0, 1]`.
    ///
    /// Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }

    /// Forgets all occupancy, returning the resource to idle.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A pool of identical FIFO resources indexed by a dense `usize` id, e.g.
/// every unidirectional link in a topology.
#[derive(Debug, Clone, Default)]
pub struct ResourcePool {
    slots: Vec<FifoResource>,
}

impl ResourcePool {
    /// Creates a pool of `n` idle resources.
    pub fn new(n: usize) -> Self {
        ResourcePool {
            slots: vec![FifoResource::new(); n],
        }
    }

    /// Number of resources in the pool.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool has no resources.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Acquires resource `id` at `now` for `service`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn acquire(&mut self, id: usize, now: SimTime, service: SimDuration) -> Grant {
        self.slots[id].acquire(now, service)
    }

    /// Read access to resource `id`, or `None` if out of range.
    pub fn get(&self, id: usize) -> Option<&FifoResource> {
        self.slots.get(id)
    }

    /// Batched occupancy commit on resource `id` (see
    /// [`FifoResource::commit`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn commit(&mut self, id: usize, free_at: SimTime, service: SimDuration, grants: u64) {
        self.slots[id].commit(free_at, service, grants);
    }

    /// Earliest instant a new request on resource `id` would begin
    /// service.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn free_at(&self, id: usize) -> SimTime {
        self.slots[id].free_at()
    }

    /// Returns all resources to idle.
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            s.reset();
        }
    }

    /// The busiest resource: `(id, busy_time)`, or `None` for an empty pool.
    pub fn hottest(&self) -> Option<(usize, SimDuration)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.busy_time()))
            .max_by_key(|&(_, b)| b)
    }

    /// Sum of busy time across all resources.
    pub fn total_busy(&self) -> SimDuration {
        self.slots.iter().map(|s| s.busy_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NS: fn(u64) -> SimDuration = SimDuration::from_nanos;
    const AT: fn(u64) -> SimTime = SimTime::from_nanos;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new();
        let g = r.acquire(AT(5), NS(10));
        assert_eq!(g.start, AT(5));
        assert_eq!(g.end, AT(15));
        assert_eq!(g.queue_delay(AT(5)), NS(0));
    }

    #[test]
    fn contention_serializes() {
        let mut r = FifoResource::new();
        r.acquire(AT(0), NS(100));
        let g = r.acquire(AT(30), NS(50));
        assert_eq!(g.start, AT(100));
        assert_eq!(g.end, AT(150));
        assert_eq!(g.queue_delay(AT(30)), NS(70));
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = FifoResource::new();
        r.acquire(AT(0), NS(10));
        let g = r.acquire(AT(100), NS(10));
        assert_eq!(g.start, AT(100), "no queueing after the resource drained");
        assert_eq!(r.busy_time(), NS(20));
        assert_eq!(r.grants(), 2);
    }

    #[test]
    fn utilization_bounds() {
        let mut r = FifoResource::new();
        r.acquire(AT(0), NS(50));
        assert!((r.utilization(AT(100)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
        r.acquire(AT(0), NS(500));
        assert_eq!(r.utilization(AT(100)), 1.0, "clamped to 1");
    }

    #[test]
    fn pool_tracks_hottest() {
        let mut p = ResourcePool::new(3);
        p.acquire(0, AT(0), NS(5));
        p.acquire(2, AT(0), NS(50));
        p.acquire(1, AT(0), NS(20));
        assert_eq!(p.hottest(), Some((2, NS(50))));
        assert_eq!(p.total_busy(), NS(75));
        p.reset();
        assert_eq!(p.total_busy(), NS(0));
    }

    #[test]
    #[should_panic]
    fn pool_out_of_range_panics() {
        let mut p = ResourcePool::new(1);
        p.acquire(7, AT(0), NS(1));
    }

    #[test]
    fn commit_equals_acquire_sequence() {
        // Per-acquire on one resource, batched commit on another: the
        // final observable state must be identical.
        let mut looped = FifoResource::new();
        let mut watermark = looped.free_at();
        let mut total = SimDuration::ZERO;
        for (at, dur) in [(0u64, 30u64), (10, 20), (100, 5)] {
            let g = looped.acquire(AT(at), NS(dur));
            // Mirror the arithmetic locally, as the coalescing caller does.
            let start = AT(at).max(watermark);
            assert_eq!(g.start, start);
            watermark = start + NS(dur);
            total += NS(dur);
        }
        let mut batched = FifoResource::new();
        batched.commit(watermark, total, 3);
        assert_eq!(batched, looped);
        assert_eq!(batched.free_at(), AT(105));
        assert_eq!(batched.busy_time(), NS(55));
        assert_eq!(batched.grants(), 3);
    }
}
