//! The discrete-event engine.
//!
//! [`Engine`] owns a time-ordered event queue and a monotonically advancing
//! clock. Events are [`Event`]s over a user-supplied *world* type `W` (the
//! mutable simulation state): typed plain-data payloads stored inline in
//! the queue and dispatched through the world's
//! [`EventWorld::dispatch`](crate::EventWorld::dispatch) `match` — the hot
//! path, zero allocations — or boxed closures for the rare dynamic case.
//! Firing an event may schedule further events. Ties in firing time break
//! by insertion order, which makes every run deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calqueue::CalendarQueue;
use crate::event::{Event, EventStats, EventWorld, TypedEvent};
use crate::eventlog::EventLog;
use crate::provenance::{Provenance, ROOT};
use crate::time::{SimDuration, SimTime};

/// A dynamic event callback: receives the scheduling handle and the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut Scheduler<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    ev: Event<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The part of the engine visible to a firing event: the clock, the
/// ability to schedule more events, and the continuation slab.
///
/// Split from [`Engine`] so firing events can schedule without aliasing
/// the queue being drained.
pub struct Scheduler<W> {
    now: SimTime,
    next_seq: u64,
    pending: Vec<Scheduled<W>>,
    /// Parked dynamic continuations, addressed by
    /// [`TypedEvent::Continuation`] slot. Freed slots are recycled
    /// through `slab_free` so steady-state continuation traffic reuses
    /// capacity instead of growing the slab.
    slab: Vec<Option<EventFn<W>>>,
    slab_free: Vec<u32>,
    stats: EventStats,
    /// Causal-parent log, `None` (the default) unless the engine was
    /// built [`Engine::with_provenance`] — one branch per push when off.
    prov: Option<Box<Provenance>>,
    /// Sequence number of the event currently being dispatched, or
    /// [`ROOT`] outside dispatch. Only maintained when `prov` is on.
    current: u64,
    /// The firing time of the earliest event still in the engine queue,
    /// refreshed right after each pop (so during dispatch it reflects
    /// the queue *without* the event being fired). Feeds
    /// [`Scheduler::horizon`].
    queue_next: Option<SimTime>,
}

impl<W> Scheduler<W> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The earliest instant any *other* pending event can fire: the
    /// minimum over the engine queue (as of the current pop) and events
    /// posted during the present dispatch. `None` when nothing is
    /// pending — the simulation's future is entirely in the caller's
    /// hands. The event-elision fast path uses this to decide how far it
    /// can safely run ahead of the event loop.
    pub fn horizon(&self) -> Option<SimTime> {
        let pending_min = self.pending.iter().map(|p| p.at).min();
        match (self.queue_next, pending_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Posts a typed event to fire after `delay` — the allocation-free
    /// hot path. The event is stored inline in the queue and dispatched
    /// through [`EventWorld::dispatch`].
    pub fn post_in(&mut self, delay: SimDuration, ev: TypedEvent) {
        let at = self.now + delay;
        self.post_at(at, ev);
    }

    /// Posts a typed event at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — simulated time never rewinds.
    pub fn post_at(&mut self, at: SimTime, ev: TypedEvent) {
        self.stats.typed += 1;
        self.push(at, Event::Typed(ev));
    }

    /// Schedules a boxed-closure `event` to fire after `delay` (the
    /// legacy dynamic path — one heap allocation per event; prefer
    /// [`Scheduler::post_in`] for known event kinds).
    pub fn schedule_in(&mut self, delay: SimDuration, event: EventFn<W>) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedules a boxed-closure `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — simulated time never rewinds.
    pub fn schedule_at(&mut self, at: SimTime, event: EventFn<W>) {
        self.stats.dynamic += 1;
        self.push(at, Event::Dyn(event));
    }

    /// Defers a dynamic continuation: the closure is parked in the
    /// engine slab (slot recycled from the free-list when possible) and
    /// a [`TypedEvent::Continuation`] fires it after `delay`. For code
    /// that genuinely needs a capture but runs often enough that slab
    /// reuse matters.
    pub fn defer_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Scheduler<W>, &mut W) + 'static,
    ) {
        let at = self.now + delay;
        self.defer_at(at, f);
    }

    /// Defers a dynamic continuation at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn defer_at(&mut self, at: SimTime, f: impl FnOnce(&mut Scheduler<W>, &mut W) + 'static) {
        self.stats.continuations += 1;
        let boxed: EventFn<W> = Box::new(f);
        let slot = match self.slab_free.pop() {
            Some(slot) => {
                self.stats.slab_reuses += 1;
                self.slab[slot as usize] = Some(boxed);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("continuation slab overflow");
                self.slab.push(Some(boxed));
                slot
            }
        };
        self.push(at, Event::Typed(TypedEvent::Continuation { slot }));
    }

    /// Removes and returns the continuation parked at `slot`, returning
    /// the slot to the free-list.
    fn take_continuation(&mut self, slot: u32) -> EventFn<W> {
        let f = self.slab[slot as usize]
            .take()
            .expect("continuation slot fired twice");
        self.slab_free.push(slot);
        f
    }

    fn push(&mut self, at: SimTime, ev: Event<W>) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(p) = &mut self.prov {
            // Records are indexed by seq: seqs are assigned here, in push
            // order, so the Vec index and the sequence number coincide.
            p.record(self.current, at);
        }
        self.pending.push(Scheduled { at, seq, ev });
    }
}

/// A targeted same-instant inversion: fire the event with seq `second`
/// *before* the event with seq `first` at instant `at_ns`, leaving every
/// other firing decision untouched. This is the minimal perturbation the
/// commutativity explorer (`ordercheck`) replays — one adjacent
/// transposition in an otherwise identical run.
#[derive(Debug, Clone, Copy)]
struct TieSwap {
    at_ns: u64,
    first: u64,
    second: u64,
    applied: bool,
}

/// The pending-event set: a binary heap by default, or a calendar queue
/// for heavily loaded simulations (identical ordering semantics).
enum Queue<W> {
    Heap(BinaryHeap<Scheduled<W>>),
    Calendar(CalendarQueue<Event<W>>),
}

impl<W> Queue<W> {
    fn push(&mut self, ev: Scheduled<W>) {
        match self {
            Queue::Heap(h) => h.push(ev),
            Queue::Calendar(c) => c.push((ev.at.as_nanos(), ev.seq), ev.ev),
        }
    }

    fn pop(&mut self) -> Option<Scheduled<W>> {
        match self {
            Queue::Heap(h) => h.pop(),
            Queue::Calendar(c) => c.pop().map(|((t, seq), ev)| Scheduled {
                at: SimTime::from_nanos(t),
                seq,
                ev,
            }),
        }
    }

    fn peek_at(&self) -> Option<SimTime> {
        match self {
            Queue::Heap(h) => h.peek().map(|ev| ev.at),
            Queue::Calendar(c) => c.peek_key().map(|(t, _)| SimTime::from_nanos(t)),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Queue::Heap(h) => h.is_empty(),
            Queue::Calendar(c) => c.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Heap(h) => h.len(),
            Queue::Calendar(c) => c.len(),
        }
    }

    /// `(resizes, buckets, max_bucket_occupancy)` for the calendar
    /// backend; `None` for the heap.
    fn calendar_stats(&self) -> Option<(u64, usize, usize)> {
        match self {
            Queue::Heap(_) => None,
            Queue::Calendar(c) => Some((c.resizes(), c.bucket_count(), c.max_bucket_occupancy())),
        }
    }
}

/// Host-side engine self-profile, collected only when the engine was
/// built [`Engine::with_profiling`]. Wall-clock figures come from
/// `std::time::Instant` around [`Engine::run`]; queue statistics are
/// sampled every [`EngineProfile::SAMPLE_EVERY`] fired events so the
/// hot loop stays branch-plus-mask cheap.
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    /// Wall-clock nanoseconds spent inside `run()` loops.
    wall_ns: u64,
    /// Events fired inside timed `run()` windows.
    events_timed: u64,
    /// Number of queue-depth samples taken.
    samples: u64,
    /// Sampled pending-queue depths (pow2 buckets).
    queue_depth: obs::Pow2Histogram,
    /// Sampled fullest-day-bucket occupancy (calendar backend only).
    calendar_occupancy: obs::Pow2Histogram,
}

impl EngineProfile {
    /// Queue statistics are sampled once per this many fired events.
    pub const SAMPLE_EVERY: u64 = 64;

    /// Wall-clock nanoseconds spent inside timed `run()` windows.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Events fired inside timed `run()` windows.
    pub fn events_timed(&self) -> u64 {
        self.events_timed
    }

    /// Events per wall-clock second over the timed windows; 0 before any
    /// timed run completes.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events_timed as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// The sampled queue-depth distribution.
    pub fn queue_depth(&self) -> &obs::Pow2Histogram {
        &self.queue_depth
    }

    /// Exports the profile into `reg` under `engine.prof.*`.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.prof.wall_ns", self.wall_ns);
        reg.counter("engine.prof.events_timed", self.events_timed);
        reg.counter("engine.prof.samples", self.samples);
        reg.gauge("engine.prof.events_per_sec", self.events_per_sec());
        if self.queue_depth.count() > 0 {
            reg.gauge(
                "engine.prof.queue_depth.p50",
                self.queue_depth.quantile(0.5).unwrap_or(0) as f64,
            );
            reg.gauge(
                "engine.prof.queue_depth.p99",
                self.queue_depth.quantile(0.99).unwrap_or(0) as f64,
            );
            reg.gauge("engine.prof.queue_depth.mean", self.queue_depth.mean());
        }
        if self.calendar_occupancy.count() > 0 {
            reg.gauge(
                "engine.prof.calendar.max_bucket.p50",
                self.calendar_occupancy.quantile(0.5).unwrap_or(0) as f64,
            );
            reg.gauge(
                "engine.prof.calendar.max_bucket.mean",
                self.calendar_occupancy.mean(),
            );
        }
    }
}

/// A deterministic discrete-event simulation engine over world state `W`.
///
/// The world implements [`EventWorld`] and receives typed events through
/// its `dispatch` match; boxed closures remain available through
/// [`Engine::schedule_in`] for the rare dynamic case.
///
/// # Examples
///
/// ```
/// use desim::{Engine, EventWorld, Scheduler, SimDuration, TypedEvent};
///
/// #[derive(Default)]
/// struct World {
///     hits: Vec<u64>,
/// }
///
/// impl EventWorld for World {
///     fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
///         let TypedEvent::Timer { id } = ev else { unreachable!() };
///         self.hits.push(s.now().as_nanos());
///         if id == 0 {
///             // Firing an event may post more events — allocation-free.
///             s.post_in(SimDuration::from_nanos(10), TypedEvent::Timer { id: 1 });
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// let mut world = World::default();
/// engine.post_in(SimDuration::from_nanos(5), TypedEvent::Timer { id: 0 });
/// engine.run(&mut world);
/// assert_eq!(world.hits, vec![5, 15]);
/// ```
pub struct Engine<W> {
    queue: Queue<W>,
    scheduler: Scheduler<W>,
    fired: u64,
    event_limit: u64,
    queue_high_water: usize,
    /// Self-profiling state; `None` (the default) costs one branch per
    /// step and zero clock reads.
    prof: Option<Box<EngineProfile>>,
    /// Canonical fired-event log; `None` (the default) costs one branch
    /// per step. See [`Engine::with_event_log`].
    elog: Option<Box<EventLog>>,
    /// Targeted same-instant inversion; `None` (the default) costs one
    /// branch per step. See [`Engine::with_tie_swap`].
    swap: Option<TieSwap>,
    /// The deferred half of an engaged tie swap: popped first, fired
    /// second.
    held: Option<Scheduled<W>>,
    /// Last `(time_ns, seq)` the queue yielded, for the pop-order
    /// invariant check (debug builds only): pops must be strictly
    /// increasing — ties break by insertion order.
    #[cfg(debug_assertions)]
    last_pop: Option<(u64, u64)>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Default cap on fired events; a backstop against runaway simulations.
    pub const DEFAULT_EVENT_LIMIT: u64 = 2_000_000_000;

    /// Creates an empty engine with the clock at time zero (binary-heap
    /// pending set).
    pub fn new() -> Self {
        Self::with_queue(Queue::Heap(BinaryHeap::new()))
    }

    /// Creates an engine backed by a calendar queue — O(1) amortized
    /// enqueue/dequeue for dense event populations, with identical
    /// deterministic ordering to the default heap.
    pub fn with_calendar_queue() -> Self {
        Self::with_queue(Queue::Calendar(CalendarQueue::new()))
    }

    fn with_queue(queue: Queue<W>) -> Self {
        Engine {
            queue,
            scheduler: Scheduler {
                now: SimTime::ZERO,
                next_seq: 0,
                pending: Vec::new(),
                slab: Vec::new(),
                slab_free: Vec::new(),
                stats: EventStats::default(),
                prov: None,
                current: ROOT,
                queue_next: None,
            },
            fired: 0,
            event_limit: Self::DEFAULT_EVENT_LIMIT,
            queue_high_water: 0,
            prof: None,
            elog: None,
            swap: None,
            held: None,
            #[cfg(debug_assertions)]
            last_pop: None,
        }
    }

    /// Replaces the runaway-event backstop (default
    /// [`Engine::DEFAULT_EVENT_LIMIT`]).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Enables engine self-profiling: wall-clock timing of `run()` loops
    /// plus sampled queue-depth / calendar-occupancy histograms.
    /// Profiling never perturbs the simulation itself — only host-side
    /// counters are touched.
    pub fn with_profiling(mut self) -> Self {
        self.prof = Some(Box::default());
        self
    }

    /// The collected self-profile; `None` unless built
    /// [`Engine::with_profiling`].
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.prof.as_deref()
    }

    /// Enables causal provenance recording: every scheduled event gets a
    /// compact parent edge (the seq of the event firing when it was
    /// scheduled). Like profiling, this never perturbs the simulation —
    /// timing, ordering, and [`EventStats`] are identical on and off.
    pub fn with_provenance(mut self) -> Self {
        self.scheduler.prov = Some(Box::default());
        self
    }

    /// The collected causal-parent log; `None` unless built
    /// [`Engine::with_provenance`].
    pub fn provenance(&self) -> Option<&Provenance> {
        self.scheduler.prov.as_deref()
    }

    /// Enables canonical event logging: every *fired* event is recorded
    /// as a compact `(seq, at, kind, a, b)` tuple in firing order — the
    /// stream `obs::diff` aligns when comparing two runs. Like profiling
    /// and provenance, recording never perturbs the simulation.
    pub fn with_event_log(mut self) -> Self {
        self.elog = Some(Box::default());
        self
    }

    /// The collected fired-event log; `None` unless built
    /// [`Engine::with_event_log`].
    pub fn event_log(&self) -> Option<&EventLog> {
        self.elog.as_deref()
    }

    /// Arms a targeted same-instant inversion: when the event with seq
    /// `first` is popped at instant `at` and the next pending event is
    /// the one with seq `second` at the same instant, the two fire in
    /// swapped order. Everything else — timing, all other ties — is
    /// untouched, so the run is the minimal adjacent transposition of
    /// the unperturbed one. Used by the `ordercheck` commutativity
    /// explorer; like the other instrumentation switches, `None` (the
    /// default) costs one branch per step.
    pub fn with_tie_swap(mut self, at: SimTime, first_seq: u64, second_seq: u64) -> Self {
        self.swap = Some(TieSwap {
            at_ns: at.as_nanos(),
            first: first_seq,
            second: second_seq,
            applied: false,
        });
        self
    }

    /// Whether the armed tie swap actually fired: `None` when no swap
    /// was requested, `Some(false)` when the targeted pair never
    /// appeared adjacently at the given instant (the run was NOT
    /// perturbed), `Some(true)` when the inversion was applied.
    pub fn tie_swap_applied(&self) -> Option<bool> {
        self.swap.map(|s| s.applied)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Largest number of simultaneously pending events seen so far —
    /// the queue-depth high-water mark.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Which pending-set backend this engine uses: `"heap"` or
    /// `"calendar"`.
    pub fn queue_backend(&self) -> &'static str {
        match self.queue {
            Queue::Heap(_) => "heap",
            Queue::Calendar(_) => "calendar",
        }
    }

    /// Exports engine counters into a metrics registry: events fired,
    /// current and high-water queue occupancy, and a backend indicator
    /// (`engine.queue.backend.heap` / `.calendar`).
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.events_fired", self.fired);
        reg.counter("engine.scheduled_total", self.scheduler.next_seq);
        reg.gauge("engine.queue.high_water", self.queue_high_water as f64);
        reg.gauge("engine.queue.len", self.queue.len() as f64);
        reg.counter(format!("engine.queue.backend.{}", self.queue_backend()), 1);
        self.scheduler.stats.export_metrics(reg);
        if let Some((resizes, buckets, occ)) = self.queue.calendar_stats() {
            reg.counter("engine.calendar.resizes", resizes);
            reg.gauge("engine.calendar.buckets", buckets as f64);
            reg.gauge("engine.calendar.max_bucket", occ as f64);
        }
        if let Some(prof) = &self.prof {
            prof.export_metrics(reg);
        }
        if let Some(prov) = &self.scheduler.prov {
            prov.export_metrics(reg);
        }
        if let Some(elog) = &self.elog {
            elog.export_metrics(reg);
        }
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.scheduler.pending.is_empty() && self.held.is_none()
    }

    /// Posts a typed event after `delay` from the current clock — the
    /// allocation-free hot path (see [`Scheduler::post_in`]).
    pub fn post_in(&mut self, delay: SimDuration, ev: TypedEvent) {
        self.scheduler.post_in(delay, ev);
        self.drain_pending();
    }

    /// Posts a typed event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn post_at(&mut self, at: SimTime, ev: TypedEvent) {
        self.scheduler.post_at(at, ev);
        self.drain_pending();
    }

    /// Defers a slab-backed dynamic continuation after `delay` (see
    /// [`Scheduler::defer_in`]).
    pub fn defer_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Scheduler<W>, &mut W) + 'static,
    ) {
        self.scheduler.defer_in(delay, f);
        self.drain_pending();
    }

    /// Defers a slab-backed dynamic continuation at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn defer_at(&mut self, at: SimTime, f: impl FnOnce(&mut Scheduler<W>, &mut W) + 'static) {
        self.scheduler.defer_at(at, f);
        self.drain_pending();
    }

    /// Schedules a boxed-closure event after `delay` from the current
    /// clock (the legacy dynamic path; stored as [`Event::Dyn`]).
    pub fn schedule_in(&mut self, delay: SimDuration, event: EventFn<W>) {
        self.scheduler.schedule_in(delay, event);
        self.drain_pending();
    }

    /// Schedules a boxed-closure event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: EventFn<W>) {
        self.scheduler.schedule_at(at, event);
        self.drain_pending();
    }

    /// How events entered the queue so far: typed (inline) vs dynamic
    /// (boxed) vs slab continuations — the `engine.alloc.*` counters.
    pub fn event_stats(&self) -> EventStats {
        self.scheduler.stats
    }

    fn drain_pending(&mut self) {
        for ev in self.scheduler.pending.drain(..) {
            self.queue.push(ev);
        }
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
    }
}

impl<W: EventWorld> Engine<W> {
    /// Fires the single earliest event, advancing the clock to its
    /// timestamp. Returns `false` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the event-count backstop is exceeded.
    pub fn step(&mut self, world: &mut W) -> bool {
        let ev = match self.held.take() {
            Some(held) => held,
            None => {
                let Some(popped) = self.pop_checked() else {
                    return false;
                };
                self.maybe_swap(popped)
            }
        };
        // Refresh the dispatch-visible horizon: the earliest event still
        // queued behind the one about to fire (a held tie-swap partner
        // counts — it fires next).
        self.scheduler.queue_next = match &self.held {
            Some(h) => Some(h.at),
            None => self.queue.peek_at(),
        };
        assert!(
            self.fired < self.event_limit,
            "event limit {} exceeded — runaway simulation?",
            self.event_limit
        );
        self.fired += 1;
        // Sample queue depth right after the pop, before dispatch: the
        // fired event is no longer pending, and its follow-ups aren't
        // scheduled yet, so the sample reflects true residual depth.
        if let Some(prof) = &mut self.prof {
            if self.fired & (EngineProfile::SAMPLE_EVERY - 1) == 0 {
                prof.samples += 1;
                prof.queue_depth.record(self.queue.len() as u64);
                if let Some((_, _, occ)) = self.queue.calendar_stats() {
                    prof.calendar_occupancy.record(occ as u64);
                }
            }
        }
        self.scheduler.now = ev.at;
        if let Some(p) = &mut self.scheduler.prov {
            p.mark_fired(ev.seq);
            self.scheduler.current = ev.seq;
        }
        if let Some(log) = &mut self.elog {
            // Encode from a borrow — the dispatch match below consumes
            // the payload.
            let (kind, a, b) = crate::eventlog::encode(&ev.ev);
            log.record(ev.seq, ev.at, kind, a, b);
        }
        match ev.ev {
            Event::Typed(TypedEvent::Continuation { slot }) => {
                let f = self.scheduler.take_continuation(slot);
                f(&mut self.scheduler, world);
            }
            Event::Typed(t) => world.dispatch(&mut self.scheduler, t),
            Event::Dyn(f) => f(&mut self.scheduler, world),
        }
        if self.scheduler.prov.is_some() {
            // Anything scheduled between steps (from outside dispatch)
            // is a fresh root stimulus.
            self.scheduler.current = ROOT;
        }
        self.drain_pending();
        true
    }

    /// Pops the earliest pending event, checking (in debug builds) the
    /// engine's ordering invariant: successive pops yield strictly
    /// increasing `(time_ns, seq)` — ties break by insertion order, on
    /// both queue backends. A queue refactor that breaks this fails
    /// loudly in tests instead of via silent trace drift.
    fn pop_checked(&mut self) -> Option<Scheduled<W>> {
        let ev = self.queue.pop()?;
        #[cfg(debug_assertions)]
        {
            let key = (ev.at.as_nanos(), ev.seq);
            if let Some(last) = self.last_pop {
                debug_assert!(
                    key > last,
                    "queue pop order violated the insertion-order tie-break: \
                     popped (t={}ns, seq={}) after (t={}ns, seq={})",
                    key.0,
                    key.1,
                    last.0,
                    last.1
                );
            }
            self.last_pop = Some(key);
        }
        Some(ev)
    }

    /// If `ev` is the first half of the armed tie swap and its partner
    /// is the immediately next pending event at the same instant, holds
    /// `ev` for the following step and returns the partner to fire
    /// first. Otherwise returns `ev` unchanged.
    fn maybe_swap(&mut self, ev: Scheduled<W>) -> Scheduled<W> {
        let Some(swap) = self.swap else {
            return ev;
        };
        if swap.applied || ev.at.as_nanos() != swap.at_ns || ev.seq != swap.first {
            return ev;
        }
        #[cfg(debug_assertions)]
        let before = self.last_pop;
        match self.pop_checked() {
            Some(partner) if partner.at == ev.at && partner.seq == swap.second => {
                if let Some(s) = &mut self.swap {
                    s.applied = true;
                }
                self.held = Some(ev);
                partner
            }
            Some(other) => {
                // Not the targeted partner — push it back untouched (the
                // re-pop of the same key is exempt from the ordering
                // invariant).
                #[cfg(debug_assertions)]
                {
                    self.last_pop = before;
                }
                self.queue.push(other);
                ev
            }
            None => ev,
        }
    }

    /// Runs until no events remain. Returns the final clock value.
    ///
    /// With profiling enabled the loop is wrapped in a wall-clock timer,
    /// accumulating into the profile's `wall_ns` / `events_timed` (from
    /// which events-per-second falls out).
    pub fn run(&mut self, world: &mut W) -> SimTime {
        if self.prof.is_none() {
            while self.step(world) {}
            return self.now();
        }
        let fired_before = self.fired;
        let start = std::time::Instant::now();
        while self.step(world) {}
        let elapsed = start.elapsed();
        let prof = self.prof.as_mut().expect("profiling enabled");
        prof.wall_ns += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        prof.events_timed += self.fired - fired_before;
        self.now()
    }

    /// Runs until the clock would pass `deadline` or the queue empties.
    /// Events at exactly `deadline` do fire.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        loop {
            let at = match (&self.held, self.queue.peek_at()) {
                (Some(h), _) => h.at,
                (None, Some(at)) => at,
                (None, None) => break,
            };
            if at > deadline {
                break;
            }
            self.step(world);
        }
        if self.scheduler.now < deadline && self.is_idle() {
            // Idle until the deadline.
            self.scheduler.now = deadline;
        }
        self.now()
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.scheduler.now)
            .field("queued", &self.queue.len())
            .field("fired", &self.fired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<(u64, &'static str)>;

    fn record(label: &'static str) -> EventFn<World> {
        Box::new(move |s, w: &mut World| w.push((s.now().as_nanos(), label)))
    }

    #[test]
    fn fires_in_time_order() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(30), record("c"));
        e.schedule_at(SimTime::from_nanos(10), record("a"));
        e.schedule_at(SimTime::from_nanos(20), record("b"));
        e.run(&mut w);
        assert_eq!(w, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        for label in ["first", "second", "third"] {
            e.schedule_at(SimTime::from_nanos(5), record(label));
        }
        e.run(&mut w);
        assert_eq!(
            w.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn tie_swap_inverts_exactly_one_adjacent_pair() {
        for calendar in [false, true] {
            let mut e = if calendar {
                Engine::with_calendar_queue()
            } else {
                Engine::new()
            }
            .with_tie_swap(SimTime::from_nanos(5), 0, 1);
            let mut w: World = Vec::new();
            for label in ["first", "second", "third"] {
                e.schedule_at(SimTime::from_nanos(5), record(label));
            }
            e.run(&mut w);
            assert_eq!(
                w.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
                vec!["second", "first", "third"],
                "calendar={calendar}"
            );
            assert_eq!(e.tie_swap_applied(), Some(true));
        }
    }

    #[test]
    fn tie_swap_missing_partner_leaves_run_untouched() {
        for calendar in [false, true] {
            // Targets seqs (0, 2), but seq 1 sits between them: the swap
            // must not engage and the order must be the insertion order.
            let mut e = if calendar {
                Engine::with_calendar_queue()
            } else {
                Engine::new()
            }
            .with_tie_swap(SimTime::from_nanos(5), 0, 2);
            let mut w: World = Vec::new();
            for label in ["first", "second", "third"] {
                e.schedule_at(SimTime::from_nanos(5), record(label));
            }
            e.run(&mut w);
            assert_eq!(
                w.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
                vec!["first", "second", "third"],
                "calendar={calendar}"
            );
            assert_eq!(e.tie_swap_applied(), Some(false));
        }
    }

    #[test]
    fn tie_swap_wrong_instant_never_engages() {
        let mut e = Engine::new().with_tie_swap(SimTime::from_nanos(99), 0, 1);
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(5), record("a"));
        e.schedule_at(SimTime::from_nanos(5), record("b"));
        e.run(&mut w);
        assert_eq!(w, vec![(5, "a"), (5, "b")]);
        assert_eq!(e.tie_swap_applied(), Some(false));
    }

    #[test]
    fn no_swap_reports_none() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(1), record("x"));
        e.run(&mut w);
        assert_eq!(e.tie_swap_applied(), None);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_in(
            SimDuration::from_nanos(1),
            Box::new(|s, _w: &mut World| {
                s.schedule_in(SimDuration::from_nanos(2), record("child"));
            }),
        );
        e.run(&mut w);
        assert_eq!(w, vec![(3, "child")]);
        assert_eq!(e.events_fired(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), record("early"));
        e.schedule_at(SimTime::from_nanos(100), record("late"));
        e.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(w, vec![(10, "early")]);
        assert_eq!(e.now(), SimTime::from_nanos(10));
        e.run(&mut w);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn run_until_advances_idle_clock() {
        let mut e: Engine<World> = Engine::new();
        let mut w: World = Vec::new();
        e.run_until(&mut w, SimTime::from_nanos(42));
        assert_eq!(e.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), record("x"));
        e.run(&mut w);
        e.schedule_at(SimTime::from_nanos(5), record("bad"));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_trips() {
        let mut e = Engine::new().with_event_limit(10);
        let mut w: World = Vec::new();
        fn rearm(s: &mut Scheduler<World>) {
            s.schedule_in(
                SimDuration::from_nanos(1),
                Box::new(|s, _w: &mut World| rearm(s)),
            );
        }
        e.schedule_in(
            SimDuration::from_nanos(1),
            Box::new(|s, _w: &mut World| rearm(s)),
        );
        e.run(&mut w);
    }

    #[test]
    fn queue_high_water_tracks_peak_occupancy() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        for t in 1..=5 {
            e.schedule_at(SimTime::from_nanos(t), record("x"));
        }
        assert_eq!(e.queue_high_water(), 5);
        e.run(&mut w);
        assert_eq!(e.queue_high_water(), 5, "high water survives the drain");
        assert_eq!(e.queue_backend(), "heap");
        assert_eq!(
            Engine::<World>::with_calendar_queue().queue_backend(),
            "calendar"
        );

        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert_eq!(reg.get("engine.events_fired").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            reg.get("engine.queue.high_water").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            reg.get("engine.queue.backend.heap").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn profiling_observes_without_perturbing() {
        fn chain(e: &mut Engine<World>) -> (SimTime, World) {
            let mut w: World = Vec::new();
            for t in 1..=1000u64 {
                e.schedule_at(SimTime::from_nanos(t * 3), record("x"));
            }
            let end = e.run(&mut w);
            (end, w)
        }
        let (plain_end, plain_w) = chain(&mut Engine::new());
        let mut profiled = Engine::new().with_profiling();
        let (prof_end, prof_w) = chain(&mut profiled);
        assert_eq!(plain_end, prof_end, "profiling must not change results");
        assert_eq!(plain_w, prof_w);

        let prof = profiled.profile().expect("profile collected");
        assert!(prof.wall_ns() > 0);
        assert_eq!(prof.events_timed(), 1000);
        assert!(prof.events_per_sec() > 0.0);
        assert!(prof.queue_depth().count() > 0, "depth sampled every 64");

        let mut reg = obs::MetricsRegistry::new();
        profiled.export_metrics(&mut reg);
        assert!(reg.get("engine.prof.wall_ns").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            reg.get("engine.prof.events_timed").unwrap().as_f64(),
            Some(1000.0)
        );
        assert_eq!(
            reg.get("engine.scheduled_total").unwrap().as_f64(),
            Some(1000.0)
        );
    }

    #[test]
    fn disabled_profiling_exports_nothing() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(1), record("x"));
        e.run(&mut w);
        assert!(e.profile().is_none());
        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert!(reg.get("engine.prof.wall_ns").is_none());
    }

    #[test]
    fn calendar_backend_exports_queue_stats() {
        let mut e = Engine::<World>::with_calendar_queue().with_profiling();
        let mut w: World = Vec::new();
        for t in 1..=500u64 {
            e.schedule_at(SimTime::from_nanos(t * 7), record("x"));
        }
        e.run(&mut w);
        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert!(reg.get("engine.calendar.resizes").is_some());
        assert!(
            reg.get("engine.calendar.buckets")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    /// A world exercising the typed dispatch path: every event kind is
    /// logged with its firing time; `Timer` re-arms once.
    #[derive(Default)]
    struct TypedWorld {
        log: Vec<(u64, TypedEvent)>,
    }

    impl EventWorld for TypedWorld {
        fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
            self.log.push((s.now().as_nanos(), ev));
            if let TypedEvent::Timer { id: 0 } = ev {
                s.post_in(SimDuration::from_nanos(4), TypedEvent::Timer { id: 1 });
            }
        }
    }

    #[test]
    fn typed_events_dispatch_through_world() {
        let mut e = Engine::new();
        let mut w = TypedWorld::default();
        e.post_at(SimTime::from_nanos(3), TypedEvent::Timer { id: 0 });
        e.post_at(
            SimTime::from_nanos(5),
            TypedEvent::MessageReady { src: 1, dst: 2 },
        );
        e.post_at(SimTime::from_nanos(5), TypedEvent::RankResume { rank: 9 });
        let end = e.run(&mut w);
        assert_eq!(
            w.log,
            vec![
                (3, TypedEvent::Timer { id: 0 }),
                (5, TypedEvent::MessageReady { src: 1, dst: 2 }),
                (5, TypedEvent::RankResume { rank: 9 }),
                (7, TypedEvent::Timer { id: 1 }),
            ]
        );
        assert_eq!(end, SimTime::from_nanos(7));
        let stats = e.event_stats();
        assert_eq!(stats.typed, 4);
        assert_eq!(stats.dynamic, 0);
    }

    #[test]
    fn typed_and_dyn_interleave_by_insertion_order() {
        let mut e = Engine::new();
        let mut w = TypedWorld::default();
        // Same timestamp; the closure fires between the two typed events
        // because insertion order breaks the tie.
        e.post_at(SimTime::from_nanos(5), TypedEvent::Timer { id: 10 });
        e.schedule_at(
            SimTime::from_nanos(5),
            Box::new(|s, w: &mut TypedWorld| {
                w.log
                    .push((s.now().as_nanos(), TypedEvent::Timer { id: 99 }));
            }),
        );
        e.post_at(SimTime::from_nanos(5), TypedEvent::Timer { id: 11 });
        e.run(&mut w);
        assert_eq!(
            w.log.iter().map(|(_, ev)| *ev).collect::<Vec<_>>(),
            vec![
                TypedEvent::Timer { id: 10 },
                TypedEvent::Timer { id: 99 },
                TypedEvent::Timer { id: 11 },
            ]
        );
        let stats = e.event_stats();
        assert_eq!((stats.typed, stats.dynamic), (2, 1));
    }

    #[test]
    fn continuations_recycle_slab_slots() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        // Chain of deferred continuations: each frees its slot before the
        // next is parked, so the slab never grows past one slot.
        fn arm(s: &mut Scheduler<World>, depth: u64) {
            s.defer_in(SimDuration::from_nanos(2), move |s, w: &mut World| {
                w.push((s.now().as_nanos(), "cont"));
                if depth > 0 {
                    arm(s, depth - 1);
                }
            });
        }
        e.defer_in(SimDuration::from_nanos(2), |s, w: &mut World| {
            w.push((s.now().as_nanos(), "cont"));
            arm(s, 3);
        });
        e.run(&mut w);
        assert_eq!(
            w,
            vec![
                (2, "cont"),
                (4, "cont"),
                (6, "cont"),
                (8, "cont"),
                (10, "cont")
            ]
        );
        let stats = e.event_stats();
        assert_eq!(stats.continuations, 5);
        assert_eq!(stats.slab_reuses, 4, "all but the first reuse the slot");
    }

    #[test]
    fn alloc_counters_reach_metrics() {
        let mut e = Engine::new();
        let mut w = TypedWorld::default();
        e.post_at(SimTime::from_nanos(1), TypedEvent::Timer { id: 5 });
        e.defer_at(SimTime::from_nanos(2), |_, _| {});
        e.run(&mut w);
        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert_eq!(
            reg.get("engine.alloc.typed_events")
                .and_then(|m| m.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            reg.get("engine.alloc.continuations")
                .and_then(|m| m.as_f64()),
            Some(1.0)
        );
    }

    /// Records what `horizon()` reported during each dispatch.
    #[derive(Default)]
    struct HorizonWorld {
        seen: Vec<(u64, Option<u64>)>,
    }

    impl EventWorld for HorizonWorld {
        fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
            self.seen
                .push((s.now().as_nanos(), s.horizon().map(SimTime::as_nanos)));
            if let TypedEvent::Timer { id: 0 } = ev {
                // A post during dispatch must pull the horizon in.
                s.post_in(SimDuration::from_nanos(1), TypedEvent::Timer { id: 9 });
                self.seen
                    .push((s.now().as_nanos(), s.horizon().map(SimTime::as_nanos)));
            }
        }
    }

    #[test]
    fn horizon_tracks_next_pending_event() {
        let mut e = Engine::new();
        let mut w = HorizonWorld::default();
        e.post_at(SimTime::from_nanos(10), TypedEvent::Timer { id: 0 });
        e.post_at(SimTime::from_nanos(50), TypedEvent::Timer { id: 1 });
        e.run(&mut w);
        assert_eq!(
            w.seen,
            vec![
                // Firing t=10: queue holds t=50; then the in-dispatch
                // post at t=11 tightens the horizon.
                (10, Some(50)),
                (10, Some(11)),
                (11, Some(50)),
                // Final event: nothing left anywhere.
                (50, None),
            ]
        );
    }

    #[test]
    fn clock_is_monotone_across_steps() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(7), record("a"));
        e.schedule_at(SimTime::from_nanos(7), record("b"));
        e.schedule_at(SimTime::from_nanos(9), record("c"));
        let mut last = SimTime::ZERO;
        while e.step(&mut w) {
            assert!(e.now() >= last);
            last = e.now();
        }
        assert_eq!(e.now(), SimTime::from_nanos(9));
    }
}
