//! The discrete-event engine.
//!
//! [`Engine`] owns a time-ordered event queue and a monotonically advancing
//! clock. Events are boxed closures over a user-supplied *world* type `W`
//! (the mutable simulation state); firing an event may schedule further
//! events. Ties in firing time break by insertion order, which makes every
//! run deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calqueue::CalendarQueue;
use crate::time::{SimDuration, SimTime};

/// An event callback: receives the scheduling handle and the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut Scheduler<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The part of the engine visible to a firing event: the clock and the
/// ability to schedule more events.
///
/// Split from [`Engine`] so event closures can schedule without aliasing
/// the queue being drained.
pub struct Scheduler<W> {
    now: SimTime,
    next_seq: u64,
    pending: Vec<Scheduled<W>>,
}

impl<W> Scheduler<W> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: EventFn<W>) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — simulated time never rewinds.
    pub fn schedule_at(&mut self, at: SimTime, event: EventFn<W>) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Scheduled {
            at,
            seq,
            run: event,
        });
    }
}

/// The pending-event set: a binary heap by default, or a calendar queue
/// for heavily loaded simulations (identical ordering semantics).
enum Queue<W> {
    Heap(BinaryHeap<Scheduled<W>>),
    Calendar(CalendarQueue<EventFn<W>>),
}

impl<W> Queue<W> {
    fn push(&mut self, ev: Scheduled<W>) {
        match self {
            Queue::Heap(h) => h.push(ev),
            Queue::Calendar(c) => c.push((ev.at.as_nanos(), ev.seq), ev.run),
        }
    }

    fn pop(&mut self) -> Option<Scheduled<W>> {
        match self {
            Queue::Heap(h) => h.pop(),
            Queue::Calendar(c) => c.pop().map(|((t, seq), run)| Scheduled {
                at: SimTime::from_nanos(t),
                seq,
                run,
            }),
        }
    }

    fn peek_at(&self) -> Option<SimTime> {
        match self {
            Queue::Heap(h) => h.peek().map(|ev| ev.at),
            Queue::Calendar(c) => c.peek_key().map(|(t, _)| SimTime::from_nanos(t)),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Queue::Heap(h) => h.is_empty(),
            Queue::Calendar(c) => c.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Heap(h) => h.len(),
            Queue::Calendar(c) => c.len(),
        }
    }
}

/// A deterministic discrete-event simulation engine over world state `W`.
///
/// # Examples
///
/// ```
/// use desim::engine::Engine;
/// use desim::time::SimDuration;
///
/// let mut engine = Engine::new();
/// let mut hits: Vec<u64> = Vec::new();
/// engine.schedule_in(SimDuration::from_nanos(5), Box::new(|s, world: &mut Vec<u64>| {
///     world.push(s.now().as_nanos());
///     s.schedule_in(SimDuration::from_nanos(10), Box::new(|s, world: &mut Vec<u64>| {
///         world.push(s.now().as_nanos());
///     }));
/// }));
/// engine.run(&mut hits);
/// assert_eq!(hits, vec![5, 15]);
/// ```
pub struct Engine<W> {
    queue: Queue<W>,
    scheduler: Scheduler<W>,
    fired: u64,
    event_limit: u64,
    queue_high_water: usize,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Default cap on fired events; a backstop against runaway simulations.
    pub const DEFAULT_EVENT_LIMIT: u64 = 2_000_000_000;

    /// Creates an empty engine with the clock at time zero (binary-heap
    /// pending set).
    pub fn new() -> Self {
        Self::with_queue(Queue::Heap(BinaryHeap::new()))
    }

    /// Creates an engine backed by a calendar queue — O(1) amortized
    /// enqueue/dequeue for dense event populations, with identical
    /// deterministic ordering to the default heap.
    pub fn with_calendar_queue() -> Self {
        Self::with_queue(Queue::Calendar(CalendarQueue::new()))
    }

    fn with_queue(queue: Queue<W>) -> Self {
        Engine {
            queue,
            scheduler: Scheduler {
                now: SimTime::ZERO,
                next_seq: 0,
                pending: Vec::new(),
            },
            fired: 0,
            event_limit: Self::DEFAULT_EVENT_LIMIT,
            queue_high_water: 0,
        }
    }

    /// Replaces the runaway-event backstop (default
    /// [`Engine::DEFAULT_EVENT_LIMIT`]).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Largest number of simultaneously pending events seen so far —
    /// the queue-depth high-water mark.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Which pending-set backend this engine uses: `"heap"` or
    /// `"calendar"`.
    pub fn queue_backend(&self) -> &'static str {
        match self.queue {
            Queue::Heap(_) => "heap",
            Queue::Calendar(_) => "calendar",
        }
    }

    /// Exports engine counters into a metrics registry: events fired,
    /// current and high-water queue occupancy, and a backend indicator
    /// (`engine.queue.backend.heap` / `.calendar`).
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.events_fired", self.fired);
        reg.gauge("engine.queue.high_water", self.queue_high_water as f64);
        reg.gauge("engine.queue.len", self.queue.len() as f64);
        reg.counter(format!("engine.queue.backend.{}", self.queue_backend()), 1);
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.scheduler.pending.is_empty()
    }

    /// Schedules an event after `delay` from the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: EventFn<W>) {
        self.scheduler.schedule_in(delay, event);
        self.drain_pending();
    }

    /// Schedules an event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: EventFn<W>) {
        self.scheduler.schedule_at(at, event);
        self.drain_pending();
    }

    fn drain_pending(&mut self) {
        for ev in self.scheduler.pending.drain(..) {
            self.queue.push(ev);
        }
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
    }

    /// Fires the single earliest event, advancing the clock to its
    /// timestamp. Returns `false` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the event-count backstop is exceeded.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        assert!(
            self.fired < self.event_limit,
            "event limit {} exceeded — runaway simulation?",
            self.event_limit
        );
        self.fired += 1;
        self.scheduler.now = ev.at;
        (ev.run)(&mut self.scheduler, world);
        self.drain_pending();
        true
    }

    /// Runs until no events remain. Returns the final clock value.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world) {}
        self.now()
    }

    /// Runs until the clock would pass `deadline` or the queue empties.
    /// Events at exactly `deadline` do fire.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(at) = self.queue.peek_at() {
            if at > deadline {
                break;
            }
            self.step(world);
        }
        if self.scheduler.now < deadline && self.queue.is_empty() {
            // Idle until the deadline.
            self.scheduler.now = deadline;
        }
        self.now()
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.scheduler.now)
            .field("queued", &self.queue.len())
            .field("fired", &self.fired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<(u64, &'static str)>;

    fn record(label: &'static str) -> EventFn<World> {
        Box::new(move |s, w: &mut World| w.push((s.now().as_nanos(), label)))
    }

    #[test]
    fn fires_in_time_order() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(30), record("c"));
        e.schedule_at(SimTime::from_nanos(10), record("a"));
        e.schedule_at(SimTime::from_nanos(20), record("b"));
        e.run(&mut w);
        assert_eq!(w, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        for label in ["first", "second", "third"] {
            e.schedule_at(SimTime::from_nanos(5), record(label));
        }
        e.run(&mut w);
        assert_eq!(
            w.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_in(
            SimDuration::from_nanos(1),
            Box::new(|s, _w: &mut World| {
                s.schedule_in(SimDuration::from_nanos(2), record("child"));
            }),
        );
        e.run(&mut w);
        assert_eq!(w, vec![(3, "child")]);
        assert_eq!(e.events_fired(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), record("early"));
        e.schedule_at(SimTime::from_nanos(100), record("late"));
        e.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(w, vec![(10, "early")]);
        assert_eq!(e.now(), SimTime::from_nanos(10));
        e.run(&mut w);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn run_until_advances_idle_clock() {
        let mut e: Engine<World> = Engine::new();
        let mut w: World = Vec::new();
        e.run_until(&mut w, SimTime::from_nanos(42));
        assert_eq!(e.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), record("x"));
        e.run(&mut w);
        e.schedule_at(SimTime::from_nanos(5), record("bad"));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_trips() {
        let mut e = Engine::new().with_event_limit(10);
        let mut w: World = Vec::new();
        fn rearm(s: &mut Scheduler<World>) {
            s.schedule_in(
                SimDuration::from_nanos(1),
                Box::new(|s, _w: &mut World| rearm(s)),
            );
        }
        e.schedule_in(
            SimDuration::from_nanos(1),
            Box::new(|s, _w: &mut World| rearm(s)),
        );
        e.run(&mut w);
    }

    #[test]
    fn queue_high_water_tracks_peak_occupancy() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        for t in 1..=5 {
            e.schedule_at(SimTime::from_nanos(t), record("x"));
        }
        assert_eq!(e.queue_high_water(), 5);
        e.run(&mut w);
        assert_eq!(e.queue_high_water(), 5, "high water survives the drain");
        assert_eq!(e.queue_backend(), "heap");
        assert_eq!(
            Engine::<World>::with_calendar_queue().queue_backend(),
            "calendar"
        );

        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert_eq!(reg.get("engine.events_fired").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            reg.get("engine.queue.high_water").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            reg.get("engine.queue.backend.heap").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn clock_is_monotone_across_steps() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(7), record("a"));
        e.schedule_at(SimTime::from_nanos(7), record("b"));
        e.schedule_at(SimTime::from_nanos(9), record("c"));
        let mut last = SimTime::ZERO;
        while e.step(&mut w) {
            assert!(e.now() >= last);
            last = e.now();
        }
        assert_eq!(e.now(), SimTime::from_nanos(9));
    }
}
