//! The discrete-event engine.
//!
//! [`Engine`] owns a time-ordered event queue and a monotonically advancing
//! clock. Events are boxed closures over a user-supplied *world* type `W`
//! (the mutable simulation state); firing an event may schedule further
//! events. Ties in firing time break by insertion order, which makes every
//! run deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calqueue::CalendarQueue;
use crate::time::{SimDuration, SimTime};

/// An event callback: receives the scheduling handle and the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut Scheduler<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The part of the engine visible to a firing event: the clock and the
/// ability to schedule more events.
///
/// Split from [`Engine`] so event closures can schedule without aliasing
/// the queue being drained.
pub struct Scheduler<W> {
    now: SimTime,
    next_seq: u64,
    pending: Vec<Scheduled<W>>,
}

impl<W> Scheduler<W> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: EventFn<W>) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — simulated time never rewinds.
    pub fn schedule_at(&mut self, at: SimTime, event: EventFn<W>) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Scheduled {
            at,
            seq,
            run: event,
        });
    }
}

/// The pending-event set: a binary heap by default, or a calendar queue
/// for heavily loaded simulations (identical ordering semantics).
enum Queue<W> {
    Heap(BinaryHeap<Scheduled<W>>),
    Calendar(CalendarQueue<EventFn<W>>),
}

impl<W> Queue<W> {
    fn push(&mut self, ev: Scheduled<W>) {
        match self {
            Queue::Heap(h) => h.push(ev),
            Queue::Calendar(c) => c.push((ev.at.as_nanos(), ev.seq), ev.run),
        }
    }

    fn pop(&mut self) -> Option<Scheduled<W>> {
        match self {
            Queue::Heap(h) => h.pop(),
            Queue::Calendar(c) => c.pop().map(|((t, seq), run)| Scheduled {
                at: SimTime::from_nanos(t),
                seq,
                run,
            }),
        }
    }

    fn peek_at(&self) -> Option<SimTime> {
        match self {
            Queue::Heap(h) => h.peek().map(|ev| ev.at),
            Queue::Calendar(c) => c.peek_key().map(|(t, _)| SimTime::from_nanos(t)),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Queue::Heap(h) => h.is_empty(),
            Queue::Calendar(c) => c.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Heap(h) => h.len(),
            Queue::Calendar(c) => c.len(),
        }
    }

    /// `(resizes, buckets, max_bucket_occupancy)` for the calendar
    /// backend; `None` for the heap.
    fn calendar_stats(&self) -> Option<(u64, usize, usize)> {
        match self {
            Queue::Heap(_) => None,
            Queue::Calendar(c) => Some((c.resizes(), c.bucket_count(), c.max_bucket_occupancy())),
        }
    }
}

/// Host-side engine self-profile, collected only when the engine was
/// built [`Engine::with_profiling`]. Wall-clock figures come from
/// `std::time::Instant` around [`Engine::run`]; queue statistics are
/// sampled every [`EngineProfile::SAMPLE_EVERY`] fired events so the
/// hot loop stays branch-plus-mask cheap.
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    /// Wall-clock nanoseconds spent inside `run()` loops.
    wall_ns: u64,
    /// Events fired inside timed `run()` windows.
    events_timed: u64,
    /// Number of queue-depth samples taken.
    samples: u64,
    /// Sampled pending-queue depths (pow2 buckets).
    queue_depth: obs::Pow2Histogram,
    /// Sampled fullest-day-bucket occupancy (calendar backend only).
    calendar_occupancy: obs::Pow2Histogram,
}

impl EngineProfile {
    /// Queue statistics are sampled once per this many fired events.
    pub const SAMPLE_EVERY: u64 = 64;

    /// Wall-clock nanoseconds spent inside timed `run()` windows.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Events fired inside timed `run()` windows.
    pub fn events_timed(&self) -> u64 {
        self.events_timed
    }

    /// Events per wall-clock second over the timed windows; 0 before any
    /// timed run completes.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events_timed as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// The sampled queue-depth distribution.
    pub fn queue_depth(&self) -> &obs::Pow2Histogram {
        &self.queue_depth
    }

    /// Exports the profile into `reg` under `engine.prof.*`.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.prof.wall_ns", self.wall_ns);
        reg.counter("engine.prof.events_timed", self.events_timed);
        reg.counter("engine.prof.samples", self.samples);
        reg.gauge("engine.prof.events_per_sec", self.events_per_sec());
        if self.queue_depth.count() > 0 {
            reg.gauge(
                "engine.prof.queue_depth.p50",
                self.queue_depth.quantile(0.5).unwrap_or(0) as f64,
            );
            reg.gauge(
                "engine.prof.queue_depth.p99",
                self.queue_depth.quantile(0.99).unwrap_or(0) as f64,
            );
            reg.gauge("engine.prof.queue_depth.mean", self.queue_depth.mean());
        }
        if self.calendar_occupancy.count() > 0 {
            reg.gauge(
                "engine.prof.calendar.max_bucket.p50",
                self.calendar_occupancy.quantile(0.5).unwrap_or(0) as f64,
            );
            reg.gauge(
                "engine.prof.calendar.max_bucket.mean",
                self.calendar_occupancy.mean(),
            );
        }
    }
}

/// A deterministic discrete-event simulation engine over world state `W`.
///
/// # Examples
///
/// ```
/// use desim::engine::Engine;
/// use desim::time::SimDuration;
///
/// let mut engine = Engine::new();
/// let mut hits: Vec<u64> = Vec::new();
/// engine.schedule_in(SimDuration::from_nanos(5), Box::new(|s, world: &mut Vec<u64>| {
///     world.push(s.now().as_nanos());
///     s.schedule_in(SimDuration::from_nanos(10), Box::new(|s, world: &mut Vec<u64>| {
///         world.push(s.now().as_nanos());
///     }));
/// }));
/// engine.run(&mut hits);
/// assert_eq!(hits, vec![5, 15]);
/// ```
pub struct Engine<W> {
    queue: Queue<W>,
    scheduler: Scheduler<W>,
    fired: u64,
    event_limit: u64,
    queue_high_water: usize,
    /// Self-profiling state; `None` (the default) costs one branch per
    /// step and zero clock reads.
    prof: Option<Box<EngineProfile>>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Default cap on fired events; a backstop against runaway simulations.
    pub const DEFAULT_EVENT_LIMIT: u64 = 2_000_000_000;

    /// Creates an empty engine with the clock at time zero (binary-heap
    /// pending set).
    pub fn new() -> Self {
        Self::with_queue(Queue::Heap(BinaryHeap::new()))
    }

    /// Creates an engine backed by a calendar queue — O(1) amortized
    /// enqueue/dequeue for dense event populations, with identical
    /// deterministic ordering to the default heap.
    pub fn with_calendar_queue() -> Self {
        Self::with_queue(Queue::Calendar(CalendarQueue::new()))
    }

    fn with_queue(queue: Queue<W>) -> Self {
        Engine {
            queue,
            scheduler: Scheduler {
                now: SimTime::ZERO,
                next_seq: 0,
                pending: Vec::new(),
            },
            fired: 0,
            event_limit: Self::DEFAULT_EVENT_LIMIT,
            queue_high_water: 0,
            prof: None,
        }
    }

    /// Replaces the runaway-event backstop (default
    /// [`Engine::DEFAULT_EVENT_LIMIT`]).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Enables engine self-profiling: wall-clock timing of `run()` loops
    /// plus sampled queue-depth / calendar-occupancy histograms.
    /// Profiling never perturbs the simulation itself — only host-side
    /// counters are touched.
    pub fn with_profiling(mut self) -> Self {
        self.prof = Some(Box::default());
        self
    }

    /// The collected self-profile; `None` unless built
    /// [`Engine::with_profiling`].
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.prof.as_deref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Largest number of simultaneously pending events seen so far —
    /// the queue-depth high-water mark.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Which pending-set backend this engine uses: `"heap"` or
    /// `"calendar"`.
    pub fn queue_backend(&self) -> &'static str {
        match self.queue {
            Queue::Heap(_) => "heap",
            Queue::Calendar(_) => "calendar",
        }
    }

    /// Exports engine counters into a metrics registry: events fired,
    /// current and high-water queue occupancy, and a backend indicator
    /// (`engine.queue.backend.heap` / `.calendar`).
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.events_fired", self.fired);
        reg.counter("engine.scheduled_total", self.scheduler.next_seq);
        reg.gauge("engine.queue.high_water", self.queue_high_water as f64);
        reg.gauge("engine.queue.len", self.queue.len() as f64);
        reg.counter(format!("engine.queue.backend.{}", self.queue_backend()), 1);
        if let Some((resizes, buckets, occ)) = self.queue.calendar_stats() {
            reg.counter("engine.calendar.resizes", resizes);
            reg.gauge("engine.calendar.buckets", buckets as f64);
            reg.gauge("engine.calendar.max_bucket", occ as f64);
        }
        if let Some(prof) = &self.prof {
            prof.export_metrics(reg);
        }
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.scheduler.pending.is_empty()
    }

    /// Schedules an event after `delay` from the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: EventFn<W>) {
        self.scheduler.schedule_in(delay, event);
        self.drain_pending();
    }

    /// Schedules an event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: EventFn<W>) {
        self.scheduler.schedule_at(at, event);
        self.drain_pending();
    }

    fn drain_pending(&mut self) {
        for ev in self.scheduler.pending.drain(..) {
            self.queue.push(ev);
        }
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
    }

    /// Fires the single earliest event, advancing the clock to its
    /// timestamp. Returns `false` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the event-count backstop is exceeded.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        assert!(
            self.fired < self.event_limit,
            "event limit {} exceeded — runaway simulation?",
            self.event_limit
        );
        self.fired += 1;
        self.scheduler.now = ev.at;
        (ev.run)(&mut self.scheduler, world);
        self.drain_pending();
        if let Some(prof) = &mut self.prof {
            if self.fired & (EngineProfile::SAMPLE_EVERY - 1) == 0 {
                prof.samples += 1;
                prof.queue_depth.record(self.queue.len() as u64);
                if let Some((_, _, occ)) = self.queue.calendar_stats() {
                    prof.calendar_occupancy.record(occ as u64);
                }
            }
        }
        true
    }

    /// Runs until no events remain. Returns the final clock value.
    ///
    /// With profiling enabled the loop is wrapped in a wall-clock timer,
    /// accumulating into the profile's `wall_ns` / `events_timed` (from
    /// which events-per-second falls out).
    pub fn run(&mut self, world: &mut W) -> SimTime {
        if self.prof.is_none() {
            while self.step(world) {}
            return self.now();
        }
        let fired_before = self.fired;
        let start = std::time::Instant::now();
        while self.step(world) {}
        let elapsed = start.elapsed();
        let prof = self.prof.as_mut().expect("profiling enabled");
        prof.wall_ns += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        prof.events_timed += self.fired - fired_before;
        self.now()
    }

    /// Runs until the clock would pass `deadline` or the queue empties.
    /// Events at exactly `deadline` do fire.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(at) = self.queue.peek_at() {
            if at > deadline {
                break;
            }
            self.step(world);
        }
        if self.scheduler.now < deadline && self.queue.is_empty() {
            // Idle until the deadline.
            self.scheduler.now = deadline;
        }
        self.now()
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.scheduler.now)
            .field("queued", &self.queue.len())
            .field("fired", &self.fired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<(u64, &'static str)>;

    fn record(label: &'static str) -> EventFn<World> {
        Box::new(move |s, w: &mut World| w.push((s.now().as_nanos(), label)))
    }

    #[test]
    fn fires_in_time_order() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(30), record("c"));
        e.schedule_at(SimTime::from_nanos(10), record("a"));
        e.schedule_at(SimTime::from_nanos(20), record("b"));
        e.run(&mut w);
        assert_eq!(w, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        for label in ["first", "second", "third"] {
            e.schedule_at(SimTime::from_nanos(5), record(label));
        }
        e.run(&mut w);
        assert_eq!(
            w.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_in(
            SimDuration::from_nanos(1),
            Box::new(|s, _w: &mut World| {
                s.schedule_in(SimDuration::from_nanos(2), record("child"));
            }),
        );
        e.run(&mut w);
        assert_eq!(w, vec![(3, "child")]);
        assert_eq!(e.events_fired(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), record("early"));
        e.schedule_at(SimTime::from_nanos(100), record("late"));
        e.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(w, vec![(10, "early")]);
        assert_eq!(e.now(), SimTime::from_nanos(10));
        e.run(&mut w);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn run_until_advances_idle_clock() {
        let mut e: Engine<World> = Engine::new();
        let mut w: World = Vec::new();
        e.run_until(&mut w, SimTime::from_nanos(42));
        assert_eq!(e.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), record("x"));
        e.run(&mut w);
        e.schedule_at(SimTime::from_nanos(5), record("bad"));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_trips() {
        let mut e = Engine::new().with_event_limit(10);
        let mut w: World = Vec::new();
        fn rearm(s: &mut Scheduler<World>) {
            s.schedule_in(
                SimDuration::from_nanos(1),
                Box::new(|s, _w: &mut World| rearm(s)),
            );
        }
        e.schedule_in(
            SimDuration::from_nanos(1),
            Box::new(|s, _w: &mut World| rearm(s)),
        );
        e.run(&mut w);
    }

    #[test]
    fn queue_high_water_tracks_peak_occupancy() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        for t in 1..=5 {
            e.schedule_at(SimTime::from_nanos(t), record("x"));
        }
        assert_eq!(e.queue_high_water(), 5);
        e.run(&mut w);
        assert_eq!(e.queue_high_water(), 5, "high water survives the drain");
        assert_eq!(e.queue_backend(), "heap");
        assert_eq!(
            Engine::<World>::with_calendar_queue().queue_backend(),
            "calendar"
        );

        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert_eq!(reg.get("engine.events_fired").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            reg.get("engine.queue.high_water").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(
            reg.get("engine.queue.backend.heap").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn profiling_observes_without_perturbing() {
        fn chain(e: &mut Engine<World>) -> (SimTime, World) {
            let mut w: World = Vec::new();
            for t in 1..=1000u64 {
                e.schedule_at(SimTime::from_nanos(t * 3), record("x"));
            }
            let end = e.run(&mut w);
            (end, w)
        }
        let (plain_end, plain_w) = chain(&mut Engine::new());
        let mut profiled = Engine::new().with_profiling();
        let (prof_end, prof_w) = chain(&mut profiled);
        assert_eq!(plain_end, prof_end, "profiling must not change results");
        assert_eq!(plain_w, prof_w);

        let prof = profiled.profile().expect("profile collected");
        assert!(prof.wall_ns() > 0);
        assert_eq!(prof.events_timed(), 1000);
        assert!(prof.events_per_sec() > 0.0);
        assert!(prof.queue_depth().count() > 0, "depth sampled every 64");

        let mut reg = obs::MetricsRegistry::new();
        profiled.export_metrics(&mut reg);
        assert!(reg.get("engine.prof.wall_ns").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            reg.get("engine.prof.events_timed").unwrap().as_f64(),
            Some(1000.0)
        );
        assert_eq!(
            reg.get("engine.scheduled_total").unwrap().as_f64(),
            Some(1000.0)
        );
    }

    #[test]
    fn disabled_profiling_exports_nothing() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(1), record("x"));
        e.run(&mut w);
        assert!(e.profile().is_none());
        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert!(reg.get("engine.prof.wall_ns").is_none());
    }

    #[test]
    fn calendar_backend_exports_queue_stats() {
        let mut e = Engine::<World>::with_calendar_queue().with_profiling();
        let mut w: World = Vec::new();
        for t in 1..=500u64 {
            e.schedule_at(SimTime::from_nanos(t * 7), record("x"));
        }
        e.run(&mut w);
        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert!(reg.get("engine.calendar.resizes").is_some());
        assert!(
            reg.get("engine.calendar.buckets")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn clock_is_monotone_across_steps() {
        let mut e = Engine::new();
        let mut w: World = Vec::new();
        e.schedule_at(SimTime::from_nanos(7), record("a"));
        e.schedule_at(SimTime::from_nanos(7), record("b"));
        e.schedule_at(SimTime::from_nanos(9), record("c"));
        let mut last = SimTime::ZERO;
        while e.step(&mut w) {
            assert!(e.now() >= last);
            last = e.now();
        }
        assert_eq!(e.now(), SimTime::from_nanos(9));
    }
}
