//! # desim — deterministic discrete-event simulation kernel
//!
//! The foundation of the multicomputer simulator used to reproduce the
//! HPCA'97 MPI collective-communication study. Everything above this crate
//! (topologies, machine models, the MPI layer) is expressed in terms of:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — integer-nanosecond clock;
//! * [`engine::Engine`] — a time-ordered event queue over a user world
//!   type, with deterministic FIFO tie-breaking;
//! * [`event::TypedEvent`] — the plain-data event vocabulary, stored
//!   inline in the queue and dispatched through the world's
//!   [`event::EventWorld::dispatch`] match (boxed closures remain
//!   available for the rare dynamic case);
//! * [`resource::FifoResource`] — serializing servers used for links, NIC
//!   ports and DMA engines;
//! * [`rng::SplitMix64`] — seeded randomness for clock skew and noise;
//! * [`stats`] — summary statistics matching the paper's min/max/mean
//!   aggregation.
//!
//! # Examples
//!
//! A two-event simulation on the allocation-free typed path:
//!
//! ```
//! use desim::{Engine, EventWorld, Scheduler, SimDuration, TypedEvent};
//!
//! #[derive(Default)]
//! struct World {
//!     total: u64,
//! }
//!
//! impl EventWorld for World {
//!     fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
//!         let TypedEvent::Timer { id } = ev else { unreachable!() };
//!         self.total += id;
//!         if id == 1 {
//!             s.post_in(SimDuration::from_micros(2), TypedEvent::Timer { id: 10 });
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let mut world = World::default();
//! engine.post_in(SimDuration::from_micros(1), TypedEvent::Timer { id: 1 });
//! let end = engine.run(&mut world);
//! assert_eq!(world.total, 11);
//! assert_eq!(end.as_micros_f64(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod calqueue;
pub mod check;
pub mod engine;
pub mod event;
pub mod eventlog;
pub mod footprint;
pub mod provenance;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use calqueue::CalendarQueue;
pub use engine::{Engine, EngineProfile, EventFn, Scheduler};
pub use event::{Event, EventStats, EventWorld, TypedEvent};
pub use eventlog::{EventKind, EventLog, LoggedEvent};
pub use footprint::{Footprint, Resource};
pub use provenance::{ProvRecord, Provenance};
pub use resource::{FifoResource, Grant, ResourcePool};
pub use rng::SplitMix64;
pub use stats::{Counter, LogHistogram, Summary};
pub use time::{SimDuration, SimTime};
