//! # desim — deterministic discrete-event simulation kernel
//!
//! The foundation of the multicomputer simulator used to reproduce the
//! HPCA'97 MPI collective-communication study. Everything above this crate
//! (topologies, machine models, the MPI layer) is expressed in terms of:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — integer-nanosecond clock;
//! * [`engine::Engine`] — a time-ordered event queue over a user world
//!   type, with deterministic FIFO tie-breaking;
//! * [`resource::FifoResource`] — serializing servers used for links, NIC
//!   ports and DMA engines;
//! * [`rng::SplitMix64`] — seeded randomness for clock skew and noise;
//! * [`stats`] — summary statistics matching the paper's min/max/mean
//!   aggregation.
//!
//! # Examples
//!
//! A two-event simulation:
//!
//! ```
//! use desim::{Engine, SimDuration};
//!
//! let mut engine: Engine<u32> = Engine::new();
//! let mut world = 0u32;
//! engine.schedule_in(SimDuration::from_micros(1), Box::new(|s, w: &mut u32| {
//!     *w += 1;
//!     s.schedule_in(SimDuration::from_micros(2), Box::new(|_, w: &mut u32| *w += 10));
//! }));
//! let end = engine.run(&mut world);
//! assert_eq!(world, 11);
//! assert_eq!(end.as_micros_f64(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod calqueue;
pub mod check;
pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use calqueue::CalendarQueue;
pub use engine::{Engine, EngineProfile, EventFn, Scheduler};
pub use resource::{FifoResource, Grant, ResourcePool};
pub use rng::SplitMix64;
pub use stats::{Counter, LogHistogram, Summary};
pub use time::{SimDuration, SimTime};
