//! Opt-in canonical event log: one compact record per *fired* event.
//!
//! The differential-observability layer (`obs::diff` and the `tracediff`
//! binary) needs a canonical, deterministic stream of what the engine
//! actually executed — not what was scheduled, which includes events
//! superseded or reordered by ties. [`EventLog`] captures, per fired
//! event, the `(seq, at, kind, a, b)` tuple where `kind`/`a`/`b` encode
//! the [`TypedEvent`](crate::TypedEvent) payload losslessly (dynamic
//! closures collapse to [`EventKind::Dyn`] — their identity is their
//! position in the stream).
//!
//! Like profiling and provenance, the log follows the zero-cost-when-off
//! pattern: `None` (the default) unless the engine was built
//! [`Engine::with_event_log`](crate::Engine::with_event_log) — one
//! branch per step when off, and recording never perturbs the
//! simulation (timing, ordering, and event stats are identical on and
//! off).
//!
//! # Examples
//!
//! ```
//! use desim::{Engine, EventKind, EventWorld, Scheduler, SimTime, TypedEvent};
//!
//! #[derive(Default)]
//! struct World;
//! impl EventWorld for World {
//!     fn dispatch(&mut self, _s: &mut Scheduler<Self>, _ev: TypedEvent) {}
//! }
//!
//! let mut e = Engine::new().with_event_log();
//! e.post_at(SimTime::from_nanos(5), TypedEvent::Timer { id: 42 });
//! e.run(&mut World);
//! let log = e.event_log().expect("log enabled");
//! assert_eq!(log.len(), 1);
//! assert_eq!(log.get(0).kind, EventKind::Timer);
//! assert_eq!(log.get(0).a, 42);
//! ```

use crate::event::{Event, TypedEvent};
use crate::time::SimTime;

/// The kind of a fired event, as recorded in the log. Mirrors the
/// [`TypedEvent`] variants plus [`EventKind::Dyn`] for boxed closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// [`TypedEvent::RankResume`] — `a` = rank.
    RankResume,
    /// [`TypedEvent::MessageReady`] — `a` = src, `b` = dst.
    MessageReady,
    /// [`TypedEvent::LinkGrant`] — `a` = link, `b` = grantee.
    LinkGrant,
    /// [`TypedEvent::ScheduleStep`] — `a` = rank, `b` = step.
    ScheduleStep,
    /// [`TypedEvent::Timer`] — `a` = id.
    Timer,
    /// [`TypedEvent::Continuation`] — `a` = slab slot.
    Continuation,
    /// [`TypedEvent::BulkComplete`] — `a` = rank, `b` = step.
    BulkComplete,
    /// A boxed dynamic closure ([`Event::Dyn`]); payload unrecordable.
    Dyn,
}

impl EventKind {
    /// Every kind, in serialization-code order.
    pub const ALL: [EventKind; 8] = [
        EventKind::RankResume,
        EventKind::MessageReady,
        EventKind::LinkGrant,
        EventKind::ScheduleStep,
        EventKind::Timer,
        EventKind::Continuation,
        EventKind::BulkComplete,
        EventKind::Dyn,
    ];

    /// Stable snake_case key for serialization and display.
    pub fn key(&self) -> &'static str {
        match self {
            EventKind::RankResume => "rank_resume",
            EventKind::MessageReady => "message_ready",
            EventKind::LinkGrant => "link_grant",
            EventKind::ScheduleStep => "schedule_step",
            EventKind::Timer => "timer",
            EventKind::Continuation => "continuation",
            EventKind::BulkComplete => "bulk_complete",
            EventKind::Dyn => "dyn",
        }
    }

    /// Inverse of [`EventKind::key`].
    pub fn from_key(key: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.key() == key)
    }

    /// Human-readable description of the `(a, b)` payload fields for
    /// this kind, e.g. `("src", "dst")`; empty strings for unused slots.
    pub fn field_names(&self) -> (&'static str, &'static str) {
        match self {
            EventKind::RankResume => ("rank", ""),
            EventKind::MessageReady => ("src", "dst"),
            EventKind::LinkGrant => ("link", "grantee"),
            EventKind::ScheduleStep => ("rank", "step"),
            EventKind::Timer => ("id", ""),
            EventKind::Continuation => ("slot", ""),
            EventKind::BulkComplete => ("rank", "step"),
            EventKind::Dyn => ("", ""),
        }
    }
}

/// One fired event: schedule sequence number, firing instant, and the
/// encoded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedEvent {
    /// Scheduling sequence number (push order; ties fire in this order).
    pub seq: u64,
    /// The instant the event fired.
    pub at: SimTime,
    /// What fired.
    pub kind: EventKind,
    /// First payload field (see [`EventKind::field_names`]); 0 if unused.
    pub a: u64,
    /// Second payload field; 0 if unused.
    pub b: u64,
}

impl LoggedEvent {
    /// Decodes the logged `(kind, a, b)` triple back into the
    /// [`TypedEvent`] it encoded — the inverse of [`encode`]. Returns
    /// `None` for [`EventKind::Dyn`], whose payload is unrecordable.
    pub fn typed(&self) -> Option<TypedEvent> {
        let ev = match self.kind {
            EventKind::RankResume => TypedEvent::RankResume {
                rank: self.a as u32,
            },
            EventKind::MessageReady => TypedEvent::MessageReady {
                src: self.a as u32,
                dst: self.b as u32,
            },
            EventKind::LinkGrant => TypedEvent::LinkGrant {
                link: self.a as u32,
                grantee: self.b as u32,
            },
            EventKind::ScheduleStep => TypedEvent::ScheduleStep {
                rank: self.a as u32,
                step: self.b as u32,
            },
            EventKind::Timer => TypedEvent::Timer { id: self.a },
            EventKind::Continuation => TypedEvent::Continuation {
                slot: self.a as u32,
            },
            EventKind::BulkComplete => TypedEvent::BulkComplete {
                rank: self.a as u32,
                step: self.b as u32,
            },
            EventKind::Dyn => return None,
        };
        Some(ev)
    }
}

/// Encodes an event payload into its canonical `(kind, a, b)` triple.
pub fn encode<W>(ev: &Event<W>) -> (EventKind, u64, u64) {
    match ev {
        Event::Typed(TypedEvent::RankResume { rank }) => (EventKind::RankResume, *rank as u64, 0),
        Event::Typed(TypedEvent::MessageReady { src, dst }) => {
            (EventKind::MessageReady, *src as u64, *dst as u64)
        }
        Event::Typed(TypedEvent::LinkGrant { link, grantee }) => {
            (EventKind::LinkGrant, *link as u64, *grantee as u64)
        }
        Event::Typed(TypedEvent::ScheduleStep { rank, step }) => {
            (EventKind::ScheduleStep, *rank as u64, *step as u64)
        }
        Event::Typed(TypedEvent::Timer { id }) => (EventKind::Timer, *id, 0),
        Event::Typed(TypedEvent::Continuation { slot }) => {
            (EventKind::Continuation, *slot as u64, 0)
        }
        Event::Typed(TypedEvent::BulkComplete { rank, step }) => {
            (EventKind::BulkComplete, *rank as u64, *step as u64)
        }
        Event::Dyn(_) => (EventKind::Dyn, 0, 0),
    }
}

/// The canonical fired-event stream, in firing order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<LoggedEvent>,
}

impl EventLog {
    /// Number of fired events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True before anything fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The `i`-th fired event (firing order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> LoggedEvent {
        self.events[i]
    }

    /// Iterates the fired events in firing order.
    pub fn iter(&self) -> impl Iterator<Item = &LoggedEvent> {
        self.events.iter()
    }

    /// Appends a fired event. Called by the engine in `step()`, in
    /// firing order, so the vector index equals the firing index.
    pub(crate) fn record(&mut self, seq: u64, at: SimTime, kind: EventKind, a: u64, b: u64) {
        self.events.push(LoggedEvent {
            seq,
            at,
            kind,
            a,
            b,
        });
    }

    /// Appends a synthesized entry. The event-elision fast path advances
    /// ranks analytically without firing engine events, then reconstructs
    /// the canonical stream through this append so differential tooling
    /// sees the same logical history either way.
    pub fn append(&mut self, ev: LoggedEvent) {
        self.events.push(ev);
    }

    /// Exports log counters into `reg` under `engine.elog.*`.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.elog.events", self.events.len() as u64);
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a LoggedEvent;
    type IntoIter = std::slice::Iter<'a, LoggedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_keys_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_key(k.key()), Some(k));
        }
        assert_eq!(EventKind::from_key("nonsense"), None);
    }

    #[test]
    fn encode_covers_every_typed_variant() {
        let cases: [(Event<()>, EventKind, u64, u64); 7] = [
            (
                Event::Typed(TypedEvent::RankResume { rank: 3 }),
                EventKind::RankResume,
                3,
                0,
            ),
            (
                Event::Typed(TypedEvent::MessageReady { src: 1, dst: 2 }),
                EventKind::MessageReady,
                1,
                2,
            ),
            (
                Event::Typed(TypedEvent::LinkGrant {
                    link: 7,
                    grantee: 9,
                }),
                EventKind::LinkGrant,
                7,
                9,
            ),
            (
                Event::Typed(TypedEvent::ScheduleStep { rank: 4, step: 11 }),
                EventKind::ScheduleStep,
                4,
                11,
            ),
            (
                Event::Typed(TypedEvent::Timer { id: u64::MAX }),
                EventKind::Timer,
                u64::MAX,
                0,
            ),
            (
                Event::Typed(TypedEvent::Continuation { slot: 5 }),
                EventKind::Continuation,
                5,
                0,
            ),
            (
                Event::Typed(TypedEvent::BulkComplete { rank: 6, step: 13 }),
                EventKind::BulkComplete,
                6,
                13,
            ),
        ];
        for (ev, kind, a, b) in cases {
            assert_eq!(encode(&ev), (kind, a, b));
        }
        let dynamic: Event<()> = Event::Dyn(Box::new(|_, _| {}));
        assert_eq!(encode(&dynamic), (EventKind::Dyn, 0, 0));
    }

    #[test]
    fn record_preserves_firing_order() {
        let mut log = EventLog::default();
        log.record(2, SimTime::from_nanos(5), EventKind::Timer, 1, 0);
        log.record(0, SimTime::from_nanos(5), EventKind::RankResume, 2, 0);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(0).seq, 2);
        assert_eq!(log.get(1).seq, 0);
        let mut reg = obs::MetricsRegistry::new();
        log.export_metrics(&mut reg);
        assert_eq!(
            reg.get("engine.elog.events").and_then(|m| m.as_f64()),
            Some(2.0)
        );
    }
}
