//! Simulated-time types.
//!
//! All simulator time is kept in integer **nanoseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible. Floating point
//! enters only at the reporting boundary (microseconds/milliseconds for
//! humans, the units the paper uses).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and wraps a `u64`, giving ~584 years of
/// simulated range — far beyond any sweep in this repository.
///
/// # Examples
///
/// ```
/// use desim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t.as_micros_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// Durations are produced by machine models (wire times, software
/// overheads) and consumed by the engine when scheduling events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Raw nanosecond count since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds (the paper's unit).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "since() called with a later instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration between two instants regardless of order.
    pub fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from a floating-point microsecond count, rounding to
    /// the nearest nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Creates a span from a floating-point nanosecond count, rounding to
    /// the nearest nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        if !ns.is_finite() || ns <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration(ns.round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Checked scaling by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> SimTime {
        SimTime(d.0)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_micros_f64(), 7.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_nanos(), 60);
        assert_eq!((d * 3).as_nanos(), 120);
        assert_eq!((d / 2).as_nanos(), 20);
    }

    #[test]
    fn saturating_edges() {
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO - SimDuration::from_nanos(1),
            SimTime::ZERO,
            "subtraction below zero saturates"
        );
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn float_conversions_clamp() {
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_nanos_f64(2.4).as_nanos(), 2);
        assert_eq!(SimDuration::from_nanos_f64(2.6).as_nanos(), 3);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(25);
        assert_eq!(a.abs_diff(b), SimDuration::from_nanos(15));
        assert_eq!(b.abs_diff(a), SimDuration::from_nanos(15));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
