//! Causal event provenance: one compact parent edge per scheduled event.
//!
//! When an engine is built with [`Engine::with_provenance`] every call
//! that enqueues an event also records *which event was firing at the
//! time* — the causal parent. Because the scheduler assigns sequence
//! numbers in push order, the records form a flat `Vec` indexed by
//! sequence number: 16 bytes per event, no hashing, no pointers. The
//! collected [`Provenance`] can then be walked backwards from any event
//! (typically the last one fired) to reconstruct the causal chain that
//! produced it — the raw material of critical-path analysis.
//!
//! The hook follows the same gating pattern as [`Engine::with_profiling`]:
//! an `Option<Box<Provenance>>` that costs one branch per push and zero
//! allocations when disabled.
//!
//! [`Engine::with_provenance`]: crate::Engine::with_provenance
//! [`Engine::with_profiling`]: crate::Engine::with_profiling
//!
//! # Examples
//!
//! ```
//! use desim::{Engine, EventWorld, Scheduler, SimDuration, TypedEvent};
//!
//! #[derive(Default)]
//! struct World;
//! impl EventWorld for World {
//!     fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
//!         let TypedEvent::Timer { id } = ev else { unreachable!() };
//!         if id < 2 {
//!             s.post_in(SimDuration::from_nanos(10), TypedEvent::Timer { id: id + 1 });
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new().with_provenance();
//! engine.post_in(SimDuration::from_nanos(5), TypedEvent::Timer { id: 0 });
//! engine.run(&mut World);
//! let prov = engine.provenance().expect("collected");
//! // Timer 0 -> Timer 1 -> Timer 2: a three-event causal chain.
//! assert_eq!(prov.chain(prov.last_fired().unwrap()), vec![2, 1, 0]);
//! ```

use crate::time::SimTime;

/// Sentinel parent for events scheduled outside any dispatch (the
/// simulation's root stimuli, posted before `run`).
pub const ROOT: u64 = u64::MAX;

/// The causal edge recorded for one scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvRecord {
    /// Sequence number of the event that was being dispatched when this
    /// one was scheduled; [`ROOT`] for events posted from outside the
    /// event loop.
    pub parent: u64,
    /// The instant the event was scheduled to fire at.
    pub at: SimTime,
}

/// The collected causal-parent log, indexed by event sequence number.
///
/// Only meaningful when provenance recording was enabled for the
/// engine's whole lifetime (which [`crate::Engine::with_provenance`]
/// guarantees — it is a construction-time switch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    records: Vec<ProvRecord>,
    last_fired: u64,
}

impl Default for Provenance {
    fn default() -> Self {
        Provenance {
            records: Vec::new(),
            last_fired: ROOT,
        }
    }
}

impl Provenance {
    /// Number of events recorded (equals the engine's scheduled total).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been scheduled yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for event `seq`, if it exists.
    pub fn get(&self, seq: u64) -> Option<ProvRecord> {
        usize::try_from(seq)
            .ok()
            .and_then(|i| self.records.get(i).copied())
    }

    /// The causal parent of event `seq`; `None` for [`ROOT`] parents or
    /// unknown sequence numbers.
    pub fn parent_of(&self, seq: u64) -> Option<u64> {
        self.get(seq).map(|r| r.parent).filter(|&p| p != ROOT)
    }

    /// Sequence number of the most recently dispatched event; `None`
    /// before anything fired.
    pub fn last_fired(&self) -> Option<u64> {
        (self.last_fired != ROOT).then_some(self.last_fired)
    }

    /// Appends one record (crate-internal: the scheduler's push hook).
    pub(crate) fn record(&mut self, parent: u64, at: SimTime) {
        self.records.push(ProvRecord { parent, at });
    }

    /// Marks `seq` as the event currently being dispatched.
    pub(crate) fn mark_fired(&mut self, seq: u64) {
        self.last_fired = seq;
    }

    /// The causal chain ending at `seq`, newest first, walking parent
    /// edges back to a root stimulus. Returns an empty chain for an
    /// unknown sequence number.
    pub fn chain(&self, seq: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = seq;
        while let Some(rec) = self.get(cur) {
            out.push(cur);
            if rec.parent == ROOT {
                break;
            }
            cur = rec.parent;
        }
        out
    }

    /// Length of the causal chain ending at the last fired event; 0
    /// before anything fired.
    pub fn chain_depth(&self) -> usize {
        self.last_fired().map_or(0, |seq| self.chain(seq).len())
    }

    /// Exports provenance counters into `reg` under `engine.prov.*`.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter("engine.prov.events", self.records.len() as u64);
        reg.counter("engine.prov.chain_depth", self.chain_depth() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::event::{EventWorld, TypedEvent};
    use crate::time::SimDuration;
    use crate::Scheduler;

    /// Each timer re-arms `id` more timers, giving a known causal tree.
    #[derive(Default)]
    struct Cascade {
        fired: Vec<u64>,
    }

    impl EventWorld for Cascade {
        fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
            let TypedEvent::Timer { id } = ev else {
                unreachable!()
            };
            self.fired.push(id);
            for _ in 0..id {
                s.post_in(
                    SimDuration::from_nanos(10),
                    TypedEvent::Timer { id: id - 1 },
                );
            }
        }
    }

    #[test]
    fn records_parent_edges_and_chains() {
        let mut e = Engine::new().with_provenance();
        let mut w = Cascade::default();
        e.post_at(SimTime::from_nanos(1), TypedEvent::Timer { id: 2 });
        e.run(&mut w);
        // Timer 2 spawns two Timer 1s, each spawning one Timer 0:
        // 5 events total.
        assert_eq!(w.fired, vec![2, 1, 1, 0, 0]);
        let prov = e.provenance().expect("enabled");
        assert_eq!(prov.len(), 5);
        // Root stimulus has the ROOT parent; its children point at it.
        assert_eq!(prov.get(0).unwrap().parent, ROOT);
        assert_eq!(prov.parent_of(0), None);
        assert_eq!(prov.parent_of(1), Some(0));
        assert_eq!(prov.parent_of(2), Some(0));
        // The last fired event (a Timer 0) chains back to the root.
        let last = prov.last_fired().expect("events fired");
        let chain = prov.chain(last);
        assert_eq!(chain.len(), 3, "timer 0 <- timer 1 <- timer 2");
        assert_eq!(*chain.last().unwrap(), 0);
        assert_eq!(prov.chain_depth(), 3);
        // Scheduled instants are recorded.
        assert_eq!(prov.get(0).unwrap().at, SimTime::from_nanos(1));
    }

    #[test]
    fn disabled_engine_collects_nothing() {
        let mut e = Engine::new();
        let mut w = Cascade::default();
        e.post_at(SimTime::from_nanos(1), TypedEvent::Timer { id: 2 });
        e.run(&mut w);
        assert!(e.provenance().is_none());
        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert!(reg.get("engine.prov.events").is_none());
    }

    #[test]
    fn provenance_does_not_perturb_or_allocate_events() {
        let run = |prov: bool| {
            let mut e = if prov {
                Engine::new().with_provenance()
            } else {
                Engine::new()
            };
            let mut w = Cascade::default();
            e.post_at(SimTime::from_nanos(1), TypedEvent::Timer { id: 3 });
            let end = e.run(&mut w);
            (end, w.fired, e.event_stats())
        };
        let (end_off, fired_off, stats_off) = run(false);
        let (end_on, fired_on, stats_on) = run(true);
        assert_eq!(end_off, end_on, "provenance must not change timing");
        assert_eq!(fired_off, fired_on);
        // The event-allocation profile is identical: provenance adds no
        // dynamic events, continuations, or typed-event count changes.
        assert_eq!(stats_off, stats_on);
        assert_eq!(stats_off.dynamic, 0);
    }

    #[test]
    fn exports_prov_metrics() {
        let mut e = Engine::new().with_provenance();
        let mut w = Cascade::default();
        e.post_at(SimTime::from_nanos(1), TypedEvent::Timer { id: 1 });
        e.run(&mut w);
        let mut reg = obs::MetricsRegistry::new();
        e.export_metrics(&mut reg);
        assert_eq!(reg.get("engine.prov.events").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            reg.get("engine.prov.chain_depth").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn unknown_seq_yields_empty_chain() {
        let prov = Provenance::default();
        assert!(prov.chain(42).is_empty());
        assert!(prov.last_fired().is_none());
        assert_eq!(prov.chain_depth(), 0);
        assert!(prov.is_empty());
    }
}
