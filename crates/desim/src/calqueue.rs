//! A calendar queue — the classic O(1)-amortized discrete-event
//! pending-set (Brown, CACM 1988).
//!
//! Events hash into day buckets by timestamp; dequeue walks the calendar
//! from the current day, and the bucket count/width adapt to the queue
//! size and event spacing. For heavily loaded simulations with
//! near-uniform event spacing it beats a binary heap's O(log n);
//! [`Engine::with_calendar_queue`](crate::engine::Engine::with_calendar_queue)
//! opts in, and `benches/simulator.rs` compares the two.
//!
//! Keys are `(time_ns, seq)` pairs, so FIFO tie-breaking — and therefore
//! simulation determinism — is identical to the heap-backed engine.

/// Key type: `(time in ns, insertion sequence)`.
pub type Key = (u64, u64);

/// A calendar queue mapping [`Key`]s to values of type `T`.
///
/// # Examples
///
/// ```
/// use desim::calqueue::CalendarQueue;
///
/// let mut q = CalendarQueue::new();
/// q.push((30, 0), "c");
/// q.push((10, 1), "a");
/// q.push((20, 2), "b");
/// assert_eq!(q.pop(), Some(((10, 1), "a")));
/// assert_eq!(q.pop(), Some(((20, 2), "b")));
/// assert_eq!(q.pop(), Some(((30, 0), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Day buckets; each holds unsorted `(key, value)` entries.
    buckets: Vec<Vec<(Key, T)>>,
    /// Width of one day in nanoseconds (power-of-two for cheap math).
    width: u64,
    /// `width.trailing_zeros()` — `t >> shift` is the day number.
    shift: u32,
    /// `buckets.len() - 1` — bucket counts are powers of two, so the
    /// modulo in `bucket_of` is a single mask.
    mask: usize,
    /// Number of stored events.
    len: usize,
    /// Lower bound on the next key to dequeue (last popped time).
    now: u64,
    /// Number of adaptive resizes performed (growth + shrink).
    resizes: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    const INITIAL_BUCKETS: usize = 16;
    const INITIAL_WIDTH: u64 = 1 << 10; // 1.024 us days to start

    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..Self::INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            width: Self::INITIAL_WIDTH,
            shift: Self::INITIAL_WIDTH.trailing_zeros(),
            mask: Self::INITIAL_BUCKETS - 1,
            len: 0,
            now: 0,
            resizes: 0,
        }
    }

    /// Number of adaptive resizes (grow + shrink) performed so far —
    /// a self-profiling signal: a resize is an O(n) rebuild, so a high
    /// rate means the day width keeps mis-tracking the event spacing.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Current number of day buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Occupancy of the fullest day bucket — the worst-case linear-scan
    /// cost of one dequeue. O(buckets); intended for sampled profiling,
    /// not per-event calls.
    pub fn max_bucket_occupancy(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, t: u64) -> usize {
        // Both operands are powers of two: the divide is a shift, the
        // modulo a mask. This runs once per push and O(days walked) per
        // pop, so the strength reduction is visible at engine scale.
        ((t >> self.shift) as usize) & self.mask
    }

    /// Inserts an event.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the key's time precedes the last popped
    /// time (the engine never schedules into the past).
    pub fn push(&mut self, key: Key, value: T) {
        debug_assert!(key.0 >= self.now, "push into the past");
        let idx = self.bucket_of(key.0);
        self.buckets[idx].push((key, value));
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// The smallest key currently queued, or `None` when empty.
    pub fn peek_key(&self) -> Option<Key> {
        if self.len == 0 {
            return None;
        }
        self.scan_min().map(|(b, i)| self.buckets[b][i].0)
    }

    /// Removes and returns the event with the smallest key.
    pub fn pop(&mut self) -> Option<(Key, T)> {
        if self.len == 0 {
            return None;
        }
        // Calendar walk: starting from the current day, check whether
        // that day's bucket holds an event belonging to this "year".
        let nb = self.buckets.len();
        let year_span = self.width * nb as u64;
        let mut day_start = (self.now / self.width) * self.width;
        for _ in 0..nb {
            let idx = self.bucket_of(day_start);
            let day_end = day_start + self.width;
            let candidate = self.buckets[idx]
                .iter()
                .enumerate()
                .filter(|(_, (k, _))| k.0 >= day_start && k.0 < day_end)
                .min_by_key(|(_, (k, _))| *k)
                .map(|(i, _)| i);
            if let Some(i) = candidate {
                return Some(self.take(idx, i));
            }
            day_start += self.width;
            if day_start - (self.now / self.width) * self.width >= year_span {
                break;
            }
        }
        // Nothing within a year of `now`: direct search for the global
        // minimum (rare; happens after large time jumps).
        let (b, i) = self.scan_min().expect("non-empty");
        Some(self.take(b, i))
    }

    fn take(&mut self, bucket: usize, index: usize) -> (Key, T) {
        let entry = self.buckets[bucket].swap_remove(index);
        self.len -= 1;
        self.now = entry.0 .0;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > Self::INITIAL_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        entry
    }

    fn scan_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(Key, usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, (k, _)) in bucket.iter().enumerate() {
                if best.is_none_or(|(bk, _, _)| *k < bk) {
                    best = Some((*k, b, i));
                }
            }
        }
        best.map(|(_, b, i)| (b, i))
    }

    /// Rebuilds with `nb` buckets and a width adapted to the current
    /// event spacing (average gap between queued timestamps, clamped to
    /// a power of two).
    fn resize(&mut self, nb: usize) {
        let nb = nb.max(Self::INITIAL_BUCKETS);
        debug_assert!(nb.is_power_of_two(), "bucket counts double/halve from 16");
        self.resizes += 1;
        // Sample spacing: (max - min) / len, rounded to a power of two.
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        for bucket in &self.buckets {
            for ((t, _), _) in bucket {
                min_t = min_t.min(*t);
                max_t = max_t.max(*t);
            }
        }
        let width = if self.len >= 2 && max_t > min_t {
            let gap = (max_t - min_t) / self.len as u64;
            gap.max(1).next_power_of_two()
        } else {
            self.width
        };
        let mut entries: Vec<(Key, T)> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        self.width = width;
        self.shift = width.trailing_zeros();
        self.mask = nb - 1;
        self.buckets = (0..nb).map(|_| Vec::new()).collect();
        for (k, v) in entries {
            let idx = self.bucket_of(k.0);
            self.buckets[idx].push((k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = CalendarQueue::new();
        q.push((5, 2), 'b');
        q.push((5, 1), 'a');
        q.push((1, 9), 'z');
        assert_eq!(q.pop(), Some(((1, 9), 'z')));
        assert_eq!(q.pop(), Some(((5, 1), 'a')));
        assert_eq!(q.pop(), Some(((5, 2), 'b')));
        assert!(q.is_empty());
    }

    #[test]
    fn survives_growth_and_shrink() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            q.push((i * 37 % 4096, i), i);
        }
        assert_eq!(q.len(), 1000);
        assert!(q.resizes() > 0, "1000 events force growth resizes");
        assert!(q.bucket_count() >= CalendarQueue::<u64>::INITIAL_BUCKETS);
        assert!(q.max_bucket_occupancy() > 0);
        let mut last = (0, 0);
        let mut n = 0;
        while let Some((k, _)) = q.pop() {
            assert!(k >= last, "{k:?} after {last:?}");
            last = k;
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    #[test]
    fn large_time_jumps_fall_back_to_scan() {
        let mut q = CalendarQueue::new();
        q.push((10, 0), "near");
        q.push((10_000_000_000, 1), "far");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for (i, t) in [500u64, 100, 900, 100, 42].into_iter().enumerate() {
            q.push((t, i as u64), i);
        }
        while !q.is_empty() {
            let peeked = q.peek_key().unwrap();
            let (popped, _) = q.pop().unwrap();
            assert_eq!(peeked, popped);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new();
        let mut clock = 0u64;
        let mut seq = 0u64;
        for round in 0..50u64 {
            for j in 0..20u64 {
                q.push((clock + (round * 7 + j * 13) % 500, seq), seq);
                seq += 1;
            }
            for _ in 0..15 {
                if let Some((k, _)) = q.pop() {
                    assert!(k.0 >= clock.saturating_sub(500));
                    clock = k.0;
                }
            }
        }
        // Drain the rest in order.
        let mut last = (0, 0);
        while let Some((k, _)) = q.pop() {
            assert!(k >= last);
            last = k;
        }
    }
}
