//! A tiny deterministic property-testing harness.
//!
//! The repository's property tests run in hermetic environments with no
//! access to a package registry, so instead of an external framework the
//! tests draw their inputs from [`Gen`] — a thin layer over the kernel's
//! own [`SplitMix64`] — and run under [`forall`], which executes a fixed
//! number of seeded cases and reports the failing case's seed so any
//! counterexample can be replayed exactly.
//!
//! # Examples
//!
//! ```
//! use desim::check::forall;
//!
//! forall("addition commutes", 32, |g| {
//!     let a = g.u64(0, 1_000);
//!     let b = g.u64(0, 1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A deterministic input generator for one property-test case.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Creates a generator from an explicit seed (for replaying a
    /// reported counterexample).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.rng.next_u64();
        }
        lo + self.rng.next_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_below(2) == 1
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize(0, items.len() - 1)]
    }

    /// A vector of `u64` values: length in `[min_len, max_len]`, values
    /// in `[lo, hi]`.
    pub fn vec_u64(&mut self, min_len: usize, max_len: usize, lo: u64, hi: u64) -> Vec<u64> {
        let n = self.usize(min_len, max_len);
        (0..n).map(|_| self.u64(lo, hi)).collect()
    }

    /// A vector of `f64` values: length in `[min_len, max_len]`, values
    /// in `[lo, hi)`.
    pub fn vec_f64(&mut self, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let n = self.usize(min_len, max_len);
        (0..n).map(|_| self.f64(lo, hi)).collect()
    }
}

/// Runs `prop` against `cases` deterministically seeded inputs.
///
/// Every case gets an independent [`Gen`]; the sequence of seeds is fixed,
/// so failures reproduce bit-for-bit across runs and machines. On failure
/// the panic message names the property, the case index, and the seed —
/// replay with [`Gen::from_seed`].
///
/// # Panics
///
/// Panics if any case panics (assertion failure inside `prop`).
pub fn forall(name: &str, cases: u64, mut prop: impl FnMut(&mut Gen)) {
    let mut seeder = SplitMix64::new(0x6870_6361_3937_u64); // "hpca97"
    for case in 0..cases {
        let seed = seeder.next_u64();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(seed);
            prop(&mut g);
        }));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("property '{name}' failed on case {case}/{cases} (seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_stay_in_range() {
        forall("ranges", 64, |g| {
            let x = g.u64(10, 20);
            assert!((10..=20).contains(&x));
            let f = g.f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let v = g.vec_u64(1, 5, 0, 9);
            assert!(!v.is_empty() && v.len() <= 5);
            assert!(v.iter().all(|&x| x < 10));
            let item = *g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&item));
        });
    }

    #[test]
    fn cases_are_reproducible() {
        let collect = || {
            let mut seen = Vec::new();
            forall("collect", 8, |g| seen.push(g.u64(0, u64::MAX)));
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "property 'always fails' failed on case 0")]
    fn failures_report_case_and_seed() {
        forall("always fails", 4, |_| panic!("boom"));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut g = Gen::from_seed(1);
        g.u64(5, 4);
    }
}
