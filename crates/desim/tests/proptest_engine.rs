//! Property-based tests of the simulation kernel: event ordering,
//! resource FIFO invariants, statistics correctness. Runs on the
//! in-repo deterministic harness ([`desim::check`]).

#![allow(clippy::unwrap_used)]

use desim::check::forall;
use desim::{Engine, FifoResource, SimDuration, SimTime, SplitMix64, Summary};

/// Events fire in non-decreasing time order regardless of the
/// scheduling order, and all of them fire.
#[test]
fn events_fire_sorted() {
    forall("events fire sorted", 64, |g| {
        let times = g.vec_u64(1, 200, 0, 999_999);
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for &t in &times {
            engine.schedule_at(
                SimTime::from_nanos(t),
                Box::new(move |s, w: &mut Vec<u64>| w.push(s.now().as_nanos())),
            );
        }
        let mut fired = Vec::new();
        let end = engine.run(&mut fired);
        assert_eq!(fired.len(), times.len());
        assert!(fired.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(&fired, &sorted);
        assert_eq!(end.as_nanos(), *sorted.last().unwrap());
    });
}

/// FIFO resource grants never overlap, preserve request order, and
/// account busy time exactly.
#[test]
fn resource_grants_never_overlap() {
    forall("resource grants never overlap", 64, |g| {
        let n = g.usize(1, 100);
        let mut reqs: Vec<(u64, u64)> = (0..n).map(|_| (g.u64(0, 9_999), g.u64(1, 499))).collect();
        // Requests must arrive in non-decreasing time order, as the
        // engine produces them.
        reqs.sort_by_key(|&(at, _)| at);
        let mut r = FifoResource::new();
        let mut prev_end = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for &(at, dur) in &reqs {
            let grant = r.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
            assert!(grant.start >= prev_end, "grants overlap");
            assert!(
                grant.start >= SimTime::from_nanos(at),
                "served before request"
            );
            assert_eq!(grant.end - grant.start, SimDuration::from_nanos(dur));
            prev_end = grant.end;
            total += SimDuration::from_nanos(dur);
        }
        assert_eq!(r.busy_time(), total);
        assert_eq!(r.grants(), reqs.len() as u64);
        assert!(r.utilization(prev_end) <= 1.0 + f64::EPSILON);
    });
}

/// Welford summary matches naive two-pass statistics.
#[test]
fn summary_matches_naive() {
    forall("summary matches naive", 64, |g| {
        let xs = g.vec_f64(1, 500, -1e6, 1e6);
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert_eq!(s.count(), xs.len() as u64);
        assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), min);
        assert_eq!(s.max(), max);
    });
}

/// Merged summaries equal bulk summaries.
#[test]
fn summary_merge_associative() {
    forall("summary merge associative", 64, |g| {
        let xs = g.vec_f64(0, 100, -1e3, 1e3);
        let ys = g.vec_f64(0, 100, -1e3, 1e3);
        let bulk: Summary = xs.iter().chain(&ys).copied().collect();
        let mut merged: Summary = xs.iter().copied().collect();
        merged.merge(&ys.iter().copied().collect());
        assert_eq!(merged.count(), bulk.count());
        if bulk.count() > 0 {
            assert!((merged.mean() - bulk.mean()).abs() < 1e-9 * (1.0 + bulk.mean().abs()));
            assert!((merged.variance() - bulk.variance()).abs() < 1e-6 * (1.0 + bulk.variance()));
        }
    });
}

/// The calendar-queue engine fires the exact same sequence as the
/// heap engine — including FIFO tie-breaking.
#[test]
fn calendar_engine_matches_heap() {
    forall("calendar engine matches heap", 64, |g| {
        let times = g.vec_u64(1, 300, 0, 4_999_999);
        let run = |mut engine: Engine<Vec<(u64, usize)>>| {
            let mut fired = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                engine.schedule_at(
                    SimTime::from_nanos(t),
                    Box::new(move |s, w: &mut Vec<(u64, usize)>| {
                        w.push((s.now().as_nanos(), i));
                    }),
                );
            }
            engine.run(&mut fired);
            fired
        };
        let heap = run(Engine::new());
        let calendar = run(Engine::with_calendar_queue());
        assert_eq!(heap, calendar);
    });
}

/// Calendar queue standalone: pops are globally sorted for any
/// workload, including cascading events.
#[test]
fn calendar_engine_cascading_events() {
    forall("calendar engine cascading events", 64, |g| {
        let seed = g.u64(0, u64::MAX);
        let mut engine: Engine<Vec<u64>> = Engine::with_calendar_queue();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            let t = rng.next_below(1_000);
            let gap = rng.next_below(100_000) + 1;
            engine.schedule_at(
                SimTime::from_nanos(t),
                Box::new(move |s, w: &mut Vec<u64>| {
                    w.push(s.now().as_nanos());
                    s.schedule_in(
                        SimDuration::from_nanos(gap),
                        Box::new(|s, w: &mut Vec<u64>| w.push(s.now().as_nanos())),
                    );
                }),
            );
        }
        let mut fired = Vec::new();
        engine.run(&mut fired);
        assert_eq!(fired.len(), 40);
        assert!(fired.windows(2).all(|w| w[0] <= w[1]));
    });
}

/// Mixed typed events, boxed closures, and slab continuations interleave
/// by (time, insertion order): the fired log is exactly a stable sort of
/// the scheduling plan by time, identical on both queue backends and
/// across same-seed reruns.
#[test]
fn mixed_typed_dyn_workload_is_deterministic() {
    use desim::{EventWorld, Scheduler, TypedEvent};

    #[derive(Default)]
    struct Log(Vec<(u64, usize)>);
    impl EventWorld for Log {
        fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
            match ev {
                TypedEvent::Timer { id } => self.0.push((s.now().as_nanos(), id as usize)),
                other => unreachable!("test posts only timers: {other:?}"),
            }
        }
    }

    forall("mixed typed/dyn workload deterministic", 64, |g| {
        let n = g.usize(1, 150);
        let plan: Vec<(u64, u32)> = (0..n).map(|_| (g.u64(0, 99_999), g.u32(0, 2))).collect();
        let run = |mut engine: Engine<Log>| {
            for (i, &(t, kind)) in plan.iter().enumerate() {
                let at = SimTime::from_nanos(t);
                match kind {
                    0 => engine.post_at(at, TypedEvent::Timer { id: i as u64 }),
                    1 => engine.schedule_at(
                        at,
                        Box::new(move |s, w: &mut Log| w.0.push((s.now().as_nanos(), i))),
                    ),
                    _ => engine.defer_at(
                        at,
                        Box::new(move |s: &mut Scheduler<Log>, w: &mut Log| {
                            w.0.push((s.now().as_nanos(), i));
                        }),
                    ),
                }
            }
            let mut log = Log::default();
            engine.run(&mut log);
            log.0
        };
        let heap = run(Engine::new());
        let calendar = run(Engine::with_calendar_queue());
        let rerun = run(Engine::new());
        let mut expect: Vec<(u64, usize)> =
            plan.iter().enumerate().map(|(i, &(t, _))| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        assert_eq!(heap, expect);
        assert_eq!(heap, calendar);
        assert_eq!(heap, rerun);
    });
}

/// The RNG's bounded generator is uniform enough and in range.
#[test]
fn rng_bounded_in_range() {
    forall("rng bounded in range", 64, |g| {
        let seed = g.u64(0, u64::MAX);
        let bound = g.u64(1, 999);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..200 {
            assert!(rng.next_below(bound) < bound);
        }
    });
}

/// Time arithmetic: (a + d) - a == d and ordering is consistent.
#[test]
fn time_arithmetic_round_trips() {
    forall("time arithmetic round trips", 64, |g| {
        let a = g.u64(0, u64::MAX / 4);
        let d = g.u64(0, u64::MAX / 4);
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        assert_eq!((t + dur) - t, dur);
        assert!(t + dur >= t);
        assert_eq!(t.abs_diff(t + dur), dur);
    });
}
