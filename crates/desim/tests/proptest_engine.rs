//! Property-based tests of the simulation kernel: event ordering,
//! resource FIFO invariants, statistics correctness.

use desim::{Engine, FifoResource, SimDuration, SimTime, SplitMix64, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events fire in non-decreasing time order regardless of the
    /// scheduling order, and all of them fire.
    #[test]
    fn events_fire_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for &t in &times {
            engine.schedule_at(
                SimTime::from_nanos(t),
                Box::new(move |s, w: &mut Vec<u64>| w.push(s.now().as_nanos())),
            );
        }
        let mut fired = Vec::new();
        let end = engine.run(&mut fired);
        prop_assert_eq!(fired.len(), times.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&fired, &sorted);
        prop_assert_eq!(end.as_nanos(), *sorted.last().unwrap());
    }

    /// FIFO resource grants never overlap, preserve request order, and
    /// account busy time exactly.
    #[test]
    fn resource_grants_never_overlap(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        // Requests must arrive in non-decreasing time order, as the
        // engine produces them.
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let mut r = FifoResource::new();
        let mut prev_end = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for &(at, dur) in &sorted {
            let g = r.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
            prop_assert!(g.start >= prev_end, "grants overlap");
            prop_assert!(g.start >= SimTime::from_nanos(at), "served before request");
            prop_assert_eq!(g.end - g.start, SimDuration::from_nanos(dur));
            prev_end = g.end;
            total += SimDuration::from_nanos(dur);
        }
        prop_assert_eq!(r.busy_time(), total);
        prop_assert_eq!(r.grants(), sorted.len() as u64);
        prop_assert!(r.utilization(prev_end) <= 1.0 + f64::EPSILON);
    }

    /// Welford summary matches naive two-pass statistics.
    #[test]
    fn summary_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    /// Merged summaries equal bulk summaries.
    #[test]
    fn summary_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 0..100),
        ys in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let bulk: Summary = xs.iter().chain(&ys).copied().collect();
        let mut merged: Summary = xs.iter().copied().collect();
        merged.merge(&ys.iter().copied().collect());
        prop_assert_eq!(merged.count(), bulk.count());
        if bulk.count() > 0 {
            prop_assert!((merged.mean() - bulk.mean()).abs() < 1e-9 * (1.0 + bulk.mean().abs()));
            prop_assert!((merged.variance() - bulk.variance()).abs() < 1e-6 * (1.0 + bulk.variance()));
        }
    }

    /// The calendar-queue engine fires the exact same sequence as the
    /// heap engine — including FIFO tie-breaking.
    #[test]
    fn calendar_engine_matches_heap(times in prop::collection::vec(0u64..5_000_000, 1..300)) {
        let run = |mut engine: Engine<Vec<(u64, usize)>>| {
            let mut fired = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                engine.schedule_at(
                    SimTime::from_nanos(t),
                    Box::new(move |s, w: &mut Vec<(u64, usize)>| {
                        w.push((s.now().as_nanos(), i));
                    }),
                );
            }
            engine.run(&mut fired);
            fired
        };
        let heap = run(Engine::new());
        let calendar = run(Engine::with_calendar_queue());
        prop_assert_eq!(heap, calendar);
    }

    /// Calendar queue standalone: pops are globally sorted for any
    /// workload, including cascading events.
    #[test]
    fn calendar_engine_cascading_events(seed in any::<u64>()) {
        let mut engine: Engine<Vec<u64>> = Engine::with_calendar_queue();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            let t = rng.next_below(1_000);
            let gap = rng.next_below(100_000) + 1;
            engine.schedule_at(
                SimTime::from_nanos(t),
                Box::new(move |s, w: &mut Vec<u64>| {
                    w.push(s.now().as_nanos());
                    s.schedule_in(
                        SimDuration::from_nanos(gap),
                        Box::new(|s, w: &mut Vec<u64>| w.push(s.now().as_nanos())),
                    );
                }),
            );
        }
        let mut fired = Vec::new();
        engine.run(&mut fired);
        prop_assert_eq!(fired.len(), 40);
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The RNG's bounded generator is uniform enough and in range.
    #[test]
    fn rng_bounded_in_range(seed in any::<u64>(), bound in 1u64..1_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..200 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Time arithmetic: (a + d) - a == d and ordering is consistent.
    #[test]
    fn time_arithmetic_round_trips(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert!(t + dur >= t);
        prop_assert_eq!(t.abs_diff(t + dur), dur);
    }
}
