//! Arbitrary adjacency-list topology with shortest-path routing.
//!
//! Used for unit tests, irregular clusters, and as a reference
//! implementation to cross-check the structured topologies: a `Graph`
//! built with the same edges as a mesh or torus must produce routes of
//! identical length.

use std::collections::VecDeque;

use crate::{LinkId, NodeId, Route, Topology};

/// A directed graph topology. Links are numbered in insertion order.
///
/// Routing is breadth-first shortest path with deterministic tie-breaking
/// (lowest neighbor id first), precomputed per source on first use.
///
/// # Examples
///
/// ```
/// use topo::{Graph, NodeId, Topology};
///
/// // A 3-node ring.
/// let mut g = Graph::new(3);
/// g.add_bidi(NodeId(0), NodeId(1));
/// g.add_bidi(NodeId(1), NodeId(2));
/// g.add_bidi(NodeId(2), NodeId(0));
/// assert_eq!(g.hops(NodeId(0), NodeId(2)), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    /// (from, to) per link id.
    edges: Vec<(NodeId, NodeId)>,
    /// adjacency: node -> [(neighbor, link)]
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no links.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds a unidirectional link and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the link is a self-loop.
    pub fn add_link(&mut self, from: NodeId, to: NodeId) -> LinkId {
        assert!(from.0 < self.n && to.0 < self.n, "endpoint out of range");
        assert_ne!(from, to, "self-loops are not allowed");
        let id = LinkId(self.edges.len());
        self.edges.push((from, to));
        self.adj[from.0].push((to, id));
        id
    }

    /// Adds a pair of opposing links, returning `(forward, backward)` ids.
    pub fn add_bidi(&mut self, a: NodeId, b: NodeId) -> (LinkId, LinkId) {
        (self.add_link(a, b), self.add_link(b, a))
    }

    /// Endpoints `(from, to)` of a link.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        self.edges[l.0]
    }

    /// True when a path exists between every ordered pair of nodes.
    pub fn is_strongly_connected(&self) -> bool {
        (0..self.n).all(|s| {
            let parent = self.bfs(NodeId(s));
            parent
                .iter()
                .enumerate()
                .all(|(d, p)| d == s || p.is_some())
        })
    }

    /// BFS parent links from `src`; index d holds the link used to reach d.
    fn bfs(&self, src: NodeId) -> Vec<Option<LinkId>> {
        let mut parent: Vec<Option<LinkId>> = vec![None; self.n];
        let mut seen = vec![false; self.n];
        seen[src.0] = true;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            let mut nbrs = self.adj[u.0].clone();
            nbrs.sort_unstable_by_key(|&(v, _)| v);
            for (v, l) in nbrs {
                if !seen[v.0] {
                    seen[v.0] = true;
                    parent[v.0] = Some(l);
                    q.push_back(v);
                }
            }
        }
        parent[src.0] = None;
        parent
    }
}

impl Topology for Graph {
    fn nodes(&self) -> usize {
        self.n
    }

    fn links(&self) -> usize {
        self.edges.len()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(src.0 < self.n && dst.0 < self.n, "node out of range");
        if src == dst {
            return Route::local();
        }
        let parent = self.bfs(src);
        let mut rev = Vec::new();
        let mut at = dst;
        while at != src {
            let Some(l) = parent[at.0] else {
                panic!("no route from {src} to {dst}: graph is disconnected");
            };
            rev.push(l);
            at = self.edges[l.0].0;
        }
        rev.reverse();
        Route::from_links(rev)
    }

    fn describe(&self) -> String {
        format!("graph with {} nodes, {} links", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_route_connected;
    use crate::mesh::Mesh2d;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_bidi(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn ring_routes() {
        let g = ring(6);
        assert_eq!(g.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(g.hops(NodeId(0), NodeId(5)), 1, "takes the short way");
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn routes_are_connected() {
        let g = ring(5);
        for s in 0..5 {
            for d in 0..5 {
                let r = g.route(NodeId(s), NodeId(d));
                assert_route_connected(&r, NodeId(s), NodeId(d), |l| g.endpoints(l));
            }
        }
    }

    #[test]
    fn matches_mesh_distances() {
        // A graph with the same edges as a 4x3 mesh gives equal hop counts.
        let mesh = Mesh2d::new(4, 3);
        let mut g = Graph::new(12);
        for y in 0..3usize {
            for x in 0..4usize {
                let n = NodeId(x + 4 * y);
                if x + 1 < 4 {
                    g.add_bidi(n, NodeId(x + 1 + 4 * y));
                }
                if y + 1 < 3 {
                    g.add_bidi(n, NodeId(x + 4 * (y + 1)));
                }
            }
        }
        for s in 0..12 {
            for d in 0..12 {
                assert_eq!(
                    g.hops(NodeId(s), NodeId(d)),
                    mesh.hops(NodeId(s), NodeId(d)),
                    "pair ({s},{d})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_route_panics() {
        let mut g = Graph::new(3);
        g.add_bidi(NodeId(0), NodeId(1));
        g.route(NodeId(0), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Graph::new(2).add_link(NodeId(1), NodeId(1));
    }

    #[test]
    fn connectivity_detects_directed_gaps() {
        let mut g = Graph::new(2);
        g.add_link(NodeId(0), NodeId(1));
        assert!(!g.is_strongly_connected(), "no way back from 1 to 0");
        g.add_link(NodeId(1), NodeId(0));
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn diameter_of_ring() {
        assert_eq!(ring(8).diameter(), 4);
    }
}
