//! 3-D bidirectional torus — the Cray T3D interconnect.
//!
//! The T3D arranges its processing elements in a 3-D torus with
//! dimension-ordered (X, then Y, then Z) wormhole routing, taking the
//! shorter wrap direction in each dimension. Each node has up to six
//! outgoing unidirectional links (±X, ±Y, ±Z).

use crate::{LinkId, NodeId, Route, Topology};

/// Directions out of a torus node, in routing order.
const DIRS: usize = 6; // +x, -x, +y, -y, +z, -z

/// A 3-D torus of `dx × dy × dz` nodes.
///
/// # Examples
///
/// ```
/// use topo::{Torus3d, NodeId, Topology};
///
/// let t = Torus3d::new(4, 4, 4); // the 64-node T3D of the paper
/// assert_eq!(t.nodes(), 64);
/// // The far corner (3,3,3) is one wraparound hop away per dimension:
/// assert_eq!(t.hops(NodeId(0), NodeId(63)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus3d {
    dx: usize,
    dy: usize,
    dz: usize,
}

impl Torus3d {
    /// Creates a torus with the given dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(dx: usize, dy: usize, dz: usize) -> Self {
        assert!(dx > 0 && dy > 0 && dz > 0, "dimensions must be positive");
        Torus3d { dx, dy, dz }
    }

    /// Picks a near-cubic shape for `p` nodes, the way T3D partitions were
    /// allocated (e.g. 64 → 4×4×4, 128 → 8×4×4, 32 → 4×4×2).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn for_nodes(p: usize) -> Self {
        assert!(p > 0, "node count must be positive");
        let mut best: Option<(usize, usize, usize)> = None;
        for a in 1..=p {
            if !p.is_multiple_of(a) {
                continue;
            }
            let rest = p / a;
            for b in 1..=rest {
                if !rest.is_multiple_of(b) {
                    continue;
                }
                let c = rest / b;
                let cand = (a.max(b).max(c), a + b + c, a);
                let better = match best {
                    None => true,
                    Some((bx, by, bz)) => cand < (bx.max(by).max(bz), bx + by + bz, bx),
                };
                if better {
                    best = Some((a, b, c));
                }
            }
        }
        let (a, b, c) = best.expect("factorization exists");
        // Largest dimension first, matching T3D cabinet layouts.
        let mut dims = [a, b, c];
        dims.sort_unstable_by(|x, y| y.cmp(x));
        Torus3d::new(dims[0], dims[1], dims[2])
    }

    /// Dimension sizes `(dx, dy, dz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.dx, self.dy, self.dz)
    }

    fn coords(&self, n: NodeId) -> (usize, usize, usize) {
        let i = n.0;
        (
            i % self.dx,
            (i / self.dx) % self.dy,
            i / (self.dx * self.dy),
        )
    }

    fn node_at(&self, x: usize, y: usize, z: usize) -> NodeId {
        NodeId(x + self.dx * (y + self.dy * z))
    }

    fn link(&self, from: NodeId, dir: usize) -> LinkId {
        LinkId(from.0 * DIRS + dir)
    }

    /// Endpoints of a link id — inverse of the id scheme, for validation.
    pub fn endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        let from = NodeId(l.0 / DIRS);
        let dir = l.0 % DIRS;
        let (x, y, z) = self.coords(from);
        let to = match dir {
            0 => self.node_at((x + 1) % self.dx, y, z),
            1 => self.node_at((x + self.dx - 1) % self.dx, y, z),
            2 => self.node_at(x, (y + 1) % self.dy, z),
            3 => self.node_at(x, (y + self.dy - 1) % self.dy, z),
            4 => self.node_at(x, y, (z + 1) % self.dz),
            _ => self.node_at(x, y, (z + self.dz - 1) % self.dz),
        };
        (from, to)
    }

    /// Routes one dimension: appends links walking `from` along `dim`
    /// toward coordinate `target`, returning the arrival node.
    fn route_dim(
        &self,
        route: &mut Vec<LinkId>,
        mut at: NodeId,
        dim: usize,
        target: usize,
    ) -> NodeId {
        let size = [self.dx, self.dy, self.dz][dim];
        let coord = |n: NodeId, t: &Self| -> usize {
            let (x, y, z) = t.coords(n);
            [x, y, z][dim]
        };
        let cur = coord(at, self);
        if cur == target {
            return at;
        }
        let fwd = (target + size - cur) % size;
        let bwd = (cur + size - target) % size;
        // Shorter wrap direction; ties go positive (deterministic).
        let (steps, dir) = if fwd <= bwd {
            (fwd, dim * 2)
        } else {
            (bwd, dim * 2 + 1)
        };
        for _ in 0..steps {
            let l = self.link(at, dir);
            route.push(l);
            at = self.endpoints(l).1;
        }
        at
    }
}

impl Topology for Torus3d {
    fn nodes(&self) -> usize {
        self.dx * self.dy * self.dz
    }

    fn links(&self) -> usize {
        // Dense id space with one slot per (node, direction); slots along
        // size-1 dimensions are never routed over.
        self.nodes() * DIRS
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(
            src.0 < self.nodes() && dst.0 < self.nodes(),
            "node out of range"
        );
        if src == dst {
            return Route::local();
        }
        let (tx, ty, tz) = self.coords(dst);
        let mut links = Vec::new();
        let mut at = src;
        at = self.route_dim(&mut links, at, 0, tx);
        at = self.route_dim(&mut links, at, 1, ty);
        let end = self.route_dim(&mut links, at, 2, tz);
        debug_assert_eq!(end, dst);
        Route::from_links(links)
    }

    fn describe(&self) -> String {
        format!("3-D torus {}x{}x{}", self.dx, self.dy, self.dz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_route_connected;

    #[test]
    fn shapes_for_common_sizes() {
        assert_eq!(Torus3d::for_nodes(64).dims(), (4, 4, 4));
        assert_eq!(Torus3d::for_nodes(8).dims(), (2, 2, 2));
        assert_eq!(Torus3d::for_nodes(2).dims(), (2, 1, 1));
        assert_eq!(Torus3d::for_nodes(1).dims(), (1, 1, 1));
        let d128 = Torus3d::for_nodes(128).dims();
        assert_eq!(d128.0 * d128.1 * d128.2, 128);
        assert!(d128.0 <= 8, "near-cubic: {d128:?}");
    }

    #[test]
    fn wraparound_shortens_routes() {
        let t = Torus3d::new(8, 1, 1);
        // 0 -> 7 is one hop backwards around the ring, not 7 forward.
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 4); // tie: half way
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 3);
    }

    #[test]
    fn routes_are_connected() {
        let t = Torus3d::new(4, 3, 2);
        for s in 0..t.nodes() {
            for d in 0..t.nodes() {
                let r = t.route(NodeId(s), NodeId(d));
                assert_route_connected(&r, NodeId(s), NodeId(d), |l| t.endpoints(l));
            }
        }
    }

    #[test]
    fn route_is_dimension_ordered() {
        let t = Torus3d::new(4, 4, 4);
        let r = t.route(NodeId(0), NodeId(t.node_at(1, 1, 1).0));
        // Each hop's direction dimension must be non-decreasing.
        let dims: Vec<usize> = r.links().iter().map(|l| (l.0 % DIRS) / 2).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted);
    }

    #[test]
    fn diameter_of_cube() {
        let t = Torus3d::new(4, 4, 4);
        assert_eq!(t.diameter(), 6); // 2 per dimension with wraparound
        assert!(t.mean_distance() > 0.0);
    }

    #[test]
    fn self_route_is_local() {
        let t = Torus3d::new(2, 2, 2);
        assert!(t.route(NodeId(3), NodeId(3)).is_local());
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        Torus3d::new(2, 2, 2).route(NodeId(0), NodeId(8));
    }

    #[test]
    fn describes_itself() {
        assert_eq!(Torus3d::new(4, 4, 2).describe(), "3-D torus 4x4x2");
    }
}
