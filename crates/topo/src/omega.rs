//! Multistage Omega network — the IBM SP2 interconnect.
//!
//! The SP2's High-Performance Switch is a bidirectional multistage network
//! built from Vulcan 8-port switch chips. We model it as a classical
//! k-ary Omega network (k = 4 by default, matching the 4-way dilation of
//! the Vulcan boards): `s = ceil(log_k p)` switch stages, each preceded by
//! a perfect k-shuffle, with destination-digit self-routing.
//!
//! Links are the *wire columns*: the injection wire into stage 0 plus the
//! output wire of every stage (the last column delivers to the node).
//! Two messages occupying the same wire in the same column at the same
//! time contend — the Omega network's internal blocking.

use crate::{LinkId, NodeId, Route, Topology};

/// A k-ary Omega network over `p` endpoints (padded up to a power of k).
///
/// # Examples
///
/// ```
/// use topo::{Omega, NodeId, Topology};
///
/// let net = Omega::new(64, 4);
/// assert_eq!(net.stages(), 3); // log_4(64)
/// // Every route crosses stages+1 wire columns:
/// assert_eq!(net.hops(NodeId(0), NodeId(63)), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Omega {
    nodes: usize,
    padded: usize,
    k: usize,
    stages: usize,
}

impl Omega {
    /// Creates an Omega network for `nodes` endpoints with `k`-port
    /// switches.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `k < 2`.
    pub fn new(nodes: usize, k: usize) -> Self {
        assert!(nodes > 0, "node count must be positive");
        assert!(k >= 2, "switch radix must be at least 2");
        let mut padded = k;
        let mut stages = 1;
        while padded < nodes {
            padded *= k;
            stages += 1;
        }
        Omega {
            nodes,
            padded,
            k,
            stages,
        }
    }

    /// Creates the SP2 configuration: radix-4 switches.
    pub fn sp2(nodes: usize) -> Self {
        Omega::new(nodes, 4)
    }

    /// Number of switch stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        self.k
    }

    /// Endpoint count padded to a power of the radix.
    pub fn padded(&self) -> usize {
        self.padded
    }

    /// Rotates the base-k digit representation of `pos` left by one digit
    /// (the perfect k-shuffle).
    fn shuffle(&self, pos: usize) -> usize {
        let msd = pos / (self.padded / self.k);
        (pos * self.k) % self.padded + msd
    }

    /// The base-k digit of `x` at position `i` counting from the most
    /// significant of `stages` digits.
    fn digit(&self, x: usize, i: usize) -> usize {
        let shift = self.stages - 1 - i;
        (x / self.k.pow(shift as u32)) % self.k
    }

    fn wire_link(&self, column: usize, wire: usize) -> LinkId {
        LinkId(column * self.padded + wire)
    }

    /// The wire a route occupies in each column, ending at the
    /// destination's delivery wire. Exposed for tests.
    pub fn wire_trace(&self, src: NodeId, dst: NodeId) -> Vec<usize> {
        let mut pos = src.0;
        let mut trace = vec![pos];
        for t in 0..self.stages {
            pos = self.shuffle(pos);
            let sw = pos / self.k;
            pos = sw * self.k + self.digit(dst.0, t);
            trace.push(pos);
        }
        trace
    }
}

impl Topology for Omega {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn links(&self) -> usize {
        (self.stages + 1) * self.padded
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "node out of range"
        );
        if src == dst {
            return Route::local();
        }
        let trace = self.wire_trace(src, dst);
        let links = trace
            .iter()
            .enumerate()
            .map(|(col, &wire)| self.wire_link(col, wire))
            .collect();
        Route::from_links(links)
    }

    fn describe(&self) -> String {
        format!(
            "Omega {} endpoints, {}-ary, {} stages",
            self.nodes, self.k, self.stages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts() {
        assert_eq!(Omega::new(2, 4).stages(), 1);
        assert_eq!(Omega::new(4, 4).stages(), 1);
        assert_eq!(Omega::new(5, 4).stages(), 2);
        assert_eq!(Omega::new(16, 4).stages(), 2);
        assert_eq!(Omega::new(64, 4).stages(), 3);
        assert_eq!(Omega::new(128, 4).stages(), 4);
        assert_eq!(Omega::new(8, 2).stages(), 3);
    }

    #[test]
    fn routes_terminate_at_destination_wire() {
        let net = Omega::new(64, 4);
        for s in 0..net.nodes() {
            for d in 0..net.nodes() {
                let trace = net.wire_trace(NodeId(s), NodeId(d));
                assert_eq!(*trace.last().unwrap(), d, "src {s} dst {d}");
                assert_eq!(trace[0], s);
            }
        }
    }

    #[test]
    fn route_length_is_uniform() {
        let net = Omega::sp2(32);
        for s in 0..32 {
            for d in 0..32 {
                if s != d {
                    assert_eq!(net.hops(NodeId(s), NodeId(d)), net.stages() + 1);
                }
            }
        }
    }

    #[test]
    fn binary_omega_matches_textbook() {
        // The classic 8-endpoint, 2-ary Omega: route 1 -> 6 (=0b110).
        let net = Omega::new(8, 2);
        let trace = net.wire_trace(NodeId(1), NodeId(6));
        // shuffle(001)=010, digit0(110)=1 -> wire 011
        // shuffle(011)=110, digit1=1      -> wire 111
        // shuffle(111)=111, digit2=0      -> wire 110 = 6
        assert_eq!(trace, vec![1, 3, 7, 6]);
    }

    #[test]
    fn distinct_link_ids_per_column() {
        let net = Omega::new(16, 4);
        let r = net.route(NodeId(3), NodeId(12));
        let mut cols: Vec<usize> = r.links().iter().map(|l| l.0 / net.padded()).collect();
        cols.dedup();
        assert_eq!(cols, vec![0, 1, 2], "one link per wire column");
        assert!(r.links().iter().all(|l| l.0 < net.links()));
    }

    #[test]
    fn self_route_is_local() {
        let net = Omega::sp2(8);
        assert!(net.route(NodeId(5), NodeId(5)).is_local());
    }

    #[test]
    fn blocking_pairs_share_wires() {
        // Omega networks are blocking: some pairs of routes with distinct
        // sources and destinations still share an internal wire.
        let net = Omega::new(8, 2);
        // Concretely: sources 0 (000) and 4 (100) share their low two
        // digits, destinations 0 and 1 share their top digit, so the two
        // routes collide on the wire after stage 0.
        let r1 = net.route(NodeId(0), NodeId(0));
        let r2 = net.route(NodeId(4), NodeId(1));
        let shared = r1
            .links()
            .iter()
            .any(|l| l.0 / net.padded() != 0 && r2.links().contains(l));
        // r1 is local (src == dst) — use distinct endpoints instead.
        let r1 = net.route(NodeId(0), NodeId(2));
        let r2 = net.route(NodeId(4), NodeId(3));
        let shared = shared
            || r1
                .links()
                .iter()
                .any(|l| l.0 / net.padded() != 0 && r2.links().contains(l));
        // Exhaustive fallback: some quadruple must conflict internally.
        let mut found = shared;
        if !found {
            'outer: for s1 in 0..8usize {
                for d1 in 0..8usize {
                    for s2 in 0..8usize {
                        for d2 in 0..8usize {
                            if s1 == s2 || d1 == d2 || s1 == d1 || s2 == d2 {
                                continue;
                            }
                            let r1 = net.route(NodeId(s1), NodeId(d1));
                            let r2 = net.route(NodeId(s2), NodeId(d2));
                            if r1
                                .links()
                                .iter()
                                .any(|l| l.0 / net.padded() != 0 && r2.links().contains(l))
                            {
                                found = true;
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        assert!(found, "expected at least one internal conflict");
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        Omega::new(4, 4).route(NodeId(0), NodeId(4));
    }

    #[test]
    fn describes_itself() {
        assert_eq!(
            Omega::new(64, 4).describe(),
            "Omega 64 endpoints, 4-ary, 3 stages"
        );
    }
}
