//! 2-D mesh — the Intel Paragon interconnect.
//!
//! The Paragon XP/S connects nodes in a 2-D mesh with deterministic XY
//! (dimension-ordered) wormhole routing: a message first travels along X
//! to the destination column, then along Y. There is no wraparound, so
//! edge nodes have fewer links and the center of the mesh carries more
//! traffic — the source of the Paragon's contention behaviour at scale.

use crate::{LinkId, NodeId, Route, Topology};

const DIRS: usize = 4; // +x, -x, +y, -y

/// A `cols × rows` 2-D mesh.
///
/// # Examples
///
/// ```
/// use topo::{Mesh2d, NodeId, Topology};
///
/// let m = Mesh2d::new(8, 8);
/// assert_eq!(m.nodes(), 64);
/// assert_eq!(m.diameter(), 14); // (8-1) + (8-1)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh2d {
    cols: usize,
    rows: usize,
}

impl Mesh2d {
    /// Creates a mesh with the given column and row counts.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "dimensions must be positive");
        Mesh2d { cols, rows }
    }

    /// Picks a near-square shape for `p` nodes, mirroring how Paragon
    /// partitions were allocated (e.g. 64 → 8×8, 32 → 8×4, 128 → 16×8).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn for_nodes(p: usize) -> Self {
        assert!(p > 0, "node count must be positive");
        let mut best = (p, 1);
        for r in 1..=p {
            if !p.is_multiple_of(r) {
                continue;
            }
            let c = p / r;
            if c < r {
                break;
            }
            best = (c, r);
        }
        Mesh2d::new(best.0, best.1)
    }

    /// Mesh shape `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn coords(&self, n: NodeId) -> (usize, usize) {
        (n.0 % self.cols, n.0 / self.cols)
    }

    fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId(x + y * self.cols)
    }

    fn link(&self, from: NodeId, dir: usize) -> LinkId {
        LinkId(from.0 * DIRS + dir)
    }

    /// Endpoints of a link id, for validation.
    ///
    /// # Panics
    ///
    /// Panics if the id denotes a link off the edge of the mesh.
    pub fn endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        let from = NodeId(l.0 / DIRS);
        let dir = l.0 % DIRS;
        let (x, y) = self.coords(from);
        let to = match dir {
            0 => {
                assert!(x + 1 < self.cols, "+x link off mesh edge");
                self.node_at(x + 1, y)
            }
            1 => {
                assert!(x > 0, "-x link off mesh edge");
                self.node_at(x - 1, y)
            }
            2 => {
                assert!(y + 1 < self.rows, "+y link off mesh edge");
                self.node_at(x, y + 1)
            }
            _ => {
                assert!(y > 0, "-y link off mesh edge");
                self.node_at(x, y - 1)
            }
        };
        (from, to)
    }
}

impl Topology for Mesh2d {
    fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    fn links(&self) -> usize {
        // Dense slot per (node, direction); edge-exiting slots are unused.
        self.nodes() * DIRS
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(
            src.0 < self.nodes() && dst.0 < self.nodes(),
            "node out of range"
        );
        if src == dst {
            return Route::local();
        }
        let (mut x, mut y) = self.coords(src);
        let (tx, ty) = self.coords(dst);
        let mut links = Vec::with_capacity(x.abs_diff(tx) + y.abs_diff(ty));
        let mut at = src;
        while x != tx {
            let dir = if tx > x { 0 } else { 1 };
            links.push(self.link(at, dir));
            x = if tx > x { x + 1 } else { x - 1 };
            at = self.node_at(x, y);
        }
        while y != ty {
            let dir = if ty > y { 2 } else { 3 };
            links.push(self.link(at, dir));
            y = if ty > y { y + 1 } else { y - 1 };
            at = self.node_at(x, y);
        }
        debug_assert_eq!(at, dst);
        Route::from_links(links)
    }

    fn describe(&self) -> String {
        format!("2-D mesh {}x{}", self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_route_connected;

    #[test]
    fn shapes_for_common_sizes() {
        assert_eq!(Mesh2d::for_nodes(64).dims(), (8, 8));
        assert_eq!(Mesh2d::for_nodes(32).dims(), (8, 4));
        assert_eq!(Mesh2d::for_nodes(128).dims(), (16, 8));
        assert_eq!(Mesh2d::for_nodes(2).dims(), (2, 1));
        assert_eq!(Mesh2d::for_nodes(7).dims(), (7, 1));
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = Mesh2d::new(4, 4);
        let r = m.route(NodeId(0), NodeId(15)); // (0,0) -> (3,3)
        let dims: Vec<usize> = r.links().iter().map(|l| (l.0 % DIRS) / 2).collect();
        assert_eq!(dims, vec![0, 0, 0, 1, 1, 1], "all X hops before Y hops");
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh2d::new(8, 8);
        assert_eq!(m.hops(NodeId(0), NodeId(7)), 7);
        assert_eq!(m.hops(NodeId(0), NodeId(56)), 7);
        assert_eq!(m.hops(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.hops(NodeId(9), NodeId(9)), 0);
    }

    #[test]
    fn no_wraparound() {
        let m = Mesh2d::new(8, 1);
        assert_eq!(m.hops(NodeId(0), NodeId(7)), 7, "must walk the full row");
    }

    #[test]
    fn routes_are_connected() {
        let m = Mesh2d::new(5, 3);
        for s in 0..m.nodes() {
            for d in 0..m.nodes() {
                let r = m.route(NodeId(s), NodeId(d));
                assert_route_connected(&r, NodeId(s), NodeId(d), |l| m.endpoints(l));
            }
        }
    }

    #[test]
    fn center_links_are_shared() {
        // In a 1x5 row, the middle link is used by several crossing routes.
        let m = Mesh2d::new(5, 1);
        let middle: Vec<_> = m.route(NodeId(1), NodeId(3)).links().to_vec();
        let long: Vec<_> = m.route(NodeId(0), NodeId(4)).links().to_vec();
        assert!(middle.iter().all(|l| long.contains(l)));
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        Mesh2d::new(2, 2).route(NodeId(4), NodeId(0));
    }

    #[test]
    fn describes_itself() {
        assert_eq!(Mesh2d::new(16, 8).describe(), "2-D mesh 16x8");
    }
}
