//! Binary hypercube — the classic 1980s MPP interconnect.
//!
//! Not one of the paper's three machines, but the natural "what if"
//! topology for the era (nCUBE, early iPSC): `2^d` nodes, neighbours
//! differ in one address bit, and e-cube (dimension-ordered) routing
//! flips bits lowest-first. Useful with
//! [`MachineBuilder`](../netmodel/struct.MachineBuilder.html)-style
//! custom machines to ask how the paper's collectives would fare on a
//! richer topology.

use crate::{LinkId, NodeId, Route, Topology};

/// A `2^dimensions`-node binary hypercube with e-cube routing.
///
/// # Examples
///
/// ```
/// use topo::{Hypercube, NodeId, Topology};
///
/// let h = Hypercube::new(6); // 64 nodes
/// assert_eq!(h.nodes(), 64);
/// assert_eq!(h.diameter(), 6);
/// // Distance equals Hamming distance:
/// assert_eq!(h.hops(NodeId(0b000000), NodeId(0b101101)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    dims: u32,
}

impl Hypercube {
    /// Creates a hypercube of the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dims > 20` (over a million nodes — certainly a bug).
    pub fn new(dims: u32) -> Self {
        assert!(dims <= 20, "hypercube dimension {dims} is unreasonable");
        Hypercube { dims }
    }

    /// The smallest hypercube holding `p` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn for_nodes(p: usize) -> Self {
        assert!(p > 0, "node count must be positive");
        let dims = (p.max(1) as u64).next_power_of_two().trailing_zeros();
        Hypercube::new(dims)
    }

    /// Dimensionality.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    fn link(&self, from: NodeId, dim: u32) -> LinkId {
        LinkId(from.0 * self.dims as usize + dim as usize)
    }

    /// Endpoints of a link id, for validation.
    pub fn endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        let from = NodeId(l.0 / self.dims as usize);
        let dim = (l.0 % self.dims as usize) as u32;
        (from, NodeId(from.0 ^ (1 << dim)))
    }
}

impl Topology for Hypercube {
    fn nodes(&self) -> usize {
        1 << self.dims
    }

    fn links(&self) -> usize {
        self.nodes() * self.dims as usize
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(
            src.0 < self.nodes() && dst.0 < self.nodes(),
            "node out of range"
        );
        let mut links = Vec::new();
        let mut at = src;
        // E-cube: correct differing bits from lowest to highest.
        for dim in 0..self.dims {
            if (at.0 ^ dst.0) & (1 << dim) != 0 {
                let l = self.link(at, dim);
                links.push(l);
                at = NodeId(at.0 ^ (1 << dim));
            }
        }
        debug_assert_eq!(at, dst);
        Route::from_links(links)
    }

    fn describe(&self) -> String {
        format!("{}-cube ({} nodes)", self.dims, self.nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_route_connected;

    #[test]
    fn distance_is_hamming() {
        let h = Hypercube::new(5);
        for s in 0..32usize {
            for d in 0..32usize {
                assert_eq!(
                    h.hops(NodeId(s), NodeId(d)),
                    (s ^ d).count_ones() as usize,
                    "({s},{d})"
                );
            }
        }
    }

    #[test]
    fn routes_are_connected() {
        let h = Hypercube::new(4);
        for s in 0..16 {
            for d in 0..16 {
                let r = h.route(NodeId(s), NodeId(d));
                assert_route_connected(&r, NodeId(s), NodeId(d), |l| h.endpoints(l));
            }
        }
    }

    #[test]
    fn ecube_fixes_low_bits_first() {
        let h = Hypercube::new(4);
        let r = h.route(NodeId(0), NodeId(0b1011));
        let dims: Vec<usize> = r.links().iter().map(|l| l.0 % 4).collect();
        assert_eq!(dims, vec![0, 1, 3]);
    }

    #[test]
    fn for_nodes_rounds_up() {
        assert_eq!(Hypercube::for_nodes(64).dims(), 6);
        assert_eq!(Hypercube::for_nodes(65).dims(), 7);
        assert_eq!(Hypercube::for_nodes(1).dims(), 0);
        assert_eq!(Hypercube::for_nodes(1).nodes(), 1);
    }

    #[test]
    fn diameter_and_degree() {
        let h = Hypercube::new(6);
        assert_eq!(h.diameter(), 6);
        assert_eq!(h.links(), 64 * 6);
        // Mean distance of a d-cube is d/2.
        assert!((h.mean_distance() - 3.0 * 64.0 / 63.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unreasonable")]
    fn huge_cube_panics() {
        Hypercube::new(30);
    }
}
