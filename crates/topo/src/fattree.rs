//! K-ary fat tree with up/down routing.
//!
//! The SP2's High-Performance Switch is, more precisely than an Omega
//! network, a *bidirectional* multistage network: packets climb to the
//! nearest common ancestor switch and descend. We model a k-ary fat
//! tree: leaves are nodes, each internal level groups `k` subtrees, and
//! every tree edge is a pair of opposing links whose capacity is
//! constant per level (the "fattening" is modeled as one aggregated link
//! per edge, matching how the wire model charges serialization).
//!
//! Used as an alternative SP2 interconnect in the robustness ablation:
//! if conclusions survive swapping Omega ↔ fat tree, they do not hinge
//! on the indirect-network abstraction.

use crate::{LinkId, NodeId, Route, Topology};

/// A k-ary fat tree over `p` leaves (padded to a power of `k`).
///
/// Link ids: for each level `l ∈ 0..levels` and each subtree position,
/// an *up* link and a *down* link. Up links come first.
///
/// # Examples
///
/// ```
/// use topo::{FatTree, NodeId, Topology};
///
/// let ft = FatTree::new(64, 4);
/// assert_eq!(ft.levels(), 3);
/// // Adjacent leaves share the level-0 switch: 2 hops (up + down).
/// assert_eq!(ft.hops(NodeId(0), NodeId(1)), 2);
/// // Opposite halves meet at the root: 6 hops.
/// assert_eq!(ft.hops(NodeId(0), NodeId(63)), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTree {
    nodes: usize,
    padded: usize,
    k: usize,
    levels: usize,
}

impl FatTree {
    /// Creates a fat tree for `nodes` leaves with radix-`k` switches.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `k < 2`.
    pub fn new(nodes: usize, k: usize) -> Self {
        assert!(nodes > 0, "node count must be positive");
        assert!(k >= 2, "switch radix must be at least 2");
        let mut padded = k;
        let mut levels = 1;
        while padded < nodes {
            padded *= k;
            levels += 1;
        }
        FatTree {
            nodes,
            padded,
            k,
            levels,
        }
    }

    /// Number of switch levels (tree height).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        self.k
    }

    /// The level of the lowest common ancestor switch of two leaves
    /// (0 = leaf switch). Exposed for tests.
    pub fn lca_level(&self, a: NodeId, b: NodeId) -> usize {
        let mut level = 0;
        let (mut x, mut y) = (a.0, b.0);
        loop {
            x /= self.k;
            y /= self.k;
            if x == y {
                return level;
            }
            level += 1;
        }
    }

    /// Up link out of the level-`level` switch position containing leaf
    /// `n` (child position `n / k^level`) toward level `level + 1`.
    fn up_link(&self, n: usize, level: usize) -> LinkId {
        let pos = n / self.k.pow(level as u32);
        LinkId(self.level_offset(level) + pos)
    }

    fn down_link(&self, n: usize, level: usize) -> LinkId {
        let pos = n / self.k.pow(level as u32);
        LinkId(self.level_offset(level) + self.level_width(level) + pos)
    }

    /// Number of up links at `level` (== child positions).
    fn level_width(&self, level: usize) -> usize {
        self.padded / self.k.pow(level as u32)
    }

    /// Dense offset of `level`'s link block (up then down per level).
    fn level_offset(&self, level: usize) -> usize {
        let mut off = 0;
        for l in 0..level {
            off += 2 * self.level_width(l);
        }
        off
    }

    /// The level a link id belongs to.
    fn link_level(&self, l: LinkId) -> usize {
        let mut level = 0;
        let mut off = 0;
        loop {
            let width = 2 * self.level_width(level);
            if l.0 < off + width {
                return level;
            }
            off += width;
            level += 1;
        }
    }
}

impl Topology for FatTree {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn links(&self) -> usize {
        (0..self.levels).map(|l| 2 * self.level_width(l)).sum()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "node out of range"
        );
        if src == dst {
            return Route::local();
        }
        let turn = self.lca_level(src, dst);
        let mut links = Vec::with_capacity(2 * (turn + 1));
        // Climb from the source leaf to the LCA…
        for level in 0..=turn {
            links.push(self.up_link(src.0, level));
        }
        // …then descend to the destination leaf.
        for level in (0..=turn).rev() {
            links.push(self.down_link(dst.0, level));
        }
        Route::from_links(links)
    }

    fn describe(&self) -> String {
        format!(
            "fat tree, {} leaves, {}-ary, {} levels",
            self.nodes, self.k, self.levels
        )
    }

    /// The "fattening": a level-`l` edge aggregates the bandwidth of the
    /// `k^l` base links below it, keeping full bisection bandwidth.
    fn link_capacity(&self, l: LinkId) -> f64 {
        self.k.pow(self.link_level(l) as u32) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counts_follow_lca() {
        let ft = FatTree::new(64, 4);
        // Same level-0 switch.
        assert_eq!(ft.hops(NodeId(0), NodeId(3)), 2);
        // Same level-1 group.
        assert_eq!(ft.hops(NodeId(0), NodeId(15)), 4);
        // Root crossing.
        assert_eq!(ft.hops(NodeId(0), NodeId(16)), 6);
        assert_eq!(ft.diameter(), 6);
    }

    #[test]
    fn link_ids_dense_and_distinct() {
        let ft = FatTree::new(16, 4);
        // 2 levels: level 0 has 16 up + 16 down, level 1 has 4 + 4.
        assert_eq!(ft.links(), 40);
        let mut seen = std::collections::HashSet::new();
        for s in 0..16 {
            for d in 0..16 {
                for l in ft.route(NodeId(s), NodeId(d)).links() {
                    assert!(l.0 < ft.links(), "dense: {l}");
                    seen.insert(*l);
                }
            }
        }
        assert!(seen.len() > 30, "most links exercised: {}", seen.len());
    }

    #[test]
    fn up_down_structure() {
        let ft = FatTree::new(16, 4);
        let r = ft.route(NodeId(0), NodeId(15));
        // 2 up then 2 down; up links precede down links within a level's
        // id block.
        assert_eq!(r.hops(), 4);
        let ids: Vec<usize> = r.links().iter().map(|l| l.0).collect();
        assert!(ids[0] < 16, "level-0 up block");
        assert!(ids[1] >= 32 && ids[1] < 36, "level-1 up block");
        assert!(ids[2] >= 36 && ids[2] < 40, "level-1 down block");
        assert!((16..32).contains(&ids[3]), "level-0 down block");
    }

    #[test]
    fn shared_uplinks_model_contention() {
        // Leaves 0 and 1 share their level-0 up link: simultaneous
        // traffic out of the same leaf switch serializes there.
        let ft = FatTree::new(16, 4);
        let a = ft.route(NodeId(0), NodeId(8));
        let b = ft.route(NodeId(1), NodeId(9));
        assert_eq!(a.links()[1], b.links()[1], "shared level-1 up link");
    }

    #[test]
    fn lca_levels() {
        let ft = FatTree::new(64, 4);
        assert_eq!(ft.lca_level(NodeId(0), NodeId(1)), 0);
        assert_eq!(ft.lca_level(NodeId(0), NodeId(5)), 1);
        assert_eq!(ft.lca_level(NodeId(0), NodeId(63)), 2);
    }

    #[test]
    fn non_power_sizes_pad() {
        let ft = FatTree::new(48, 4);
        assert_eq!(ft.nodes(), 48);
        assert_eq!(ft.levels(), 3);
        for s in [0usize, 13, 47] {
            for d in [0usize, 13, 47] {
                let r = ft.route(NodeId(s), NodeId(d));
                if s == d {
                    assert!(r.is_local());
                } else {
                    assert!(r.hops() >= 2 && r.hops() <= 6);
                }
            }
        }
    }

    #[test]
    fn capacity_fattens_with_level() {
        let ft = FatTree::new(64, 4);
        let r = ft.route(NodeId(0), NodeId(63));
        let caps: Vec<f64> = r.links().iter().map(|&l| ft.link_capacity(l)).collect();
        assert_eq!(caps, vec![1.0, 4.0, 16.0, 16.0, 4.0, 1.0]);
        // Bisection: the root level carries padded/k edges of capacity
        // k^(levels-1) each = full leaf bandwidth.
        let root_up = ft.route(NodeId(0), NodeId(63)).links()[2];
        assert_eq!(ft.link_capacity(root_up) * (ft.level_width(2) as f64), 64.0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        FatTree::new(8, 2).route(NodeId(0), NodeId(8));
    }
}
