//! # topo — interconnect topologies and routing
//!
//! Models the three interconnects of the HPCA'97 study:
//!
//! * [`Torus3d`] — the Cray T3D's 3-D bidirectional torus with
//!   dimension-ordered routing;
//! * [`Mesh2d`] — the Intel Paragon's 2-D mesh with XY (dimension-ordered)
//!   wormhole routing;
//! * [`Omega`] — the IBM SP2's multistage switch network (Vulcan switch
//!   boards), modeled as a k-ary Omega network with self-routing;
//! * [`Graph`] — an arbitrary adjacency-list topology with shortest-path
//!   routing, used for tests and custom machines;
//! * [`Crossbar`] — an ideal contention-free single-hop network, the
//!   "perfect interconnect" baseline for ablations;
//! * [`Hypercube`] — the classic binary e-cube for what-if studies;
//! * [`FatTree`] — up/down-routed k-ary fat tree, the alternative SP2
//!   interconnect abstraction used in the robustness ablation.
//!
//! Every topology enumerates its unidirectional links with dense ids so
//! that the network model can attach one contention
//! [`FifoResource`](desim::resource::FifoResource) per link, and exposes
//! deterministic routes as link-id sequences.
//!
//! # Examples
//!
//! ```
//! use topo::{Mesh2d, NodeId, Topology};
//!
//! let mesh = Mesh2d::new(4, 4);
//! let route = mesh.route(NodeId(0), NodeId(15));
//! assert_eq!(route.hops(), 6); // 3 hops in X then 3 in Y
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod crossbar;
pub mod fattree;
pub mod graph;
pub mod hypercube;
pub mod mesh;
pub mod omega;
pub mod torus;

pub use crossbar::Crossbar;
pub use fattree::FatTree;
pub use graph::Graph;
pub use hypercube::Hypercube;
pub use mesh::Mesh2d;
pub use omega::Omega;
pub use torus::Torus3d;

use core::fmt;

/// A node (processing element) index within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// A unidirectional link index within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A route through the network: the ordered unidirectional links a message
/// traverses from source to destination.
///
/// An intra-node route (source == destination) has no links.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Route {
    links: Vec<LinkId>,
}

impl Route {
    /// A route with no network hops (local delivery).
    pub fn local() -> Self {
        Route { links: Vec::new() }
    }

    /// Builds a route from an ordered link sequence.
    pub fn from_links(links: Vec<LinkId>) -> Self {
        Route { links }
    }

    /// Number of link traversals (hops).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// True for a local (zero-hop) route.
    pub fn is_local(&self) -> bool {
        self.links.is_empty()
    }

    /// The link sequence.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }
}

impl<'a> IntoIterator for &'a Route {
    type Item = LinkId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, LinkId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.links.iter().copied()
    }
}

/// A network topology: a set of nodes joined by unidirectional links, with
/// a deterministic routing function.
///
/// This trait is object-safe; machine models hold `Box<dyn Topology>`.
pub trait Topology {
    /// Number of processing nodes.
    fn nodes(&self) -> usize;

    /// Number of unidirectional links (dense id space `0..links()`).
    fn links(&self) -> usize;

    /// The deterministic route from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    fn route(&self, src: NodeId, dst: NodeId) -> Route;

    /// Short human-readable description, e.g. `"3-D torus 4x4x4"`.
    fn describe(&self) -> String;

    /// Relative capacity of a link (1.0 = one base link). Fat topologies
    /// override this for their aggregated upper-level links; the wire
    /// model divides a message's link-occupancy time by it.
    fn link_capacity(&self, _link: LinkId) -> f64 {
        1.0
    }

    /// Hop count between two nodes (route length).
    fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.route(src, dst).hops()
    }

    /// Largest hop count over all node pairs. O(n^2 · route); for analysis
    /// and tests, not hot paths.
    fn diameter(&self) -> usize {
        let n = self.nodes();
        let mut best = 0;
        for s in 0..n {
            for d in 0..n {
                best = best.max(self.hops(NodeId(s), NodeId(d)));
            }
        }
        best
    }

    /// Mean hop count over all ordered distinct pairs.
    fn mean_distance(&self) -> f64 {
        let n = self.nodes();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    total += self.hops(NodeId(s), NodeId(d));
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }
}

/// Validates that `route` starts at `src` and ends at `dst` given an
/// endpoint oracle; used by each topology's tests.
#[doc(hidden)]
pub fn assert_route_connected(
    route: &Route,
    src: NodeId,
    dst: NodeId,
    endpoints: impl Fn(LinkId) -> (NodeId, NodeId),
) {
    if src == dst {
        assert!(route.is_local(), "self-route must be local");
        return;
    }
    assert!(!route.is_local(), "distinct nodes need at least one hop");
    let mut at = src;
    for link in route {
        let (from, to) = endpoints(link);
        assert_eq!(from, at, "route discontinuity at {link}");
        at = to;
    }
    assert_eq!(at, dst, "route does not terminate at destination");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_basics() {
        let r = Route::local();
        assert!(r.is_local());
        assert_eq!(r.hops(), 0);
        let r = Route::from_links(vec![LinkId(3), LinkId(5)]);
        assert_eq!(r.hops(), 2);
        assert_eq!(r.links(), &[LinkId(3), LinkId(5)]);
        let collected: Vec<LinkId> = (&r).into_iter().collect();
        assert_eq!(collected, vec![LinkId(3), LinkId(5)]);
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LinkId(9).to_string(), "l9");
        assert_eq!(NodeId::from(2), NodeId(2));
    }
}
