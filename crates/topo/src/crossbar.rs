//! Ideal crossbar — a contention-free single-hop interconnect.
//!
//! Not one of the paper's machines, but the natural "perfect network"
//! baseline: every ordered node pair has its own dedicated link, so the
//! only serialization left in the system is the endpoints themselves.
//! Used by the ablation benches to bound how much of a collective's time
//! is network topology versus endpoint software.

use crate::{LinkId, NodeId, Route, Topology};

/// A fully connected crossbar over `n` nodes: one dedicated
/// unidirectional link per ordered pair, all routes a single hop.
///
/// # Examples
///
/// ```
/// use topo::{Crossbar, NodeId, Topology};
///
/// let x = Crossbar::new(16);
/// assert_eq!(x.diameter(), 1);
/// assert_eq!(x.links(), 16 * 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    n: usize,
}

impl Crossbar {
    /// Creates a crossbar over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "node count must be positive");
        Crossbar { n }
    }

    /// The dedicated link id for the ordered pair `(src, dst)`.
    ///
    /// Ids are dense over `src * (n-1) + adjusted(dst)`.
    fn pair_link(&self, src: NodeId, dst: NodeId) -> LinkId {
        let adj = if dst.0 > src.0 { dst.0 - 1 } else { dst.0 };
        LinkId(src.0 * (self.n - 1) + adj)
    }

    /// Endpoints of a link id, for validation.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        assert!(l.0 < self.links(), "link out of range");
        let src = l.0 / (self.n - 1);
        let adj = l.0 % (self.n - 1);
        let dst = if adj >= src { adj + 1 } else { adj };
        (NodeId(src), NodeId(dst))
    }
}

impl Topology for Crossbar {
    fn nodes(&self) -> usize {
        self.n
    }

    fn links(&self) -> usize {
        if self.n < 2 {
            0
        } else {
            self.n * (self.n - 1)
        }
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(src.0 < self.n && dst.0 < self.n, "node out of range");
        if src == dst {
            return Route::local();
        }
        Route::from_links(vec![self.pair_link(src, dst)])
    }

    fn describe(&self) -> String {
        format!("crossbar over {} nodes", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_route_connected;

    #[test]
    fn single_hop_everywhere() {
        let x = Crossbar::new(8);
        for s in 0..8 {
            for d in 0..8 {
                let r = x.route(NodeId(s), NodeId(d));
                assert_route_connected(&r, NodeId(s), NodeId(d), |l| x.endpoints(l));
                if s != d {
                    assert_eq!(r.hops(), 1);
                }
            }
        }
        assert_eq!(x.diameter(), 1);
        assert!((x.mean_distance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn links_are_dedicated_and_dense() {
        let x = Crossbar::new(5);
        let mut seen = std::collections::HashSet::new();
        for s in 0..5 {
            for d in 0..5 {
                if s == d {
                    continue;
                }
                let r = x.route(NodeId(s), NodeId(d));
                let l = r.links()[0];
                assert!(l.0 < x.links());
                assert!(seen.insert(l), "link {l} reused");
                assert_eq!(x.endpoints(l), (NodeId(s), NodeId(d)));
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn degenerate_single_node() {
        let x = Crossbar::new(1);
        assert_eq!(x.links(), 0);
        assert!(x.route(NodeId(0), NodeId(0)).is_local());
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        Crossbar::new(2).route(NodeId(0), NodeId(2));
    }
}
