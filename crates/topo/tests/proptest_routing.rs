//! Property-based tests of the routing functions: for arbitrary
//! topology shapes, every route must be connected, match the analytic
//! distance, and stay within the diameter. Runs on the in-repo
//! deterministic harness ([`desim::check`]).

#![allow(clippy::unwrap_used)]

use desim::check::forall;
use topo::{assert_route_connected, Graph, Mesh2d, NodeId, Omega, Topology, Torus3d};

/// Shortest distance along one torus dimension with wraparound.
fn ring_dist(a: usize, b: usize, size: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(size - d)
}

#[test]
fn torus_routes_are_connected_and_shortest() {
    forall("torus routes connected and shortest", 48, |g| {
        let dx = g.usize(1, 6);
        let dy = g.usize(1, 6);
        let dz = g.usize(1, 4);
        let seed = g.u64(0, u64::MAX);
        let t = Torus3d::new(dx, dy, dz);
        let n = t.nodes();
        let s = NodeId((seed % n as u64) as usize);
        let d = NodeId(((seed >> 16) % n as u64) as usize);
        let r = t.route(s, d);
        assert_route_connected(&r, s, d, |l| t.endpoints(l));
        // Dimension-ordered routing achieves the Manhattan-with-wrap
        // distance exactly.
        let coord = |v: NodeId| (v.0 % dx, (v.0 / dx) % dy, v.0 / (dx * dy));
        let (sx, sy, sz) = coord(s);
        let (tx, ty, tz) = coord(d);
        let dist = ring_dist(sx, tx, dx) + ring_dist(sy, ty, dy) + ring_dist(sz, tz, dz);
        assert_eq!(r.hops(), dist);
    });
}

#[test]
fn mesh_routes_are_connected_and_manhattan() {
    forall("mesh routes connected and manhattan", 48, |g| {
        let cols = g.usize(1, 10);
        let rows = g.usize(1, 10);
        let seed = g.u64(0, u64::MAX);
        let m = Mesh2d::new(cols, rows);
        let n = m.nodes();
        let s = NodeId((seed % n as u64) as usize);
        let d = NodeId(((seed >> 16) % n as u64) as usize);
        let r = m.route(s, d);
        assert_route_connected(&r, s, d, |l| m.endpoints(l));
        let manhattan = (s.0 % cols).abs_diff(d.0 % cols) + (s.0 / cols).abs_diff(d.0 / cols);
        assert_eq!(r.hops(), manhattan);
    });
}

#[test]
fn omega_routes_terminate_and_have_uniform_length() {
    forall("omega routes terminate", 48, |g| {
        let nodes = g.usize(2, 128);
        let radix = g.usize(2, 8);
        let seed = g.u64(0, u64::MAX);
        let net = Omega::new(nodes, radix);
        let s = NodeId((seed % nodes as u64) as usize);
        let d = NodeId(((seed >> 16) % nodes as u64) as usize);
        let trace = net.wire_trace(s, d);
        assert_eq!(trace[0], s.0);
        assert_eq!(*trace.last().unwrap(), d.0);
        assert_eq!(trace.len(), net.stages() + 1);
        assert!(trace.iter().all(|&w| w < net.padded()));
        if s != d {
            assert_eq!(net.route(s, d).hops(), net.stages() + 1);
        }
    });
}

#[test]
fn factored_shapes_cover_node_count() {
    forall("factored shapes cover node count", 48, |g| {
        let p = g.usize(1, 128);
        let t = Torus3d::for_nodes(p);
        assert_eq!(t.nodes(), p);
        let m = Mesh2d::for_nodes(p);
        assert_eq!(m.nodes(), p);
        let (c, r) = m.dims();
        assert!(c >= r, "near-square with wide side first");
    });
}

#[test]
fn graph_matches_torus_distances() {
    forall("graph matches torus distances", 48, |gen| {
        let dx = gen.usize(1, 4);
        let dy = gen.usize(1, 4);
        let dz = gen.usize(1, 3);
        // A Graph with a torus's edges reproduces its hop counts (BFS
        // shortest path == dimension-ordered with wrap for tori).
        let t = Torus3d::new(dx, dy, dz);
        let n = t.nodes();
        let mut g = Graph::new(n);
        let mut seen = std::collections::HashSet::new();
        for from in 0..n {
            for dir in 0..6 {
                let l = topo::LinkId(from * 6 + dir);
                let (a, b) = t.endpoints(l);
                if a != b && seen.insert((a, b)) {
                    g.add_link(a, b);
                }
            }
        }
        for s in 0..n {
            for d in 0..n {
                assert_eq!(
                    g.hops(NodeId(s), NodeId(d)),
                    t.hops(NodeId(s), NodeId(d)),
                    "pair ({s}, {d})"
                );
            }
        }
    });
}

#[test]
fn routes_never_exceed_diameter() {
    forall("routes never exceed diameter", 48, |g| {
        let dx = g.usize(1, 5);
        let dy = g.usize(1, 5);
        let m = Mesh2d::new(dx, dy);
        let diam = m.diameter();
        for s in 0..m.nodes() {
            for d in 0..m.nodes() {
                assert!(m.hops(NodeId(s), NodeId(d)) <= diam);
            }
        }
        assert_eq!(diam, (dx - 1) + (dy - 1));
    });
}
