//! Property-based tests of the routing functions: for arbitrary
//! topology shapes, every route must be connected, match the analytic
//! distance, and stay within the diameter.

use proptest::prelude::*;
use topo::{assert_route_connected, Graph, Mesh2d, NodeId, Omega, Topology, Torus3d};

/// Shortest distance along one torus dimension with wraparound.
fn ring_dist(a: usize, b: usize, size: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(size - d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn torus_routes_are_connected_and_shortest(
        dx in 1usize..=6,
        dy in 1usize..=6,
        dz in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let t = Torus3d::new(dx, dy, dz);
        let n = t.nodes();
        let s = NodeId((seed % n as u64) as usize);
        let d = NodeId(((seed >> 16) % n as u64) as usize);
        let r = t.route(s, d);
        assert_route_connected(&r, s, d, |l| t.endpoints(l));
        // Dimension-ordered routing achieves the Manhattan-with-wrap
        // distance exactly.
        let coord = |v: NodeId| (v.0 % dx, (v.0 / dx) % dy, v.0 / (dx * dy));
        let (sx, sy, sz) = coord(s);
        let (tx, ty, tz) = coord(d);
        let dist = ring_dist(sx, tx, dx) + ring_dist(sy, ty, dy) + ring_dist(sz, tz, dz);
        prop_assert_eq!(r.hops(), dist);
    }

    #[test]
    fn mesh_routes_are_connected_and_manhattan(
        cols in 1usize..=10,
        rows in 1usize..=10,
        seed in any::<u64>(),
    ) {
        let m = Mesh2d::new(cols, rows);
        let n = m.nodes();
        let s = NodeId((seed % n as u64) as usize);
        let d = NodeId(((seed >> 16) % n as u64) as usize);
        let r = m.route(s, d);
        assert_route_connected(&r, s, d, |l| m.endpoints(l));
        let manhattan = (s.0 % cols).abs_diff(d.0 % cols) + (s.0 / cols).abs_diff(d.0 / cols);
        prop_assert_eq!(r.hops(), manhattan);
    }

    #[test]
    fn omega_routes_terminate_and_have_uniform_length(
        nodes in 2usize..=128,
        radix in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let net = Omega::new(nodes, radix);
        let s = NodeId((seed % nodes as u64) as usize);
        let d = NodeId(((seed >> 16) % nodes as u64) as usize);
        let trace = net.wire_trace(s, d);
        prop_assert_eq!(trace[0], s.0);
        prop_assert_eq!(*trace.last().unwrap(), d.0);
        prop_assert_eq!(trace.len(), net.stages() + 1);
        prop_assert!(trace.iter().all(|&w| w < net.padded()));
        if s != d {
            prop_assert_eq!(net.route(s, d).hops(), net.stages() + 1);
        }
    }

    #[test]
    fn factored_shapes_cover_node_count(p in 1usize..=128) {
        let t = Torus3d::for_nodes(p);
        prop_assert_eq!(t.nodes(), p);
        let m = Mesh2d::for_nodes(p);
        prop_assert_eq!(m.nodes(), p);
        let (c, r) = m.dims();
        prop_assert!(c >= r, "near-square with wide side first");
    }

    #[test]
    fn graph_matches_torus_distances(
        dx in 1usize..=4,
        dy in 1usize..=4,
        dz in 1usize..=3,
    ) {
        // A Graph with a torus's edges reproduces its hop counts (BFS
        // shortest path == dimension-ordered with wrap for tori).
        let t = Torus3d::new(dx, dy, dz);
        let n = t.nodes();
        let mut g = Graph::new(n);
        let mut seen = std::collections::HashSet::new();
        for from in 0..n {
            for dir in 0..6 {
                let l = topo::LinkId(from * 6 + dir);
                let (a, b) = t.endpoints(l);
                if a != b && seen.insert((a, b)) {
                    g.add_link(a, b);
                }
            }
        }
        for s in 0..n {
            for d in 0..n {
                prop_assert_eq!(
                    g.hops(NodeId(s), NodeId(d)),
                    t.hops(NodeId(s), NodeId(d)),
                    "pair ({}, {})", s, d
                );
            }
        }
    }

    #[test]
    fn routes_never_exceed_diameter(
        dx in 1usize..=5,
        dy in 1usize..=5,
    ) {
        let m = Mesh2d::new(dx, dy);
        let diam = m.diameter();
        for s in 0..m.nodes() {
            for d in 0..m.nodes() {
                prop_assert!(m.hops(NodeId(s), NodeId(d)) <= diam);
            }
        }
        prop_assert_eq!(diam, (dx - 1) + (dy - 1));
    }
}
