//! Match-ambiguity race detection.
//!
//! The executor matches messages per (sender, receiver) channel in
//! *arrival* order and never rechecks payload sizes at delivery time, so
//! the dynamic `Schedule::check` — which replays one canonical
//! interleaving — silently assumes the network preserves posting order.
//! That assumption is only safe when every pair of messages on a channel
//! is ordered by happens-before: if two messages can be in flight
//! concurrently, adaptive routing or contention could deliver them
//! swapped and the receiver's `Recv`s would match the wrong payloads.
//!
//! The static criterion: for sends `i < j` on one channel with
//! `bytes_i != bytes_j`, the match is ambiguous unless
//! `recv_i happens-before send_j` — the receiver must have consumed
//! message `i` before message `j` can exist. Equal-size pairs are not
//! flagged: at the schedule IR level such messages are indistinguishable
//! and a swap is semantically harmless.

use crate::graph::HbGraph;
use collectives::ScheduleError;

/// Scans every channel for concurrently-in-flight messages of different
/// sizes. Call only after `Schedule::check` has passed (the graph's FIFO
/// matching is meaningless on a broken schedule).
pub fn find_ambiguities(g: &HbGraph) -> Vec<ScheduleError> {
    let mut findings = Vec::new();
    for ch in g.channels() {
        let n = ch.sends.len().min(ch.recvs.len());
        for i in 0..n {
            let (recv_i, _) = ch.recvs[i];
            let (_, bytes_i) = ch.sends[i];
            for &(send_j, bytes_j) in &ch.sends[i + 1..n] {
                if bytes_i != bytes_j && !g.reaches(recv_i, send_j) {
                    findings.push(ScheduleError::AmbiguousMatch {
                        from: ch.from,
                        to: ch.to,
                        earlier: bytes_i,
                        later: bytes_j,
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::{Rank, Schedule, Step};
    use netmodel::OpClass;

    fn send(to: usize, bytes: u32) -> Step {
        Step::Send {
            to: Rank(to),
            bytes,
        }
    }
    fn recv(from: usize, bytes: u32) -> Step {
        Step::Recv {
            from: Rank(from),
            bytes,
        }
    }

    fn scan(s: &Schedule) -> Vec<ScheduleError> {
        assert!(s.check().is_ok(), "fixture must pass the dynamic check");
        find_ambiguities(&HbGraph::build(s))
    }

    #[test]
    fn back_to_back_different_sizes_are_ambiguous() {
        // Both messages in flight at once; FIFO check passes but the
        // match depends on delivery order.
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(0), send(1, 16));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), recv(0, 16));
        assert_eq!(
            scan(&s),
            vec![ScheduleError::AmbiguousMatch {
                from: Rank(0),
                to: Rank(1),
                earlier: 8,
                later: 16,
            }]
        );
    }

    #[test]
    fn acknowledged_resend_is_unambiguous() {
        // The second send is posted only after an ack proves the first
        // was received: recv_0 happens-before send_1.
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(0), recv(1, 1)); // ack
        s.push(Rank(0), send(1, 16));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), send(0, 1)); // ack
        s.push(Rank(1), recv(0, 16));
        assert!(scan(&s).is_empty());
    }

    #[test]
    fn equal_sizes_not_flagged() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(0), send(1, 8));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), recv(0, 8));
        assert!(scan(&s).is_empty());
    }

    #[test]
    fn barrier_separation_is_unambiguous() {
        // A barrier round between the two sends orders recv_0 before
        // send_1 across ranks.
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(0), Step::HwBarrier);
        s.push(Rank(0), send(1, 16));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), Step::HwBarrier);
        s.push(Rank(1), recv(0, 16));
        assert!(scan(&s).is_empty());
    }

    #[test]
    fn nonadjacent_pair_detected() {
        // Sizes 8, 8, 16: the (0, 2) and (1, 2) pairs race even though
        // the adjacent (0, 1) pair is same-size.
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        for b in [8, 8, 16] {
            s.push(Rank(0), send(1, b));
        }
        for b in [8, 8, 16] {
            s.push(Rank(1), recv(0, b));
        }
        assert_eq!(scan(&s).len(), 2);
    }

    #[test]
    fn pipelined_broadcast_tail_segment_races() {
        // A non-multiple message size gives the pipelined chain a short
        // final segment that can overtake a full one — the canonical
        // in-repo example of a hazard the dynamic check cannot see.
        let s = collectives::build(
            collectives::Algorithm::Pipelined,
            OpClass::Bcast,
            4,
            Rank(0),
            10_000,
        )
        .expect("pipelined bcast builds");
        assert!(s.check().is_ok(), "dynamic check is blind to the race");
        let found = find_ambiguities(&HbGraph::build(&s));
        assert!(
            found
                .iter()
                .any(|e| matches!(e, ScheduleError::AmbiguousMatch { .. })),
            "tail segment must be flagged"
        );
    }
}
