//! Conservation lints: message volume and data-flow coverage.
//!
//! §3 of the paper defines the aggregated volume `f(m, p)` each
//! collective must move — `m(p−1)` for the one-to-all / all-to-one
//! operations and scan, `m·p(p−1)` for total exchange — and Table 3's
//! bandwidth numbers are normalized by it. A schedule that moves less
//! than `f(m, p)` cannot be correct; one that moves a different amount
//! than its algorithm family predicts was miscompiled. Coverage is the
//! semantic half: volume can balance while a rank's contribution never
//! reaches the root (e.g. a dropped binomial subtree), so we also check
//! the data-influence closure against the operation's required relation.

use collectives::{Algorithm, Rank, Schedule, Step};
use netmodel::OpClass;

/// What an algorithm family predicts for a schedule's total sent bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeBound {
    /// The family determines the byte count exactly.
    Exact(u64),
    /// The family moves at least this much (redistribution algorithms
    /// like binomial scatter forward whole subtree blocks and legally
    /// exceed the floor).
    AtLeast(u64),
}

impl VolumeBound {
    /// Whether `actual` satisfies the bound.
    pub fn admits(self, actual: u64) -> bool {
        match self {
            VolumeBound::Exact(v) => actual == v,
            VolumeBound::AtLeast(v) => actual >= v,
        }
    }

    /// The bound's byte value.
    pub fn bytes(self) -> u64 {
        match self {
            VolumeBound::Exact(v) | VolumeBound::AtLeast(v) => v,
        }
    }
}

impl std::fmt::Display for VolumeBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeBound::Exact(v) => write!(f, "exactly {v}"),
            VolumeBound::AtLeast(v) => write!(f, "at least {v}"),
        }
    }
}

/// The total sent bytes the `(algorithm, class)` pair predicts for `p`
/// ranks and an `m`-byte payload. Every bound is ≥ the paper's
/// `f(m, p)` floor ([`OpClass::aggregated_bytes`]), so admitting a
/// schedule also certifies the floor.
pub fn expected_volume(algorithm: Algorithm, class: OpClass, p: u64, m: u64) -> VolumeBound {
    let f = class.aggregated_bytes(m, p);
    match (algorithm, class) {
        // Barriers move tokens, not payload: zero bytes by definition
        // (dissemination/tree/pairwise send 0-byte messages; hardware
        // sends none).
        (_, OpClass::Barrier) => VolumeBound::Exact(0),
        // One full copy of the payload crosses each tree edge / root
        // loop iteration: exactly m(p−1).
        (Algorithm::Binomial, OpClass::Bcast | OpClass::Reduce)
        | (
            Algorithm::Linear,
            OpClass::Bcast | OpClass::Reduce | OpClass::Scatter | OpClass::Gather | OpClass::Scan,
        ) => VolumeBound::Exact(f),
        // Recursive-doubling scan round k sends p − 2^k messages of m
        // bytes each.
        (Algorithm::RecursiveDoubling, OpClass::Scan) => {
            let mut v = 0u64;
            let mut mask = 1u64;
            while mask < p {
                v += p - mask;
                mask <<= 1;
            }
            VolumeBound::Exact(m * v)
        }
        // Direct total exchange: every ordered pair exchanges one
        // m-byte block, whether scheduled pairwise-XOR or ring-shifted.
        (Algorithm::Pairwise | Algorithm::Ring, OpClass::Alltoall) => VolumeBound::Exact(f),
        // Block-forwarding families (binomial scatter/gather, Bruck,
        // scatter-allgather, pipelined) resend combined blocks; they
        // must still meet the paper floor.
        _ => VolumeBound::AtLeast(f),
    }
}

/// Coverage gaps: `(at, missing)` pairs where rank `at` was required to
/// be influenced by rank `missing`'s initial data but is not.
///
/// Required relations per class: broadcast/scatter — the root reaches
/// everyone; gather/reduce — everyone reaches the root; inclusive scan —
/// ranks `0..=r` reach rank `r`; total exchange and software barriers —
/// the complete relation. A hardware barrier exchanges no messages, so
/// it is instead required to place a [`Step::HwBarrier`] on every rank.
///
/// Returns an empty list when the schedule deadlocks (the structural
/// check reports that separately) or for classes with no requirement.
pub fn coverage_gaps(s: &Schedule, root: Rank) -> Vec<(Rank, Rank)> {
    let p = s.ranks();
    if s.class() == OpClass::Barrier && barrier_is_hardware(s) {
        return (0..p)
            .filter(|&r| {
                !s.program(Rank(r))
                    .iter()
                    .any(|st| matches!(st, Step::HwBarrier))
            })
            .map(|r| (Rank(r), Rank(r)))
            .collect();
    }
    let Some(inf) = s.influence() else {
        return Vec::new();
    };
    let mut gaps = Vec::new();
    let mut require = |at: usize, from: usize| {
        if !inf[at][from] {
            gaps.push((Rank(at), Rank(from)));
        }
    };
    match s.class() {
        OpClass::Bcast | OpClass::Scatter => {
            for r in 0..p {
                require(r, root.0);
            }
        }
        OpClass::Gather | OpClass::Reduce => {
            for r in 0..p {
                require(root.0, r);
            }
        }
        OpClass::Scan => {
            for r in 0..p {
                for i in 0..=r {
                    require(r, i);
                }
            }
        }
        OpClass::Alltoall | OpClass::Barrier => {
            for r in 0..p {
                for i in 0..p {
                    require(r, i);
                }
            }
        }
        OpClass::PointToPoint => {}
    }
    gaps
}

/// A barrier schedule counts as hardware when it sends no messages and
/// at least one rank enters the barrier network.
fn barrier_is_hardware(s: &Schedule) -> bool {
    let mut any_hw = false;
    for (_, prog) in s.iter() {
        for step in prog {
            match step {
                Step::Send { .. } | Step::Recv { .. } => return false,
                Step::HwBarrier => any_hw = true,
                Step::Compute { .. } => {}
            }
        }
    }
    any_hw
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::build;

    #[test]
    fn exact_families_match_their_generators() {
        for p in [2u64, 3, 4, 8, 17, 32] {
            let m = 1_024u64;
            for (alg, class) in [
                (Algorithm::Binomial, OpClass::Bcast),
                (Algorithm::Binomial, OpClass::Reduce),
                (Algorithm::Linear, OpClass::Scatter),
                (Algorithm::Linear, OpClass::Gather),
                (Algorithm::Linear, OpClass::Scan),
                (Algorithm::RecursiveDoubling, OpClass::Scan),
                (Algorithm::Pairwise, OpClass::Alltoall),
                (Algorithm::Ring, OpClass::Alltoall),
                (Algorithm::Dissemination, OpClass::Barrier),
            ] {
                let s = build(alg, class, p as usize, Rank(0), m as u32)
                    .unwrap_or_else(|e| panic!("{alg:?}/{class}/p={p}: {e}"));
                let bound = expected_volume(alg, class, p, m);
                assert!(
                    bound.admits(s.total_bytes()),
                    "{alg:?}/{class}/p={p}: bound {bound}, actual {}",
                    s.total_bytes()
                );
                assert!(
                    bound.bytes() >= class.aggregated_bytes(m, p),
                    "{alg:?}/{class}: bound below the paper floor"
                );
            }
        }
    }

    #[test]
    fn at_least_families_meet_the_floor() {
        for (alg, class) in [
            (Algorithm::Binomial, OpClass::Scatter),
            (Algorithm::Binomial, OpClass::Gather),
            (Algorithm::Bruck, OpClass::Alltoall),
            (Algorithm::ScatterAllgather, OpClass::Bcast),
            (Algorithm::Pipelined, OpClass::Bcast),
        ] {
            let p = 16u64;
            let m = 8_192u64;
            let s = build(alg, class, p as usize, Rank(0), m as u32)
                .unwrap_or_else(|e| panic!("{alg:?}/{class}: {e}"));
            let bound = expected_volume(alg, class, p, m);
            assert!(matches!(bound, VolumeBound::AtLeast(_)), "{alg:?}/{class}");
            assert!(
                bound.admits(s.total_bytes()),
                "{alg:?}/{class}: bound {bound}, actual {}",
                s.total_bytes()
            );
        }
    }

    #[test]
    fn volume_mismatch_is_rejected() {
        let bound = expected_volume(Algorithm::Binomial, OpClass::Bcast, 8, 64);
        assert_eq!(bound, VolumeBound::Exact(64 * 7));
        assert!(!bound.admits(64 * 6), "a dropped edge must not admit");
        assert!(!bound.admits(64 * 8), "an extra edge must not admit");
    }

    #[test]
    fn dropped_subtree_is_a_coverage_gap() {
        // A bcast that never sends to rank 2: volume is off AND rank 2
        // is uncovered.
        let mut s = Schedule::new(OpClass::Bcast, 3);
        s.push(
            Rank(0),
            Step::Send {
                to: Rank(1),
                bytes: 64,
            },
        );
        s.push(
            Rank(1),
            Step::Recv {
                from: Rank(0),
                bytes: 64,
            },
        );
        let gaps = coverage_gaps(&s, Rank(0));
        assert_eq!(gaps, vec![(Rank(2), Rank(0))]);
    }

    #[test]
    fn scan_requires_all_prefixes() {
        // Chain 0 -> 1 -> 2 covers the scan relation; reversing the
        // chain direction leaves every prefix uncovered.
        let mut ok = Schedule::new(OpClass::Scan, 3);
        for r in 0..2usize {
            ok.push(
                Rank(r),
                Step::Send {
                    to: Rank(r + 1),
                    bytes: 8,
                },
            );
            ok.push(
                Rank(r + 1),
                Step::Recv {
                    from: Rank(r),
                    bytes: 8,
                },
            );
        }
        assert!(coverage_gaps(&ok, Rank(0)).is_empty());

        let mut bad = Schedule::new(OpClass::Scan, 3);
        for r in 0..2usize {
            bad.push(
                Rank(r + 1),
                Step::Send {
                    to: Rank(r),
                    bytes: 8,
                },
            );
            bad.push(
                Rank(r),
                Step::Recv {
                    from: Rank(r + 1),
                    bytes: 8,
                },
            );
        }
        let gaps = coverage_gaps(&bad, Rank(0));
        assert!(gaps.contains(&(Rank(1), Rank(0))));
        assert!(gaps.contains(&(Rank(2), Rank(0))));
    }

    #[test]
    fn hardware_barrier_requires_every_rank_in_the_net() {
        let mut s = Schedule::new(OpClass::Barrier, 3);
        s.push(Rank(0), Step::HwBarrier);
        s.push(Rank(1), Step::HwBarrier);
        // Rank 2 never enters.
        assert_eq!(coverage_gaps(&s, Rank(0)), vec![(Rank(2), Rank(2))]);
        s.push(Rank(2), Step::HwBarrier);
        assert!(coverage_gaps(&s, Rank(0)).is_empty());
    }

    #[test]
    fn vendor_generators_have_no_gaps() {
        for class in OpClass::COLLECTIVES {
            for p in [2, 3, 8, 17, 32] {
                let alg = collectives::generic_algorithm(class);
                let s = build(alg, class, p, Rank(0), 256)
                    .unwrap_or_else(|e| panic!("{class}/p={p}: {e}"));
                assert!(
                    coverage_gaps(&s, Rank(0)).is_empty(),
                    "{class}/p={p} has coverage gaps"
                );
            }
        }
    }
}
