//! Critical-path analysis: communication depth and per-rank fan-in.
//!
//! Table 3 of the paper shows two startup-latency regimes — O(log p)
//! for the tree-structured collectives and O(p) for root-serialized or
//! round-serialized ones. The *schedule-level* counterpart is the
//! message-dependency depth: the longest chain of messages in which each
//! send waits on the previous receive. Each algorithm family has a known
//! depth bound; a compiled schedule exceeding it has a serialization bug
//! that would surface as the wrong latency curve.

use collectives::schedule::ceil_log2;
use collectives::{Algorithm, Schedule, Step};
use netmodel::OpClass;

/// Critical-path statistics of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritPath {
    /// Longest send-after-recv message chain (0 for a deadlocked or
    /// message-free schedule).
    pub depth: usize,
    /// Maximum number of `Send` steps on any one rank.
    pub max_send_fanout: usize,
    /// Maximum number of `Recv` steps on any one rank.
    pub max_recv_fanin: usize,
}

/// Computes depth and fan-in/fan-out extremes.
pub fn analyze(s: &Schedule) -> CritPath {
    let mut max_send_fanout = 0;
    let mut max_recv_fanin = 0;
    for (_, prog) in s.iter() {
        let sends = prog
            .iter()
            .filter(|st| matches!(st, Step::Send { .. }))
            .count();
        let recvs = prog
            .iter()
            .filter(|st| matches!(st, Step::Recv { .. }))
            .count();
        max_send_fanout = max_send_fanout.max(sends);
        max_recv_fanin = max_recv_fanin.max(recvs);
    }
    CritPath {
        depth: s.message_depth(),
        max_send_fanout,
        max_recv_fanin,
    }
}

/// The maximum message depth the `(algorithm, class)` family permits on
/// `p` ranks, or `None` when no static bound applies (the pipelined
/// chain's depth grows with the segment count, which depends on the
/// message size, not just `p`).
pub fn depth_bound(algorithm: Algorithm, class: OpClass, p: usize) -> Option<usize> {
    let lg = ceil_log2(p.max(1)) as usize;
    match algorithm {
        // One message per tree/doubling level.
        Algorithm::Binomial
        | Algorithm::RecursiveDoubling
        | Algorithm::Dissemination
        | Algorithm::Bruck => Some(lg),
        // Fan-in to the root plus the release fan-out.
        Algorithm::Tree => Some(2 * lg),
        // The barrier network replaces messaging entirely.
        Algorithm::Hardware => Some(0),
        Algorithm::Linear => match class {
            // A pipeline chain hops p−1 times.
            OpClass::Scan => Some(p.saturating_sub(1)),
            // The root talks to every peer directly.
            OpClass::Bcast | OpClass::Scatter | OpClass::Gather | OpClass::Reduce => Some(1),
            _ => None,
        },
        Algorithm::Pairwise => match class {
            // p−1 serialized exchange rounds (ring fallback included).
            OpClass::Alltoall => Some(p.saturating_sub(1)),
            // XOR rounds on powers of two, dissemination otherwise.
            OpClass::Barrier => Some(lg),
            _ => None,
        },
        Algorithm::Ring => Some(p.saturating_sub(1)),
        // log p scatter phase + p−1 allgather ring steps.
        Algorithm::ScatterAllgather => Some(lg + p.saturating_sub(1)),
        Algorithm::Pipelined => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::{build, Rank};

    #[test]
    fn every_generator_meets_its_bound() {
        let table: &[(Algorithm, OpClass)] = &[
            (Algorithm::Binomial, OpClass::Bcast),
            (Algorithm::Linear, OpClass::Bcast),
            (Algorithm::ScatterAllgather, OpClass::Bcast),
            (Algorithm::Binomial, OpClass::Scatter),
            (Algorithm::Linear, OpClass::Scatter),
            (Algorithm::Binomial, OpClass::Gather),
            (Algorithm::Linear, OpClass::Gather),
            (Algorithm::Binomial, OpClass::Reduce),
            (Algorithm::Linear, OpClass::Reduce),
            (Algorithm::RecursiveDoubling, OpClass::Scan),
            (Algorithm::Linear, OpClass::Scan),
            (Algorithm::Pairwise, OpClass::Alltoall),
            (Algorithm::Ring, OpClass::Alltoall),
            (Algorithm::Bruck, OpClass::Alltoall),
            (Algorithm::Dissemination, OpClass::Barrier),
            (Algorithm::Tree, OpClass::Barrier),
            (Algorithm::Pairwise, OpClass::Barrier),
            (Algorithm::Hardware, OpClass::Barrier),
        ];
        for &(alg, class) in table {
            for p in [1usize, 2, 3, 4, 8, 16, 17, 33, 64] {
                let s = build(alg, class, p, Rank(0), 512)
                    .unwrap_or_else(|e| panic!("{alg:?}/{class}/p={p}: {e}"));
                let bound = depth_bound(alg, class, p)
                    .unwrap_or_else(|| panic!("{alg:?}/{class} should have a bound"));
                let got = analyze(&s).depth;
                assert!(
                    got <= bound,
                    "{alg:?}/{class}/p={p}: depth {got} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn binomial_bcast_depth_is_tight() {
        for p in [2usize, 4, 8, 32, 64] {
            let s = build(Algorithm::Binomial, OpClass::Bcast, p, Rank(0), 64)
                .expect("binomial bcast builds");
            assert_eq!(analyze(&s).depth, ceil_log2(p) as usize, "p={p}");
        }
    }

    #[test]
    fn serialized_chain_exceeds_tree_bound() {
        // A handwritten "broadcast" that daisy-chains instead of using
        // the tree: depth p−1 breaks the binomial bound for p ≥ 4.
        let p = 8;
        let mut s = Schedule::new(OpClass::Bcast, p);
        for r in 0..p - 1 {
            s.push(
                Rank(r),
                Step::Send {
                    to: Rank(r + 1),
                    bytes: 64,
                },
            );
            s.push(
                Rank(r + 1),
                Step::Recv {
                    from: Rank(r),
                    bytes: 64,
                },
            );
        }
        let depth = analyze(&s).depth;
        let bound =
            depth_bound(Algorithm::Binomial, OpClass::Bcast, p).expect("binomial has a bound");
        assert!(depth > bound, "chain depth {depth} must exceed {bound}");
    }

    #[test]
    fn fanout_counts_per_rank_extremes() {
        let s = build(Algorithm::Linear, OpClass::Scatter, 9, Rank(0), 64)
            .expect("linear scatter builds");
        let cp = analyze(&s);
        assert_eq!(cp.max_send_fanout, 8, "root sends to every peer");
        assert_eq!(cp.max_recv_fanin, 1, "leaves receive once");
        assert_eq!(cp.depth, 1);
    }

    #[test]
    fn pipelined_has_no_static_bound() {
        assert_eq!(depth_bound(Algorithm::Pipelined, OpClass::Bcast, 8), None);
    }
}
