//! Happens-before graph construction.
//!
//! Events are the individual [`Step`]s of a schedule, numbered densely:
//! rank `r`'s step `i` gets id `offset[r] + i`. Three edge families make
//! up the happens-before relation of the executor's semantics:
//!
//! 1. **Program order** — each rank's steps are totally ordered.
//! 2. **Message edges** — sends are eager and receives block, with FIFO
//!    matching per (sender, receiver) channel; the `k`-th send on a
//!    channel therefore matches the `k`-th receive, which is statically
//!    computable without running the schedule.
//! 3. **Barrier rounds** — the `k`-th [`Step::HwBarrier`] of every rank
//!    forms one synchronization round: no rank leaves the round until
//!    every rank has entered it, so each entry happens-before every other
//!    rank's first post-round step.
//!
//! The graph is a DAG whenever [`Schedule::check`] passes; callers are
//! expected to check first (the analyses in this crate do).

use collectives::{Rank, Schedule, Step};
use std::collections::{HashMap, VecDeque};

/// All messages of one (sender, receiver) pair, in FIFO order.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Send events in posting order: `(event id, bytes)`.
    pub sends: Vec<(usize, u32)>,
    /// Recv events in posting order: `(event id, bytes)`.
    pub recvs: Vec<(usize, u32)>,
}

/// The happens-before DAG of a schedule.
#[derive(Debug, Clone)]
pub struct HbGraph {
    /// `offsets[r]` is the event id of rank `r`'s first step;
    /// `offsets[p]` is the total event count.
    offsets: Vec<usize>,
    succ: Vec<Vec<usize>>,
    channels: Vec<Channel>,
}

impl HbGraph {
    /// Builds the graph from per-rank programs. Rank fields must be in
    /// range (guaranteed after [`Schedule::check`]).
    pub fn build(s: &Schedule) -> Self {
        let p = s.ranks();
        let mut offsets = Vec::with_capacity(p + 1);
        let mut total = 0usize;
        for (_, prog) in s.iter() {
            offsets.push(total);
            total += prog.len();
        }
        offsets.push(total);

        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); total];
        // Program order.
        for (r, prog) in s.iter() {
            let base = offsets[r.0];
            for i in 1..prog.len() {
                succ[base + i - 1].push(base + i);
            }
        }
        // Channel collection (FIFO per pair) and barrier rounds.
        // Per channel: (send events, recv events), each `(event, bytes)`.
        type Endpoints = (Vec<(usize, u32)>, Vec<(usize, u32)>);
        let mut chan: HashMap<(usize, usize), Endpoints> = HashMap::new();
        // `rounds[k]` holds the (event, rank) of each rank's k-th barrier.
        let mut rounds: Vec<Vec<(usize, usize)>> = Vec::new();
        for (r, prog) in s.iter() {
            let base = offsets[r.0];
            let mut entered = 0usize;
            for (i, step) in prog.iter().enumerate() {
                match *step {
                    Step::Send { to, bytes } => {
                        chan.entry((r.0, to.0))
                            .or_default()
                            .0
                            .push((base + i, bytes));
                    }
                    Step::Recv { from, bytes } => {
                        chan.entry((from.0, r.0))
                            .or_default()
                            .1
                            .push((base + i, bytes));
                    }
                    Step::HwBarrier => {
                        if rounds.len() <= entered {
                            rounds.resize(entered + 1, Vec::new());
                        }
                        rounds[entered].push((base + i, r.0));
                        entered += 1;
                    }
                    Step::Compute { .. } => {}
                }
            }
        }
        // Message edges: k-th send matches k-th recv on each channel.
        let mut keys: Vec<(usize, usize)> = chan.keys().copied().collect();
        keys.sort_unstable();
        let mut channels = Vec::with_capacity(keys.len());
        for key in keys {
            let (sends, recvs) = chan.remove(&key).unwrap_or_default();
            for (&(se, _), &(re, _)) in sends.iter().zip(recvs.iter()) {
                succ[se].push(re);
            }
            channels.push(Channel {
                from: Rank(key.0),
                to: Rank(key.1),
                sends,
                recvs,
            });
        }
        // Barrier edges: entering round k happens-before every other
        // rank's step *after* its own round-k entry.
        for round in &rounds {
            for &(e, _) in round {
                for &(f, fr) in round {
                    if e != f && f + 1 < offsets[fr + 1] {
                        succ[e].push(f + 1);
                    }
                }
            }
        }
        HbGraph {
            offsets,
            succ,
            channels,
        }
    }

    /// Total number of events.
    pub fn events(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// The event id of `rank`'s step `i`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn event(&self, rank: Rank, i: usize) -> usize {
        self.offsets[rank.0] + i
    }

    /// All channels, sorted by `(from, to)`.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Whether `from` happens-before (or is) `to`: BFS over the DAG.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.events()];
        let mut queue = VecDeque::from([from]);
        seen[from] = true;
        while let Some(e) = queue.pop_front() {
            for &n in &self.succ[e] {
                if n == to {
                    return true;
                }
                if !seen[n] {
                    seen[n] = true;
                    queue.push_back(n);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::OpClass;

    fn send(to: usize, bytes: u32) -> Step {
        Step::Send {
            to: Rank(to),
            bytes,
        }
    }
    fn recv(from: usize, bytes: u32) -> Step {
        Step::Recv {
            from: Rank(from),
            bytes,
        }
    }

    #[test]
    fn message_edge_orders_send_before_recv() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(1), recv(0, 8));
        let g = HbGraph::build(&s);
        assert!(g.reaches(g.event(Rank(0), 0), g.event(Rank(1), 0)));
        assert!(!g.reaches(g.event(Rank(1), 0), g.event(Rank(0), 0)));
    }

    #[test]
    fn program_order_is_transitive() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(0), send(1, 8));
        s.push(Rank(0), send(1, 8));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), recv(0, 8));
        let g = HbGraph::build(&s);
        assert!(g.reaches(g.event(Rank(0), 0), g.event(Rank(1), 2)));
    }

    #[test]
    fn concurrent_events_unordered() {
        // Two independent sends into rank 2: neither orders the other.
        let mut s = Schedule::new(OpClass::PointToPoint, 3);
        s.push(Rank(0), send(2, 8));
        s.push(Rank(1), send(2, 8));
        s.push(Rank(2), recv(0, 8));
        s.push(Rank(2), recv(1, 8));
        let g = HbGraph::build(&s);
        assert!(!g.reaches(g.event(Rank(0), 0), g.event(Rank(1), 0)));
        assert!(!g.reaches(g.event(Rank(1), 0), g.event(Rank(0), 0)));
    }

    #[test]
    fn barrier_round_synchronizes_all_ranks() {
        let mut s = Schedule::new(OpClass::Barrier, 3);
        for r in 0..3 {
            s.push(Rank(r), Step::HwBarrier);
            s.push(Rank(r), Step::Compute { bytes: 4 });
        }
        let g = HbGraph::build(&s);
        // Rank 0's barrier entry orders every rank's post-barrier step.
        for r in 0..3 {
            assert!(
                g.reaches(g.event(Rank(0), 0), g.event(Rank(r), 1)),
                "barrier entry must precede rank {r}'s exit"
            );
        }
        // But entries themselves stay concurrent.
        assert!(!g.reaches(g.event(Rank(0), 0), g.event(Rank(1), 0)));
    }

    #[test]
    fn channels_report_fifo_pairs() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(0), send(1, 16));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), recv(0, 16));
        let g = HbGraph::build(&s);
        assert_eq!(g.channels().len(), 1);
        let ch = &g.channels()[0];
        assert_eq!((ch.from, ch.to), (Rank(0), Rank(1)));
        assert_eq!(ch.sends.len(), 2);
        assert_eq!(ch.sends[1].1, 16);
        assert_eq!(ch.recvs[0].1, 8);
    }
}
