//! Verdicts: findings, statistics, and the top-level entry points.

use crate::ambiguity;
use crate::conservation::{self, VolumeBound};
use crate::critpath::{self, CritPath};
use crate::graph::HbGraph;
use collectives::{Algorithm, Rank, Schedule, ScheduleError};

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// A structural error — the same vocabulary the dynamic executor
    /// reports at run time ([`ScheduleError`]), including the static-only
    /// [`ScheduleError::AmbiguousMatch`].
    Invalid(ScheduleError),
    /// Total sent bytes disagree with the algorithm family's prediction
    /// (always ≥ the paper's `f(m, p)` floor).
    VolumeMismatch {
        /// What the family predicts.
        expected: VolumeBound,
        /// What the schedule actually sends.
        actual: u64,
    },
    /// Rank `at` never receives (transitively) rank `missing`'s
    /// contribution, though the operation requires it.
    CoverageGap {
        /// The under-informed rank.
        at: Rank,
        /// The contributor whose data never arrives.
        missing: Rank,
    },
    /// Message depth exceeds the algorithm family's bound — the
    /// schedule is more serialized than its latency class.
    DepthExceeded {
        /// Observed message depth.
        depth: usize,
        /// The family's maximum.
        bound: usize,
    },
}

impl Finding {
    /// Stable short code for metrics, JSON output, and CI grepping.
    pub fn code(&self) -> &'static str {
        match self {
            Finding::Invalid(ScheduleError::RankOutOfRange { .. }) => "rank-range",
            Finding::Invalid(ScheduleError::Stuck { .. }) => "stuck",
            Finding::Invalid(ScheduleError::DeadlockCycle { .. }) => "deadlock-cycle",
            Finding::Invalid(ScheduleError::AmbiguousMatch { .. }) => "ambiguous-match",
            Finding::Invalid(ScheduleError::SizeMismatch { .. }) => "size-mismatch",
            Finding::Invalid(ScheduleError::UnconsumedMessages { .. }) => "unconsumed",
            Finding::VolumeMismatch { .. } => "volume-mismatch",
            Finding::CoverageGap { .. } => "coverage-gap",
            Finding::DepthExceeded { .. } => "depth-bound",
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::Invalid(e) => write!(f, "{e}"),
            Finding::VolumeMismatch { expected, actual } => {
                write!(
                    f,
                    "schedule sends {actual} bytes, family predicts {expected}"
                )
            }
            Finding::CoverageGap { at, missing } => {
                write!(f, "{missing}'s contribution never reaches {at}")
            }
            Finding::DepthExceeded { depth, bound } => {
                write!(f, "message depth {depth} exceeds the family bound {bound}")
            }
        }
    }
}

/// Structural statistics gathered while verifying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Participating ranks.
    pub ranks: usize,
    /// Total `Send` steps.
    pub messages: usize,
    /// Total sent payload bytes.
    pub total_bytes: u64,
    /// Critical-path figures.
    pub crit: CritPath,
}

/// The analyzer's verdict on one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Structural statistics (valid even when findings exist).
    pub stats: Stats,
    /// All findings, structural first.
    pub findings: Vec<Finding>,
}

impl Report {
    /// No findings of any class.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// What a schedule is *supposed* to be, enabling the semantic lints on
/// top of the structural ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectations {
    /// The algorithm family that generated the schedule.
    pub algorithm: Algorithm,
    /// Root rank of the rooted operations (ignored otherwise).
    pub root: Rank,
    /// Per-pair payload `m` in bytes.
    pub bytes: u32,
}

/// Structural verification only: delegates the interleaving-dependent
/// checks (rank ranges, FIFO matching, sizes, deadlock — now with exact
/// wait-for cycles) to [`Schedule::check`], then layers the
/// interleaving-*independent* match-ambiguity analysis on the
/// happens-before graph. Sharing `check` with the dynamic executor is
/// what keeps the static and runtime passes from drifting.
pub fn verify(s: &Schedule) -> Report {
    let mut findings = Vec::new();
    match s.check() {
        Ok(()) => {
            let g = HbGraph::build(s);
            findings.extend(
                ambiguity::find_ambiguities(&g)
                    .into_iter()
                    .map(Finding::Invalid),
            );
        }
        Err(e) => findings.push(Finding::Invalid(e)),
    }
    Report {
        stats: Stats {
            ranks: s.ranks(),
            messages: s.total_messages(),
            total_bytes: s.total_bytes(),
            crit: critpath::analyze(s),
        },
        findings,
    }
}

/// Full verification: [`verify`] plus the volume, coverage, and depth
/// lints that need to know which algorithm family built the schedule.
pub fn verify_expected(s: &Schedule, exp: &Expectations) -> Report {
    let mut report = verify(s);
    let bound = conservation::expected_volume(
        exp.algorithm,
        s.class(),
        s.ranks() as u64,
        u64::from(exp.bytes),
    );
    if !bound.admits(report.stats.total_bytes) {
        report.findings.push(Finding::VolumeMismatch {
            expected: bound,
            actual: report.stats.total_bytes,
        });
    }
    report.findings.extend(
        conservation::coverage_gaps(s, exp.root)
            .into_iter()
            .map(|(at, missing)| Finding::CoverageGap { at, missing }),
    );
    if let Some(bound) = critpath::depth_bound(exp.algorithm, s.class(), s.ranks()) {
        if report.stats.crit.depth > bound {
            report.findings.push(Finding::DepthExceeded {
                depth: report.stats.crit.depth,
                bound,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::{build, Step};
    use netmodel::OpClass;

    fn exp(algorithm: Algorithm, bytes: u32) -> Expectations {
        Expectations {
            algorithm,
            root: Rank(0),
            bytes,
        }
    }

    #[test]
    fn clean_binomial_bcast_is_clean() {
        let s = build(Algorithm::Binomial, OpClass::Bcast, 16, Rank(0), 1_024)
            .expect("binomial bcast builds");
        let r = verify_expected(&s, &exp(Algorithm::Binomial, 1_024));
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.stats.messages, 15);
        assert_eq!(r.stats.total_bytes, 15 * 1_024);
        assert_eq!(r.stats.crit.depth, 4);
    }

    #[test]
    fn deadlock_reported_with_cycle_code() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(
            Rank(0),
            Step::Recv {
                from: Rank(1),
                bytes: 8,
            },
        );
        s.push(
            Rank(1),
            Step::Recv {
                from: Rank(0),
                bytes: 8,
            },
        );
        let r = verify(&s);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code(), "deadlock-cycle");
    }

    #[test]
    fn seeded_volume_bug_reported() {
        // Halving one message's payload conserves FIFO matching but
        // breaks the family's exact volume.
        let mut s = Schedule::new(OpClass::Bcast, 4);
        s.push(
            Rank(0),
            Step::Send {
                to: Rank(1),
                bytes: 64,
            },
        );
        s.push(
            Rank(0),
            Step::Send {
                to: Rank(2),
                bytes: 64,
            },
        );
        s.push(
            Rank(0),
            Step::Send {
                to: Rank(3),
                bytes: 32,
            },
        );
        for r in 1..4u32 {
            let bytes = if r == 3 { 32 } else { 64 };
            s.push(
                Rank(r as usize),
                Step::Recv {
                    from: Rank(0),
                    bytes,
                },
            );
        }
        let r = verify_expected(&s, &exp(Algorithm::Linear, 64));
        assert!(
            r.findings.iter().any(|f| f.code() == "volume-mismatch"),
            "findings: {:?}",
            r.findings
        );
    }

    #[test]
    fn seeded_depth_bug_reported() {
        // A daisy-chain posing as a binomial bcast: right volume and
        // coverage, wrong latency class.
        let p = 8usize;
        let mut s = Schedule::new(OpClass::Bcast, p);
        for r in 0..p - 1 {
            s.push(
                Rank(r),
                Step::Send {
                    to: Rank(r + 1),
                    bytes: 64,
                },
            );
            s.push(
                Rank(r + 1),
                Step::Recv {
                    from: Rank(r),
                    bytes: 64,
                },
            );
        }
        let r = verify_expected(&s, &exp(Algorithm::Binomial, 64));
        assert_eq!(
            r.findings.iter().map(Finding::code).collect::<Vec<_>>(),
            vec!["depth-bound"],
            "only the depth lint should fire: {:?}",
            r.findings
        );
    }

    #[test]
    fn seeded_coverage_bug_reported() {
        // Reduce where rank 3's contribution is dropped: a duplicate
        // message from rank 1 keeps the volume exactly m(p−1), so only
        // the influence analysis can catch the bug.
        let mut s = Schedule::new(OpClass::Reduce, 4);
        s.push(
            Rank(1),
            Step::Send {
                to: Rank(0),
                bytes: 64,
            },
        );
        s.push(
            Rank(2),
            Step::Send {
                to: Rank(0),
                bytes: 64,
            },
        );
        s.push(
            Rank(1),
            Step::Send {
                to: Rank(0),
                bytes: 64,
            },
        );
        s.push(
            Rank(0),
            Step::Recv {
                from: Rank(1),
                bytes: 64,
            },
        );
        s.push(
            Rank(0),
            Step::Recv {
                from: Rank(2),
                bytes: 64,
            },
        );
        s.push(
            Rank(0),
            Step::Recv {
                from: Rank(1),
                bytes: 64,
            },
        );
        let r = verify_expected(&s, &exp(Algorithm::Binomial, 64));
        assert!(
            r.findings.iter().any(|f| matches!(
                f,
                Finding::CoverageGap {
                    at: Rank(0),
                    missing: Rank(3)
                }
            )),
            "findings: {:?}",
            r.findings
        );
    }

    #[test]
    fn seeded_ambiguity_reported_via_verify() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(
            Rank(0),
            Step::Send {
                to: Rank(1),
                bytes: 8,
            },
        );
        s.push(
            Rank(0),
            Step::Send {
                to: Rank(1),
                bytes: 16,
            },
        );
        s.push(
            Rank(1),
            Step::Recv {
                from: Rank(0),
                bytes: 8,
            },
        );
        s.push(
            Rank(1),
            Step::Recv {
                from: Rank(0),
                bytes: 16,
            },
        );
        let r = verify(&s);
        assert_eq!(
            r.findings.iter().map(Finding::code).collect::<Vec<_>>(),
            vec!["ambiguous-match"]
        );
    }

    #[test]
    fn finding_display_is_informative() {
        let f = Finding::VolumeMismatch {
            expected: VolumeBound::Exact(960),
            actual: 928,
        };
        let msg = f.to_string();
        assert!(msg.contains("928") && msg.contains("960"), "got: {msg}");
        let f = Finding::DepthExceeded { depth: 7, bound: 3 };
        assert!(f.to_string().contains("7") && f.to_string().contains("3"));
        let f = Finding::CoverageGap {
            at: Rank(0),
            missing: Rank(3),
        };
        assert!(f.to_string().contains("r3"));
    }
}
