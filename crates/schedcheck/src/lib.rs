//! # schedcheck — static analysis of collective communication schedules
//!
//! Verifies a compiled [`Schedule`](collectives::Schedule) *without
//! executing it*, proving the structural claims the paper's measurements
//! rest on (§3, Table 3):
//!
//! 1. **Happens-before graph** ([`graph`]) — program order, statically
//!    matched FIFO message edges, and barrier synchronization rounds;
//!    deadlocks are reported as the exact wait-for cycle.
//! 2. **Match-ambiguity races** ([`ambiguity`]) — sends that could match
//!    a different `Recv` under another interleaving, a hazard the
//!    single-interleaving dynamic check cannot see.
//! 3. **Conservation lints** ([`conservation`]) — total bytes against
//!    each algorithm family's prediction (never below the paper's
//!    `f(m, p)` floor) and data-flow coverage of every required
//!    contribution (root reaches all, all reach root, scan prefixes,
//!    complete exchange).
//! 4. **Critical path** ([`critpath`]) — message depth against the
//!    family bound: `⌈log₂ p⌉` for trees and recursive doubling, `p − 1`
//!    for rings and pairwise exchange — the static counterpart of
//!    Table 3's O(log p) vs O(p) startup regimes.
//!
//! The structural pre-checks delegate to [`Schedule::check`], the same
//! routine the dynamic executor runs, so the static and runtime passes
//! share one implementation (and one error vocabulary,
//! [`ScheduleError`](collectives::ScheduleError)) and cannot drift.
//!
//! # Examples
//!
//! ```
//! use collectives::{Algorithm, Rank, build};
//! use netmodel::OpClass;
//! use schedcheck::{verify_expected, Expectations};
//!
//! let s = build(Algorithm::Binomial, OpClass::Bcast, 64, Rank(0), 1_024)?;
//! let report = verify_expected(&s, &Expectations {
//!     algorithm: Algorithm::Binomial,
//!     root: Rank(0),
//!     bytes: 1_024,
//! });
//! assert!(report.is_clean());
//! assert_eq!(report.stats.crit.depth, 6); // log2(64)
//! # Ok::<(), collectives::select::UnsupportedAlgorithm>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod ambiguity;
pub mod conservation;
pub mod critpath;
pub mod graph;
pub mod report;

pub use conservation::{coverage_gaps, expected_volume, VolumeBound};
pub use critpath::{analyze, depth_bound, CritPath};
pub use graph::HbGraph;
pub use report::{verify, verify_expected, Expectations, Finding, Report, Stats};
