//! Property tests: the static analyzer's verdict agrees with the
//! executor.
//!
//! Two directions, over random vendor schedules and random mutations of
//! them (in-repo `desim::check` generators — no external frameworks):
//!
//! - **Soundness of "clean"**: a schedule with no structural finding
//!   (beyond the static-only match-ambiguity lint, which cannot stall
//!   this FIFO executor) always runs to completion with validation
//!   skipped.
//! - **Completeness for stalls**: whenever the executor reports
//!   [`SimMpiError::RankStalled`], the analyzer reported a structural
//!   finding for the same schedule.
//!
//! Plus regression fixtures: one seeded deadlock and one seeded size
//! mismatch per collective, each asserting the structured diagnostic.

#![allow(clippy::unwrap_used)]

use collectives::{build, generic_algorithm, vendor_schedule, Rank, Schedule, ScheduleError, Step};
use desim::check::{forall, Gen};
use mpisim::{ExecConfig, SimMpiError};
use netmodel::{sp2, MachineId, OpClass};
use schedcheck::{verify, verify_expected, Expectations, Finding};

/// Runs `s` on the SP2 model with validation skipped, so stalls surface
/// as typed [`SimMpiError::RankStalled`] instead of being pre-empted.
fn run_unvalidated(s: &Schedule) -> Result<(), SimMpiError> {
    let cfg = ExecConfig {
        skip_validation: true,
        ..ExecConfig::default()
    };
    mpisim::execute(&sp2(), &[s], &cfg).map(|_| ())
}

/// Structurally clean for the executor: no findings except the
/// static-only ambiguity lint (a swap hazard, not a stall).
fn stall_free_statically(s: &Schedule) -> bool {
    verify(s)
        .findings
        .iter()
        .all(|f| f.code() == "ambiguous-match")
}

/// Rebuilds `s` with `edit` applied to each `(rank, step index, step)`;
/// returning `None` drops the step.
fn rebuild(s: &Schedule, mut edit: impl FnMut(Rank, usize, Step) -> Option<Step>) -> Schedule {
    let mut out = Schedule::new(s.class(), s.ranks());
    for (r, prog) in s.iter() {
        for (i, &step) in prog.iter().enumerate() {
            if let Some(st) = edit(r, i, step) {
                out.push(r, st);
            }
        }
    }
    out
}

fn total_steps(s: &Schedule) -> usize {
    s.iter().map(|(_, prog)| prog.len()).sum()
}

/// Applies one random semantics-preserving-or-breaking mutation. All
/// produced ranks stay in range, so the executor cannot index out of
/// bounds even on broken schedules.
fn mutate(g: &mut Gen, s: &Schedule) -> Schedule {
    let n = total_steps(s);
    if n == 0 {
        return s.clone();
    }
    let target = g.usize(0, n - 1);
    let kind = g.usize(0, 2);
    let p = s.ranks();
    let mut flat = 0usize;
    rebuild(s, |_, _, step| {
        let idx = flat;
        flat += 1;
        if idx != target {
            return Some(step);
        }
        match (kind, step) {
            // Drop the step entirely.
            (0, _) => None,
            // Perturb a payload size.
            (1, Step::Recv { from, bytes }) => Some(Step::Recv {
                from,
                bytes: bytes + 7,
            }),
            (1, Step::Send { to, bytes }) => Some(Step::Send {
                to,
                bytes: bytes + 7,
            }),
            // Redirect a receive to a different (in-range) source.
            (2, Step::Recv { from, bytes }) => Some(Step::Recv {
                from: Rank((from.0 + 1) % p),
                bytes,
            }),
            _ => Some(step),
        }
    })
}

#[test]
fn vendor_schedules_are_clean_and_run() {
    forall("vendor points verify clean and execute", 32, |g| {
        let machine = *g.pick(&MachineId::ALL);
        let class = *g.pick(&OpClass::COLLECTIVES);
        let p = g.usize(2, 16);
        let bytes = g.u32(1, 2_048);
        let s = vendor_schedule(machine, class, p, Rank(0), bytes).unwrap();
        let alg = collectives::vendor_algorithm(machine, class);
        let report = verify_expected(
            &s,
            &Expectations {
                algorithm: alg,
                root: Rank(0),
                bytes,
            },
        );
        assert!(
            report.is_clean(),
            "{machine:?}/{class}/p={p}/m={bytes}: {:?}",
            report.findings
        );
        run_unvalidated(&s).unwrap();
    });
}

#[test]
fn static_verdict_agrees_with_executor_on_mutants() {
    forall("mutant verdict agreement", 64, |g| {
        let class = *g.pick(&OpClass::COLLECTIVES);
        let p = g.usize(2, 12);
        let bytes = g.u32(1, 1_024);
        // Generic table: all-software schedules (no HwBarrier), so the
        // executor's stall behaviour is fully message-driven.
        let base = build(generic_algorithm(class), class, p, Rank(0), bytes).unwrap();
        let s = mutate(g, &base);
        let clean = stall_free_statically(&s);
        let ran = run_unvalidated(&s);
        if clean {
            assert!(
                ran.is_ok(),
                "statically stall-free schedule stalled: {ran:?}\nfindings: {:?}",
                verify(&s).findings
            );
        }
        if let Err(e) = &ran {
            assert!(
                matches!(e, SimMpiError::RankStalled { .. }),
                "unexpected executor error: {e:?}"
            );
            assert!(
                !clean,
                "executor stalled but the analyzer reported no structural finding"
            );
        }
    });
}

/// Seeds a wait-for cycle into any schedule with at least one message:
/// the first sender `a` and its receiver `b` each gain a *leading*
/// `Recv` from the other, with no matching sends. Both block at step 0
/// before posting anything, so the stall is a pure two-rank cycle.
fn seed_deadlock(s: &Schedule) -> Schedule {
    let (a, b) = s
        .iter()
        .find_map(|(r, prog)| {
            prog.iter().find_map(|st| match st {
                Step::Send { to, .. } => Some((r, *to)),
                _ => None,
            })
        })
        .expect("schedule has at least one message");
    let mut out = Schedule::new(s.class(), s.ranks());
    out.push(a, Step::Recv { from: b, bytes: 99 });
    out.push(b, Step::Recv { from: a, bytes: 99 });
    for (r, prog) in s.iter() {
        for &step in prog {
            out.push(r, step);
        }
    }
    out
}

/// Bumps the first `Recv`'s expected size, leaving the send untouched.
fn seed_size_mismatch(s: &Schedule) -> Schedule {
    let mut done = false;
    rebuild(s, |_, _, step| match step {
        Step::Recv { from, bytes } if !done => {
            done = true;
            Some(Step::Recv {
                from,
                bytes: bytes + 1,
            })
        }
        other => Some(other),
    })
}

#[test]
fn regression_seeded_deadlock_per_collective() {
    for class in OpClass::COLLECTIVES {
        let base = build(generic_algorithm(class), class, 8, Rank(0), 64).unwrap();
        let bad = seed_deadlock(&base);
        let report = verify(&bad);
        let cycle = report
            .findings
            .iter()
            .find_map(|f| match f {
                Finding::Invalid(ScheduleError::DeadlockCycle { cycle }) => Some(cycle),
                _ => None,
            })
            .unwrap_or_else(|| {
                panic!(
                    "{class}: expected a deadlock cycle, got {:?}",
                    report.findings
                )
            });
        assert!(
            cycle.len() >= 2,
            "{class}: cycle needs both ranks, got {cycle:?}"
        );
        assert!(
            cycle.iter().all(|(_, st)| matches!(st, Step::Recv { .. })),
            "{class}: every blocked step is a Recv"
        );
        // The executor agrees: it stalls.
        assert!(
            matches!(run_unvalidated(&bad), Err(SimMpiError::RankStalled { .. })),
            "{class}: executor must stall on the seeded deadlock"
        );
    }
}

#[test]
fn regression_seeded_size_mismatch_per_collective() {
    for class in OpClass::COLLECTIVES {
        let base = build(generic_algorithm(class), class, 8, Rank(0), 64).unwrap();
        let bad = seed_size_mismatch(&base);
        let report = verify(&bad);
        let found = report.findings.iter().any(|f| {
            matches!(
                f,
                Finding::Invalid(ScheduleError::SizeMismatch { sent, expected, .. })
                    if expected == &(sent + 1)
            )
        });
        assert!(
            found,
            "{class}: expected a size mismatch with expected = sent + 1, got {:?}",
            report.findings
        );
    }
}
