//! Property-based tests of the fitting pipeline: exact surfaces are
//! recovered, noisy surfaces are approximated, and predictions are
//! physically sane. Runs on the in-repo deterministic harness
//! ([`desim::check`]).

use desim::check::forall;
use perfmodel::{fit_term, linear_fit, Growth, Term, TimingFormula};

/// linear_fit recovers exact affine data to machine precision.
#[test]
fn linear_fit_exact_recovery() {
    forall("linear fit exact recovery", 128, |g| {
        let slope = g.f64(-1e3, 1e3);
        let intercept = g.f64(-1e6, 1e6);
        let n = g.usize(2, 49);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, slope * i as f64 + intercept))
            .collect();
        let f = linear_fit(&pts).expect("non-degenerate");
        assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        assert!((f.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        assert!(f.r2 > 1.0 - 1e-9);
    });
}

/// fit_term selects the generating growth family when the coefficient
/// is clearly non-degenerate.
#[test]
fn fit_term_selects_generating_family() {
    forall("fit_term selects generating family", 128, |g| {
        let coeff = g.f64(1.0, 100.0);
        let offset = g.f64(-50.0, 50.0);
        let growth = if g.bool() {
            Growth::Logarithmic
        } else {
            Growth::Linear
        };
        let sizes = [2usize, 4, 8, 16, 32, 64, 128];
        let pts: Vec<(usize, f64)> = sizes
            .iter()
            .map(|&p| (p, coeff * growth.eval(p) + offset))
            .collect();
        let t = fit_term(&pts).expect("fit");
        assert_eq!(t.growth, growth);
        assert!((t.coeff - coeff).abs() < 1e-6 * (1.0 + coeff));
    });
}

/// Predictions are non-negative and monotone in m for non-negative
/// per-byte terms.
#[test]
fn predictions_are_sane() {
    forall("predictions are sane", 128, |g| {
        let s_coeff = g.f64(0.0, 200.0);
        let s_off = g.f64(-100.0, 200.0);
        let b_coeff = g.f64(0.0, 0.2);
        let b_off = g.f64(-0.1, 0.3);
        let p = g.usize(2, 128);
        let m = g.u32(0, 1_000_000);
        let f = TimingFormula::new(
            Term::new(Growth::Linear, s_coeff, s_off),
            Term::new(Growth::Linear, b_coeff, b_off),
        );
        let t = f.predict_us(m, p);
        assert!(t >= 0.0);
        assert!(f.predict_us(m.saturating_add(1024), p) >= t);
        assert_eq!(f.predict_us(0, p), f.startup_us(p));
    });
}

/// Asymptotic bandwidth is the per-m aggregated volume over the
/// per-byte delay, and only defined when that delay is positive.
#[test]
fn bandwidth_definition() {
    forall("bandwidth definition", 128, |g| {
        let b_coeff = g.f64(0.001, 0.2);
        let b_off = g.f64(-0.05, 0.2);
        let p = g.usize(2, 128);
        let agg = g.u64(1, 99_999);
        let f = TimingFormula::new(Term::ZERO, Term::new(Growth::Linear, b_coeff, b_off));
        let per_byte = b_coeff * p as f64 + b_off;
        match f.asymptotic_bandwidth_mb_s(agg, p) {
            Some(r) => {
                assert!(per_byte > 0.0);
                assert!((r - agg as f64 / per_byte).abs() < 1e-9 * r);
            }
            None => assert!(per_byte <= 0.0),
        }
    });
}

/// Fitting noisy logarithmic data still lands near the truth.
#[test]
fn fit_survives_noise() {
    forall("fit survives noise", 128, |g| {
        let coeff = g.f64(5.0, 100.0);
        let offset = g.f64(0.0, 100.0);
        let seed = g.u64(0, u64::MAX);
        let mut rng = desim::SplitMix64::new(seed);
        let sizes = [2usize, 4, 8, 16, 32, 64, 128];
        let pts: Vec<(usize, f64)> = sizes
            .iter()
            .map(|&p| {
                let noise = 1.0 + 0.02 * (rng.next_f64() - 0.5);
                (p, (coeff * (p as f64).log2() + offset) * noise)
            })
            .collect();
        let t = fit_term(&pts).expect("fit");
        assert_eq!(t.growth, Growth::Logarithmic);
        assert!((t.coeff - coeff).abs() < 0.15 * coeff + 1.0, "{t:?}");
    });
}
