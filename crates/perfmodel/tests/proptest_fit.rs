//! Property-based tests of the fitting pipeline: exact surfaces are
//! recovered, noisy surfaces are approximated, and predictions are
//! physically sane.

use perfmodel::{fit_term, linear_fit, Growth, Term, TimingFormula};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// linear_fit recovers exact affine data to machine precision.
    #[test]
    fn linear_fit_exact_recovery(
        slope in -1e3f64..1e3,
        intercept in -1e6f64..1e6,
        n in 2usize..50,
    ) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, slope * i as f64 + intercept))
            .collect();
        let f = linear_fit(&pts).expect("non-degenerate");
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        prop_assert!(f.r2 > 1.0 - 1e-9);
    }

    /// fit_term selects the generating growth family when the
    /// coefficient is clearly non-degenerate.
    #[test]
    fn fit_term_selects_generating_family(
        coeff in 1.0f64..100.0,
        offset in -50.0f64..50.0,
        logarithmic in any::<bool>(),
    ) {
        let growth = if logarithmic { Growth::Logarithmic } else { Growth::Linear };
        let sizes = [2usize, 4, 8, 16, 32, 64, 128];
        let pts: Vec<(usize, f64)> = sizes
            .iter()
            .map(|&p| (p, coeff * growth.eval(p) + offset))
            .collect();
        let t = fit_term(&pts).expect("fit");
        prop_assert_eq!(t.growth, growth);
        prop_assert!((t.coeff - coeff).abs() < 1e-6 * (1.0 + coeff));
    }

    /// Predictions are non-negative and monotone in m for non-negative
    /// per-byte terms.
    #[test]
    fn predictions_are_sane(
        s_coeff in 0.0f64..200.0,
        s_off in -100.0f64..200.0,
        b_coeff in 0.0f64..0.2,
        b_off in -0.1f64..0.3,
        p in 2usize..=128,
        m in 0u32..=1_000_000,
    ) {
        let f = TimingFormula::new(
            Term::new(Growth::Linear, s_coeff, s_off),
            Term::new(Growth::Linear, b_coeff, b_off),
        );
        let t = f.predict_us(m, p);
        prop_assert!(t >= 0.0);
        prop_assert!(f.predict_us(m.saturating_add(1024), p) >= t);
        prop_assert_eq!(f.predict_us(0, p), f.startup_us(p));
    }

    /// Asymptotic bandwidth is the per-m aggregated volume over the
    /// per-byte delay, and only defined when that delay is positive.
    #[test]
    fn bandwidth_definition(
        b_coeff in 0.001f64..0.2,
        b_off in -0.05f64..0.2,
        p in 2usize..=128,
        agg in 1u64..100_000,
    ) {
        let f = TimingFormula::new(
            Term::ZERO,
            Term::new(Growth::Linear, b_coeff, b_off),
        );
        let per_byte = b_coeff * p as f64 + b_off;
        match f.asymptotic_bandwidth_mb_s(agg, p) {
            Some(r) => {
                prop_assert!(per_byte > 0.0);
                prop_assert!((r - agg as f64 / per_byte).abs() < 1e-9 * r);
            }
            None => prop_assert!(per_byte <= 0.0),
        }
    }

    /// Fitting noisy logarithmic data still lands near the truth.
    #[test]
    fn fit_survives_noise(
        coeff in 5.0f64..100.0,
        offset in 0.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let mut rng = desim::SplitMix64::new(seed);
        let sizes = [2usize, 4, 8, 16, 32, 64, 128];
        let pts: Vec<(usize, f64)> = sizes
            .iter()
            .map(|&p| {
                let noise = 1.0 + 0.02 * (rng.next_f64() - 0.5);
                (p, (coeff * (p as f64).log2() + offset) * noise)
            })
            .collect();
        let t = fit_term(&pts).expect("fit");
        prop_assert_eq!(t.growth, Growth::Logarithmic);
        prop_assert!((t.coeff - coeff).abs() < 0.15 * coeff + 1.0, "{t:?}");
    }
}
