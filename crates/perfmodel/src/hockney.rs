//! Hockney's point-to-point communication model.
//!
//! §9 of the paper contrasts its *aggregated bandwidth* metric with
//! Hockney's classical point-to-point characterization
//! (`T(m) = t0 + m / r∞`), noting the latter "is only effective in
//! characterizing point-to-point communications". This module implements
//! that characterization so users can produce both views:
//!
//! * `r∞` — asymptotic bandwidth (MB/s);
//! * `t0` — zero-byte latency (µs);
//! * `n½` — the half-performance message length, `t0 · r∞`, the size at
//!   which half the asymptotic bandwidth is achieved.

use crate::fit::linear_fit;

/// Fitted Hockney parameters for one point-to-point path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HockneyFit {
    /// Zero-byte latency, microseconds.
    pub t0_us: f64,
    /// Asymptotic bandwidth, MB/s.
    pub r_inf_mb_s: f64,
    /// Half-performance message length, bytes.
    pub n_half: f64,
    /// Goodness of the underlying linear fit.
    pub r2: f64,
}

impl HockneyFit {
    /// Predicted transfer time for `m` bytes, microseconds.
    pub fn predict_us(&self, m: u32) -> f64 {
        self.t0_us + f64::from(m) / self.r_inf_mb_s
    }

    /// Effective bandwidth at message length `m`, MB/s.
    pub fn bandwidth_at(&self, m: u32) -> f64 {
        if m == 0 {
            return 0.0;
        }
        f64::from(m) / self.predict_us(m)
    }
}

/// Fits Hockney's `T(m) = t0 + m/r∞` to `(bytes, time_us)` samples.
///
/// Returns `None` for degenerate inputs (fewer than two distinct sizes,
/// or a non-positive fitted rate — a sign the data is not
/// bandwidth-limited over the sampled range).
pub fn fit_hockney(points: &[(u32, f64)]) -> Option<HockneyFit> {
    let xy: Vec<(f64, f64)> = points.iter().map(|&(m, t)| (f64::from(m), t)).collect();
    let f = linear_fit(&xy)?;
    if f.slope <= 0.0 {
        return None;
    }
    let r_inf = 1.0 / f.slope; // B/us == MB/s
    let t0 = f.intercept.max(0.0);
    Some(HockneyFit {
        t0_us: t0,
        r_inf_mb_s: r_inf,
        n_half: t0 * r_inf,
        r2: f.r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hockney_recovered() {
        // t0 = 40 us, r_inf = 35 MB/s (SP2-ish point-to-point).
        let pts: Vec<(u32, f64)> = [64u32, 1_024, 16_384, 65_536]
            .iter()
            .map(|&m| (m, 40.0 + f64::from(m) / 35.0))
            .collect();
        let f = fit_hockney(&pts).expect("fit");
        assert!((f.t0_us - 40.0).abs() < 1e-6);
        assert!((f.r_inf_mb_s - 35.0).abs() < 1e-6);
        assert!((f.n_half - 1400.0).abs() < 1e-3);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn half_performance_definition() {
        let f = HockneyFit {
            t0_us: 10.0,
            r_inf_mb_s: 100.0,
            n_half: 1000.0,
            r2: 1.0,
        };
        // At m = n_half the effective bandwidth is half of r_inf.
        let eff = f.bandwidth_at(1000);
        assert!((eff - 50.0).abs() < 1e-9, "{eff}");
        assert_eq!(f.bandwidth_at(0), 0.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_hockney(&[]).is_none());
        assert!(fit_hockney(&[(64, 1.0)]).is_none());
        // Time shrinking with size: non-physical, no rate.
        assert!(fit_hockney(&[(64, 10.0), (1024, 5.0)]).is_none());
    }
}
