//! Timing breakdowns (Fig. 4) and aggregated-bandwidth series (Fig. 5).

use crate::surface::{fit_surface, FitError};
use harness::Dataset;
use mpisim::OpClass;

/// Startup/transmission decomposition of one measured point (one bar of
/// Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Machine display name.
    pub machine: String,
    /// Operation.
    pub op: OpClass,
    /// Message length, bytes.
    pub bytes: u32,
    /// Machine size.
    pub nodes: usize,
    /// Measured total time, microseconds.
    pub total_us: f64,
    /// Fitted startup latency `T0(p)`, microseconds.
    pub startup_us: f64,
    /// Transmission delay `D = T - T0`, microseconds (clamped at 0).
    pub transmission_us: f64,
}

impl Breakdown {
    /// Fraction of the total spent in startup, in `[0, 1]`.
    pub fn startup_fraction(&self) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        (self.startup_us / self.total_us).clamp(0.0, 1.0)
    }
}

/// Decomposes the measured `T(bytes, nodes)` into startup + transmission
/// using the fitted `T0(p)` surface (the paper's §3 method:
/// `D(m, p) = T(m, p) - T0(p)`).
///
/// # Errors
///
/// Returns [`FitError`] when the surface cannot be fitted or the point
/// is missing.
pub fn breakdown(
    data: &Dataset,
    machine: &str,
    op: OpClass,
    bytes: u32,
    nodes: usize,
) -> Result<Breakdown, FitError> {
    let formula = fit_surface(data, machine, op)?;
    let point = data.at(machine, op, bytes, nodes).ok_or(FitError::NoData)?;
    let startup = formula.startup_us(nodes).min(point.time_us);
    Ok(Breakdown {
        machine: machine.to_string(),
        op,
        bytes,
        nodes,
        total_us: point.time_us,
        startup_us: startup,
        transmission_us: (point.time_us - startup).max(0.0),
    })
}

/// One point of an aggregated-bandwidth curve (Fig. 5): `R∞(p)` from the
/// fitted surface.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthPoint {
    /// Machine size.
    pub nodes: usize,
    /// Asymptotic aggregated bandwidth, MB/s.
    pub mb_s: f64,
}

/// The `R∞(p)` series for `(machine, op)` over the machine sizes present
/// in the dataset (§8, Eq. 4). Sizes where the fitted per-byte delay is
/// non-positive are skipped.
///
/// # Errors
///
/// Returns [`FitError`] when the surface cannot be fitted.
pub fn bandwidth_series(
    data: &Dataset,
    machine: &str,
    op: OpClass,
) -> Result<Vec<BandwidthPoint>, FitError> {
    let formula = fit_surface(data, machine, op)?;
    let mut sizes: Vec<usize> = data.slice(machine, op).map(|m| m.nodes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    Ok(sizes
        .into_iter()
        .filter_map(|p| {
            let agg_per_m = op.aggregated_bytes(1, p as u64);
            formula
                .asymptotic_bandwidth_mb_s(agg_per_m, p)
                .map(|mb_s| BandwidthPoint { nodes: p, mb_s })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::Measurement;

    fn dataset() -> Dataset {
        // T = (10p + 5) + 0.02m exactly.
        let mut d = Dataset::new();
        for &p in &[2usize, 4, 8, 16, 32] {
            for &m in &[4u32, 1024, 65536] {
                let t = 10.0 * p as f64 + 5.0 + 0.02 * f64::from(m);
                d.push(Measurement {
                    machine: "X".into(),
                    op: OpClass::Scatter,
                    bytes: m,
                    nodes: p,
                    time_us: t,
                    min_time_us: t,
                    mean_time_us: t,
                    per_repetition_us: vec![t],
                });
            }
        }
        d
    }

    #[test]
    fn decomposition_sums_to_total() {
        let d = dataset();
        let b = breakdown(&d, "X", OpClass::Scatter, 1024, 16).unwrap();
        assert!((b.startup_us + b.transmission_us - b.total_us).abs() < 1e-9);
        // T0(16) ~ 165 + slope-at-min-m correction; transmission ~ 0.02*1024.
        assert!((b.transmission_us - 20.48).abs() < 1.0, "{b:?}");
        assert!(b.startup_fraction() > 0.8);
    }

    #[test]
    fn missing_point_is_error() {
        let d = dataset();
        assert_eq!(
            breakdown(&d, "X", OpClass::Scatter, 999, 16),
            Err(FitError::NoData)
        );
        assert_eq!(
            breakdown(&d, "Y", OpClass::Scatter, 1024, 16),
            Err(FitError::NoData)
        );
    }

    #[test]
    fn bandwidth_series_monotone_for_scatter() {
        // R∞(p) = (p-1)/perbyte with constant perbyte: grows with p.
        let d = dataset();
        let series = bandwidth_series(&d, "X", OpClass::Scatter).unwrap();
        assert_eq!(series.len(), 5);
        for w in series.windows(2) {
            assert!(w[1].mb_s > w[0].mb_s);
        }
        // perbyte = 0.02 us/B -> R∞(32) = 31/0.02 = 1550 MB/s.
        let last = series.last().unwrap();
        assert!((last.mb_s - 1550.0).abs() < 50.0, "{last:?}");
    }
}
