//! The paper's published results, encoded as data.
//!
//! Table 3's closed-form timing expressions and the headline numbers of
//! §1/§5/§7/§8 serve two purposes: validation oracles for the simulator
//! (are our fitted surfaces in the right territory?) and reference
//! columns in the generated `EXPERIMENTS.md`.

use crate::formula::{Growth, Term, TimingFormula};
use mpisim::{MachineId, OpClass};

/// The paper's Table 3 row for `(machine, op)` — exact published
/// coefficients, times in microseconds.
pub fn table3(machine: MachineId, op: OpClass) -> Option<TimingFormula> {
    use Growth::{Linear as P, Logarithmic as L};
    let t = |g, c, o| Term::new(g, c, o);
    let f = |s, d| Some(TimingFormula::new(s, d));
    match (machine, op) {
        // Barrier (startup only)
        (MachineId::Sp2, OpClass::Barrier) => f(t(L, 123.0, -90.0), Term::ZERO),
        (MachineId::T3d, OpClass::Barrier) => f(t(L, 0.011, 3.0), Term::ZERO),
        (MachineId::Paragon, OpClass::Barrier) => f(t(L, 147.0, -66.0), Term::ZERO),
        // Broadcast
        (MachineId::Sp2, OpClass::Bcast) => f(t(L, 55.0, 30.0), t(L, 0.014, 0.053)),
        (MachineId::T3d, OpClass::Bcast) => f(t(L, 23.0, 12.0), t(L, 0.013, -0.0071)),
        (MachineId::Paragon, OpClass::Bcast) => f(t(L, 52.0, 15.0), t(L, 0.019, -0.022)),
        // Gather
        (MachineId::Sp2, OpClass::Gather) => f(t(P, 3.7, 128.0), t(P, 0.022, -0.011)),
        (MachineId::T3d, OpClass::Gather) => f(t(P, 5.3, 30.0), t(P, 0.0047, 0.0084)),
        (MachineId::Paragon, OpClass::Gather) => f(t(P, 48.0, 15.0), t(P, 0.0081, 0.039)),
        // Scatter
        (MachineId::Sp2, OpClass::Scatter) => f(t(P, 5.8, 77.0), t(P, 0.039, -0.12)),
        (MachineId::T3d, OpClass::Scatter) => f(t(P, 4.3, 67.0), t(P, 0.0057, 0.16)),
        (MachineId::Paragon, OpClass::Scatter) => f(t(P, 18.0, 78.0), t(P, 0.0031, 0.039)),
        // Reduce
        (MachineId::Sp2, OpClass::Reduce) => f(t(L, 63.0, 26.0), t(L, 0.016, 0.071)),
        (MachineId::T3d, OpClass::Reduce) => f(t(L, 34.0, 49.0), t(L, 0.061, -0.00035)),
        (MachineId::Paragon, OpClass::Reduce) => f(t(L, 77.0, 3.6), t(L, 0.16, -0.028)),
        // Scan (startup logarithmic, per-byte linear in p)
        (MachineId::Sp2, OpClass::Scan) => f(t(L, 100.0, -43.0), t(P, 0.0010, 0.23)),
        (MachineId::T3d, OpClass::Scan) => f(t(L, 28.0, 41.0), t(P, 0.0046, 0.12)),
        (MachineId::Paragon, OpClass::Scan) => f(t(L, 10.0, 73.0), t(P, 0.0033, 0.28)),
        // Total exchange
        (MachineId::Sp2, OpClass::Alltoall) => f(t(P, 24.0, 90.0), t(P, 0.082, -0.29)),
        (MachineId::T3d, OpClass::Alltoall) => f(t(P, 26.0, 8.6), t(P, 0.038, -0.12)),
        (MachineId::Paragon, OpClass::Alltoall) => f(t(P, 97.0, 82.0), t(P, 0.073, -0.10)),
        (_, OpClass::PointToPoint) => None,
    }
}

/// §4: the T3D's measured startup latencies at 64 nodes, microseconds.
/// Order: broadcast, total exchange, scatter, gather, scan, reduce.
pub const T3D_64_NODE_LATENCIES_US: [(OpClass, f64); 6] = [
    (OpClass::Bcast, 150.0),
    (OpClass::Alltoall, 1700.0),
    (OpClass::Scatter, 298.0),
    (OpClass::Gather, 365.0),
    (OpClass::Scan, 209.0),
    (OpClass::Reduce, 253.0),
];

/// §8: aggregated bandwidth of the 64-node total exchange, GB/s, for
/// (T3D, Paragon, SP2).
pub const ALLTOALL_64_BANDWIDTH_GB_S: [(MachineId, f64); 3] = [
    (MachineId::T3d, 1.745),
    (MachineId::Paragon, 0.879),
    (MachineId::Sp2, 0.818),
];

/// §5: the SP2's 64-node, 64 KB total exchange takes 317 ms.
pub const SP2_ALLTOALL_64KB_64N_MS: f64 = 317.0;

/// §1: the T3D hardwired barrier completes in about 3 µs.
pub const T3D_BARRIER_US: f64 = 3.0;

/// §4: per-hop network latencies quoted by the paper, nanoseconds, for
/// (SP2, T3D, Paragon).
pub const HOP_LATENCIES_NS: [(MachineId, f64); 3] = [
    (MachineId::Sp2, 125.0),
    (MachineId::T3d, 20.0),
    (MachineId::Paragon, 40.0),
];

/// §5: link bandwidths quoted by the paper, MB/s.
pub const LINK_BANDWIDTHS_MB_S: [(MachineId, f64); 3] = [
    (MachineId::T3d, 300.0),
    (MachineId::Paragon, 175.0),
    (MachineId::Sp2, 40.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_is_complete_for_measured_ops() {
        for machine in MachineId::ALL {
            for op in OpClass::COLLECTIVES {
                assert!(table3(machine, op).is_some(), "{machine}/{op}");
            }
            assert!(table3(machine, OpClass::PointToPoint).is_none());
        }
    }

    #[test]
    fn internal_consistency_of_headlines() {
        // The published formulas reproduce the published headlines.
        let sp2 = table3(MachineId::Sp2, OpClass::Alltoall).unwrap();
        let ms = sp2.predict_us(65_536, 64) / 1000.0;
        assert!(
            (ms - SP2_ALLTOALL_64KB_64N_MS).abs() / SP2_ALLTOALL_64KB_64N_MS < 0.05,
            "{ms} ms vs 317 ms"
        );
        for (machine, gb_s) in ALLTOALL_64_BANDWIDTH_GB_S {
            let f = table3(machine, OpClass::Alltoall).unwrap();
            let r = f.asymptotic_bandwidth_mb_s(64 * 63, 64).unwrap() / 1000.0;
            assert!((r - gb_s).abs() / gb_s < 0.02, "{machine}: {r} vs {gb_s}");
        }
        let t3d_barrier = table3(MachineId::T3d, OpClass::Barrier).unwrap();
        assert!((t3d_barrier.startup_us(64) - 3.066).abs() < 0.01);
    }

    #[test]
    fn startup_growth_families_match_section8() {
        // O(log p): barrier, scan, reduce, broadcast. O(p): the rest.
        for machine in MachineId::ALL {
            for op in OpClass::COLLECTIVES {
                let f = table3(machine, op).unwrap();
                let expect_log = op.startup_is_logarithmic();
                assert_eq!(
                    f.startup.growth == Growth::Logarithmic,
                    expect_log,
                    "{machine}/{op}"
                );
            }
        }
    }

    #[test]
    fn t3d_fastest_in_most_startup_latencies() {
        // Fig. 1's narrative: T3D lowest startup except scan (where the
        // Paragon wins at scale).
        for op in OpClass::COLLECTIVES {
            let t3d = table3(MachineId::T3d, op).unwrap().startup_us(64);
            let sp2 = table3(MachineId::Sp2, op).unwrap().startup_us(64);
            let pg = table3(MachineId::Paragon, op).unwrap().startup_us(64);
            match op {
                OpClass::Scan => {
                    assert!(pg < t3d, "Paragon scan beats T3D at 64 nodes");
                }
                OpClass::Alltoall => {
                    // The published fits cross slightly at p = 64 (SP2
                    // 1626 us vs T3D 1673 us); the *measured* Fig. 1b has
                    // them nearly tied. Require near-tie, not strict win.
                    assert!(t3d <= sp2 * 1.05 && t3d <= pg, "{t3d} vs {sp2}/{pg}");
                }
                _ => {
                    // 5% slack: the published gather fits also cross
                    // marginally at p = 64 (T3D 369 us vs SP2 365 us).
                    assert!(t3d <= sp2 * 1.05 && t3d <= pg, "{op}: {t3d} vs {sp2}/{pg}");
                }
            }
        }
    }
}
