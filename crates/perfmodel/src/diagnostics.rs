//! Fit-quality diagnostics for drift detection.
//!
//! A calibration regression can hide behind a passing test suite: the
//! simulator still runs, the fits still converge, but the fitted surface
//! slowly drifts away from the measurements (or from the paper's
//! published Table 3). This module quantifies fit quality as plain
//! numbers — pseudo-R², relative residuals, and the accuracy of the
//! fitted formula against both the dataset it was fitted on and the
//! paper's oracle — and exports them as gauges so the perfgate pipeline
//! can alarm on drift between runs.

use crate::accuracy::{score, Accuracy};
use crate::formula::TimingFormula;
use crate::surface::{fit_surface, FitError};
use harness::Dataset;
use mpisim::{Machine, MachineId, OpClass};

/// Fit-quality numbers for one `(machine, op)` surface.
#[derive(Debug, Clone)]
pub struct FitDiagnostics {
    /// Machine display name (as stored in the dataset).
    pub machine: String,
    /// Operation class.
    pub op: OpClass,
    /// The fitted Table-3-style formula.
    pub formula: TimingFormula,
    /// Points the diagnostics were computed over.
    pub points: usize,
    /// Pseudo-R² of the formula's predictions against the measurements
    /// (`1 - SS_res / SS_tot`); 1 is a perfect fit, 0 no better than the
    /// mean, negative worse than the mean.
    pub r2: f64,
    /// Mean `|predicted - measured| / measured` over the dataset.
    pub mean_rel_residual: f64,
    /// Largest `|predicted - measured| / measured` over the dataset.
    pub max_rel_residual: f64,
    /// Accuracy of the fitted formula against its own dataset.
    pub self_accuracy: Accuracy,
    /// Accuracy of the paper's published Table-3 formula against the
    /// same dataset, when the machine has a published entry.
    pub paper_accuracy: Option<Accuracy>,
}

/// Maps a dataset machine display name (e.g. `"IBM SP2"`) back to its
/// [`MachineId`]. Returns `None` for synthetic machines.
pub fn machine_id_of(name: &str) -> Option<MachineId> {
    MachineId::ALL
        .into_iter()
        .find(|&id| Machine::from_id(id).name() == name)
}

/// Short metric-key segment for a machine: `sp2` / `t3d` / `paragon`
/// for the paper's machines, a lowercased slug otherwise.
fn machine_key(name: &str) -> String {
    match machine_id_of(name) {
        Some(id) => id.name().to_ascii_lowercase(),
        None => name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect(),
    }
}

/// Fits `(machine, op)` from `data` and computes its diagnostics.
///
/// # Errors
///
/// Propagates [`FitError`] when the dataset lacks the needed grid.
pub fn diagnose(data: &Dataset, machine: &str, op: OpClass) -> Result<FitDiagnostics, FitError> {
    let formula = fit_surface(data, machine, op)?;
    // Residual statistics over every positive measurement.
    let mut n = 0usize;
    let mut mean_t = 0.0f64;
    let mut rel_sum = 0.0f64;
    let mut rel_max = 0.0f64;
    let pts: Vec<(f64, f64)> = data
        .slice(machine, op)
        .filter(|m| m.time_us > 0.0)
        .map(|m| (m.time_us, formula.predict_us(m.bytes, m.nodes)))
        .collect();
    for &(t, pred) in &pts {
        n += 1;
        mean_t += t;
        let rel = (pred - t).abs() / t;
        rel_sum += rel;
        rel_max = rel_max.max(rel);
    }
    if n == 0 {
        return Err(FitError::NoData);
    }
    mean_t /= n as f64;
    let ss_tot: f64 = pts.iter().map(|&(t, _)| (t - mean_t).powi(2)).sum();
    let ss_res: f64 = pts.iter().map(|&(t, pred)| (t - pred).powi(2)).sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res == 0.0 {
        1.0
    } else {
        0.0
    };
    let self_accuracy = score(data, machine, op, &formula).ok_or(FitError::NoData)?;
    let paper_accuracy = machine_id_of(machine)
        .and_then(|id| crate::paper::table3(id, op))
        .and_then(|f| score(data, machine, op, &f));
    Ok(FitDiagnostics {
        machine: machine.to_string(),
        op,
        formula,
        points: n,
        r2,
        mean_rel_residual: rel_sum / n as f64,
        max_rel_residual: rel_max,
        self_accuracy,
        paper_accuracy,
    })
}

/// Diagnoses every `(machine, op)` pair present in `data`; pairs that
/// cannot be fitted are skipped.
pub fn diagnose_all(data: &Dataset) -> Vec<FitDiagnostics> {
    let mut out = Vec::new();
    for machine in data.machines() {
        for op in data.ops() {
            if let Ok(d) = diagnose(data, &machine, op) {
                out.push(d);
            }
        }
    }
    out
}

impl FitDiagnostics {
    /// Exports the diagnostics as gauges under
    /// `fit.<machine>.<op>.*` — the drift signals perfgate snapshots
    /// alongside wall-clock numbers.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        let k = format!("fit.{}.{}", machine_key(&self.machine), self.op.key());
        reg.gauge(format!("{k}.points"), self.points as f64);
        reg.gauge(format!("{k}.r2"), self.r2);
        reg.gauge(format!("{k}.mean_rel_residual"), self.mean_rel_residual);
        reg.gauge(format!("{k}.max_rel_residual"), self.max_rel_residual);
        reg.gauge(format!("{k}.mape"), self.self_accuracy.mape);
        reg.gauge(format!("{k}.bias"), self.self_accuracy.bias);
        if let Some(p) = &self.paper_accuracy {
            reg.gauge(format!("{k}.paper_mape"), p.mape);
            reg.gauge(format!("{k}.paper_bias"), p.bias);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::Measurement;

    fn synthetic(machine: &str, noise: f64) -> Dataset {
        let mut d = Dataset::new();
        for (i, &p) in [2usize, 4, 8, 16, 32, 64].iter().enumerate() {
            for &m in &[4u32, 64, 1024, 16384, 65536] {
                // T = (5p + 50) + 0.02m with optional multiplicative noise.
                let wiggle = 1.0 + noise * if i % 2 == 0 { 1.0 } else { -1.0 };
                let t = ((5.0 * p as f64 + 50.0) + 0.02 * f64::from(m)) * wiggle;
                d.push(Measurement {
                    machine: machine.into(),
                    op: OpClass::Scatter,
                    bytes: m,
                    nodes: p,
                    time_us: t,
                    min_time_us: t,
                    mean_time_us: t,
                    per_repetition_us: vec![t],
                });
            }
        }
        d
    }

    #[test]
    fn exact_surface_scores_near_perfect_r2() {
        let d = synthetic("X", 0.0);
        let diag = diagnose(&d, "X", OpClass::Scatter).unwrap();
        assert!(diag.r2 > 0.999, "r2 = {}", diag.r2);
        assert!(diag.max_rel_residual < 0.05);
        assert!(diag.paper_accuracy.is_none(), "synthetic machine");
    }

    #[test]
    fn noise_lowers_r2() {
        let clean = diagnose(&synthetic("X", 0.0), "X", OpClass::Scatter).unwrap();
        let noisy = diagnose(&synthetic("X", 0.3), "X", OpClass::Scatter).unwrap();
        assert!(noisy.r2 < clean.r2);
        assert!(noisy.max_rel_residual > clean.max_rel_residual);
    }

    #[test]
    fn paper_machines_resolve() {
        assert_eq!(machine_id_of("IBM SP2"), Some(MachineId::Sp2));
        assert_eq!(machine_id_of("Cray T3D"), Some(MachineId::T3d));
        assert_eq!(machine_id_of("Intel Paragon"), Some(MachineId::Paragon));
        assert_eq!(machine_id_of("VAX"), None);
        assert_eq!(machine_key("IBM SP2"), "sp2");
        assert_eq!(machine_key("My Machine-2"), "my_machine_2");
    }

    #[test]
    fn exports_fit_gauges() {
        let d = synthetic("X", 0.0);
        let diag = diagnose(&d, "X", OpClass::Scatter).unwrap();
        let mut reg = obs::MetricsRegistry::new();
        diag.export_metrics(&mut reg);
        assert!(reg.get("fit.x.scatter.r2").unwrap().as_f64().unwrap() > 0.999);
        assert!(reg.get("fit.x.scatter.points").is_some());
        assert!(reg.get("fit.x.scatter.mape").is_some());
        assert!(reg.get("fit.x.scatter.paper_mape").is_none());
    }

    #[test]
    fn real_measurements_diagnose_against_paper() {
        // A small real sweep on the T3D: the paper oracle must engage.
        let data = harness::SweepBuilder::new()
            .machines([Machine::t3d()])
            .ops([OpClass::Bcast])
            .message_sizes([16, 1024, 16384])
            .node_counts([4, 16, 64])
            .protocol(harness::Protocol::quick())
            .run()
            .unwrap();
        let all = diagnose_all(&data);
        assert_eq!(all.len(), 1);
        let diag = &all[0];
        assert!(diag.paper_accuracy.is_some(), "T3D bcast is in Table 3");
        assert!(diag.r2 > 0.5, "fit tracks its own data: r2 = {}", diag.r2);
    }
}
