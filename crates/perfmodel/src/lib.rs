//! # perfmodel — the paper's performance model and fitting pipeline
//!
//! Implements §3 and §8 of the paper:
//!
//! * `T(m, p) = T0(p) + D(m, p)` — collective messaging time decomposed
//!   into startup latency and transmission delay;
//! * curve fitting of both terms against linear (`a·p + b`) and
//!   logarithmic (`a·log2 p + b`) growth, keeping the better basis
//!   ([`fit_term`], [`fit_surface`]);
//! * Table-3-style closed forms ([`TimingFormula`]) with prediction and
//!   pretty-printing;
//! * aggregated bandwidth `R∞(p) = lim f(m,p)/D(m,p)` (Eq. 4) and timing
//!   breakdowns ([`breakdown()`](breakdown::breakdown));
//! * the paper's published coefficients and headline numbers as
//!   validation oracles ([`paper`]).
//!
//! # Examples
//!
//! Predict the paper's §8 worked example — T3D total exchange of 512 B
//! over 64 nodes in 2.86 ms:
//!
//! ```
//! use perfmodel::paper::table3;
//! use mpisim::{MachineId, OpClass};
//!
//! let f = table3(MachineId::T3d, OpClass::Alltoall).unwrap();
//! let ms = f.predict_us(512, 64) / 1000.0;
//! assert!((ms - 2.86).abs() < 0.05);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod accuracy;
pub mod breakdown;
pub mod crossover;
pub mod diagnostics;
pub mod fit;
pub mod formula;
pub mod hockney;
pub mod paper;
pub mod scaling;
pub mod surface;

pub use accuracy::{score, split_by_nodes, Accuracy};
pub use breakdown::{bandwidth_series, breakdown, BandwidthPoint, Breakdown};
pub use crossover::{crossover, Crossover};
pub use diagnostics::{diagnose, diagnose_all, FitDiagnostics};
pub use fit::{linear_fit, LinFit};
pub use formula::{fit_term, Growth, Term, TimingFormula};
pub use hockney::{fit_hockney, HockneyFit};
pub use scaling::{amdahl_speedup, isoefficiency_m, karp_flatt, ScalingCurve};
pub use surface::{fit_all, fit_surface, FitError};
