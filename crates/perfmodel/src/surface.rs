//! Fitting the full `T(m, p)` surface of one operation on one machine,
//! mirroring the paper's §3 procedure:
//!
//! 1. approximate `T0(p)` by the shortest-message timing at each `p`;
//! 2. for each `p`, extract the per-byte slope of `T` vs `m` by linear
//!    regression;
//! 3. fit both series against `a·p + b` and `a·log2 p + b`, keeping the
//!    better basis.

use crate::fit::linear_fit;
use crate::formula::{fit_term, Term, TimingFormula};
use harness::Dataset;
use mpisim::OpClass;

/// Why a surface fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No measurements for the requested (machine, op).
    NoData,
    /// Too few distinct machine sizes to fit a growth term.
    TooFewSizes {
        /// Distinct sizes found.
        found: usize,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NoData => write!(f, "no measurements to fit"),
            FitError::TooFewSizes { found } => {
                write!(f, "need at least 2 distinct machine sizes, found {found}")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Fits the Table-3 formula for `op` on `machine` from `data`.
///
/// Operations without a message-length dimension (barrier) get a zero
/// per-byte term.
///
/// # Errors
///
/// Returns [`FitError`] when the dataset lacks the needed grid points.
pub fn fit_surface(data: &Dataset, machine: &str, op: OpClass) -> Result<TimingFormula, FitError> {
    let grid = data.grid(machine, op);
    if grid.is_empty() {
        return Err(FitError::NoData);
    }
    let mut sizes: Vec<usize> = grid.iter().map(|&(_, p, _)| p).collect();
    sizes.sort_unstable();
    sizes.dedup();
    if sizes.len() < 2 {
        return Err(FitError::TooFewSizes { found: sizes.len() });
    }

    // Step 1: T0(p) ~ the shortest-message timing at each p.
    let min_m = grid.iter().map(|&(m, _, _)| m).min().expect("non-empty");
    let t0_series: Vec<(usize, f64)> = sizes
        .iter()
        .filter_map(|&p| {
            grid.iter()
                .find(|&&(m, gp, _)| m == min_m && gp == p)
                .map(|&(_, _, t)| (p, t))
        })
        .collect();
    let startup = fit_term(&t0_series).ok_or(FitError::TooFewSizes {
        found: t0_series.len(),
    })?;

    // Step 2: per-byte slope at each p over the m dimension.
    let mut slope_series: Vec<(usize, f64)> = Vec::new();
    for &p in &sizes {
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .filter(|&&(_, gp, _)| gp == p)
            .map(|&(m, _, t)| (f64::from(m), t))
            .collect();
        if let Some(f) = linear_fit(&pts) {
            slope_series.push((p, f.slope));
        }
    }

    // Step 3: fit the per-byte series over p (zero when the operation has
    // no m dimension, e.g. barrier).
    let per_byte = if slope_series.len() < 2 {
        Term::ZERO
    } else {
        fit_term(&slope_series).unwrap_or(Term::ZERO)
    };

    Ok(TimingFormula::new(startup, per_byte))
}

/// Fits Table-3 formulas for every (machine, op) pair present in `data`.
/// Pairs that cannot be fitted are skipped.
pub fn fit_all(data: &Dataset) -> Vec<(String, OpClass, TimingFormula)> {
    let mut out = Vec::new();
    for machine in data.machines() {
        for op in data.ops() {
            if let Ok(f) = fit_surface(data, &machine, op) {
                out.push((machine.clone(), op, f));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Growth;
    use harness::Measurement;

    /// A synthetic dataset following an exact formula.
    fn synthetic(
        machine: &str,
        op: OpClass,
        t0: impl Fn(usize) -> f64,
        slope: impl Fn(usize) -> f64,
    ) -> Dataset {
        let mut d = Dataset::new();
        for &p in &[2usize, 4, 8, 16, 32, 64] {
            for &m in &[4u32, 64, 1024, 16384, 65536] {
                let t = t0(p) + slope(p) * f64::from(m);
                d.push(Measurement {
                    machine: machine.into(),
                    op,
                    bytes: m,
                    nodes: p,
                    time_us: t,
                    min_time_us: t,
                    mean_time_us: t,
                    per_repetition_us: vec![t],
                });
            }
        }
        d
    }

    #[test]
    fn recovers_linear_surface() {
        // Scatter-like: T = (5.8p + 77) + (0.039p + 0.1)m
        let d = synthetic(
            "X",
            OpClass::Scatter,
            |p| 5.8 * p as f64 + 77.0,
            |p| 0.039 * p as f64 + 0.1,
        );
        let f = fit_surface(&d, "X", OpClass::Scatter).unwrap();
        assert_eq!(f.startup.growth, Growth::Linear);
        // T0 is approximated by the m = 4 timings (the paper's method),
        // so the fitted coefficient absorbs 4·(per-byte slope).
        assert!(
            (f.startup.coeff - (5.8 + 4.0 * 0.039)).abs() < 0.01,
            "{:?}",
            f.startup
        );
        assert_eq!(f.per_byte.growth, Growth::Linear);
        assert!((f.per_byte.coeff - 0.039).abs() < 0.001);
        // Prediction error small across the grid.
        let pred = f.predict_us(1024, 32);
        let truth = (5.8 * 32.0 + 77.0) + (0.039 * 32.0 + 0.1) * 1024.0;
        assert!((pred - truth).abs() / truth < 0.05);
    }

    #[test]
    fn recovers_logarithmic_surface() {
        // Bcast-like: T = (55 log p + 30) + (0.014 log p + 0.053)m
        let d = synthetic(
            "X",
            OpClass::Bcast,
            |p| 55.0 * (p as f64).log2() + 30.0,
            |p| 0.014 * (p as f64).log2() + 0.053,
        );
        let f = fit_surface(&d, "X", OpClass::Bcast).unwrap();
        assert_eq!(f.startup.growth, Growth::Logarithmic);
        assert!((f.startup.coeff - 55.0).abs() < 1.5);
        assert_eq!(f.per_byte.growth, Growth::Logarithmic);
    }

    #[test]
    fn barrier_gets_zero_per_byte() {
        let mut d = Dataset::new();
        for &p in &[2usize, 4, 8, 16] {
            d.push(Measurement {
                machine: "X".into(),
                op: OpClass::Barrier,
                bytes: 0,
                nodes: p,
                time_us: 123.0 * (p as f64).log2() - 90.0,
                min_time_us: 0.0,
                mean_time_us: 0.0,
                per_repetition_us: vec![],
            });
        }
        let f = fit_surface(&d, "X", OpClass::Barrier).unwrap();
        assert!(f.per_byte.is_zero());
        assert_eq!(f.startup.growth, Growth::Logarithmic);
        assert!((f.startup.coeff - 123.0).abs() < 1e-6);
    }

    #[test]
    fn errors_on_missing_or_thin_data() {
        let d = Dataset::new();
        assert_eq!(fit_surface(&d, "X", OpClass::Bcast), Err(FitError::NoData));

        let mut d = Dataset::new();
        d.push(Measurement {
            machine: "X".into(),
            op: OpClass::Bcast,
            bytes: 4,
            nodes: 8,
            time_us: 1.0,
            min_time_us: 1.0,
            mean_time_us: 1.0,
            per_repetition_us: vec![],
        });
        assert_eq!(
            fit_surface(&d, "X", OpClass::Bcast),
            Err(FitError::TooFewSizes { found: 1 })
        );
    }

    #[test]
    fn fit_all_covers_pairs() {
        let mut d = synthetic("A", OpClass::Bcast, |p| p as f64, |_| 0.01);
        d.extend(synthetic(
            "B",
            OpClass::Gather,
            |p| 2.0 * p as f64,
            |_| 0.02,
        ));
        let fits = fit_all(&d);
        assert_eq!(fits.len(), 2);
        assert!(fits
            .iter()
            .any(|(m, op, _)| m == "A" && *op == OpClass::Bcast));
    }
}
