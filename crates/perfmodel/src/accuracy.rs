//! Prediction-accuracy metrics.
//!
//! The paper closes §8 arguing the fitted formulas can "predict MPP
//! performance" and guide optimization; this module quantifies how well
//! a [`TimingFormula`] predicts a measured [`Dataset`] — the same
//! scoring used to validate our calibration against the published
//! Table 3 and to compare fitted models against held-out measurements.

use crate::formula::TimingFormula;
use harness::Dataset;
use mpisim::OpClass;

/// Error statistics of a formula against a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Number of points scored.
    pub points: usize,
    /// Mean absolute percentage error, in `[0, ∞)` (0.1 = 10%).
    pub mape: f64,
    /// Geometric mean of `predicted / measured` (1 = unbiased).
    pub bias: f64,
    /// Largest `predicted / measured` ratio.
    pub worst_over: f64,
    /// Smallest `predicted / measured` ratio.
    pub worst_under: f64,
}

impl Accuracy {
    /// True when every prediction is within `factor` of its measurement
    /// (e.g. `within(2.0)` = factor-of-two accuracy everywhere).
    pub fn within(&self, factor: f64) -> bool {
        self.worst_over <= factor && self.worst_under >= 1.0 / factor
    }
}

/// Scores `formula` against every measurement of `(machine, op)` in
/// `data`. Points where the measurement is non-positive are skipped.
///
/// Returns `None` when no scoreable points exist.
pub fn score(
    data: &Dataset,
    machine: &str,
    op: OpClass,
    formula: &TimingFormula,
) -> Option<Accuracy> {
    let mut n = 0usize;
    let mut abs_pct = 0.0f64;
    let mut log_sum = 0.0f64;
    let mut worst_over = f64::MIN;
    let mut worst_under = f64::MAX;
    for m in data.slice(machine, op) {
        if m.time_us <= 0.0 {
            continue;
        }
        let pred = formula.predict_us(m.bytes, m.nodes);
        if pred <= 0.0 {
            continue;
        }
        let ratio = pred / m.time_us;
        n += 1;
        abs_pct += (ratio - 1.0).abs();
        log_sum += ratio.ln();
        worst_over = worst_over.max(ratio);
        worst_under = worst_under.min(ratio);
    }
    if n == 0 {
        return None;
    }
    Some(Accuracy {
        points: n,
        mape: abs_pct / n as f64,
        bias: (log_sum / n as f64).exp(),
        worst_over,
        worst_under,
    })
}

/// Splits a dataset's grid into fitting and hold-out halves by machine
/// size: sizes at even positions (sorted) train, odd positions test.
/// Returns `(train, test)`.
pub fn split_by_nodes(data: &Dataset, machine: &str, op: OpClass) -> (Dataset, Dataset) {
    let mut sizes: Vec<usize> = data.slice(machine, op).map(|m| m.nodes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let train_sizes: Vec<usize> = sizes.iter().copied().step_by(2).collect();
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    for m in data.slice(machine, op) {
        if train_sizes.contains(&m.nodes) {
            train.push(m.clone());
        } else {
            test.push(m.clone());
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Growth, Term};
    use harness::Measurement;

    fn point(bytes: u32, nodes: usize, t: f64) -> Measurement {
        Measurement {
            machine: "X".into(),
            op: OpClass::Scatter,
            bytes,
            nodes,
            time_us: t,
            min_time_us: t,
            mean_time_us: t,
            per_repetition_us: vec![t],
        }
    }

    fn formula() -> TimingFormula {
        TimingFormula::new(
            Term::new(Growth::Linear, 5.0, 50.0),
            Term::new(Growth::Linear, 0.02, 0.0),
        )
    }

    #[test]
    fn perfect_predictions_score_zero_error() {
        let f = formula();
        let data: Dataset = [(4u32, 8usize), (1024, 8), (4, 32), (1024, 32)]
            .into_iter()
            .map(|(m, p)| point(m, p, f.predict_us(m, p)))
            .collect();
        let a = score(&data, "X", OpClass::Scatter, &f).unwrap();
        assert_eq!(a.points, 4);
        assert!(a.mape < 1e-12);
        assert!((a.bias - 1.0).abs() < 1e-12);
        assert!(a.within(1.0001));
    }

    #[test]
    fn systematic_overprediction_shows_in_bias() {
        let f = formula();
        let data: Dataset = [(4u32, 8usize), (1024, 32)]
            .into_iter()
            .map(|(m, p)| point(m, p, f.predict_us(m, p) / 2.0)) // measured half
            .collect();
        let a = score(&data, "X", OpClass::Scatter, &f).unwrap();
        assert!((a.bias - 2.0).abs() < 1e-9, "{a:?}");
        assert!((a.mape - 1.0).abs() < 1e-9, "100% high");
        assert!(!a.within(1.5));
        assert!(a.within(2.0 + 1e-9));
    }

    #[test]
    fn empty_or_degenerate_is_none() {
        let data = Dataset::new();
        assert!(score(&data, "X", OpClass::Scatter, &formula()).is_none());
        let data: Dataset = [point(4, 8, 0.0)].into_iter().collect();
        assert!(score(&data, "X", OpClass::Scatter, &formula()).is_none());
    }

    #[test]
    fn split_alternates_sizes() {
        let f = formula();
        let data: Dataset = [2usize, 4, 8, 16, 32, 64]
            .into_iter()
            .flat_map(|p| [(4u32, p), (1024, p)])
            .map(|(m, p)| point(m, p, f.predict_us(m, p)))
            .collect();
        let (train, test) = split_by_nodes(&data, "X", OpClass::Scatter);
        assert_eq!(train.len(), 6); // sizes 2, 8, 32
        assert_eq!(test.len(), 6); // sizes 4, 16, 64
        let train_sizes: std::collections::HashSet<usize> = train.iter().map(|m| m.nodes).collect();
        assert_eq!(train_sizes, [2, 8, 32].into_iter().collect());
    }

    #[test]
    fn cross_validation_on_synthetic_surface() {
        // Fit on the training half, score on the held-out half: the
        // surface is exact, so hold-out error stays tiny.
        let f = formula();
        let data: Dataset = [2usize, 4, 8, 16, 32, 64]
            .into_iter()
            .flat_map(|p| [(4u32, p), (256, p), (16_384, p)])
            .map(|(m, p)| point(m, p, f.predict_us(m, p)))
            .collect();
        let (train, test) = split_by_nodes(&data, "X", OpClass::Scatter);
        let fitted = crate::surface::fit_surface(&train, "X", OpClass::Scatter).unwrap();
        let a = score(&test, "X", OpClass::Scatter, &fitted).unwrap();
        assert!(a.mape < 0.05, "{a:?}");
    }
}
