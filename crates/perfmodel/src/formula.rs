//! Table-3-style timing formulas: `T(m, p) = T0(p) + D(m, p)` with
//! `T0(p) = a·f(p) + b` and `D(m, p) = (c·f(p) + d)·m`, where `f` is
//! either `p` (linear growth) or `log2 p` (logarithmic growth).

use crate::fit::{linear_fit, LinFit};
use core::fmt;

/// Growth family of a term in the timing formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Growth {
    /// Term grows like `p` (root- or round-serialized operations).
    Linear,
    /// Term grows like `log2 p` (tree-structured operations).
    Logarithmic,
}

impl Growth {
    /// Evaluates the basis function at machine size `p`.
    pub fn eval(self, p: usize) -> f64 {
        match self {
            Growth::Linear => p as f64,
            Growth::Logarithmic => (p.max(1) as f64).log2(),
        }
    }

    /// The paper's notation for the basis.
    pub fn symbol(self) -> &'static str {
        match self {
            Growth::Linear => "p",
            Growth::Logarithmic => "log p",
        }
    }
}

/// One affine term `coeff·f(p) + offset` of the formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// Growth basis.
    pub growth: Growth,
    /// Coefficient on the basis function.
    pub coeff: f64,
    /// Constant offset.
    pub offset: f64,
    /// Goodness of the fit that produced this term (1 when exact or
    /// hand-specified).
    pub r2: f64,
}

impl Term {
    /// A term that is identically zero.
    pub const ZERO: Term = Term {
        growth: Growth::Linear,
        coeff: 0.0,
        offset: 0.0,
        r2: 1.0,
    };

    /// Builds a term without fit metadata (r² = 1).
    pub fn new(growth: Growth, coeff: f64, offset: f64) -> Self {
        Term {
            growth,
            coeff,
            offset,
            r2: 1.0,
        }
    }

    /// Evaluates the term at machine size `p`.
    pub fn eval(&self, p: usize) -> f64 {
        self.coeff * self.growth.eval(p) + self.offset
    }

    /// True when the term is effectively zero.
    pub fn is_zero(&self) -> bool {
        self.coeff.abs() < 1e-12 && self.offset.abs() < 1e-12
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.offset < 0.0 { "-" } else { "+" };
        write!(
            f,
            "{:.3} {} {} {:.3}",
            self.coeff,
            self.growth.symbol(),
            sign,
            self.offset.abs()
        )
    }
}

/// Fits `y = a·f(p) + b` over `(p, y)` points, trying both growth bases
/// and keeping the better fit (by r²). Returns `None` for degenerate
/// inputs.
pub fn fit_term(points: &[(usize, f64)]) -> Option<Term> {
    let as_xy =
        |g: Growth| -> Vec<(f64, f64)> { points.iter().map(|&(p, y)| (g.eval(p), y)).collect() };
    let lin = linear_fit(&as_xy(Growth::Linear));
    let log = linear_fit(&as_xy(Growth::Logarithmic));
    let to_term = |g: Growth, f: LinFit| Term {
        growth: g,
        coeff: f.slope,
        offset: f.intercept,
        r2: f.r2,
    };
    match (lin, log) {
        (Some(a), Some(b)) => Some(if a.r2 >= b.r2 {
            to_term(Growth::Linear, a)
        } else {
            to_term(Growth::Logarithmic, b)
        }),
        (Some(a), None) => Some(to_term(Growth::Linear, a)),
        (None, Some(b)) => Some(to_term(Growth::Logarithmic, b)),
        (None, None) => None,
    }
}

/// A complete Table-3 row: startup latency plus per-byte transmission
/// delay, both as affine terms over a growth basis. All times in
/// microseconds, message length in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingFormula {
    /// Startup latency `T0(p)`, microseconds.
    pub startup: Term,
    /// Per-byte transmission coefficient of `D(m, p) / m`,
    /// microseconds per byte.
    pub per_byte: Term,
}

impl TimingFormula {
    /// Builds a formula from explicit terms.
    pub fn new(startup: Term, per_byte: Term) -> Self {
        TimingFormula { startup, per_byte }
    }

    /// Startup latency at machine size `p`, microseconds (clamped at 0).
    pub fn startup_us(&self, p: usize) -> f64 {
        self.startup.eval(p).max(0.0)
    }

    /// Transmission delay for `m` bytes at size `p`, microseconds
    /// (clamped at 0 — the fitted per-byte term can go negative at small
    /// `p`, as several of the paper's own rows do).
    pub fn transmission_us(&self, m: u32, p: usize) -> f64 {
        (self.per_byte.eval(p) * f64::from(m)).max(0.0)
    }

    /// Predicted collective messaging time `T(m, p)`, microseconds.
    pub fn predict_us(&self, m: u32, p: usize) -> f64 {
        self.startup_us(p) + self.transmission_us(m, p)
    }

    /// Asymptotic aggregated bandwidth `R∞(p)` in MB/s for an operation
    /// with aggregated volume `f(m, p) = agg_per_m · m` (§8, Eq. 4).
    ///
    /// Returns `None` when the per-byte delay at `p` is non-positive.
    pub fn asymptotic_bandwidth_mb_s(&self, agg_per_m: u64, p: usize) -> Option<f64> {
        let per_byte = self.per_byte.eval(p);
        if per_byte <= 0.0 || agg_per_m == 0 {
            return None;
        }
        // bytes per microsecond == MB/s
        Some(agg_per_m as f64 / per_byte)
    }
}

impl fmt::Display for TimingFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.per_byte.is_zero() {
            write!(f, "{}", self.startup)
        } else {
            write!(f, "({}) + ({})m", self.startup, self.per_byte)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_bases() {
        assert_eq!(Growth::Linear.eval(64), 64.0);
        assert_eq!(Growth::Logarithmic.eval(64), 6.0);
        assert_eq!(Growth::Logarithmic.eval(1), 0.0);
        assert_eq!(Growth::Logarithmic.eval(0), 0.0, "clamped");
    }

    #[test]
    fn fit_picks_correct_family() {
        // Linear data: y = 4p + 10
        let lin: Vec<(usize, f64)> = [2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| (p, 4.0 * p as f64 + 10.0))
            .collect();
        let t = fit_term(&lin).unwrap();
        assert_eq!(t.growth, Growth::Linear);
        assert!((t.coeff - 4.0).abs() < 1e-9);

        // Logarithmic data: y = 55 log2(p) + 30
        let log: Vec<(usize, f64)> = [2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| (p, 55.0 * (p as f64).log2() + 30.0))
            .collect();
        let t = fit_term(&log).unwrap();
        assert_eq!(t.growth, Growth::Logarithmic);
        assert!((t.coeff - 55.0).abs() < 1e-9);
        assert!((t.offset - 30.0).abs() < 1e-9);
    }

    #[test]
    fn fit_degenerate_is_none() {
        assert!(fit_term(&[]).is_none());
        assert!(fit_term(&[(4, 1.0)]).is_none());
    }

    #[test]
    fn formula_prediction_matches_paper_example() {
        // §8: T3D total exchange (26p + 8.6) + (0.038p - 0.12)m at
        // m = 512, p = 64 gives 2.86 ms.
        let f = TimingFormula::new(
            Term::new(Growth::Linear, 26.0, 8.6),
            Term::new(Growth::Linear, 0.038, -0.12),
        );
        let t = f.predict_us(512, 64);
        assert!((t / 1000.0 - 2.86).abs() < 0.05, "{t} us");
    }

    #[test]
    fn negative_transmission_clamped() {
        let f = TimingFormula::new(
            Term::new(Growth::Linear, 10.0, 0.0),
            Term::new(Growth::Linear, 0.04, -0.3),
        );
        // At p = 2 the per-byte term is negative: D clamps to 0.
        assert_eq!(f.transmission_us(1024, 2), 0.0);
        assert!(f.predict_us(1024, 2) > 0.0);
    }

    #[test]
    fn bandwidth_matches_paper_headline() {
        // §8: aggregated bandwidth of 64-node total exchange.
        let t3d = TimingFormula::new(
            Term::new(Growth::Linear, 26.0, 8.6),
            Term::new(Growth::Linear, 0.038, -0.12),
        );
        let agg = 64u64 * 63; // f(m,p)/m for alltoall
        let r = t3d.asymptotic_bandwidth_mb_s(agg, 64).unwrap();
        assert!((r / 1000.0 - 1.745).abs() < 0.02, "{r} MB/s");
    }

    #[test]
    fn display_formats_like_table3() {
        let f = TimingFormula::new(
            Term::new(Growth::Linear, 5.8, 77.0),
            Term::new(Growth::Linear, 0.039, -0.12),
        );
        let s = f.to_string();
        assert!(s.contains("5.800 p + 77.000"), "{s}");
        assert!(s.contains("0.039 p - 0.120"), "{s}");
        let barrier = TimingFormula::new(Term::new(Growth::Logarithmic, 123.0, -90.0), Term::ZERO);
        assert_eq!(barrier.to_string(), "123.000 log p - 90.000");
    }
}
