//! Crossover analysis between machines.
//!
//! §5–§6 of the paper dwell on ranking switches: "the SP2 outperforms
//! the Paragon in any short messages less than 1 KBytes. The Paragon
//! performs better than the SP2 in long messages". Given two fitted
//! [`TimingFormula`]s, the crossover message length at a machine size is
//! where the two predicted times meet:
//!
//! `T_a(m*, p) = T_b(m*, p)  ⇒  m* = (T0_b − T0_a) / (d_a − d_b)`
//!
//! with `d` the per-byte delays at `p`.

use crate::formula::TimingFormula;

/// The relationship between two machines at one machine size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Crossover {
    /// `a` is faster at every message length.
    AlwaysFirst,
    /// `b` is faster at every message length.
    AlwaysSecond,
    /// `a` is faster below the given message length, `b` above it.
    At {
        /// Crossover message length, bytes.
        bytes: f64,
    },
    /// `b` is faster below the given message length, `a` above it
    /// (the reverse crossover: `a` has higher startup but lower
    /// per-byte cost).
    ReversedAt {
        /// Crossover message length, bytes.
        bytes: f64,
    },
}

/// Finds the crossover between formulas `a` and `b` at machine size `p`.
///
/// Uses the raw (unclamped) startup and per-byte terms; formulas whose
/// terms coincide within floating-point noise are treated as tied in
/// favour of `a`.
pub fn crossover(a: &TimingFormula, b: &TimingFormula, p: usize) -> Crossover {
    let t0_a = a.startup_us(p);
    let t0_b = b.startup_us(p);
    let d_a = a.per_byte.eval(p).max(0.0);
    let d_b = b.per_byte.eval(p).max(0.0);
    let eps = 1e-12;
    if (d_a - d_b).abs() < eps {
        // Parallel per-byte lines: startup decides everywhere.
        return if t0_a <= t0_b {
            Crossover::AlwaysFirst
        } else {
            Crossover::AlwaysSecond
        };
    }
    let m_star = (t0_b - t0_a) / (d_a - d_b);
    if m_star <= 0.0 {
        // The lines meet at or before m = 0: whoever is cheaper for
        // m > 0 wins everywhere. With equal startups that is the lower
        // per-byte machine; otherwise the lower startup decides (its
        // advantage only grows when it also has the lower per-byte cost).
        let a_wins = if (t0_a - t0_b).abs() <= eps {
            d_a < d_b
        } else {
            t0_a < t0_b
        };
        return if a_wins {
            Crossover::AlwaysFirst
        } else {
            Crossover::AlwaysSecond
        };
    }
    if d_a > d_b {
        // `a` starts faster but pays more per byte.
        Crossover::At { bytes: m_star }
    } else {
        Crossover::ReversedAt { bytes: m_star }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Growth, Term};
    use crate::paper::table3;
    use mpisim::{MachineId, OpClass};

    fn f(t0: f64, per_byte: f64) -> TimingFormula {
        TimingFormula::new(
            Term::new(Growth::Linear, 0.0, t0),
            Term::new(Growth::Linear, 0.0, per_byte),
        )
    }

    #[test]
    fn classic_crossover() {
        // a: cheap startup, expensive bytes; b: the reverse.
        let a = f(100.0, 0.1);
        let b = f(500.0, 0.05);
        match crossover(&a, &b, 8) {
            Crossover::At { bytes } => assert!((bytes - 8_000.0).abs() < 1e-6),
            other => panic!("expected At, got {other:?}"),
        }
        // Verify the decision flips at the crossover.
        assert!(a.predict_us(7_999, 8) < b.predict_us(7_999, 8));
        assert!(a.predict_us(8_001, 8) > b.predict_us(8_001, 8));
    }

    #[test]
    fn dominance_cases() {
        assert_eq!(
            crossover(&f(10.0, 0.01), &f(20.0, 0.02), 8),
            Crossover::AlwaysFirst
        );
        assert_eq!(
            crossover(&f(20.0, 0.02), &f(10.0, 0.01), 8),
            Crossover::AlwaysSecond
        );
        // Same per-byte: startup decides.
        assert_eq!(
            crossover(&f(10.0, 0.05), &f(30.0, 0.05), 8),
            Crossover::AlwaysFirst
        );
    }

    #[test]
    fn equal_startup_decided_by_per_byte() {
        // Equal T0, differing per-byte: the cheaper-per-byte machine
        // wins at every m > 0.
        assert_eq!(
            crossover(&f(100.0, 0.2), &f(100.0, 0.1), 8),
            Crossover::AlwaysSecond
        );
        assert_eq!(
            crossover(&f(100.0, 0.1), &f(100.0, 0.2), 8),
            Crossover::AlwaysFirst
        );
    }

    #[test]
    fn reversed_crossover() {
        // a: slow start, cheap bytes.
        let a = f(500.0, 0.05);
        let b = f(100.0, 0.1);
        match crossover(&a, &b, 8) {
            Crossover::ReversedAt { bytes } => assert!((bytes - 8_000.0).abs() < 1e-6),
            other => panic!("expected ReversedAt, got {other:?}"),
        }
    }

    #[test]
    fn paper_sp2_paragon_crossovers() {
        // §5: SP2 beats the Paragon below ~1 KB and loses above, for the
        // bandwidth-heavy operations. Check with the published Table 3.
        // (Broadcast is excluded: the published fits give the Paragon
        // both the lower startup and the lower per-byte cost there —
        // "the SP2 and Paragon perform about the same in the broadcast".)
        for op in [OpClass::Scatter, OpClass::Gather, OpClass::Alltoall] {
            let sp2 = table3(MachineId::Sp2, op).unwrap();
            let paragon = table3(MachineId::Paragon, op).unwrap();
            match crossover(&sp2, &paragon, 64) {
                Crossover::At { bytes } => {
                    assert!(
                        (100.0..30_000.0).contains(&bytes),
                        "{op}: crossover at {bytes:.0} B"
                    );
                }
                other => panic!("{op}: expected a crossover, got {other:?}"),
            }
        }
        // Reduce is the exception: the SP2's published per-byte cost at
        // p = 64 is *lower*, so no SP2→Paragon handoff happens.
        let sp2 = table3(MachineId::Sp2, OpClass::Reduce).unwrap();
        let paragon = table3(MachineId::Paragon, OpClass::Reduce).unwrap();
        assert!(matches!(
            crossover(&sp2, &paragon, 64),
            Crossover::AlwaysFirst
        ));
    }
}
