//! Speedup, efficiency, and scalability analysis.
//!
//! The paper's closing sections point to its companion work (Xu & Hwang,
//! "Early Prediction of MPP Performance") where the fitted communication
//! models feed SPMD speedup prediction. This module supplies that layer:
//! classical speedup/efficiency metrics over measured or predicted
//! runtime curves, fixed-workload (Amdahl) and fixed-time projections,
//! and the knee-finding the trade-off studies need.

/// A runtime curve: `(p, time_us)` samples of one workload, sorted by
/// ascending `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingCurve {
    points: Vec<(usize, f64)>,
}

impl ScalingCurve {
    /// Builds a curve from samples; sorts by `p` and drops non-positive
    /// times.
    pub fn new(samples: impl IntoIterator<Item = (usize, f64)>) -> Self {
        let mut points: Vec<(usize, f64)> = samples
            .into_iter()
            .filter(|&(p, t)| p > 0 && t > 0.0)
            .collect();
        points.sort_unstable_by_key(|&(p, _)| p);
        points.dedup_by_key(|&mut (p, _)| p);
        ScalingCurve { points }
    }

    /// The samples, ascending in `p`.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }

    /// Runtime at the smallest measured `p` (the speedup baseline),
    /// normalized to one node by assuming linear scaling below the first
    /// sample — i.e. `t(1) ≈ t(p_min) · p_min`.
    ///
    /// Returns `None` for an empty curve.
    pub fn baseline_us(&self) -> Option<f64> {
        self.points.first().map(|&(p, t)| t * p as f64)
    }

    /// Speedup series `S(p) = t(1) / t(p)`.
    pub fn speedup(&self) -> Vec<(usize, f64)> {
        let Some(t1) = self.baseline_us() else {
            return Vec::new();
        };
        self.points.iter().map(|&(p, t)| (p, t1 / t)).collect()
    }

    /// Efficiency series `E(p) = S(p) / p`, in `(0, 1]` for sublinear
    /// scaling.
    pub fn efficiency(&self) -> Vec<(usize, f64)> {
        self.speedup()
            .into_iter()
            .map(|(p, s)| (p, s / p as f64))
            .collect()
    }

    /// The machine size with the smallest runtime.
    ///
    /// Returns `None` for an empty curve.
    pub fn fastest(&self) -> Option<usize> {
        self.points
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(p, _)| p)
    }

    /// The largest size that keeps efficiency at or above `floor` — the
    /// economic operating point ("don't burn nodes below 50% efficiency").
    ///
    /// Returns `None` when no size qualifies.
    pub fn largest_efficient(&self, floor: f64) -> Option<usize> {
        self.efficiency()
            .into_iter()
            .filter(|&(_, e)| e >= floor)
            .map(|(p, _)| p)
            .max()
    }
}

/// Isoefficiency: the per-pair message length `m` at which a workload
/// with `compute_us_per_node(m, p)` local work and a collective costed
/// by `comm` maintains parallel efficiency `target` on `p` nodes —
/// found by bisection on `m`. Growing `m*(p)` curves quantify how fast
/// the problem must grow to keep a machine busy (Grama/Gupta/Kumar),
/// the quantitative form of the paper's computation/communication
/// trade-off advice.
///
/// Efficiency here is `compute / (compute + comm)`. Returns `None` when
/// even the largest probed message (1 GB) cannot reach the target.
///
/// # Panics
///
/// Panics if `target` is outside `(0, 1)` or `p == 0`.
pub fn isoefficiency_m(
    comm: &crate::formula::TimingFormula,
    compute_us_per_node: impl Fn(u32, usize) -> f64,
    p: usize,
    target: f64,
) -> Option<u32> {
    assert!(target > 0.0 && target < 1.0, "target efficiency in (0,1)");
    assert!(p > 0, "at least one node");
    let eff = |m: u32| {
        let work = compute_us_per_node(m, p);
        let overhead = comm.predict_us(m, p);
        work / (work + overhead)
    };
    let (mut lo, mut hi) = (1u32, 1 << 30);
    if eff(hi) < target {
        return None;
    }
    if eff(lo) >= target {
        return Some(lo);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if eff(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Amdahl's-law speedup for serial fraction `f` on `p` processors.
///
/// # Panics
///
/// Panics if `f` is outside `[0, 1]` or `p == 0`.
pub fn amdahl_speedup(f: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f), "serial fraction in [0,1]");
    assert!(p > 0, "at least one processor");
    1.0 / (f + (1.0 - f) / p as f64)
}

/// Fits the serial fraction that best explains a measured speedup point
/// (the "experimental serial fraction" of Karp–Flatt).
///
/// Returns `None` for `p < 2` or non-positive speedup.
pub fn karp_flatt(speedup: f64, p: usize) -> Option<f64> {
    if p < 2 || speedup <= 0.0 {
        return None;
    }
    let pf = p as f64;
    Some(((1.0 / speedup) - 1.0 / pf) / (1.0 - 1.0 / pf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_scaling_has_unit_efficiency() {
        let c = ScalingCurve::new((0..6).map(|i| {
            let p = 1usize << i;
            (p, 1000.0 / p as f64)
        }));
        for (p, s) in c.speedup() {
            assert!((s - p as f64).abs() < 1e-9);
        }
        for (_, e) in c.efficiency() {
            assert!((e - 1.0).abs() < 1e-9);
        }
        assert_eq!(c.fastest(), Some(32));
        assert_eq!(c.largest_efficient(0.99), Some(32));
    }

    #[test]
    fn saturating_curve_finds_knee() {
        // t(p) = 1000/p + 50p: U-shaped with minimum near sqrt(20)≈4.5.
        let c = ScalingCurve::new(
            [1usize, 2, 4, 8, 16].map(|p| (p, 1000.0 / p as f64 + 50.0 * p as f64)),
        );
        assert_eq!(c.fastest(), Some(4));
        // Efficiency decays: largest ≥50% point is well below 16.
        let cutoff = c.largest_efficient(0.5).unwrap();
        assert!(cutoff <= 8, "cutoff {cutoff}");
    }

    #[test]
    fn baseline_extrapolates_from_first_sample() {
        let c = ScalingCurve::new([(4usize, 250.0), (8, 125.0)]);
        assert_eq!(c.baseline_us(), Some(1000.0));
        let s = c.speedup();
        assert!((s[0].1 - 4.0).abs() < 1e-12, "first point assumed linear");
        assert!(ScalingCurve::new(std::iter::empty())
            .baseline_us()
            .is_none());
    }

    #[test]
    fn amdahl_limits() {
        assert!((amdahl_speedup(0.0, 64) - 64.0).abs() < 1e-12);
        assert!((amdahl_speedup(1.0, 64) - 1.0).abs() < 1e-12);
        let s = amdahl_speedup(0.05, 1_000_000);
        assert!(s < 20.0 + 1e-6, "5% serial caps speedup at 20: {s}");
    }

    #[test]
    fn karp_flatt_recovers_amdahl_fraction() {
        for f in [0.01, 0.1, 0.3] {
            for p in [4usize, 16, 64] {
                let s = amdahl_speedup(f, p);
                let est = karp_flatt(s, p).unwrap();
                assert!((est - f).abs() < 1e-9, "f={f} p={p}: {est}");
            }
        }
        assert!(karp_flatt(2.0, 1).is_none());
        assert!(karp_flatt(-1.0, 8).is_none());
    }

    #[test]
    fn isoefficiency_grows_with_machine_size() {
        use crate::formula::{Growth, Term, TimingFormula};
        // Startup-dominated communication (O(p) startup, light per-byte)
        // against O(m) local work: the message must grow with p to keep
        // amortizing the startup, so m*(p) increases.
        let comm = TimingFormula::new(
            Term::new(Growth::Linear, 25.0, 10.0),
            Term::new(Growth::Linear, 0.0, 0.001), // 1 ns/B
        );
        let work = |m: u32, _p: usize| f64::from(m) * 0.01; // 10 ns/B compute
        let m8 = isoefficiency_m(&comm, work, 8, 0.8).unwrap();
        let m64 = isoefficiency_m(&comm, work, 64, 0.8).unwrap();
        assert!(m64 > m8, "m*(64)={m64} vs m*(8)={m8}");
        // And the found point actually achieves the target, minimally.
        let eff = |m: u32, p: usize| {
            let w = work(m, p);
            w / (w + comm.predict_us(m, p))
        };
        assert!(eff(m64, 64) >= 0.8);
        assert!(eff(m64 - 1, 64) < 0.8, "minimality");
    }

    #[test]
    fn isoefficiency_unreachable_is_none() {
        use crate::formula::{Growth, Term, TimingFormula};
        // Per-byte communication cost exceeding per-byte compute: no m
        // reaches 90% efficiency.
        let comm = TimingFormula::new(
            Term::ZERO,
            Term::new(Growth::Linear, 0.0, 1.0), // 1 us/B comm
        );
        let work = |m: u32, _p: usize| f64::from(m) * 0.1; // 0.1 us/B compute
        assert!(isoefficiency_m(&comm, work, 16, 0.9).is_none());
    }

    #[test]
    fn curve_cleans_input() {
        let c = ScalingCurve::new([(8usize, 10.0), (2, 40.0), (0, 5.0), (4, -1.0), (2, 99.0)]);
        assert_eq!(c.points(), &[(2, 40.0), (8, 10.0)]);
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn bad_fraction_panics() {
        amdahl_speedup(1.5, 4);
    }
}
