//! Ordinary least-squares fitting primitives.

/// Result of a one-variable linear fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 for a perfect fit; by
    /// convention 1 when the data has zero variance).
    pub r2: f64,
}

impl LinFit {
    /// The fitted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Least-squares fit of `y = a·x + b` over `(x, y)` points.
///
/// Returns `None` with fewer than two points or when all `x` coincide
/// (the slope is unidentifiable).
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|&(x, _)| x).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|&(x, y)| x * y).sum();
    let det = nf * sxx - sx * sx;
    if det.abs() < 1e-12 * (1.0 + sxx.abs()) {
        return None;
    }
    let slope = (nf * sxy - sx * sy) / det;
    let intercept = (sy - slope * sx) / nf;

    let mean_y = sy / nf;
    let ss_tot: f64 = points.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot <= f64::EPSILON * (1.0 + mean_y * mean_y) {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinFit {
        slope,
        intercept,
        r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-9);
        assert!((f.intercept - 2.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
        assert!((f.predict(100.0) - 302.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_approximated() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, 5.0 * x + 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.slope - 5.0).abs() < 0.05);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(3.0, 1.0), (3.0, 5.0)]).is_none(), "vertical");
    }

    #[test]
    fn constant_data_has_r2_one() {
        let f = linear_fit(&[(1.0, 7.0), (2.0, 7.0), (3.0, 7.0)]).unwrap();
        assert!(f.slope.abs() < 1e-12);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn r2_penalizes_bad_fits() {
        // A parabola fitted by a line: r2 noticeably below 1.
        let pts: Vec<(f64, f64)> = (-5..=5).map(|i| (i as f64, (i * i) as f64)).collect();
        let f = linear_fit(&pts).unwrap();
        assert!(f.r2 < 0.5, "r2 = {}", f.r2);
    }
}
