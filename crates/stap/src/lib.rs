//! # stap — the Space-Time Adaptive Processing workload
//!
//! The paper's timing data "are obtained from the STAP benchmark
//! experiments jointly performed at the USC and HKU" for MIT Lincoln
//! Laboratory (§1, §9). This crate models that workload on top of the
//! collective simulator: a radar [`DataCube`] flows through the classic
//! pipeline — Doppler filtering, a corner-turn total exchange, adaptive
//! weight computation and broadcast, beamforming, CFAR detection, and a
//! detection-report reduce — with compute stages costed at each node's
//! sustained arithmetic rate and communication stages executed on the
//! machine models.
//!
//! # Examples
//!
//! ```
//! use stap::{DataCube, StapRun};
//! use mpisim::Machine;
//!
//! let run = StapRun::execute(&Machine::t3d(), DataCube::small(), 8)?;
//! println!("iteration: {:.1} ms, {:.0}% communication",
//!          run.total_us() / 1000.0, 100.0 * run.comm_fraction());
//! # Ok::<(), mpisim::SimMpiError>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cube;
pub mod pipeline;
pub mod stages;

pub use cube::DataCube;
pub use pipeline::{best_partition, node_mflops, sustained_cpi_per_sec, StageTiming, StapRun};
pub use stages::StapStage;
