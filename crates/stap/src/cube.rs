//! The radar data cube and its decomposition.
//!
//! STAP operates on a coherent processing interval (CPI) organized as a
//! three-dimensional cube: range gates × pulses × antenna channels of
//! complex samples. The SPMD decompositions the paper's experiments used
//! slice the cube along one axis per pipeline phase; moving between
//! phases re-slices it — the corner turn.

/// A radar data cube (one coherent processing interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataCube {
    /// Number of range gates (fast-time samples).
    pub range_gates: u64,
    /// Number of pulses (slow-time samples).
    pub pulses: u64,
    /// Number of antenna channels.
    pub channels: u64,
    /// Bytes per complex sample (8 for complex f32).
    pub bytes_per_sample: u64,
}

impl DataCube {
    /// A medium CPI typical of the mid-1990s STAP benchmarks: 1024 range
    /// gates, 128 pulses, 16 channels of complex f32.
    pub fn medium() -> Self {
        DataCube {
            range_gates: 1_024,
            pulses: 128,
            channels: 16,
            bytes_per_sample: 8,
        }
    }

    /// A small CPI for fast tests.
    pub fn small() -> Self {
        DataCube {
            range_gates: 256,
            pulses: 32,
            channels: 4,
            bytes_per_sample: 8,
        }
    }

    /// Validates that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Names the zero dimension.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("range_gates", self.range_gates),
            ("pulses", self.pulses),
            ("channels", self.channels),
            ("bytes_per_sample", self.bytes_per_sample),
        ] {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        Ok(())
    }

    /// Total complex samples in the cube.
    pub fn samples(&self) -> u64 {
        self.range_gates * self.pulses * self.channels
    }

    /// Total bytes in the cube.
    pub fn bytes(&self) -> u64 {
        self.samples() * self.bytes_per_sample
    }

    /// Pairwise message size of a corner turn over `p` nodes: each node
    /// re-slices its `1/p` share into `p` pieces. Floored at 4 bytes
    /// (one MPI_FLOAT, as the paper's smallest message).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn corner_turn_block(&self, p: usize) -> u32 {
        assert!(p > 0, "node count must be positive");
        let p = p as u64;
        (self.bytes() / (p * p)).max(4) as u32
    }

    /// Bytes of one steering-weight set (one vector per channel).
    pub fn weight_bytes(&self) -> u32 {
        (self.channels * self.pulses * self.bytes_per_sample) as u32
    }

    /// Bytes of a per-node detection report vector.
    pub fn report_bytes(&self) -> u32 {
        (self.range_gates * 4) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_cube_dimensions() {
        let c = DataCube::medium();
        assert!(c.validate().is_ok());
        assert_eq!(c.samples(), 1_024 * 128 * 16);
        assert_eq!(c.bytes(), c.samples() * 8);
        assert_eq!(c.bytes() / (1 << 20), 16, "16 MB cube");
    }

    #[test]
    fn corner_turn_block_scaling() {
        let c = DataCube::medium();
        // Doubling p quarters the pairwise block.
        assert_eq!(c.corner_turn_block(8), 4 * c.corner_turn_block(16));
        // Tiny shares floor at one float.
        let tiny = DataCube {
            range_gates: 2,
            pulses: 2,
            channels: 1,
            bytes_per_sample: 8,
        };
        assert_eq!(tiny.corner_turn_block(64), 4);
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut c = DataCube::medium();
        c.channels = 0;
        let e = c.validate().unwrap_err();
        assert!(e.contains("channels"));
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn zero_nodes_panics() {
        DataCube::medium().corner_turn_block(0);
    }
}
