//! Executing a STAP iteration on a simulated machine.
//!
//! [`StapRun`] walks the pipeline stage by stage: compute stages are
//! costed at the node's sustained arithmetic rate, communication stages
//! run on the machine's collective simulator. The result is the
//! per-stage timing breakdown the paper's trade-off methodology needs —
//! how the computation/communication split moves as `p` grows.

use crate::cube::DataCube;
use crate::stages::StapStage;
use mpisim::{Machine, MachineId, Rank, SimMpiError};

/// Sustained per-node arithmetic rate in MFLOP/s (mid-1990s measured
/// rates: POWER2 ≈ 260, i860 ≈ 75, Alpha 21064 ≈ 150).
pub fn node_mflops(machine: &Machine) -> f64 {
    match machine.id() {
        Some(MachineId::Sp2) => 260.0,
        Some(MachineId::Paragon) => 75.0,
        Some(MachineId::T3d) => 150.0,
        None => 100.0,
    }
}

/// Timing of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Which stage.
    pub stage: StapStage,
    /// Local arithmetic time, microseconds (zero for collectives).
    pub compute_us: f64,
    /// Communication time, microseconds (zero for compute stages).
    pub comm_us: f64,
}

impl StageTiming {
    /// Total stage time, microseconds.
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.comm_us
    }
}

/// A complete STAP iteration timing on one machine/partition.
#[derive(Debug, Clone, PartialEq)]
pub struct StapRun {
    /// Machine display name.
    pub machine: String,
    /// Partition size.
    pub nodes: usize,
    /// The cube processed.
    pub cube: DataCube,
    /// Per-stage breakdown, pipeline order.
    pub stages: Vec<StageTiming>,
}

impl StapRun {
    /// Executes one STAP iteration of `cube` on `p` nodes of `machine`.
    ///
    /// # Errors
    ///
    /// Propagates communicator/collective failures, and rejects invalid
    /// cubes as [`SimMpiError::InvalidSpec`].
    pub fn execute(machine: &Machine, cube: DataCube, p: usize) -> Result<Self, SimMpiError> {
        cube.validate().map_err(SimMpiError::InvalidSpec)?;
        let comm = machine.communicator(p)?;
        let mflops = node_mflops(machine);
        let mut stages = Vec::with_capacity(StapStage::PIPELINE.len());
        for stage in StapStage::PIPELINE {
            let compute_us = stage.flops_per_node(&cube, p) / mflops;
            let comm_us = match stage.message_bytes(&cube, p) {
                Some(bytes) => {
                    let outcome = match stage {
                        StapStage::CornerTurn => comm.alltoall(bytes)?,
                        StapStage::WeightBroadcast => comm.bcast(Rank(0), bytes)?,
                        StapStage::ReportReduce => comm.reduce(Rank(0), bytes)?,
                        _ => unreachable!("message_bytes is Some only for collectives"),
                    };
                    outcome.time().as_micros_f64()
                }
                None => 0.0,
            };
            stages.push(StageTiming {
                stage,
                compute_us,
                comm_us,
            });
        }
        Ok(StapRun {
            machine: machine.name().to_string(),
            nodes: p,
            cube,
            stages,
        })
    }

    /// Total iteration time, microseconds.
    pub fn total_us(&self) -> f64 {
        self.stages.iter().map(StageTiming::total_us).sum()
    }

    /// Total local arithmetic time, microseconds.
    pub fn compute_us(&self) -> f64 {
        self.stages.iter().map(|s| s.compute_us).sum()
    }

    /// Total communication time, microseconds.
    pub fn comm_us(&self) -> f64 {
        self.stages.iter().map(|s| s.comm_us).sum()
    }

    /// Fraction of the iteration spent communicating, in `[0, 1]`.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_us();
        if t <= 0.0 {
            0.0
        } else {
            self.comm_us() / t
        }
    }

    /// The stage consuming the most time.
    ///
    /// # Panics
    ///
    /// Never panics: the pipeline is non-empty by construction.
    pub fn bottleneck(&self) -> &StageTiming {
        self.stages
            .iter()
            .max_by(|a, b| a.total_us().total_cmp(&b.total_us()))
            .expect("pipeline is non-empty")
    }
}

/// Sustained STAP throughput in CPIs per second when consecutive CPIs
/// overlap: the front of the pipeline starts CPI *i+1* while the back
/// still drains CPI *i*, so the steady-state rate is set by the slowest
/// stage rather than the end-to-end latency.
///
/// # Errors
///
/// Propagates execution failures.
pub fn sustained_cpi_per_sec(
    machine: &Machine,
    cube: DataCube,
    p: usize,
) -> Result<f64, SimMpiError> {
    let run = StapRun::execute(machine, cube, p)?;
    let bottleneck_us = run.bottleneck().total_us();
    Ok(1e6 / bottleneck_us)
}

/// Sweeps partition sizes and returns `(p, total_us)` plus the best size
/// (smallest total). Sizes beyond the machine's maximum are skipped.
///
/// # Errors
///
/// Propagates the first execution failure.
pub fn best_partition(
    machine: &Machine,
    cube: DataCube,
    sizes: &[usize],
) -> Result<(Vec<(usize, f64)>, usize), SimMpiError> {
    let mut curve = Vec::new();
    for &p in sizes {
        if p == 0 || p > machine.spec().max_nodes {
            continue;
        }
        let run = StapRun::execute(machine, cube, p)?;
        curve.push((p, run.total_us()));
    }
    let best = curve
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(p, _)| p)
        .unwrap_or(1);
    Ok((curve, best))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_iteration_breakdown() {
        let run = StapRun::execute(&Machine::t3d(), DataCube::small(), 8).unwrap();
        assert_eq!(run.stages.len(), 7);
        assert!(run.compute_us() > 0.0);
        assert!(run.comm_us() > 0.0);
        assert!((run.compute_us() + run.comm_us() - run.total_us()).abs() < 1e-9);
        assert!(run.comm_fraction() > 0.0 && run.comm_fraction() < 1.0);
    }

    #[test]
    fn compute_shrinks_comm_grows_with_p() {
        let cube = DataCube::small();
        let m = Machine::t3d();
        let small = StapRun::execute(&m, cube, 4).unwrap();
        let large = StapRun::execute(&m, cube, 32).unwrap();
        assert!(large.compute_us() < small.compute_us());
        assert!(large.comm_fraction() > small.comm_fraction());
    }

    #[test]
    fn corner_turn_dominates_communication() {
        let run = StapRun::execute(&Machine::sp2(), DataCube::medium(), 16).unwrap();
        let ct = run
            .stages
            .iter()
            .find(|s| s.stage == StapStage::CornerTurn)
            .unwrap();
        for s in &run.stages {
            if s.stage.is_communication() && s.stage != StapStage::CornerTurn {
                assert!(ct.comm_us > s.comm_us, "{:?}", s.stage);
            }
        }
    }

    #[test]
    fn best_partition_sweep() {
        let (curve, best) =
            best_partition(&Machine::t3d(), DataCube::small(), &[2, 4, 8, 128]).unwrap();
        assert_eq!(curve.len(), 3, "128 exceeds the T3D maximum");
        assert!(curve.iter().any(|&(p, _)| p == best));
    }

    #[test]
    fn invalid_cube_rejected() {
        let mut cube = DataCube::small();
        cube.pulses = 0;
        assert!(StapRun::execute(&Machine::t3d(), cube, 4).is_err());
    }

    #[test]
    fn sustained_rate_exceeds_latency_rate() {
        // Overlapped CPIs complete faster than back-to-back latency-bound
        // iterations: 1/bottleneck >= 1/total, strictly so when the
        // pipeline has more than one non-trivial stage.
        let cube = DataCube::small();
        for machine in [Machine::sp2(), Machine::t3d()] {
            let run = StapRun::execute(&machine, cube, 16).unwrap();
            let latency_rate = 1e6 / run.total_us();
            let sustained = sustained_cpi_per_sec(&machine, cube, 16).unwrap();
            assert!(
                sustained > latency_rate,
                "{}: {sustained} vs {latency_rate}",
                machine.name()
            );
        }
    }

    #[test]
    fn faster_machine_computes_faster() {
        let cube = DataCube::small();
        let sp2 = StapRun::execute(&Machine::sp2(), cube, 8).unwrap();
        let paragon = StapRun::execute(&Machine::paragon(), cube, 8).unwrap();
        // POWER2 nodes out-compute i860 nodes ~3.5x.
        assert!(sp2.compute_us() < paragon.compute_us() / 2.0);
    }
}
