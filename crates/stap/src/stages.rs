//! The STAP pipeline stages.
//!
//! Each stage is either local arithmetic (costed in flops against the
//! node's sustained rate) or a collective (executed on the simulator).
//! The stage set follows the Lincoln Laboratory STAP benchmark structure
//! the paper's experiments ran: Doppler filtering, a corner turn,
//! adaptive weight computation and broadcast, beamforming, CFAR
//! detection, and a report gather.

use crate::cube::DataCube;

/// One stage of the STAP pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StapStage {
    /// Pulse-domain FFT filtering over each node's slice.
    DopplerFilter,
    /// Cube transpose across nodes (`MPI_Alltoall`).
    CornerTurn,
    /// Adaptive weight solve on the root node (sample covariance + QR).
    WeightCompute,
    /// Broadcast of the steering weights (`MPI_Bcast`).
    WeightBroadcast,
    /// Beamforming inner products over the local slice.
    Beamform,
    /// Constant-false-alarm-rate detection over local range cells.
    CfarDetect,
    /// Combine per-node detection reports (`MPI_Reduce`).
    ReportReduce,
}

impl StapStage {
    /// The canonical pipeline order.
    pub const PIPELINE: [StapStage; 7] = [
        StapStage::DopplerFilter,
        StapStage::CornerTurn,
        StapStage::WeightCompute,
        StapStage::WeightBroadcast,
        StapStage::Beamform,
        StapStage::CfarDetect,
        StapStage::ReportReduce,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StapStage::DopplerFilter => "Doppler filter",
            StapStage::CornerTurn => "corner turn",
            StapStage::WeightCompute => "weight compute",
            StapStage::WeightBroadcast => "weight broadcast",
            StapStage::Beamform => "beamform",
            StapStage::CfarDetect => "CFAR detect",
            StapStage::ReportReduce => "report reduce",
        }
    }

    /// True for communication stages (costed on the simulator).
    pub fn is_communication(self) -> bool {
        matches!(
            self,
            StapStage::CornerTurn | StapStage::WeightBroadcast | StapStage::ReportReduce
        )
    }

    /// Floating-point operations this stage performs **per node** for
    /// `cube` distributed over `p` nodes. Zero for communication stages.
    ///
    /// Standard kernel counts: radix-2 FFT at `5·N·log2 N`, covariance
    /// accumulation + QR at `O(channels² · pulses)` on the root,
    /// beamforming at 8 flops per sample, CFAR at ~10 flops per range
    /// cell.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn flops_per_node(self, cube: &DataCube, p: usize) -> f64 {
        assert!(p > 0, "node count must be positive");
        let p = p as f64;
        match self {
            StapStage::DopplerFilter => {
                let lines = (cube.range_gates * cube.channels) as f64 / p;
                let n = cube.pulses as f64;
                lines * 5.0 * n * n.log2()
            }
            StapStage::WeightCompute => {
                // Root-only: covariance + QR over the channel dimension.
                let ch = cube.channels as f64;
                4.0 * ch * ch * cube.pulses as f64 + (2.0 / 3.0) * ch * ch * ch
            }
            StapStage::Beamform => 8.0 * cube.samples() as f64 / p,
            StapStage::CfarDetect => 10.0 * cube.range_gates as f64 * cube.pulses as f64 / p,
            StapStage::CornerTurn | StapStage::WeightBroadcast | StapStage::ReportReduce => 0.0,
        }
    }

    /// Pairwise message bytes of this stage's collective, or `None` for
    /// compute stages.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn message_bytes(self, cube: &DataCube, p: usize) -> Option<u32> {
        match self {
            StapStage::CornerTurn => Some(cube.corner_turn_block(p)),
            StapStage::WeightBroadcast => Some(cube.weight_bytes()),
            StapStage::ReportReduce => Some(cube.report_bytes()),
            _ => {
                assert!(p > 0, "node count must be positive");
                None
            }
        }
    }
}

impl std::fmt::Display for StapStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_covers_compute_and_comm() {
        let comm = StapStage::PIPELINE
            .iter()
            .filter(|s| s.is_communication())
            .count();
        assert_eq!(comm, 3);
        assert_eq!(StapStage::PIPELINE.len(), 7);
    }

    #[test]
    fn compute_scales_inversely_with_p() {
        let cube = DataCube::medium();
        let f4 = StapStage::DopplerFilter.flops_per_node(&cube, 4);
        let f8 = StapStage::DopplerFilter.flops_per_node(&cube, 8);
        assert!((f4 / f8 - 2.0).abs() < 1e-9);
        // Weight compute is root-resident: independent of p.
        let w4 = StapStage::WeightCompute.flops_per_node(&cube, 4);
        let w64 = StapStage::WeightCompute.flops_per_node(&cube, 64);
        assert_eq!(w4, w64);
    }

    #[test]
    fn message_sizes_match_cube() {
        let cube = DataCube::medium();
        assert_eq!(
            StapStage::CornerTurn.message_bytes(&cube, 16),
            Some(cube.corner_turn_block(16))
        );
        assert_eq!(
            StapStage::WeightBroadcast.message_bytes(&cube, 16),
            Some(cube.weight_bytes())
        );
        assert_eq!(StapStage::Beamform.message_bytes(&cube, 16), None);
    }

    #[test]
    fn communication_stages_have_no_flops() {
        let cube = DataCube::small();
        for s in StapStage::PIPELINE {
            if s.is_communication() {
                assert_eq!(s.flops_per_node(&cube, 8), 0.0, "{s}");
            } else {
                assert!(s.flops_per_node(&cube, 8) > 0.0, "{s}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(StapStage::CornerTurn.to_string(), "corner turn");
    }
}
