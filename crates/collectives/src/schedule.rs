//! Communication schedules.
//!
//! A collective algorithm compiles to a [`Schedule`]: one step program per
//! rank, each a totally ordered list of [`Step`]s. The executor in
//! `mpisim` advances every rank's program on the discrete-event engine;
//! sends are eager (buffered), receives block, and messages between a
//! given (sender, receiver) pair match in FIFO order — the semantics of
//! the MPI collectives being modeled, which never rely on tag reordering
//! within an operation.

use netmodel::OpClass;
use std::collections::{HashMap, VecDeque};

/// A process rank within the collective (identical to the node index —
/// the paper runs exactly one process per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub usize);

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Send `bytes` to `to` (eager: the program continues once the local
    /// send path completes).
    Send {
        /// Destination rank.
        to: Rank,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// Block until `bytes` arrive from `from` (FIFO per sender pair).
    Recv {
        /// Source rank.
        from: Rank,
        /// Expected payload size in bytes.
        bytes: u32,
    },
    /// Local reduction arithmetic over `bytes` of operand data.
    Compute {
        /// Operand volume in bytes.
        bytes: u32,
    },
    /// Enter the hardware barrier network and block until release.
    HwBarrier,
}

/// A complete collective schedule: one program per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    class: OpClass,
    programs: Vec<Vec<Step>>,
}

/// Why a schedule failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A step names a rank outside `0..p`.
    RankOutOfRange {
        /// The offending rank.
        rank: Rank,
        /// The program the step belongs to.
        in_program: Rank,
    },
    /// Execution stalled: the listed ranks wait on messages never sent
    /// (or sent in a different order than expected). Returned only when
    /// the stall has no wait-for cycle — the blocked ranks wait on
    /// senders that already finished; a cyclic stall is reported as the
    /// more precise [`ScheduleError::DeadlockCycle`].
    Stuck {
        /// Ranks blocked at a `Recv` when no progress is possible.
        waiting: Vec<Rank>,
    },
    /// Execution deadlocked on a wait-for cycle: each listed rank is
    /// blocked at the given `Recv` step waiting on the *next* rank in
    /// the list (the last waits on the first). The cycle is rotated so
    /// the smallest rank leads, making diagnostics deterministic.
    DeadlockCycle {
        /// The blocked `(rank, step)` pairs, in wait-for order.
        cycle: Vec<(Rank, Step)>,
    },
    /// Two messages with different sizes on the same (sender, receiver)
    /// channel are not ordered by happens-before: under another
    /// interleaving (e.g. network overtaking between messages in flight
    /// concurrently) the receiver's `Recv`s could match either message.
    /// The single-interleaving dynamic check cannot see this; it is
    /// produced by the static analyzer in the `schedcheck` crate.
    AmbiguousMatch {
        /// Sender of the raced channel.
        from: Rank,
        /// Receiver of the raced channel.
        to: Rank,
        /// Bytes of the earlier-posted message.
        earlier: u32,
        /// Bytes of the later-posted message racing with it.
        later: u32,
    },
    /// A message arrived whose size differs from the matching `Recv`.
    SizeMismatch {
        /// Sender of the mismatched message.
        from: Rank,
        /// Receiver expecting a different size.
        to: Rank,
        /// Bytes sent.
        sent: u32,
        /// Bytes expected.
        expected: u32,
    },
    /// Some sent messages were never received.
    UnconsumedMessages {
        /// Total messages left in flight.
        count: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::RankOutOfRange { rank, in_program } => {
                write!(f, "step in {in_program} names out-of-range {rank}")
            }
            ScheduleError::Stuck { waiting } => {
                write!(f, "schedule deadlocks; waiting ranks: {waiting:?}")
            }
            ScheduleError::DeadlockCycle { cycle } => {
                write!(f, "schedule deadlocks on wait-for cycle:")?;
                for (rank, step) in cycle {
                    write!(f, " {rank} blocked at {step:?};")?;
                }
                Ok(())
            }
            ScheduleError::AmbiguousMatch {
                from,
                to,
                earlier,
                later,
            } => write!(
                f,
                "ambiguous match on channel {from}->{to}: {earlier}-byte and \
                 {later}-byte messages can be in flight concurrently and could \
                 match either Recv under reordering"
            ),
            ScheduleError::SizeMismatch {
                from,
                to,
                sent,
                expected,
            } => write!(f, "{from} sent {sent} bytes but {to} expected {expected}"),
            ScheduleError::UnconsumedMessages { count } => {
                write!(f, "{count} sent messages were never received")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Creates a schedule for `p` ranks of the given class, with empty
    /// programs.
    pub fn new(class: OpClass, p: usize) -> Self {
        Schedule {
            class,
            programs: vec![Vec::new(); p],
        }
    }

    /// The operation class this schedule implements.
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.programs.len()
    }

    /// Appends a step to `rank`'s program.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn push(&mut self, rank: Rank, step: Step) {
        self.programs[rank.0].push(step);
    }

    /// The program of one rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn program(&self, rank: Rank) -> &[Step] {
        &self.programs[rank.0]
    }

    /// Iterates over `(rank, program)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &[Step])> {
        self.programs
            .iter()
            .enumerate()
            .map(|(i, p)| (Rank(i), p.as_slice()))
    }

    /// Number of steps in `rank`'s program — the executor's stepping
    /// hook for pre-sizing its per-rank event tape (each step becomes
    /// one tape entry addressed by `TypedEvent::ScheduleStep`).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn steps_of(&self, rank: Rank) -> usize {
        self.programs[rank.0].len()
    }

    /// Total number of steps across all rank programs.
    pub fn total_steps(&self) -> usize {
        self.programs.iter().map(Vec::len).sum()
    }

    /// Total number of `Send` steps.
    pub fn total_messages(&self) -> usize {
        self.programs
            .iter()
            .flatten()
            .filter(|s| matches!(s, Step::Send { .. }))
            .count()
    }

    /// Total payload bytes across all `Send` steps.
    pub fn total_bytes(&self) -> u64 {
        self.programs
            .iter()
            .flatten()
            .map(|s| match s {
                Step::Send { bytes, .. } => u64::from(*bytes),
                _ => 0,
            })
            .sum()
    }

    /// The message-dependency depth: the longest chain of messages where
    /// each send happens after the previous receive. A binomial broadcast
    /// over `p` ranks has depth `ceil(log2 p)`; a linear scatter has
    /// depth 1 (all messages leave the root directly).
    ///
    /// Computed by abstract execution with zero-cost local steps and
    /// unit-cost messages.
    pub fn message_depth(&self) -> usize {
        self.abstract_run().map(|(depth, _)| depth).unwrap_or(0)
    }

    /// Validates the schedule by abstract execution: checks rank ranges,
    /// FIFO matching, size agreement, deadlock freedom (reporting the
    /// exact wait-for cycle when one exists), and that no sent message
    /// goes unreceived.
    ///
    /// This is the single pre-check implementation shared by the dynamic
    /// executor (`mpisim::exec`) and the static analyzer (`schedcheck`),
    /// so the two passes cannot drift: `schedcheck::verify` delegates
    /// here before layering on its interleaving-independent analyses
    /// (match ambiguity, volume conservation, depth bounds).
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleError`] encountered.
    pub fn check(&self) -> Result<(), ScheduleError> {
        let p = self.ranks();
        for (r, prog) in self.iter() {
            for step in prog {
                let named = match step {
                    Step::Send { to, .. } => Some(*to),
                    Step::Recv { from, .. } => Some(*from),
                    _ => None,
                };
                if let Some(n) = named {
                    if n.0 >= p {
                        return Err(ScheduleError::RankOutOfRange {
                            rank: n,
                            in_program: r,
                        });
                    }
                }
            }
        }
        self.abstract_run().map(|_| ())
    }

    /// Data-influence closure: `influence()[r]` is the set of ranks whose
    /// initial data can have reached rank `r` through the schedule's
    /// messages (every rank trivially influences itself).
    ///
    /// This is the *semantic* counterpart to [`Schedule::check`]: a
    /// broadcast is only correct if the root influences everyone, a
    /// gather/reduce only if everyone influences the root, a total
    /// exchange only if the influence relation is complete, an inclusive
    /// scan only if ranks `0..=r` influence rank `r`. The algorithm tests
    /// assert these properties for every generator.
    ///
    /// Computed by abstract eager execution: a message carries the
    /// sender's influence set *at posting time*; a receive unions it in.
    /// Returns `None` if the schedule deadlocks (run [`Schedule::check`]
    /// first for a diagnosis).
    pub fn influence(&self) -> Option<Vec<Vec<bool>>> {
        let p = self.ranks();
        let mut pc = vec![0usize; p];
        let mut sets: Vec<Vec<bool>> = (0..p).map(|r| (0..p).map(|i| i == r).collect()).collect();
        let mut inflight: HashMap<(usize, usize), VecDeque<Vec<bool>>> = HashMap::new();
        loop {
            let mut progressed = false;
            for r in 0..p {
                while pc[r] < self.programs[r].len() {
                    match self.programs[r][pc[r]] {
                        Step::Send { to, .. } => {
                            let snapshot = sets[r].clone();
                            inflight.entry((r, to.0)).or_default().push_back(snapshot);
                        }
                        Step::Recv { from, .. } => {
                            match inflight.entry((from.0, r)).or_default().pop_front() {
                                Some(carried) => {
                                    for (dst, src) in sets[r].iter_mut().zip(&carried) {
                                        *dst |= *src;
                                    }
                                }
                                None => break,
                            }
                        }
                        Step::Compute { .. } | Step::HwBarrier => {}
                    }
                    pc[r] += 1;
                    progressed = true;
                }
            }
            if pc
                .iter()
                .enumerate()
                .all(|(r, &c)| c == self.programs[r].len())
            {
                return Some(sets);
            }
            if !progressed {
                return None;
            }
        }
    }

    /// Abstract eager execution. Returns `(message_depth, steps_run)`.
    fn abstract_run(&self) -> Result<(usize, usize), ScheduleError> {
        let p = self.ranks();
        let mut pc = vec![0usize; p];
        // In-flight messages per (from, to): FIFO of (bytes, depth).
        let mut inflight: HashMap<(usize, usize), VecDeque<(u32, usize)>> = HashMap::new();
        // Depth watermark per rank: the longest message chain feeding its
        // current state.
        let mut rank_depth = vec![0usize; p];
        let mut steps_run = 0usize;
        let mut max_depth = 0usize;
        loop {
            let mut progressed = false;
            for r in 0..p {
                while pc[r] < self.programs[r].len() {
                    match self.programs[r][pc[r]] {
                        Step::Send { to, bytes } => {
                            let d = rank_depth[r] + 1;
                            inflight.entry((r, to.0)).or_default().push_back((bytes, d));
                            max_depth = max_depth.max(d);
                        }
                        Step::Recv { from, bytes } => {
                            let q = inflight.entry((from.0, r)).or_default();
                            match q.front().copied() {
                                Some((sent, d)) => {
                                    if sent != bytes {
                                        return Err(ScheduleError::SizeMismatch {
                                            from,
                                            to: Rank(r),
                                            sent,
                                            expected: bytes,
                                        });
                                    }
                                    q.pop_front();
                                    rank_depth[r] = rank_depth[r].max(d);
                                }
                                None => break, // blocked
                            }
                        }
                        Step::Compute { .. } | Step::HwBarrier => {}
                    }
                    pc[r] += 1;
                    steps_run += 1;
                    progressed = true;
                }
            }
            if pc
                .iter()
                .enumerate()
                .all(|(r, &c)| c == self.programs[r].len())
            {
                let leftovers: usize = inflight.values().map(VecDeque::len).sum();
                if leftovers > 0 {
                    return Err(ScheduleError::UnconsumedMessages { count: leftovers });
                }
                return Ok((max_depth, steps_run));
            }
            if !progressed {
                if let Some(cycle) = self.wait_cycle(&pc) {
                    return Err(ScheduleError::DeadlockCycle { cycle });
                }
                let waiting = (0..p)
                    .filter(|&r| pc[r] < self.programs[r].len())
                    .map(Rank)
                    .collect();
                return Err(ScheduleError::Stuck { waiting });
            }
        }
    }

    /// Extracts a wait-for cycle from a stalled abstract execution, if
    /// one exists. `pc` is the per-rank program counter at the stall;
    /// every unfinished rank is necessarily blocked at a `Recv` (the
    /// other step kinds always progress under eager abstract execution),
    /// so each blocked rank waits on exactly one other rank and the
    /// wait-for graph is functional — a single pointer walk per
    /// component finds any cycle.
    fn wait_cycle(&self, pc: &[usize]) -> Option<Vec<(Rank, Step)>> {
        let p = self.ranks();
        let waits_on = |r: usize| -> Option<usize> {
            match self.programs[r].get(pc[r]) {
                Some(Step::Recv { from, .. }) => Some(from.0),
                _ => None,
            }
        };
        // 0 = unvisited, 1 = on the current walk, 2 = known cycle-free.
        let mut state = vec![0u8; p];
        for start in 0..p {
            if state[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            loop {
                if state[cur] == 1 {
                    // `cur` reappeared on this walk: the tail of `path`
                    // from its first occurrence is the cycle.
                    let pos = path.iter().position(|&r| r == cur)?;
                    let mut cycle: Vec<usize> = path[pos..].to_vec();
                    let lead = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &r)| r)
                        .map(|(i, _)| i)?;
                    cycle.rotate_left(lead);
                    return Some(
                        cycle
                            .into_iter()
                            .map(|r| (Rank(r), self.programs[r][pc[r]]))
                            .collect(),
                    );
                }
                if state[cur] == 2 {
                    break;
                }
                state[cur] = 1;
                path.push(cur);
                match waits_on(cur) {
                    // Follow the edge only into a rank that is itself
                    // blocked; a finished sender ends the chain (orphan
                    // wait, reported as `Stuck`).
                    Some(next) if pc[next] < self.programs[next].len() => cur = next,
                    _ => break,
                }
            }
            for r in path {
                state[r] = 2;
            }
        }
        None
    }
}

/// Smallest exponent `l` with `2^l >= p`.
pub fn ceil_log2(p: usize) -> u32 {
    assert!(p > 0, "ceil_log2 of zero");
    (p as u64).next_power_of_two().trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(to: usize, bytes: u32) -> Step {
        Step::Send {
            to: Rank(to),
            bytes,
        }
    }
    fn recv(from: usize, bytes: u32) -> Step {
        Step::Recv {
            from: Rank(from),
            bytes,
        }
    }

    #[test]
    fn simple_pingpong_checks() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(1), recv(0, 8));
        s.push(Rank(1), send(0, 8));
        s.push(Rank(0), recv(1, 8));
        assert!(s.check().is_ok());
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 16);
        assert_eq!(s.message_depth(), 2, "reply depends on request");
        assert_eq!(s.steps_of(Rank(0)), 2);
        assert_eq!(s.steps_of(Rank(1)), 2);
        assert_eq!(s.total_steps(), 4);
    }

    #[test]
    fn deadlock_reports_exact_cycle() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), recv(1, 8));
        s.push(Rank(1), recv(0, 8));
        match s.check() {
            Err(ScheduleError::DeadlockCycle { cycle }) => {
                assert_eq!(cycle, vec![(Rank(0), recv(1, 8)), (Rank(1), recv(0, 8))]);
            }
            other => panic!("expected DeadlockCycle, got {other:?}"),
        }
    }

    #[test]
    fn three_cycle_rotates_to_smallest_rank() {
        // 1 waits on 2, 2 waits on 0, 0 waits on 1 — plus sends that
        // would run after the recvs, proving the cycle is the blocker.
        let mut s = Schedule::new(OpClass::PointToPoint, 3);
        s.push(Rank(0), recv(1, 8));
        s.push(Rank(0), send(2, 8));
        s.push(Rank(1), recv(2, 8));
        s.push(Rank(1), send(0, 8));
        s.push(Rank(2), recv(0, 8));
        s.push(Rank(2), send(1, 8));
        match s.check() {
            Err(ScheduleError::DeadlockCycle { cycle }) => {
                assert_eq!(
                    cycle,
                    vec![
                        (Rank(0), recv(1, 8)),
                        (Rank(1), recv(2, 8)),
                        (Rank(2), recv(0, 8)),
                    ]
                );
            }
            other => panic!("expected DeadlockCycle, got {other:?}"),
        }
    }

    #[test]
    fn orphan_wait_is_stuck_not_cycle() {
        // Rank 0 waits on a rank whose program finished without sending:
        // no wait-for cycle exists, so the plain Stuck diagnosis stands.
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), recv(1, 8));
        match s.check() {
            Err(ScheduleError::Stuck { waiting }) => assert_eq!(waiting, vec![Rank(0)]),
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn cycle_found_behind_orphan_chain() {
        // Rank 0 waits on the 1<->2 cycle; the cycle — not rank 0 — is
        // the root cause and must be what gets reported.
        let mut s = Schedule::new(OpClass::PointToPoint, 3);
        s.push(Rank(0), recv(1, 8));
        s.push(Rank(1), recv(2, 8));
        s.push(Rank(1), send(0, 8));
        s.push(Rank(2), recv(1, 8));
        match s.check() {
            Err(ScheduleError::DeadlockCycle { cycle }) => {
                assert_eq!(cycle, vec![(Rank(1), recv(2, 8)), (Rank(2), recv(1, 8))]);
            }
            other => panic!("expected DeadlockCycle, got {other:?}"),
        }
    }

    #[test]
    fn size_mismatch_detected() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        s.push(Rank(1), recv(0, 16));
        assert!(matches!(
            s.check(),
            Err(ScheduleError::SizeMismatch {
                sent: 8,
                expected: 16,
                ..
            })
        ));
    }

    #[test]
    fn unconsumed_message_detected() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(1, 8));
        assert_eq!(
            s.check(),
            Err(ScheduleError::UnconsumedMessages { count: 1 })
        );
    }

    #[test]
    fn out_of_range_detected() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), send(5, 8));
        assert!(matches!(
            s.check(),
            Err(ScheduleError::RankOutOfRange { rank: Rank(5), .. })
        ));
    }

    #[test]
    fn fifo_matching_is_order_sensitive() {
        // Two messages 0->1 with different sizes must be received in
        // sending order.
        let mut ok = Schedule::new(OpClass::PointToPoint, 2);
        ok.push(Rank(0), send(1, 8));
        ok.push(Rank(0), send(1, 16));
        ok.push(Rank(1), recv(0, 8));
        ok.push(Rank(1), recv(0, 16));
        assert!(ok.check().is_ok());

        let mut bad = Schedule::new(OpClass::PointToPoint, 2);
        bad.push(Rank(0), send(1, 8));
        bad.push(Rank(0), send(1, 16));
        bad.push(Rank(1), recv(0, 16));
        bad.push(Rank(1), recv(0, 8));
        assert!(matches!(
            bad.check(),
            Err(ScheduleError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn fan_out_has_depth_one() {
        let mut s = Schedule::new(OpClass::Scatter, 4);
        for i in 1..4 {
            s.push(Rank(0), send(i, 32));
            s.push(Rank(i), recv(0, 32));
        }
        assert!(s.check().is_ok());
        assert_eq!(s.message_depth(), 1);
    }

    #[test]
    fn chain_depth_counts_hops() {
        let mut s = Schedule::new(OpClass::Scan, 4);
        for i in 0..3usize {
            s.push(Rank(i), send(i + 1, 4));
            s.push(Rank(i + 1), recv(i, 4));
        }
        assert!(s.check().is_ok());
        assert_eq!(s.message_depth(), 3);
    }

    #[test]
    fn influence_tracks_data_flow() {
        // 0 -> 1 -> 2 chain: 2 is influenced by everyone upstream.
        let mut s = Schedule::new(OpClass::Scan, 3);
        s.push(Rank(0), send(1, 4));
        s.push(Rank(1), recv(0, 4));
        s.push(Rank(1), send(2, 4));
        s.push(Rank(2), recv(1, 4));
        let inf = s.influence().unwrap();
        assert_eq!(inf[0], vec![true, false, false]);
        assert_eq!(inf[1], vec![true, true, false]);
        assert_eq!(inf[2], vec![true, true, true]);
    }

    #[test]
    fn influence_respects_posting_time() {
        // Rank 0 sends to 2 *before* hearing from 1: the message cannot
        // carry 1's data even though 0 later learns it.
        let mut s = Schedule::new(OpClass::PointToPoint, 3);
        s.push(Rank(0), send(2, 4));
        s.push(Rank(0), recv(1, 4));
        s.push(Rank(1), send(0, 4));
        s.push(Rank(2), recv(0, 4));
        let inf = s.influence().unwrap();
        assert_eq!(inf[2], vec![true, false, true], "no transitive leak");
        assert_eq!(inf[0], vec![true, true, false]);
    }

    #[test]
    fn influence_detects_deadlock_as_none() {
        let mut s = Schedule::new(OpClass::PointToPoint, 2);
        s.push(Rank(0), recv(1, 8));
        s.push(Rank(1), recv(0, 8));
        assert!(s.influence().is_none());
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    #[should_panic(expected = "ceil_log2 of zero")]
    fn ceil_log2_zero_panics() {
        ceil_log2(0);
    }

    #[test]
    fn display_of_errors() {
        let e = ScheduleError::Stuck {
            waiting: vec![Rank(1)],
        };
        assert!(e.to_string().contains("deadlock"));

        let e = ScheduleError::DeadlockCycle {
            cycle: vec![(Rank(0), recv(1, 8)), (Rank(1), recv(0, 8))],
        };
        let msg = e.to_string();
        assert!(msg.contains("wait-for cycle"), "got: {msg}");
        assert!(msg.contains("r0") && msg.contains("r1"), "got: {msg}");

        let e = ScheduleError::AmbiguousMatch {
            from: Rank(2),
            to: Rank(3),
            earlier: 8,
            later: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("ambiguous"), "got: {msg}");
        assert!(msg.contains("r2->r3"), "got: {msg}");
    }
}
