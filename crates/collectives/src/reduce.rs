//! Reduction algorithms.
//!
//! The CRI/EPCC library reduces over a binary (binomial) tree (§8), and
//! MPICH's `MPI_Reduce` of the era was likewise a binomial fan-in: each
//! parent receives a child's partial vector, combines it locally, and
//! passes the result up — O(log p) startup and per-stage compute over the
//! full `m` bytes. A linear fan-in baseline is provided for ablation.

use crate::schedule::{ceil_log2, Rank, Schedule, Step};
use netmodel::OpClass;

/// Binomial-tree reduce toward `root`: the mirror image of the binomial
/// broadcast, with a `Compute` over `bytes` after every receive.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
///
/// # Examples
///
/// ```
/// use collectives::reduce::binomial;
/// use collectives::schedule::Rank;
///
/// let s = binomial(16, Rank(0), 4096);
/// assert!(s.check().is_ok());
/// assert_eq!(s.message_depth(), 4);
/// ```
pub fn binomial(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Reduce, p);
    let l = ceil_log2(p);
    let abs = |vr: usize| Rank((vr + root.0) % p);
    for v in 0..p {
        let me = abs(v);
        // Receive partials from children (ascending masks), combining
        // each, until this rank's own turn to report upward.
        let mut mask = 1usize;
        loop {
            if v & mask != 0 {
                s.push(
                    me,
                    Step::Send {
                        to: abs(v - mask),
                        bytes,
                    },
                );
                break;
            }
            if v + mask < p {
                s.push(
                    me,
                    Step::Recv {
                        from: abs(v + mask),
                        bytes,
                    },
                );
                s.push(me, Step::Compute { bytes });
            }
            mask <<= 1;
            if mask >= (1 << l) {
                break; // only the root falls out here
            }
        }
    }
    s
}

/// Linear reduce: every rank sends its vector to the root, which combines
/// them serially. O(p) startup and O(p·m) compute at the root.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
pub fn linear(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Reduce, p);
    for i in 0..p {
        if i == root.0 {
            continue;
        }
        s.push(Rank(i), Step::Send { to: root, bytes });
        s.push(
            root,
            Step::Recv {
                from: Rank(i),
                bytes,
            },
        );
        s.push(root, Step::Compute { bytes });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_valid_for_all_sizes() {
        for p in 1..=33 {
            for root in [0, p / 2, p - 1] {
                let s = binomial(p, Rank(root), 64);
                s.check()
                    .unwrap_or_else(|e| panic!("p={p} root={root}: {e}"));
                assert_eq!(s.total_messages(), p - 1);
            }
        }
    }

    #[test]
    fn binomial_depth_is_log() {
        for (p, d) in [(2, 1), (8, 3), (16, 4), (64, 6), (100, 6)] {
            assert_eq!(binomial(p, Rank(0), 4).message_depth(), d, "p={p}");
        }
    }

    #[test]
    fn every_nonroot_sends_once() {
        let s = binomial(16, Rank(5), 8);
        for i in 0..16 {
            let sends = s
                .program(Rank(i))
                .iter()
                .filter(|st| matches!(st, Step::Send { .. }))
                .count();
            assert_eq!(sends, usize::from(i != 5), "rank {i}");
        }
    }

    #[test]
    fn computes_follow_each_receive() {
        let s = binomial(8, Rank(0), 8);
        let prog = s.program(Rank(0));
        let recvs = prog
            .iter()
            .filter(|st| matches!(st, Step::Recv { .. }))
            .count();
        let computes = prog
            .iter()
            .filter(|st| matches!(st, Step::Compute { .. }))
            .count();
        assert_eq!(recvs, 3, "root has log2(8) children");
        assert_eq!(computes, recvs);
    }

    #[test]
    fn linear_root_combines_all() {
        let s = linear(8, Rank(0), 8);
        assert!(s.check().is_ok());
        assert_eq!(s.message_depth(), 1);
        let computes = s
            .program(Rank(0))
            .iter()
            .filter(|st| matches!(st, Step::Compute { .. }))
            .count();
        assert_eq!(computes, 7);
    }

    #[test]
    fn single_rank_reduces_nothing() {
        let s = binomial(1, Rank(0), 8);
        assert!(s.check().is_ok());
        assert_eq!(s.total_messages(), 0);
    }
}
