//! # collectives — MPI collective algorithms as communication schedules
//!
//! Every collective operation of the study compiles to a
//! [`Schedule`]: one ordered step program per rank
//! (sends, blocking receives, local reduction arithmetic, hardware
//! barrier entry). The `mpisim` executor replays these programs on the
//! discrete-event machine models.
//!
//! Algorithms implemented (vendor choices per §7–§8 of the paper, plus
//! baselines for ablation):
//!
//! | Operation | Vendor schedule | Baselines |
//! |---|---|---|
//! | Broadcast | binomial tree | linear |
//! | Scatter / Gather | linear root loop | binomial |
//! | Total exchange | pairwise XOR (ring fallback) | ring, Bruck |
//! | Reduce | binomial fan-in | linear |
//! | Scan | recursive doubling | linear pipeline |
//! | Barrier | dissemination (T3D: hardware) | tree |
//! | Allgather/Allreduce/Reduce-scatter | ring / recursive doubling / pairwise (extensions) | — |
//!
//! # Examples
//!
//! ```
//! use collectives::{select, schedule::Rank};
//! use netmodel::{MachineId, OpClass};
//!
//! let s = select::vendor_schedule(
//!     MachineId::T3d, OpClass::Bcast, 64, Rank(0), 65_536,
//! )?;
//! assert_eq!(s.message_depth(), 6); // log2(64) stages
//! # Ok::<(), collectives::select::UnsupportedAlgorithm>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod extra;
pub mod gather;
pub mod patterns;
pub mod reduce;
pub mod scan;
pub mod scatter;
pub mod schedule;
pub mod select;

pub use schedule::{Rank, Schedule, ScheduleError, Step};
pub use select::{build, generic_algorithm, vendor_algorithm, vendor_schedule, Algorithm};
