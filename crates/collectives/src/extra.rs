//! Extension collectives beyond the paper's seven operations.
//!
//! The MPI standard the paper benchmarks also defines `MPI_Allgather`,
//! `MPI_Allreduce`, and `MPI_Reduce_scatter`; the paper's Table 1 notes
//! the richer operation set of the public MPI implementations. These are
//! provided as composable schedules so downstream users can model full
//! applications. Cost-table classes are borrowed from the closest
//! measured operation (allgather → gather, allreduce / reduce-scatter →
//! reduce), which is how the vendor libraries implemented them anyway
//! (composition of the measured primitives).

use crate::schedule::{Rank, Schedule, Step};
use netmodel::OpClass;

/// Ring allgather: `p-1` rounds; in round `r`, rank `i` forwards the
/// block it received in round `r-1` to `(i+1) mod p`. Every rank ends
/// with all `p` blocks of `bytes` each.
///
/// # Panics
///
/// Panics if `p == 0`.
///
/// # Examples
///
/// ```
/// use collectives::extra::allgather_ring;
///
/// let s = allgather_ring(8, 512);
/// assert!(s.check().is_ok());
/// assert_eq!(s.total_messages(), 8 * 7);
/// ```
pub fn allgather_ring(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Gather, p);
    for _round in 1..p {
        for i in 0..p {
            let to = Rank((i + 1) % p);
            let from = Rank((i + p - 1) % p);
            s.push(Rank(i), Step::Send { to, bytes });
            s.push(Rank(i), Step::Recv { from, bytes });
        }
    }
    s
}

/// Recursive-doubling allreduce: `ceil(log2 p)` rounds of pairwise
/// exchange-and-combine; every rank finishes with the full reduction.
/// Ranks beyond the largest power of two fold into partners first and
/// receive the result at the end (the classic MPICH pre/post phase).
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn allreduce_recursive_doubling(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Reduce, p);
    let pof2 = if p.is_power_of_two() {
        p
    } else {
        (p as u64).next_power_of_two() as usize / 2
    };
    let rem = p - pof2;
    // Pre-phase: ranks [pof2, p) send their vectors into [0, rem).
    for i in 0..rem {
        let extra = Rank(pof2 + i);
        s.push(extra, Step::Send { to: Rank(i), bytes });
        s.push(Rank(i), Step::Recv { from: extra, bytes });
        s.push(Rank(i), Step::Compute { bytes });
    }
    // Core: recursive doubling among the first pof2 ranks.
    let mut mask = 1usize;
    while mask < pof2 {
        for i in 0..pof2 {
            let partner = Rank(i ^ mask);
            s.push(Rank(i), Step::Send { to: partner, bytes });
            s.push(
                Rank(i),
                Step::Recv {
                    from: partner,
                    bytes,
                },
            );
            s.push(Rank(i), Step::Compute { bytes });
        }
        mask <<= 1;
    }
    // Post-phase: results flow back out to the folded ranks.
    for i in 0..rem {
        let extra = Rank(pof2 + i);
        s.push(Rank(i), Step::Send { to: extra, bytes });
        s.push(
            extra,
            Step::Recv {
                from: Rank(i),
                bytes,
            },
        );
    }
    s
}

/// Pairwise reduce-scatter: each rank ends with the reduction of one
/// `bytes`-sized block. `p-1` rounds; in round `r`, rank `i` sends the
/// block destined for `(i+r) mod p` and combines the block received from
/// `(i-r) mod p`.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn reduce_scatter_pairwise(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Reduce, p);
    for r in 1..p {
        for i in 0..p {
            let to = Rank((i + r) % p);
            let from = Rank((i + p - r) % p);
            s.push(Rank(i), Step::Send { to, bytes });
            s.push(Rank(i), Step::Recv { from, bytes });
            s.push(Rank(i), Step::Compute { bytes });
        }
    }
    s
}

/// Rabenseifner allreduce: a pairwise reduce-scatter (each rank ends
/// with one reduced block) followed by a ring allgather of the blocks.
/// Bandwidth-optimal for long vectors: each rank communicates ~2m bytes
/// instead of the recursive-doubling `m·log2 p`.
///
/// Block sizes are `ceil(bytes / p)` with the last block truncated.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn allreduce_rabenseifner(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Reduce, p);
    if p == 1 || bytes == 0 {
        return s;
    }
    let block = bytes.div_ceil(p as u32);
    let owned = |v: usize| -> u32 {
        let start = (v as u32).saturating_mul(block).min(bytes);
        let end = ((v as u32 + 1).saturating_mul(block)).min(bytes);
        end - start
    };
    // Phase 1: pairwise reduce-scatter — in round r, rank i sends the
    // block owned by (i + r) mod p and combines the one it owns.
    for r in 1..p {
        for i in 0..p {
            let to = Rank((i + r) % p);
            let from = Rank((i + p - r) % p);
            let send_b = owned((i + r) % p);
            let recv_b = owned(i);
            if send_b > 0 {
                s.push(Rank(i), Step::Send { to, bytes: send_b });
            }
            if recv_b > 0 {
                s.push(
                    Rank(i),
                    Step::Recv {
                        from,
                        bytes: recv_b,
                    },
                );
                s.push(Rank(i), Step::Compute { bytes: recv_b });
            }
        }
    }
    // Phase 2: ring allgather of the reduced blocks.
    for r in 1..p {
        for i in 0..p {
            let to = Rank((i + 1) % p);
            let from = Rank((i + p - 1) % p);
            let send_b = owned((i + p - (r - 1)) % p);
            let recv_b = owned((i + p - r) % p);
            if send_b > 0 {
                s.push(Rank(i), Step::Send { to, bytes: send_b });
            }
            if recv_b > 0 {
                s.push(
                    Rank(i),
                    Step::Recv {
                        from,
                        bytes: recv_b,
                    },
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_valid_any_size() {
        for p in 1..=17 {
            let s = allgather_ring(p, 64);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn allgather_volume() {
        // Every rank forwards p-1 blocks: total p(p-1) messages of m.
        let s = allgather_ring(8, 100);
        assert_eq!(s.total_bytes(), 8 * 7 * 100);
    }

    #[test]
    fn allreduce_valid_any_size() {
        for p in 1..=33 {
            let s = allreduce_recursive_doubling(p, 64);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn allreduce_pow2_depth() {
        let s = allreduce_recursive_doubling(16, 64);
        assert_eq!(s.message_depth(), 4);
        // Every rank sends log2(p) times.
        assert_eq!(s.total_messages(), 16 * 4);
    }

    #[test]
    fn allreduce_non_pow2_has_fold_phases() {
        let s = allreduce_recursive_doubling(6, 64);
        // pof2 = 4, rem = 2: 2 pre + 4*2 core + 2 post messages.
        assert_eq!(s.total_messages(), 2 + 8 + 2);
        assert!(s.message_depth() >= 3);
    }

    #[test]
    fn rabenseifner_valid_any_size() {
        for p in 1..=20 {
            for bytes in [0u32, 3, 100, 4_096, 65_536] {
                let s = allreduce_rabenseifner(p, bytes);
                s.check().unwrap_or_else(|e| panic!("p={p} m={bytes}: {e}"));
            }
        }
    }

    #[test]
    fn rabenseifner_per_rank_traffic_is_about_2m() {
        let p = 8;
        let bytes = 8_000u32;
        let s = allreduce_rabenseifner(p, bytes);
        for r in 0..p {
            let sent: u64 = s
                .program(Rank(r))
                .iter()
                .map(|st| match st {
                    Step::Send { bytes, .. } => u64::from(*bytes),
                    _ => 0,
                })
                .sum();
            assert!(sent <= 2 * u64::from(bytes), "rank {r} sent {sent}");
        }
        // Recursive doubling sends m per round: 3m per rank at p=8.
        let rd = allreduce_recursive_doubling(p, bytes);
        let rd_sent: u64 = rd
            .program(Rank(0))
            .iter()
            .map(|st| match st {
                Step::Send { bytes, .. } => u64::from(*bytes),
                _ => 0,
            })
            .sum();
        assert_eq!(rd_sent, 3 * u64::from(bytes));
    }

    #[test]
    fn reduce_scatter_valid() {
        for p in 1..=17 {
            let s = reduce_scatter_pairwise(p, 64);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
        let s = reduce_scatter_pairwise(8, 100);
        assert_eq!(s.total_messages(), 8 * 7);
    }
}
