//! Barrier algorithms.
//!
//! The T3D performs barriers in its hardwired AND-tree network — the
//! paper's headline 3 µs, at least 30× faster than the software barriers
//! of the SP2 and Paragon (abstract). The software machines use
//! message-based barriers with O(log p) rounds; we provide the
//! dissemination barrier (MPICH's choice) and a tree gather–release
//! variant for ablation.

use crate::schedule::{ceil_log2, Rank, Schedule, Step};
use netmodel::OpClass;

/// Payload of a barrier token (header-only message).
const TOKEN: u32 = 0;

/// Dissemination barrier: in round `k`, rank `i` signals
/// `(i + 2^k) mod p` and waits for the signal from `(i - 2^k) mod p`.
/// After `ceil(log2 p)` rounds every rank has transitively heard from
/// everyone.
///
/// # Panics
///
/// Panics if `p == 0`.
///
/// # Examples
///
/// ```
/// use collectives::barrier::dissemination;
///
/// let s = dissemination(32);
/// assert!(s.check().is_ok());
/// assert_eq!(s.message_depth(), 5);
/// ```
pub fn dissemination(p: usize) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Barrier, p);
    let mut step = 1usize;
    while step < p {
        for i in 0..p {
            let to = Rank((i + step) % p);
            let from = Rank((i + p - step) % p);
            s.push(Rank(i), Step::Send { to, bytes: TOKEN });
            s.push(Rank(i), Step::Recv { from, bytes: TOKEN });
        }
        step <<= 1;
    }
    s
}

/// Tree barrier: binomial fan-in of arrival tokens to rank 0, then a
/// binomial broadcast of the release token.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn tree(p: usize) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Barrier, p);
    let l = ceil_log2(p);
    // Fan-in (mirror of binomial bcast).
    for v in 0..p {
        let mut mask = 1usize;
        loop {
            if v & mask != 0 {
                s.push(
                    Rank(v),
                    Step::Send {
                        to: Rank(v - mask),
                        bytes: TOKEN,
                    },
                );
                break;
            }
            if v + mask < p {
                s.push(
                    Rank(v),
                    Step::Recv {
                        from: Rank(v + mask),
                        bytes: TOKEN,
                    },
                );
            }
            mask <<= 1;
            if mask >= (1 << l) {
                break;
            }
        }
    }
    // Release broadcast.
    for v in 0..p {
        let mut recv_mask = 0usize;
        let mut mask = 1usize;
        while mask < (1 << l) {
            if v & mask != 0 {
                s.push(
                    Rank(v),
                    Step::Recv {
                        from: Rank(v - mask),
                        bytes: TOKEN,
                    },
                );
                recv_mask = mask;
                break;
            }
            mask <<= 1;
        }
        let mut mask = if v == 0 { 1usize << l } else { recv_mask };
        mask >>= 1;
        while mask > 0 {
            if v + mask < p {
                s.push(
                    Rank(v),
                    Step::Send {
                        to: Rank(v + mask),
                        bytes: TOKEN,
                    },
                );
            }
            mask >>= 1;
        }
    }
    s
}

/// Hardware barrier: every rank enters the dedicated barrier network and
/// blocks until the wired AND fires (T3D). The executor models the
/// release latency from [`netmodel::HwBarrierSpec`].
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn hardware(p: usize) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Barrier, p);
    for i in 0..p {
        s.push(Rank(i), Step::HwBarrier);
    }
    s
}

/// Pairwise-exchange barrier: for power-of-two sizes, `log2 p` rounds of
/// XOR-partner token exchanges (both directions per round). For other
/// sizes it falls back to [`dissemination`].
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn pairwise(p: usize) -> Schedule {
    assert!(p > 0, "empty communicator");
    if !p.is_power_of_two() {
        return dissemination(p);
    }
    let mut s = Schedule::new(OpClass::Barrier, p);
    let mut mask = 1usize;
    while mask < p {
        for i in 0..p {
            let partner = Rank(i ^ mask);
            s.push(
                Rank(i),
                Step::Send {
                    to: partner,
                    bytes: TOKEN,
                },
            );
            s.push(
                Rank(i),
                Step::Recv {
                    from: partner,
                    bytes: TOKEN,
                },
            );
        }
        mask <<= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissemination_valid_any_size() {
        for p in 1..=33 {
            let s = dissemination(p);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn dissemination_rounds() {
        // ceil(log2 p) rounds, p messages per round.
        let s = dissemination(8);
        assert_eq!(s.total_messages(), 8 * 3);
        assert_eq!(s.message_depth(), 3);
        let s = dissemination(9);
        assert_eq!(s.total_messages(), 9 * 4);
    }

    #[test]
    fn tree_valid_any_size() {
        for p in 1..=33 {
            let s = tree(p);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn tree_depth_is_two_phases() {
        let s = tree(16);
        assert_eq!(s.message_depth(), 8, "4 up + 4 down");
        assert_eq!(s.total_messages(), 2 * 15);
    }

    #[test]
    fn hardware_is_message_free() {
        let s = hardware(64);
        assert!(s.check().is_ok());
        assert_eq!(s.total_messages(), 0);
        assert!(s.iter().all(|(_, prog)| prog == [Step::HwBarrier]));
    }

    #[test]
    fn pairwise_valid_and_log_depth() {
        for p in [1usize, 2, 4, 8, 16, 32, 64] {
            let s = pairwise(p);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
            if p > 1 {
                assert_eq!(s.message_depth(), crate::schedule::ceil_log2(p) as usize);
            }
        }
        // Non-power-of-two falls back to dissemination.
        let s = pairwise(6);
        assert!(s.check().is_ok());
        assert_eq!(s.total_messages(), dissemination(6).total_messages());
    }

    #[test]
    fn barrier_messages_are_empty() {
        assert_eq!(dissemination(8).total_bytes(), 0);
        assert_eq!(tree(8).total_bytes(), 0);
    }
}
