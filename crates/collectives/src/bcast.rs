//! Broadcast algorithms.
//!
//! The vendor libraries of the era used tree broadcasts: MPICH (SP2,
//! Paragon) and CRI/EPCC MPI (T3D) both deliver via a binomial tree,
//! giving the O(log p) startup the paper measures (§8). A linear
//! root-sends-to-all variant is kept as a baseline/ablation.

use crate::schedule::{ceil_log2, Rank, Schedule, Step};
use netmodel::OpClass;

/// Binomial-tree broadcast (MPICH `MPIR_Bcast` shape): the root feeds the
/// largest subtree first; every rank receives once from its parent, then
/// forwards down its subtrees in decreasing size order.
///
/// Message depth is `ceil(log2 p)`.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
///
/// # Examples
///
/// ```
/// use collectives::bcast::binomial;
/// use collectives::schedule::Rank;
///
/// let s = binomial(8, Rank(0), 1024);
/// assert!(s.check().is_ok());
/// assert_eq!(s.total_messages(), 7);
/// assert_eq!(s.message_depth(), 3);
/// ```
pub fn binomial(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Bcast, p);
    let l = ceil_log2(p);
    for v in 0..p {
        // v is the relative (virtual) rank; translate to absolute.
        let abs = |vr: usize| Rank((vr + root.0) % p);
        let me = abs(v);
        // Receive from parent: scan masks upward to the lowest set bit.
        let mut mask = 1usize;
        let mut recv_mask = 0usize;
        while mask < (1 << l) {
            if v & mask != 0 {
                s.push(
                    me,
                    Step::Recv {
                        from: abs(v - mask),
                        bytes,
                    },
                );
                recv_mask = mask;
                break;
            }
            mask <<= 1;
        }
        // Forward to children, biggest subtree first (descending masks
        // below the receive mask, or from the top for the root).
        let mut mask = if v == 0 { 1usize << l } else { recv_mask };
        mask >>= 1;
        while mask > 0 {
            if v + mask < p {
                s.push(
                    me,
                    Step::Send {
                        to: abs(v + mask),
                        bytes,
                    },
                );
            }
            mask >>= 1;
        }
    }
    s
}

/// Linear broadcast: the root sends the message to every other rank in
/// turn. O(p) startup at the root; depth 1. Baseline for ablation.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
pub fn linear(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Bcast, p);
    for i in 0..p {
        if i == root.0 {
            continue;
        }
        s.push(root, Step::Send { to: Rank(i), bytes });
        s.push(Rank(i), Step::Recv { from: root, bytes });
    }
    s
}

/// Scatter–allgather broadcast (van de Geijn): the root binomial-scatters
/// `bytes` into `p` blocks, then a ring allgather reassembles the full
/// message everywhere. Moves each byte ~twice but pipelines both phases —
/// the long-message algorithm later MPI libraries adopted.
///
/// Block sizes are `ceil(bytes / p)` with the last block truncated.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
pub fn scatter_allgather(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Bcast, p);
    if p == 1 || bytes == 0 {
        return s;
    }
    let block = bytes.div_ceil(p as u32);
    // Block owned by virtual rank v after the scatter phase.
    let owned = |v: usize| -> u32 {
        let start = (v as u32).saturating_mul(block).min(bytes);
        let end = ((v as u32 + 1).saturating_mul(block)).min(bytes);
        end - start
    };
    // Bytes covering virtual ranks [v, v+span), for the scatter tree.
    let span_bytes = |v: usize, span: usize| -> u32 { (v..(v + span).min(p)).map(owned).sum() };
    let abs = |vr: usize| Rank((vr + root.0) % p);
    let l = ceil_log2(p);

    // Phase 1: binomial scatter of the blocks (same tree as the binomial
    // broadcast, block-ranged payloads).
    for v in 0..p {
        let me = abs(v);
        let mut recv_mask = 0usize;
        let mut mask = 1usize;
        while mask < (1 << l) {
            if v & mask != 0 {
                let b = span_bytes(v, mask);
                if b > 0 {
                    s.push(
                        me,
                        Step::Recv {
                            from: abs(v - mask),
                            bytes: b,
                        },
                    );
                }
                recv_mask = mask;
                break;
            }
            mask <<= 1;
        }
        let mut mask = if v == 0 { 1usize << l } else { recv_mask };
        mask >>= 1;
        while mask > 0 {
            if v + mask < p {
                let b = span_bytes(v + mask, mask);
                if b > 0 {
                    s.push(
                        me,
                        Step::Send {
                            to: abs(v + mask),
                            bytes: b,
                        },
                    );
                }
            }
            mask >>= 1;
        }
    }

    // Phase 2: ring allgather — in round r, virtual rank v forwards the
    // block of virtual rank (v - r + 1) to its successor.
    for r in 1..p {
        for v in 0..p {
            let to = abs((v + 1) % p);
            let from = abs((v + p - 1) % p);
            let send_block = owned((v + p - (r - 1)) % p);
            let recv_block = owned((v + p - r) % p);
            if send_block > 0 {
                s.push(
                    abs(v),
                    Step::Send {
                        to,
                        bytes: send_block,
                    },
                );
            }
            if recv_block > 0 {
                s.push(
                    abs(v),
                    Step::Recv {
                        from,
                        bytes: recv_block,
                    },
                );
            }
        }
    }
    s
}

/// Pipelined chain broadcast: the message is carved into segments that
/// stream down the rank chain `root → root+1 → …`; once the pipe fills,
/// every link carries a segment concurrently, so the asymptotic cost is
/// one traversal of `m` plus the fill time — the schedule of choice for
/// very long messages on high-latency trees.
///
/// # Panics
///
/// Panics if `p == 0`, `root >= p`, or `segment == 0`.
pub fn pipelined(p: usize, root: Rank, bytes: u32, segment: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    assert!(segment > 0, "segment must be positive");
    let mut s = Schedule::new(OpClass::Bcast, p);
    if p == 1 || bytes == 0 {
        return s;
    }
    let abs = |vr: usize| Rank((vr + root.0) % p);
    let full_segments = bytes / segment;
    let tail = bytes % segment;
    let chunks: Vec<u32> = (0..full_segments)
        .map(|_| segment)
        .chain((tail > 0).then_some(tail))
        .collect();
    for v in 0..p {
        let me = abs(v);
        for &chunk in &chunks {
            if v > 0 {
                s.push(
                    me,
                    Step::Recv {
                        from: abs(v - 1),
                        bytes: chunk,
                    },
                );
            }
            if v + 1 < p {
                s.push(
                    me,
                    Step::Send {
                        to: abs(v + 1),
                        bytes: chunk,
                    },
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_valid_for_all_sizes() {
        for p in 1..=33 {
            for root in [0, p / 2, p - 1] {
                let s = binomial(p, Rank(root), 64);
                s.check()
                    .unwrap_or_else(|e| panic!("p={p} root={root}: {e}"));
                assert_eq!(s.total_messages(), p - 1, "p={p}");
            }
        }
    }

    #[test]
    fn binomial_depth_is_log() {
        // Binomial-tree depth over p ranks is the max popcount of a
        // virtual rank below p (== ceil(log2 p) only at powers of two).
        for (p, d) in [(2, 1), (4, 2), (5, 2), (8, 3), (16, 4), (64, 6), (128, 7)] {
            assert_eq!(binomial(p, Rank(0), 4).message_depth(), d, "p={p}");
        }
    }

    #[test]
    fn binomial_root_sends_log_messages() {
        let s = binomial(64, Rank(0), 4);
        let root_sends = s
            .program(Rank(0))
            .iter()
            .filter(|st| matches!(st, Step::Send { .. }))
            .count();
        assert_eq!(root_sends, 6);
    }

    #[test]
    fn binomial_biggest_subtree_first() {
        let s = binomial(8, Rank(0), 4);
        let targets: Vec<usize> = s
            .program(Rank(0))
            .iter()
            .filter_map(|st| match st {
                Step::Send { to, .. } => Some(to.0),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![4, 2, 1]);
    }

    #[test]
    fn nonzero_root_rotates() {
        let s = binomial(8, Rank(3), 4);
        assert!(s.check().is_ok());
        // Rank 3 is the actual root: it never receives.
        assert!(!s
            .program(Rank(3))
            .iter()
            .any(|st| matches!(st, Step::Recv { .. })));
    }

    #[test]
    fn linear_depth_one() {
        let s = linear(16, Rank(0), 4);
        assert!(s.check().is_ok());
        assert_eq!(s.message_depth(), 1);
        assert_eq!(s.total_messages(), 15);
    }

    #[test]
    fn single_rank_is_empty() {
        let s = binomial(1, Rank(0), 4);
        assert!(s.check().is_ok());
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn bad_root_panics() {
        binomial(4, Rank(4), 1);
    }

    #[test]
    fn scatter_allgather_valid_for_all_sizes() {
        for p in 1..=33 {
            for root in [0, p / 2, p - 1] {
                for bytes in [0u32, 1, 64, 1000, 65_536] {
                    let s = scatter_allgather(p, Rank(root), bytes);
                    s.check()
                        .unwrap_or_else(|e| panic!("p={p} root={root} m={bytes}: {e}"));
                }
            }
        }
    }

    #[test]
    fn scatter_allgather_bounds_per_rank_traffic() {
        // The van de Geijn algorithm's advantage is per-rank bandwidth:
        // no rank sends more than ~2m, while the binomial root pushes
        // log2(p) full copies.
        let p = 16;
        let bytes = 16_000u32; // divisible: blocks of 1000
        let per_rank_sent = |s: &Schedule| -> u64 {
            (0..p)
                .map(|r| {
                    s.program(Rank(r))
                        .iter()
                        .map(|st| match st {
                            Step::Send { bytes, .. } => u64::from(*bytes),
                            _ => 0,
                        })
                        .sum::<u64>()
                })
                .max()
                .unwrap()
        };
        let sag = per_rank_sent(&scatter_allgather(p, Rank(0), bytes));
        let binom = per_rank_sent(&binomial(p, Rank(0), bytes));
        assert_eq!(binom, 4 * u64::from(bytes), "root sends log2(16) copies");
        assert!(
            sag <= 2 * u64::from(bytes),
            "no rank exceeds ~2m: sent {sag}"
        );
    }

    #[test]
    fn pipelined_valid_and_streams() {
        for p in 1..=17 {
            for (bytes, seg) in [(0u32, 512u32), (100, 512), (10_000, 512), (10_000, 3_000)] {
                let s = pipelined(p, Rank(0), bytes, seg);
                s.check()
                    .unwrap_or_else(|e| panic!("p={p} m={bytes} seg={seg}: {e}"));
            }
        }
        // Total bytes: every non-terminal rank forwards the full message.
        let s = pipelined(5, Rank(0), 10_000, 1_000);
        assert_eq!(s.total_bytes(), 4 * 10_000);
        assert_eq!(s.total_messages(), 4 * 10);
    }

    #[test]
    fn pipelined_depth_is_chain_length() {
        // Each segment travels its own (p-1)-hop dependency chain; the
        // message-depth metric reports the longest such chain. (The
        // pipeline-fill serialization between segments at a rank is a
        // timing effect the executor models, not a message dependency.)
        let s = pipelined(8, Rank(0), 8_192, 1_024);
        assert!(s.check().is_ok());
        assert_eq!(s.message_depth(), 7);
    }

    #[test]
    fn scatter_allgather_tiny_messages_degenerate_cleanly() {
        // bytes < p: some ranks own zero-length blocks.
        let s = scatter_allgather(8, Rank(0), 3);
        assert!(s.check().is_ok());
        let s = scatter_allgather(8, Rank(0), 0);
        assert_eq!(s.total_messages(), 0);
    }
}
