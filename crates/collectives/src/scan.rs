//! Parallel-prefix (MPI_Scan) algorithms.
//!
//! The paper measures O(log p) scan startup on all three machines —
//! recursive doubling, MPICH's algorithm of the era. The linear pipeline
//! chain (each rank combines and forwards to its successor) is kept as a
//! baseline: it has O(p) depth but the smallest message count.

use crate::schedule::{Rank, Schedule, Step};
use netmodel::OpClass;

/// Recursive-doubling inclusive scan: in round `k`, rank `i` sends its
/// running partial to `i + 2^k` and combines the partial received from
/// `i - 2^k`. `ceil(log2 p)` rounds, up to `p-1` messages per round.
///
/// # Panics
///
/// Panics if `p == 0`.
///
/// # Examples
///
/// ```
/// use collectives::scan::recursive_doubling;
///
/// let s = recursive_doubling(16, 1024);
/// assert!(s.check().is_ok());
/// assert_eq!(s.message_depth(), 4);
/// ```
pub fn recursive_doubling(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Scan, p);
    let mut mask = 1usize;
    while mask < p {
        for i in 0..p {
            // Eager send of the current partial, then the blocking
            // combine from below.
            if i + mask < p {
                s.push(
                    Rank(i),
                    Step::Send {
                        to: Rank(i + mask),
                        bytes,
                    },
                );
            }
            if i >= mask {
                s.push(
                    Rank(i),
                    Step::Recv {
                        from: Rank(i - mask),
                        bytes,
                    },
                );
                s.push(Rank(i), Step::Compute { bytes });
            }
        }
        mask <<= 1;
    }
    s
}

/// Linear pipeline scan: rank `i` waits for the prefix of `0..i` from its
/// predecessor, combines its own contribution, and forwards to `i + 1`.
/// Depth `p-1`, exactly `p-1` messages.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn linear(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Scan, p);
    for i in 0..p.saturating_sub(1) {
        s.push(
            Rank(i + 1),
            Step::Recv {
                from: Rank(i),
                bytes,
            },
        );
        s.push(Rank(i + 1), Step::Compute { bytes });
        s.push(
            Rank(i),
            Step::Send {
                to: Rank(i + 1),
                bytes,
            },
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_doubling_valid() {
        for p in 1..=33 {
            let s = recursive_doubling(p, 64);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn recursive_doubling_depth_is_log() {
        for (p, d) in [(2, 1), (4, 2), (8, 3), (64, 6)] {
            assert_eq!(recursive_doubling(p, 4).message_depth(), d, "p={p}");
        }
        // Non-powers of two stay within [floor(log2(p-1)), ceil(log2 p)].
        for p in [3usize, 5, 9, 33, 100] {
            let d = recursive_doubling(p, 4).message_depth();
            let lo = usize::BITS as usize - 1 - (p - 1).leading_zeros() as usize;
            let hi = crate::schedule::ceil_log2(p) as usize;
            assert!(d >= lo && d <= hi, "p={p}: depth {d} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn recursive_doubling_message_count() {
        // Round k has p - 2^k messages.
        let p = 16;
        let s = recursive_doubling(p, 4);
        let expect: usize = [1usize, 2, 4, 8].iter().map(|m| p - m).sum();
        assert_eq!(s.total_messages(), expect);
    }

    #[test]
    fn linear_chain_shape() {
        let s = linear(8, 64);
        assert!(s.check().is_ok());
        assert_eq!(s.total_messages(), 7);
        assert_eq!(s.message_depth(), 7);
    }

    #[test]
    fn last_rank_combines_in_both_variants() {
        for s in [recursive_doubling(8, 4), linear(8, 4)] {
            let computes = s
                .program(Rank(7))
                .iter()
                .filter(|st| matches!(st, Step::Compute { .. }))
                .count();
            assert!(computes >= 1, "last rank must combine");
        }
    }

    #[test]
    fn rank_zero_never_receives() {
        for s in [recursive_doubling(16, 4), linear(16, 4)] {
            assert!(!s
                .program(Rank(0))
                .iter()
                .any(|st| matches!(st, Step::Recv { .. })));
        }
    }

    #[test]
    fn single_rank_trivial() {
        assert_eq!(recursive_doubling(1, 4).total_messages(), 0);
        assert_eq!(linear(1, 4).total_messages(), 0);
    }
}
