//! Total exchange (MPI_Alltoall) algorithms.
//!
//! The dominant collective of the paper's evaluation: `p(p-1)` pairwise
//! messages, O(p) startup on every machine, and the largest aggregated
//! bandwidth numbers (§8: 1.745 / 0.879 / 0.818 GB/s at 64 nodes for
//! T3D / Paragon / SP2).
//!
//! Three classical schedules are provided:
//!
//! * [`pairwise`] — XOR-partner exchange, `p-1` balanced rounds
//!   (power-of-two sizes only), the schedule MPICH used on these systems;
//! * [`ring`] — shifted-partner rounds for any `p`;
//! * [`bruck`] — the log-round latency-optimized variant (moves more
//!   bytes), for ablation against the linear-round algorithms.

use crate::schedule::{Rank, Schedule, Step};
use netmodel::OpClass;

/// Pairwise-exchange total exchange: in round `r ∈ 1..p`, rank `i`
/// exchanges `bytes` with partner `i XOR r`. Requires `p` to be a power
/// of two; every round is a perfect matching, which keeps link load
/// balanced.
///
/// # Panics
///
/// Panics if `p == 0` or `p` is not a power of two.
///
/// # Examples
///
/// ```
/// use collectives::alltoall::pairwise;
///
/// let s = pairwise(8, 1024);
/// assert!(s.check().is_ok());
/// assert_eq!(s.total_messages(), 8 * 7);
/// ```
pub fn pairwise(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(
        p.is_power_of_two(),
        "pairwise exchange requires a power of two"
    );
    let mut s = Schedule::new(OpClass::Alltoall, p);
    for r in 1..p {
        for i in 0..p {
            let partner = Rank(i ^ r);
            s.push(Rank(i), Step::Send { to: partner, bytes });
            s.push(
                Rank(i),
                Step::Recv {
                    from: partner,
                    bytes,
                },
            );
        }
    }
    s
}

/// Ring (shifted) total exchange: in round `r ∈ 1..p`, rank `i` sends to
/// `(i + r) mod p` and receives from `(i - r) mod p`. Works for any `p`.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn ring(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Alltoall, p);
    for r in 1..p {
        for i in 0..p {
            let to = Rank((i + r) % p);
            let from = Rank((i + p - r) % p);
            s.push(Rank(i), Step::Send { to, bytes });
            s.push(Rank(i), Step::Recv { from, bytes });
        }
    }
    s
}

/// Bruck total exchange: `ceil(log2 p)` rounds; in round `k` each rank
/// ships every data block whose index has bit `k` set to the rank
/// `2^k` ahead. Latency-optimal (log rounds) at the cost of moving each
/// byte ~`log2(p)/2` times.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn bruck(p: usize, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    let mut s = Schedule::new(OpClass::Alltoall, p);
    let mut step = 1usize; // 2^k
    while step < p {
        // Number of block indices j in 0..p with this bit set.
        let blocks = (0..p).filter(|j| j & step != 0).count() as u32;
        let payload = bytes.saturating_mul(blocks);
        for i in 0..p {
            let to = Rank((i + step) % p);
            let from = Rank((i + p - step) % p);
            s.push(Rank(i), Step::Send { to, bytes: payload });
            s.push(
                Rank(i),
                Step::Recv {
                    from,
                    bytes: payload,
                },
            );
        }
        step <<= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_valid_for_powers_of_two() {
        for p in [1, 2, 4, 8, 16, 32, 64, 128] {
            let s = pairwise(p, 64);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
            assert_eq!(s.total_messages(), p * (p - 1), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn pairwise_rejects_non_pow2() {
        pairwise(6, 64);
    }

    #[test]
    fn ring_valid_for_any_size() {
        for p in 1..=17 {
            let s = ring(p, 64);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
            assert_eq!(s.total_messages(), p * (p - 1));
            assert_eq!(s.total_bytes(), (p * (p - 1) * 64) as u64);
        }
    }

    #[test]
    fn aggregated_volume_matches_paper_formula() {
        // f(m,p) = m·p(p-1) for total exchange (§3).
        let s = ring(64, 65_536);
        assert_eq!(
            s.total_bytes(),
            OpClass::Alltoall.aggregated_bytes(65_536, 64)
        );
    }

    #[test]
    fn bruck_has_log_rounds_but_more_bytes() {
        let p = 32;
        let b = bruck(p, 100);
        let r = ring(p, 100);
        assert!(b.check().is_ok());
        // 5 rounds, each rank one send per round.
        assert_eq!(b.total_messages(), p * 5);
        assert!(b.total_bytes() > r.total_bytes() / 2, "bruck moves plenty");
        assert!(b.message_depth() <= 5, "log-depth: {}", b.message_depth());
        // Ring rounds chain through each rank's program order: depth p-1.
        assert_eq!(r.message_depth(), p - 1);
    }

    #[test]
    fn bruck_valid_for_non_pow2() {
        for p in [3, 5, 6, 7, 12, 31] {
            let s = bruck(p, 16);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn pairwise_rounds_are_matchings() {
        // Each round pairs everyone exactly once: sends per round == p.
        let p = 8;
        let s = pairwise(p, 4);
        // Every rank issues exactly p-1 sends and p-1 recvs.
        for i in 0..p {
            let sends = s
                .program(Rank(i))
                .iter()
                .filter(|st| matches!(st, Step::Send { .. }))
                .count();
            assert_eq!(sends, p - 1);
        }
    }

    #[test]
    fn single_rank_trivial() {
        assert_eq!(ring(1, 64).total_messages(), 0);
        assert_eq!(pairwise(1, 64).total_messages(), 0);
        assert_eq!(bruck(1, 64).total_messages(), 0);
    }
}
