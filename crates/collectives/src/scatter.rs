//! Scatter algorithms.
//!
//! The paper observes O(p) scatter startup on all three machines (§8),
//! matching the linear root loop the vendor libraries used: the root
//! posts one personalized message per destination. A binomial variant
//! (MPICH's later `MPI_Scatter` tree, which halves the data per level)
//! is provided for ablation.

use crate::schedule::{ceil_log2, Rank, Schedule, Step};
use netmodel::OpClass;

/// Linear scatter: the root sends each rank its `bytes`-sized block,
/// in increasing rank order. Depth 1, `p-1` messages.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
///
/// # Examples
///
/// ```
/// use collectives::scatter::linear;
/// use collectives::schedule::Rank;
///
/// let s = linear(16, Rank(0), 512);
/// assert!(s.check().is_ok());
/// assert_eq!(s.total_bytes(), 512 * 15);
/// ```
pub fn linear(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Scatter, p);
    for i in 0..p {
        if i == root.0 {
            continue;
        }
        s.push(root, Step::Send { to: Rank(i), bytes });
        s.push(Rank(i), Step::Recv { from: root, bytes });
    }
    s
}

/// Binomial scatter: the root splits the buffer in halves down a binomial
/// tree; each internal rank receives its whole subtree's data and
/// forwards the halves. Depth `ceil(log2 p)`, but moves `O(m·p·log p / 2)`
/// total bytes — a latency/bandwidth trade-off.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
pub fn binomial(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Scatter, p);
    let l = ceil_log2(p);
    let abs = |vr: usize| Rank((vr + root.0) % p);
    // Subtree size of virtual rank v when its receive mask is `mask`:
    // the block covers ranks [v, min(v+mask, p)).
    let block = |v: usize, mask: usize| -> u32 {
        let span = (v + mask).min(p) - v;
        bytes.saturating_mul(span as u32)
    };
    for v in 0..p {
        let me = abs(v);
        let mut recv_mask = 0usize;
        let mut mask = 1usize;
        while mask < (1 << l) {
            if v & mask != 0 {
                s.push(
                    me,
                    Step::Recv {
                        from: abs(v - mask),
                        bytes: block(v, mask),
                    },
                );
                recv_mask = mask;
                break;
            }
            mask <<= 1;
        }
        let mut mask = if v == 0 { 1usize << l } else { recv_mask };
        mask >>= 1;
        while mask > 0 {
            if v + mask < p {
                s.push(
                    me,
                    Step::Send {
                        to: abs(v + mask),
                        bytes: block(v + mask, mask),
                    },
                );
            }
            mask >>= 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_valid_and_flat() {
        for p in 1..=20 {
            let s = linear(p, Rank(0), 128);
            assert!(s.check().is_ok(), "p={p}");
            assert_eq!(s.total_messages(), p - 1);
            if p > 1 {
                assert_eq!(s.message_depth(), 1);
            }
        }
    }

    #[test]
    fn binomial_valid_for_all_sizes() {
        for p in 1..=33 {
            for root in [0, p - 1] {
                let s = binomial(p, Rank(root), 64);
                s.check()
                    .unwrap_or_else(|e| panic!("p={p} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn binomial_depth_is_log() {
        assert_eq!(binomial(16, Rank(0), 4).message_depth(), 4);
        assert_eq!(binomial(64, Rank(0), 4).message_depth(), 6);
    }

    #[test]
    fn binomial_moves_more_bytes_than_linear() {
        let lin = linear(32, Rank(0), 100);
        let bin = binomial(32, Rank(0), 100);
        assert_eq!(lin.total_bytes(), 3100);
        assert!(bin.total_bytes() > lin.total_bytes());
        // Root sends halves: 16*100 + 8*100 + ... + 1*100 = 3100 at root,
        // plus internal forwarding.
        assert_eq!(
            bin.total_bytes(),
            100 * (16 + 8 + 4 + 2 + 1) as u64 + 100 * 49
        );
    }

    #[test]
    fn binomial_block_sizes_cover_every_rank_once() {
        // Each non-root rank receives exactly its subtree block; leaves
        // receive exactly `bytes`.
        let s = binomial(8, Rank(0), 10);
        for leaf in [1usize, 3, 5, 7] {
            let recvs: Vec<u32> = s
                .program(Rank(leaf))
                .iter()
                .filter_map(|st| match st {
                    Step::Recv { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .collect();
            assert_eq!(recvs, vec![10], "leaf {leaf}");
        }
    }

    #[test]
    fn nonpow2_blocks_truncate() {
        let s = binomial(6, Rank(0), 10);
        assert!(s.check().is_ok());
        // Rank 4's subtree is {4, 5}: it receives 20 bytes.
        let recvs: Vec<u32> = s
            .program(Rank(4))
            .iter()
            .filter_map(|st| match st {
                Step::Recv { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(recvs, vec![20]);
    }

    #[test]
    #[should_panic(expected = "empty communicator")]
    fn zero_ranks_panics() {
        linear(0, Rank(0), 1);
    }
}
