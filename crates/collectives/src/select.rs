//! Vendor algorithm selection.
//!
//! §7 of the paper attributes per-machine anomalies to "different
//! collective algorithms used" by each vendor library. This module
//! encodes which schedule each machine's library builds for each
//! operation, plus a generic-MPICH table used by the `ablate_vendor`
//! benchmark (forcing identical algorithms on all machines isolates the
//! contribution of algorithm choice from raw machine parameters).

use crate::schedule::{Rank, Schedule};
use crate::{alltoall, barrier, bcast, gather, reduce, scan, scatter};
use netmodel::{MachineId, OpClass};

/// A concrete collective algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Binomial tree (bcast, scatter, gather, reduce).
    Binomial,
    /// Flat root loop (bcast, scatter, gather, reduce) or pipeline chain
    /// (scan).
    Linear,
    /// Pairwise XOR exchange (alltoall; power-of-two sizes, otherwise
    /// falls back to [`Algorithm::Ring`]).
    Pairwise,
    /// Shifted-ring rounds (alltoall).
    Ring,
    /// Bruck log-round alltoall.
    Bruck,
    /// Recursive doubling (scan).
    RecursiveDoubling,
    /// Dissemination rounds (barrier).
    Dissemination,
    /// Fan-in/fan-out tree (barrier).
    Tree,
    /// Dedicated barrier hardware (barrier; T3D only).
    Hardware,
    /// Van de Geijn scatter–allgather (broadcast, long messages).
    ScatterAllgather,
    /// Segmented pipeline chain (broadcast, very long messages). Uses a
    /// 4 KB segment.
    Pipelined,
}

/// Error returned when an algorithm cannot implement an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedAlgorithm {
    /// The operation requested.
    pub class: OpClass,
    /// The algorithm that cannot implement it.
    pub algorithm: Algorithm,
}

impl std::fmt::Display for UnsupportedAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} cannot implement {}", self.algorithm, self.class)
    }
}

impl std::error::Error for UnsupportedAlgorithm {}

/// Builds the schedule for `class` using `algorithm`.
///
/// `root` is ignored by the rootless operations (barrier, scan,
/// alltoall). [`Algorithm::Pairwise`] silently falls back to the ring
/// schedule for non-power-of-two `p`, as MPICH did.
///
/// # Errors
///
/// Returns [`UnsupportedAlgorithm`] for nonsensical pairings (e.g. a
/// hardware-barrier broadcast).
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
pub fn build(
    algorithm: Algorithm,
    class: OpClass,
    p: usize,
    root: Rank,
    bytes: u32,
) -> Result<Schedule, UnsupportedAlgorithm> {
    let unsupported = Err(UnsupportedAlgorithm { class, algorithm });
    match class {
        OpClass::Bcast => match algorithm {
            Algorithm::Binomial => Ok(bcast::binomial(p, root, bytes)),
            Algorithm::Linear => Ok(bcast::linear(p, root, bytes)),
            Algorithm::ScatterAllgather => Ok(bcast::scatter_allgather(p, root, bytes)),
            Algorithm::Pipelined => Ok(bcast::pipelined(p, root, bytes, 4_096)),
            _ => unsupported,
        },
        OpClass::Scatter => match algorithm {
            Algorithm::Binomial => Ok(scatter::binomial(p, root, bytes)),
            Algorithm::Linear => Ok(scatter::linear(p, root, bytes)),
            _ => unsupported,
        },
        OpClass::Gather => match algorithm {
            Algorithm::Binomial => Ok(gather::binomial(p, root, bytes)),
            Algorithm::Linear => Ok(gather::linear(p, root, bytes)),
            _ => unsupported,
        },
        OpClass::Reduce => match algorithm {
            Algorithm::Binomial => Ok(reduce::binomial(p, root, bytes)),
            Algorithm::Linear => Ok(reduce::linear(p, root, bytes)),
            _ => unsupported,
        },
        OpClass::Scan => match algorithm {
            Algorithm::RecursiveDoubling => Ok(scan::recursive_doubling(p, bytes)),
            Algorithm::Linear => Ok(scan::linear(p, bytes)),
            _ => unsupported,
        },
        OpClass::Alltoall => match algorithm {
            Algorithm::Pairwise => {
                if p.is_power_of_two() {
                    Ok(alltoall::pairwise(p, bytes))
                } else {
                    Ok(alltoall::ring(p, bytes))
                }
            }
            Algorithm::Ring => Ok(alltoall::ring(p, bytes)),
            Algorithm::Bruck => Ok(alltoall::bruck(p, bytes)),
            _ => unsupported,
        },
        OpClass::Barrier => match algorithm {
            Algorithm::Dissemination => Ok(barrier::dissemination(p)),
            Algorithm::Tree => Ok(barrier::tree(p)),
            Algorithm::Hardware => Ok(barrier::hardware(p)),
            Algorithm::Pairwise => Ok(barrier::pairwise(p)),
            _ => unsupported,
        },
        OpClass::PointToPoint => unsupported,
    }
}

/// The algorithm each machine's vendor library uses for `class`.
///
/// All three machines ran MPICH-derived collectives with the same
/// high-level shapes (binomial trees, linear root loops, pairwise
/// exchange, recursive doubling, dissemination barrier); the T3D's
/// CRI/EPCC MPI additionally routes barriers to the hardware AND tree.
/// Per-machine *cost* differences live in the
/// [`netmodel`] cost tables, not here.
pub fn vendor_algorithm(machine: MachineId, class: OpClass) -> Algorithm {
    match class {
        OpClass::Bcast | OpClass::Reduce => Algorithm::Binomial,
        OpClass::Scatter | OpClass::Gather => Algorithm::Linear,
        OpClass::Scan => Algorithm::RecursiveDoubling,
        OpClass::Alltoall => Algorithm::Pairwise,
        OpClass::Barrier => {
            if machine == MachineId::T3d {
                Algorithm::Hardware
            } else {
                Algorithm::Dissemination
            }
        }
        OpClass::PointToPoint => Algorithm::Linear,
    }
}

/// The generic MPICH table: identical software algorithms on every
/// machine (no hardware barrier). Used by the vendor-selection ablation.
pub fn generic_algorithm(class: OpClass) -> Algorithm {
    match class {
        OpClass::Bcast | OpClass::Reduce => Algorithm::Binomial,
        OpClass::Scatter | OpClass::Gather => Algorithm::Linear,
        OpClass::Scan => Algorithm::RecursiveDoubling,
        OpClass::Alltoall => Algorithm::Pairwise,
        OpClass::Barrier => Algorithm::Dissemination,
        OpClass::PointToPoint => Algorithm::Linear,
    }
}

/// Builds the vendor schedule for `machine`/`class` directly.
///
/// # Errors
///
/// Propagates [`UnsupportedAlgorithm`] (cannot occur for the seven
/// measured collectives).
pub fn vendor_schedule(
    machine: MachineId,
    class: OpClass,
    p: usize,
    root: Rank,
    bytes: u32,
) -> Result<Schedule, UnsupportedAlgorithm> {
    build(vendor_algorithm(machine, class), class, p, root, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_schedules_build_and_check() {
        for machine in MachineId::ALL {
            for class in OpClass::COLLECTIVES {
                for p in [1, 2, 3, 8, 17, 64] {
                    let s = vendor_schedule(machine, class, p, Rank(0), 64)
                        .unwrap_or_else(|e| panic!("{machine}/{class}/p={p}: {e}"));
                    s.check()
                        .unwrap_or_else(|e| panic!("{machine}/{class}/p={p}: {e}"));
                    assert_eq!(s.class(), class);
                }
            }
        }
    }

    #[test]
    fn t3d_uses_hardware_barrier() {
        assert_eq!(
            vendor_algorithm(MachineId::T3d, OpClass::Barrier),
            Algorithm::Hardware
        );
        assert_eq!(
            vendor_algorithm(MachineId::Sp2, OpClass::Barrier),
            Algorithm::Dissemination
        );
        // Generic table never picks hardware.
        assert_eq!(
            generic_algorithm(OpClass::Barrier),
            Algorithm::Dissemination
        );
    }

    #[test]
    fn pairwise_falls_back_to_ring() {
        let s = build(Algorithm::Pairwise, OpClass::Alltoall, 6, Rank(0), 8).unwrap();
        assert!(s.check().is_ok());
        assert_eq!(s.total_messages(), 30);
    }

    #[test]
    fn extended_algorithms_build() {
        let s = build(
            Algorithm::ScatterAllgather,
            OpClass::Bcast,
            12,
            Rank(0),
            9_999,
        )
        .unwrap();
        assert!(s.check().is_ok());
        let s = build(Algorithm::Pipelined, OpClass::Bcast, 12, Rank(0), 9_999).unwrap();
        assert!(s.check().is_ok());
        let s = build(Algorithm::Pairwise, OpClass::Barrier, 16, Rank(0), 0).unwrap();
        assert!(s.check().is_ok());
        assert!(build(Algorithm::ScatterAllgather, OpClass::Gather, 4, Rank(0), 8).is_err());
    }

    #[test]
    fn nonsense_pairings_rejected() {
        let e = build(Algorithm::Hardware, OpClass::Bcast, 4, Rank(0), 8).unwrap_err();
        assert_eq!(e.class, OpClass::Bcast);
        assert!(e.to_string().contains("Hardware"));
        assert!(build(Algorithm::Bruck, OpClass::Barrier, 4, Rank(0), 0).is_err());
    }

    #[test]
    fn startup_shape_matches_table3() {
        // O(log p) classes use tree/doubling algorithms; O(p) classes use
        // linear/pairwise — consistent with OpClass::startup_is_logarithmic.
        for class in OpClass::COLLECTIVES {
            let alg = generic_algorithm(class);
            let logish = matches!(
                alg,
                Algorithm::Binomial
                    | Algorithm::RecursiveDoubling
                    | Algorithm::Dissemination
                    | Algorithm::Tree
                    | Algorithm::Hardware
            );
            assert_eq!(logish, class.startup_is_logarithmic(), "{class} / {alg:?}");
        }
    }
}
