//! Application communication patterns built from point-to-point steps.
//!
//! The paper motivates its measurements with SPMD application kernels
//! (STAP signal processing, §1/§9). These builders produce the classic
//! patterns such applications layer *around* the collectives, so full
//! application phases can be simulated with the same executor: halo
//! exchanges for domain decomposition, and master–worker task rounds.

use crate::schedule::{Rank, Schedule, Step};
use netmodel::OpClass;

/// Bidirectional ring halo exchange: every rank swaps `bytes` with both
/// neighbours on a periodic 1-D decomposition.
///
/// # Panics
///
/// Panics if `p == 0`.
///
/// # Examples
///
/// ```
/// use collectives::patterns::halo_ring;
///
/// let s = halo_ring(8, 4_096);
/// assert!(s.check().is_ok());
/// assert_eq!(s.total_messages(), 16); // two per rank
/// ```
pub fn halo_ring(p: usize, bytes: u32) -> Schedule {
    let mut s = Schedule::new(OpClass::PointToPoint, p);
    if p < 2 {
        return s;
    }
    for i in 0..p {
        let next = Rank((i + 1) % p);
        let prev = Rank((i + p - 1) % p);
        s.push(Rank(i), Step::Send { to: next, bytes });
        s.push(Rank(i), Step::Send { to: prev, bytes });
        s.push(Rank(i), Step::Recv { from: prev, bytes });
        s.push(Rank(i), Step::Recv { from: next, bytes });
    }
    s
}

/// 2-D stencil halo exchange on a non-periodic `cols × rows` process
/// grid: every rank swaps `bytes` with each of its (up to four)
/// neighbours.
///
/// # Panics
///
/// Panics if either grid dimension is zero.
pub fn stencil2d(cols: usize, rows: usize, bytes: u32) -> Schedule {
    assert!(cols > 0 && rows > 0, "grid dimensions must be positive");
    let p = cols * rows;
    let mut s = Schedule::new(OpClass::PointToPoint, p);
    let at = |x: usize, y: usize| Rank(x + y * cols);
    for y in 0..rows {
        for x in 0..cols {
            let me = at(x, y);
            let mut neighbours = Vec::new();
            if x + 1 < cols {
                neighbours.push(at(x + 1, y));
            }
            if x > 0 {
                neighbours.push(at(x - 1, y));
            }
            if y + 1 < rows {
                neighbours.push(at(x, y + 1));
            }
            if y > 0 {
                neighbours.push(at(x, y - 1));
            }
            // Eager sends first, then blocking receives: deadlock-free.
            for &n in &neighbours {
                s.push(me, Step::Send { to: n, bytes });
            }
            for &n in &neighbours {
                s.push(me, Step::Recv { from: n, bytes });
            }
        }
    }
    s
}

/// Master–worker rounds: in each of `rounds`, rank 0 sends a
/// `task_bytes` descriptor to every worker and collects a
/// `result_bytes` reply, workers computing `compute_bytes` in between.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn master_worker(
    p: usize,
    rounds: usize,
    task_bytes: u32,
    result_bytes: u32,
    compute_bytes: u32,
) -> Schedule {
    let mut s = Schedule::new(OpClass::PointToPoint, p);
    if p < 2 {
        return s;
    }
    let master = Rank(0);
    for _ in 0..rounds {
        for w in 1..p {
            s.push(
                master,
                Step::Send {
                    to: Rank(w),
                    bytes: task_bytes,
                },
            );
        }
        for w in 1..p {
            let worker = Rank(w);
            s.push(
                worker,
                Step::Recv {
                    from: master,
                    bytes: task_bytes,
                },
            );
            if compute_bytes > 0 {
                s.push(
                    worker,
                    Step::Compute {
                        bytes: compute_bytes,
                    },
                );
            }
            s.push(
                worker,
                Step::Send {
                    to: master,
                    bytes: result_bytes,
                },
            );
            s.push(
                master,
                Step::Recv {
                    from: worker,
                    bytes: result_bytes,
                },
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_ring_valid() {
        for p in 1..=17 {
            let s = halo_ring(p, 128);
            s.check().unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
        assert_eq!(halo_ring(1, 128).total_messages(), 0);
        // p = 2: both "neighbours" are the same rank; 2 sends each way.
        let s = halo_ring(2, 128);
        assert_eq!(s.total_messages(), 4);
    }

    #[test]
    fn stencil_valid_and_counts_edges() {
        for (c, r) in [(1, 1), (4, 1), (3, 3), (5, 4), (8, 8)] {
            let s = stencil2d(c, r, 64);
            s.check().unwrap_or_else(|e| panic!("{c}x{r}: {e}"));
            // Messages = 2 * (#grid edges) = 2*(r*(c-1) + c*(r-1)).
            let edges = r * (c - 1) + c * (r - 1);
            assert_eq!(s.total_messages(), 2 * edges, "{c}x{r}");
        }
    }

    #[test]
    fn interior_rank_has_four_neighbours() {
        let s = stencil2d(3, 3, 64);
        let center = Rank(4);
        let sends = s
            .program(center)
            .iter()
            .filter(|st| matches!(st, Step::Send { .. }))
            .count();
        assert_eq!(sends, 4);
    }

    #[test]
    fn master_worker_rounds() {
        let s = master_worker(5, 3, 100, 400, 1_000);
        assert!(s.check().is_ok());
        // Per round: 4 tasks + 4 results.
        assert_eq!(s.total_messages(), 3 * 8);
        assert_eq!(s.total_bytes(), 3 * 4 * (100 + 400));
        assert_eq!(master_worker(1, 5, 1, 1, 1).total_messages(), 0);
    }

    #[test]
    fn patterns_have_expected_depth() {
        assert_eq!(halo_ring(8, 64).message_depth(), 1, "fully concurrent");
        // Master-worker rounds serialize through the master.
        let s = master_worker(3, 2, 10, 10, 0);
        assert!(s.message_depth() >= 2);
    }
}
