//! Gather algorithms.
//!
//! All-to-one collection. The vendor libraries used the linear form —
//! every rank sends its block to the root, whose receive loop serializes
//! — giving the O(p) startup of the paper's Table 3. The binomial
//! fan-in variant is provided for ablation.

use crate::schedule::{ceil_log2, Rank, Schedule, Step};
use netmodel::OpClass;

/// Linear gather: every non-root rank sends its block to the root; the
/// root receives in increasing rank order.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
///
/// # Examples
///
/// ```
/// use collectives::gather::linear;
/// use collectives::schedule::Rank;
///
/// let s = linear(8, Rank(0), 256);
/// assert!(s.check().is_ok());
/// assert_eq!(s.total_messages(), 7);
/// ```
pub fn linear(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Gather, p);
    for i in 0..p {
        if i == root.0 {
            continue;
        }
        s.push(Rank(i), Step::Send { to: root, bytes });
        s.push(
            root,
            Step::Recv {
                from: Rank(i),
                bytes,
            },
        );
    }
    s
}

/// Binomial gather: blocks combine up a binomial tree (the mirror image
/// of the binomial scatter); each internal rank receives its children's
/// aggregated blocks before forwarding its own aggregate to its parent.
///
/// # Panics
///
/// Panics if `p == 0` or `root >= p`.
pub fn binomial(p: usize, root: Rank, bytes: u32) -> Schedule {
    assert!(p > 0, "empty communicator");
    assert!(root.0 < p, "root out of range");
    let mut s = Schedule::new(OpClass::Gather, p);
    let l = ceil_log2(p);
    let abs = |vr: usize| Rank((vr + root.0) % p);
    let block = |v: usize, mask: usize| -> u32 {
        let span = (v + mask).min(p) - v;
        bytes.saturating_mul(span as u32)
    };
    for v in 0..p {
        let me = abs(v);
        // Children report in ascending mask order (smallest subtree
        // first — the reverse of the scatter send order).
        let mut send_mask = None;
        let mut mask = 1usize;
        while mask < (1 << l) {
            if v & mask != 0 {
                send_mask = Some(mask);
                break;
            }
            if v + mask < p {
                s.push(
                    me,
                    Step::Recv {
                        from: abs(v + mask),
                        bytes: block(v + mask, mask),
                    },
                );
            }
            mask <<= 1;
        }
        if let Some(mask) = send_mask {
            s.push(
                me,
                Step::Send {
                    to: abs(v - mask),
                    bytes: block(v, mask),
                },
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_valid() {
        for p in 1..=20 {
            for root in [0, p - 1] {
                let s = linear(p, Rank(root), 64);
                assert!(s.check().is_ok(), "p={p}");
            }
        }
    }

    #[test]
    fn binomial_valid_for_all_sizes() {
        for p in 1..=33 {
            for root in [0, p / 3, p - 1] {
                let s = binomial(p, Rank(root), 64);
                s.check()
                    .unwrap_or_else(|e| panic!("p={p} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn binomial_depth_is_log() {
        assert_eq!(binomial(16, Rank(0), 4).message_depth(), 4);
        assert_eq!(binomial(63, Rank(0), 4).message_depth(), 5); // max popcount below 63
    }

    #[test]
    fn linear_root_receives_everything() {
        let s = linear(8, Rank(2), 100);
        let recvs = s
            .program(Rank(2))
            .iter()
            .filter(|st| matches!(st, Step::Recv { .. }))
            .count();
        assert_eq!(recvs, 7);
        assert_eq!(s.total_bytes(), 700);
    }

    #[test]
    fn binomial_root_receives_log_blocks() {
        let s = binomial(64, Rank(0), 10);
        let recvs: Vec<u32> = s
            .program(Rank(0))
            .iter()
            .filter_map(|st| match st {
                Step::Recv { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(recvs, vec![10, 20, 40, 80, 160, 320]);
    }

    #[test]
    fn gather_is_mirror_of_scatter_volume() {
        let g = binomial(32, Rank(0), 100);
        let sc = crate::scatter::binomial(32, Rank(0), 100);
        assert_eq!(g.total_bytes(), sc.total_bytes());
        assert_eq!(g.total_messages(), sc.total_messages());
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn bad_root_panics() {
        binomial(4, Rank(9), 1);
    }
}
