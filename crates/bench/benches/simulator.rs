//! Criterion micro-benchmarks of the simulator itself: how fast can the
//! discrete-event engine execute each collective's schedule? These guard
//! against performance regressions in the simulation core (the paper
//! reproduction sweeps run hundreds of thousands of collective
//! executions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::{Machine, OpClass, Rank};

fn collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_execution");
    for op in [OpClass::Bcast, OpClass::Alltoall, OpClass::Barrier] {
        for p in [16usize, 64] {
            let machine = Machine::t3d();
            let comm = machine.communicator(p).unwrap();
            let schedule = comm.schedule(op, Rank(0), 1024).unwrap();
            group.bench_with_input(
                BenchmarkId::new(op.paper_name().replace(' ', "_"), p),
                &p,
                |b, _| b.iter(|| comm.run(&schedule).unwrap()),
            );
        }
    }
    group.finish();
}

fn machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_comparison");
    for machine in Machine::all() {
        let comm = machine.communicator(32).unwrap();
        let schedule = comm.schedule(OpClass::Alltoall, Rank(0), 4096).unwrap();
        group.bench_function(machine.name().replace(' ', "_"), |b| {
            b.iter(|| comm.run(&schedule).unwrap())
        });
    }
    group.finish();
}

fn routing(c: &mut Criterion) {
    use topo::{Mesh2d, NodeId, Omega, Topology, Torus3d};
    let mut group = c.benchmark_group("routing");
    let torus = Torus3d::for_nodes(64);
    let mesh = Mesh2d::for_nodes(128);
    let omega = Omega::sp2(128);
    group.bench_function("torus64_all_pairs", |b| {
        b.iter(|| {
            let mut h = 0usize;
            for s in 0..64 {
                for d in 0..64 {
                    h += torus.route(NodeId(s), NodeId(d)).hops();
                }
            }
            h
        })
    });
    group.bench_function("mesh128_all_pairs", |b| {
        b.iter(|| {
            let mut h = 0usize;
            for s in 0..128 {
                for d in 0..128 {
                    h += mesh.route(NodeId(s), NodeId(d)).hops();
                }
            }
            h
        })
    });
    group.bench_function("omega128_all_pairs", |b| {
        b.iter(|| {
            let mut h = 0usize;
            for s in 0..128 {
                for d in 0..128 {
                    h += omega.route(NodeId(s), NodeId(d)).hops();
                }
            }
            h
        })
    });
    group.finish();
}

fn measurement_pipeline(c: &mut Criterion) {
    use harness::{measure, Protocol};
    let mut group = c.benchmark_group("paper_measurement");
    group.sample_size(10);
    let machine = Machine::sp2();
    let comm = machine.communicator(32).unwrap();
    for op in [
        OpClass::Bcast,
        OpClass::Alltoall,
        OpClass::Scatter,
        OpClass::Gather,
        OpClass::Scan,
        OpClass::Reduce,
        OpClass::Barrier,
    ] {
        let m = if op == OpClass::Barrier { 0 } else { 1024 };
        group.bench_function(op.paper_name().replace(' ', "_"), |b| {
            b.iter(|| measure(&comm, op, m, &Protocol::quick()).unwrap())
        });
    }
    group.finish();
}

fn event_queues(c: &mut Criterion) {
    use desim::{Engine, SimTime};
    let mut group = c.benchmark_group("event_queue_backends");
    for (name, make) in [
        ("heap", Engine::<u64>::new as fn() -> Engine<u64>),
        ("calendar", Engine::<u64>::with_calendar_queue as fn() -> Engine<u64>),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = make();
                let mut world = 0u64;
                // Dense self-rescheduling population: 64 actors x 100 steps.
                for actor in 0..64u64 {
                    fn tick(n: u32, stride: u64) -> desim::EventFn<u64> {
                        Box::new(move |s, w: &mut u64| {
                            *w += 1;
                            if n > 0 {
                                s.schedule_in(
                                    desim::SimDuration::from_nanos(stride),
                                    tick(n - 1, stride),
                                );
                            }
                        })
                    }
                    engine.schedule_at(SimTime::from_nanos(actor * 17), tick(100, 97 + actor));
                }
                engine.run(&mut world);
                world
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = collectives, machines, routing, event_queues, measurement_pipeline
}
criterion_main!(benches);
