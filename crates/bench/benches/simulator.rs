//! Micro-benchmarks of the simulator itself: how fast can the
//! discrete-event engine execute each collective's schedule? These guard
//! against performance regressions in the simulation core (the paper
//! reproduction sweeps run hundreds of thousands of collective
//! executions).
//!
//! Self-contained harness (no external framework): each case is warmed
//! up, then timed over enough iterations to smooth scheduler noise, and
//! reported as median ns/iter. Run with `cargo bench -p bench`.

use std::hint::black_box;
use std::time::Instant;

use mpisim::{Machine, OpClass, Rank};

/// Times `f` and reports the median per-iteration cost over `samples`
/// batches of `iters` calls each.
fn bench<R>(name: &str, samples: usize, iters: u32, mut f: impl FnMut() -> R) {
    // Warmup: one batch, unrecorded.
    for _ in 0..iters {
        black_box(f());
    }
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let best = per_iter_ns[0];
    println!("{name:<44} median {median:>12.0} ns/iter   best {best:>12.0} ns/iter");
}

fn collectives() {
    println!("-- collective_execution --");
    for op in [OpClass::Bcast, OpClass::Alltoall, OpClass::Barrier] {
        for p in [16usize, 64] {
            let machine = Machine::t3d();
            let comm = machine.communicator(p).unwrap();
            let schedule = comm.schedule(op, Rank(0), 1024).unwrap();
            let name = format!("{}/{}", op.paper_name().replace(' ', "_"), p);
            let iters = if op == OpClass::Alltoall && p == 64 {
                20
            } else {
                200
            };
            bench(&name, 20, iters, || comm.run(&schedule).unwrap());
        }
    }
}

fn machines() {
    println!("-- machine_comparison --");
    for machine in Machine::all() {
        let comm = machine.communicator(32).unwrap();
        let schedule = comm.schedule(OpClass::Alltoall, Rank(0), 4096).unwrap();
        bench(&machine.name().replace(' ', "_"), 20, 50, || {
            comm.run(&schedule).unwrap()
        });
    }
}

fn routing() {
    use topo::{Mesh2d, NodeId, Omega, Topology, Torus3d};
    println!("-- routing --");
    let torus = Torus3d::for_nodes(64);
    let mesh = Mesh2d::for_nodes(128);
    let omega = Omega::sp2(128);
    bench("torus64_all_pairs", 20, 50, || {
        let mut h = 0usize;
        for s in 0..64 {
            for d in 0..64 {
                h += torus.route(NodeId(s), NodeId(d)).hops();
            }
        }
        h
    });
    bench("mesh128_all_pairs", 20, 50, || {
        let mut h = 0usize;
        for s in 0..128 {
            for d in 0..128 {
                h += mesh.route(NodeId(s), NodeId(d)).hops();
            }
        }
        h
    });
    bench("omega128_all_pairs", 20, 50, || {
        let mut h = 0usize;
        for s in 0..128 {
            for d in 0..128 {
                h += omega.route(NodeId(s), NodeId(d)).hops();
            }
        }
        h
    });
}

fn measurement_pipeline() {
    use harness::{measure, Protocol};
    println!("-- paper_measurement --");
    let machine = Machine::sp2();
    let comm = machine.communicator(32).unwrap();
    for op in [
        OpClass::Bcast,
        OpClass::Alltoall,
        OpClass::Scatter,
        OpClass::Gather,
        OpClass::Scan,
        OpClass::Reduce,
        OpClass::Barrier,
    ] {
        let m = if op == OpClass::Barrier { 0 } else { 1024 };
        bench(&op.paper_name().replace(' ', "_"), 10, 5, || {
            measure(&comm, op, m, &Protocol::quick()).unwrap()
        });
    }
}

fn event_queues() {
    use desim::{Engine, SimTime};
    println!("-- event_queue_backends --");
    for (name, make) in [
        ("heap", Engine::<u64>::new as fn() -> Engine<u64>),
        (
            "calendar",
            Engine::<u64>::with_calendar_queue as fn() -> Engine<u64>,
        ),
    ] {
        bench(name, 20, 50, || {
            let mut engine = make();
            let mut world = 0u64;
            // Dense self-rescheduling population: 64 actors x 100 steps.
            for actor in 0..64u64 {
                fn tick(n: u32, stride: u64) -> desim::EventFn<u64> {
                    Box::new(move |s, w: &mut u64| {
                        *w += 1;
                        if n > 0 {
                            s.schedule_in(
                                desim::SimDuration::from_nanos(stride),
                                tick(n - 1, stride),
                            );
                        }
                    })
                }
                engine.schedule_at(SimTime::from_nanos(actor * 17), tick(100, 97 + actor));
            }
            engine.run(&mut world);
            world
        });
    }
}

fn typed_dispatch() {
    use desim::{Engine, EventWorld, Scheduler, SimDuration, SimTime, TypedEvent};
    println!("-- event_dispatch --");

    // Same dense self-rescheduling population as `event_queues`, but on
    // the typed-event path: no per-event allocation, dispatch by match.
    struct Counter {
        fired: u64,
        stride: u64,
    }
    impl EventWorld for Counter {
        fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: TypedEvent) {
            if let TypedEvent::Timer { id } = ev {
                self.fired += 1;
                if id % 1000 > 0 {
                    let stride = self.stride + id / 1000;
                    s.post_in(
                        SimDuration::from_nanos(stride),
                        TypedEvent::Timer { id: id - 1 },
                    );
                }
            }
        }
    }

    bench("typed_timer_chain", 20, 50, || {
        let mut engine = Engine::<Counter>::new();
        // 64 actors x 100 steps; actor index rides in the id's high part
        // so each chain keeps its own stride, mirroring the closure bench.
        for actor in 0..64u64 {
            engine.post_at(
                SimTime::from_nanos(actor * 17),
                TypedEvent::Timer {
                    id: actor * 1000 + 100,
                },
            );
        }
        let mut world = Counter {
            fired: 0,
            stride: 97,
        };
        engine.run(&mut world);
        world.fired
    });
}

fn main() {
    // `cargo bench` passes flags like `--bench`; none affect this harness.
    collectives();
    machines();
    routing();
    event_queues();
    typed_dispatch();
    measurement_pipeline();
}
