//! Hot-path timing harness: min-of-N wall time for the three alltoall
//! perfgate points (the suite's dominant cost). Run it interleaved
//! against a build of another revision for a drift-free A/B:
//!
//! ```text
//! cargo build --release --example a2a
//! ./target/release/examples/a2a [rounds]
//! ```

use harness::{measure, Protocol};
use mpisim::{Machine, OpClass};
use std::time::Instant;

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    for machine in Machine::all() {
        let comm = machine.communicator(64).expect("communicator");
        let mut best = f64::MAX;
        for _ in 0..rounds {
            let t0 = Instant::now();
            let m = measure(&comm, OpClass::Alltoall, 4096, &Protocol::quick()).expect("measure");
            let w = t0.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(m);
            best = best.min(w);
        }
        println!("{:<16} best {:>10.1} us", machine.name(), best);
    }
}
