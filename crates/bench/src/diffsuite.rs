//! Shared record-building for the differential harness: runs one suite
//! point under full instrumentation (trace + provenance + event log +
//! critical path + metrics) and assembles the canonical
//! [`obs::RunRecord`] that `obs::diff` and the `tracediff` binary
//! compare.

use crate::perfgate::{default_suite, SuitePoint};
use mpisim::exec::{ExecConfig, TieBreakPolicy};
use mpisim::{Machine, OpClass, Rank};
use obs::{MetricsRegistry, RunRecord};

/// Runs one point fully instrumented and builds its run record. Pure:
/// same inputs produce byte-identical serialized records. A non-default
/// `tie_break` applies the chosen same-instant perturbation
/// ([`TieBreakPolicy::InvertAll`] is the seeded eager-delivery failure
/// mode used for differential demonstrations) and marks it in the
/// record's `perturb` meta key. With `elide` the event-elision fast
/// path runs instead of the per-hop event chain — the timeline is
/// identical but provenance is unavailable, so the record's events
/// carry no parent edges; compare elided records through
/// [`obs::record::RunRecord::canonicalized`], which erases exactly the
/// scheduling bookkeeping elision changes.
pub fn record_point(
    machine: &Machine,
    op: OpClass,
    p: usize,
    m: u32,
    tie_break: TieBreakPolicy,
    trace_limit: Option<usize>,
    elide: bool,
) -> RunRecord {
    let bytes = if op == OpClass::Barrier { 0 } else { m };
    let comm = machine.communicator(p).expect("communicator size");
    let schedule = comm.schedule(op, Rank(0), bytes).expect("schedule build");
    let cfg = ExecConfig {
        wire: machine.wire_config(),
        placement: machine.placement(),
        record_trace: true,
        trace_limit,
        provenance: true,
        event_log: true,
        tie_break,
        elide,
        ..ExecConfig::default()
    };
    let (out, observed) =
        mpisim::execute_observed(machine.spec(), &[&schedule], &cfg).expect("observed execution");
    let cp = mpisim::critpath::analyze(&out, &observed);
    let mut reg = MetricsRegistry::new();
    mpisim::observe::export_metrics(&out, &observed, &mut reg);
    cp.export_metrics(&mut reg);
    let mut rec =
        mpisim::record::run_record(machine.name(), &out, &observed, Some(&cp), Some(&reg));
    rec.meta.insert("op".into(), op.key().into());
    rec.meta.insert("p".into(), p.to_string());
    rec.meta.insert("m".into(), bytes.to_string());
    if elide {
        rec.meta.insert("elide".into(), "on".into());
    }
    match tie_break {
        TieBreakPolicy::InsertionOrder => {}
        TieBreakPolicy::InvertAll => {
            rec.meta.insert("perturb".into(), "invert_ties".into());
        }
        TieBreakPolicy::InvertPair {
            at_ns,
            first_seq,
            second_seq,
        } => {
            rec.meta.insert(
                "perturb".into(),
                format!("invert_pair@{at_ns}ns:{first_seq}<->{second_seq}"),
            );
        }
    }
    rec
}

/// [`record_point`] over a [`SuitePoint`].
pub fn record_suite_point(
    pt: &SuitePoint,
    tie_break: TieBreakPolicy,
    trace_limit: Option<usize>,
    elide: bool,
) -> RunRecord {
    record_point(
        &pt.machine,
        pt.op,
        pt.nodes,
        pt.bytes,
        tie_break,
        trace_limit,
        elide,
    )
}

/// The canonical 21-point suite (re-exported so bins need one import).
pub fn suite() -> Vec<SuitePoint> {
    default_suite()
}

/// File-stem-safe form of a suite label, e.g. `sp2_alltoall`.
pub fn label_stem(label: &str) -> String {
    label.replace('/', "_")
}
