//! Shared command-line vocabulary for the observability drivers
//! (`observe`, `critpath`, `tracediff`, `ordercheck`): machine / op
//! name resolution and the common point-selection flags, parsed once
//! here instead of re-implemented per binary.
//!
//! Binaries keep their own argument loop (each has extra flags and its
//! own usage text) and feed every flag through [`PointCli::accept`]
//! first; only unrecognized flags fall through to the binary's match.

use mpisim::{Machine, OpClass};

/// Resolves a machine key (`sp2`, `t3d`, `paragon`; case-insensitive).
pub fn parse_machine(name: &str) -> Option<Machine> {
    match name.to_ascii_lowercase().as_str() {
        "sp2" => Some(Machine::sp2()),
        "t3d" => Some(Machine::t3d()),
        "paragon" => Some(Machine::paragon()),
        _ => None,
    }
}

/// Resolves a collective by key (`bcast`, `alltoall`, …) or by its
/// paper display name (case-insensitive).
pub fn parse_op(name: &str) -> Option<OpClass> {
    let lower = name.to_ascii_lowercase();
    OpClass::from_key(&lower).or_else(|| {
        OpClass::ALL
            .into_iter()
            .find(|op| op.paper_name().to_ascii_lowercase() == lower)
    })
}

/// The canonical point-selection usage fragment.
pub const POINT_USAGE: &str =
    "--machine <sp2|t3d|paragon> --op <bcast|scatter|gather|reduce|scan|alltoall|barrier> -p <nodes> -m <bytes>";

/// Outcome of offering one flag to [`PointCli::accept`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// The flag (and its value, if any) was consumed.
    Consumed,
    /// Not a shared flag — the binary should handle it.
    Unknown,
    /// A shared flag with a missing or malformed value: print usage.
    Invalid,
}

/// The point-selection flags every driver shares: a single
/// (machine, op, p, m) point or `--suite`, plus output directory,
/// worker count, and trace cap.
#[derive(Debug, Clone)]
pub struct PointCli {
    /// `--machine` (required unless `--suite`).
    pub machine: Option<Machine>,
    /// `--op` (required unless `--suite`).
    pub op: Option<OpClass>,
    /// `-p` / `--nodes` (default 64, the paper's largest partition).
    pub p: usize,
    /// `-m` / `--bytes` (default 4096, the suite's representative size).
    pub m: u32,
    /// `--out`; `None` when not given (see [`PointCli::out_dir`]).
    pub out: Option<String>,
    /// `--suite`: run the fixed 21-point grid instead of one point.
    pub suite: bool,
    /// `--threads` (default 1).
    pub threads: usize,
    /// `--trace-cap`.
    pub trace_cap: Option<usize>,
    /// `--elide`: run with the event-elision fast path on
    /// (timeline-identical; disables provenance).
    pub elide: bool,
}

impl Default for PointCli {
    fn default() -> Self {
        PointCli {
            machine: None,
            op: None,
            p: 64,
            m: 4096,
            out: None,
            suite: false,
            threads: 1,
            trace_cap: None,
            elide: false,
        }
    }
}

impl PointCli {
    /// Offers one flag; `value` yields the following argument when the
    /// flag takes one.
    pub fn accept(&mut self, flag: &str, mut value: impl FnMut() -> Option<String>) -> Accept {
        let mut need = |out: &mut dyn FnMut(&str) -> bool| match value() {
            Some(v) if out(&v) => Accept::Consumed,
            _ => Accept::Invalid,
        };
        match flag {
            "--machine" => need(&mut |v| {
                self.machine = parse_machine(v);
                self.machine.is_some()
            }),
            "--op" => need(&mut |v| {
                self.op = parse_op(v);
                self.op.is_some()
            }),
            "-p" | "--nodes" => need(&mut |v| v.parse().map(|n| self.p = n).is_ok()),
            "-m" | "--bytes" => need(&mut |v| v.parse().map(|n| self.m = n).is_ok()),
            "--out" => need(&mut |v| {
                self.out = Some(v.to_string());
                true
            }),
            "--threads" => need(&mut |v| v.parse().map(|n| self.threads = n).is_ok()),
            "--trace-cap" => need(&mut |v| v.parse().map(|n| self.trace_cap = Some(n)).is_ok()),
            "--suite" => {
                self.suite = true;
                Accept::Consumed
            }
            "--elide" => {
                self.elide = true;
                Accept::Consumed
            }
            _ => Accept::Unknown,
        }
    }

    /// True when the selection is complete: either `--suite` or both
    /// `--machine` and `--op`.
    pub fn selection_ok(&self) -> bool {
        self.suite || (self.machine.is_some() && self.op.is_some())
    }

    /// The output directory, defaulting to the current directory.
    pub fn out_dir(&self) -> &str {
        self.out.as_deref().unwrap_or(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_and_op_names_resolve() {
        assert_eq!(
            parse_machine("T3D")
                .map(|m| m.name().to_string())
                .as_deref(),
            Some("Cray T3D")
        );
        assert!(parse_machine("cm5").is_none());
        assert_eq!(parse_op("alltoall"), Some(OpClass::Alltoall));
        assert_eq!(parse_op("Broadcast"), parse_op("bcast"));
        assert!(parse_op("gossip").is_none());
    }

    #[test]
    fn accept_consumes_shared_flags_and_rejects_bad_values() {
        let mut cli = PointCli::default();
        assert_eq!(
            cli.accept("--machine", || Some("sp2".into())),
            Accept::Consumed
        );
        assert_eq!(cli.accept("--op", || Some("scan".into())), Accept::Consumed);
        assert_eq!(cli.accept("-p", || Some("16".into())), Accept::Consumed);
        assert_eq!(cli.accept("-m", || Some("512".into())), Accept::Consumed);
        assert_eq!(
            cli.accept("--threads", || Some("4".into())),
            Accept::Consumed
        );
        assert!(cli.selection_ok());
        assert_eq!((cli.p, cli.m, cli.threads), (16, 512, 4));
        assert_eq!(cli.accept("--demo-broken", || None), Accept::Unknown);
        assert_eq!(cli.accept("-p", || Some("lots".into())), Accept::Invalid);
        assert_eq!(cli.accept("--machine", || None), Accept::Invalid);
    }

    #[test]
    fn selection_requires_point_or_suite() {
        let mut cli = PointCli::default();
        assert!(!cli.selection_ok());
        assert!(!cli.elide);
        assert_eq!(cli.accept("--elide", || None), Accept::Consumed);
        assert!(cli.elide, "--elide is a valueless toggle");
        assert!(!cli.selection_ok(), "--elide alone selects nothing");
        assert_eq!(cli.accept("--suite", || None), Accept::Consumed);
        assert!(cli.selection_ok());
        assert_eq!(cli.out_dir(), ".");
        assert_eq!(
            cli.accept("--out", || Some("bench".into())),
            Accept::Consumed
        );
        assert_eq!(cli.out_dir(), "bench");
    }
}
