//! # bench — regenerators for every table and figure of the paper
//!
//! One binary per artifact (run with `cargo run -p bench --release --bin <name>`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig1` | Fig. 1 — startup latencies T0(p), six collectives |
//! | `fig2` | Fig. 2 — T(m, 32) vs message length |
//! | `fig3` | Fig. 3 — T(m, p) vs machine size for 16 B / 64 KB |
//! | `fig4` | Fig. 4 — startup/transmission breakdown at p=32, m=1 KB |
//! | `fig5` | Fig. 5 — aggregated bandwidths R∞(p) |
//! | `table3` | Table 3 — fitted closed-form timing expressions |
//! | `table12` | Tables 1 & 2 — operations and metric definitions |
//! | `headline` | §1/§5/§8 headline numbers |
//! | `calibrate` | calibration report: simulated vs published grids |
//! | `ablations` | design-choice ablations (wire model, contention, vendor algorithms, offload engines, placement, interconnect abstraction) |
//! | `hotspots` | link-load distributions per topology |
//! | `p2p` | Hockney point-to-point characterization |
//! | `trace` | message-timeline gallery |
//! | `explore` | single-configuration query tool |
//! | `stap_report` | STAP workload per-stage breakdowns |
//! | `full_report` | consolidated markdown report |
//! | `perfgate` | continuous-benchmark suite + regression gate |
//!
//! All binaries accept `--quick` (reduced protocol) and `--csv DIR`
//! (dump the measured dataset).
//!
//! Criterion micro-benchmarks of the simulator itself live in
//! `benches/`; the wall-clock regression pipeline lives in
//! [`perfgate`].

use harness::{Dataset, Protocol};
use mpisim::{Machine, OpClass};
use perfmodel::paper;
use std::time::Instant;

pub mod cli;
pub mod diffsuite;
pub mod perfgate;

/// Common CLI options for the regenerator binaries.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// Use the reduced protocol (fewer iterations/repetitions).
    pub quick: bool,
    /// Directory to write the measured dataset as CSV.
    pub csv_dir: Option<String>,
    /// Output file path (`--out`, used by report-writing binaries).
    pub out: Option<String>,
    /// Emit machine-readable JSON instead of the text rendering.
    pub json: bool,
    /// Worker threads for parallelizable stages (`--threads`; 1 =
    /// serial, 0 = auto-detect). Output is byte-identical at any value.
    pub threads: usize,
}

impl Cli {
    /// Parses `--quick`, `--csv DIR`, `--out FILE`, `--json`, and
    /// `--threads N` from `std::env::args`.
    pub fn parse() -> Self {
        let mut cli = Cli {
            threads: 1,
            ..Cli::default()
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--csv" => cli.csv_dir = args.next(),
                "--out" => cli.out = args.next(),
                "--json" => cli.json = true,
                "--threads" => {
                    cli.threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads needs a non-negative integer (0 = auto)");
                        std::process::exit(2);
                    });
                }
                "--help" | "-h" => {
                    eprintln!("options: --quick  --csv DIR  --out FILE  --json  --threads N");
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown option {other}"),
            }
        }
        cli
    }

    /// The measurement protocol implied by the flags.
    pub fn protocol(&self) -> Protocol {
        if self.quick {
            Protocol::quick()
        } else {
            Protocol::paper()
        }
    }

    /// Writes the dataset CSV if `--csv` was given.
    pub fn maybe_write_csv(&self, name: &str, data: &Dataset) {
        if let Some(dir) = &self.csv_dir {
            let path = format!("{dir}/{name}.csv");
            if let Err(e) = std::fs::write(&path, report::csv::dataset_csv(data)) {
                eprintln!("failed to write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
    }
}

/// Runs `f` with start/finish lines on stderr, reporting elapsed time.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    eprintln!("[{label}] running…");
    let t0 = Instant::now();
    let out = f();
    eprintln!("[{label}] done in {:.1}s", t0.elapsed().as_secs_f64());
    out
}

/// Plot symbol per machine, consistent across all figures.
pub fn symbol(machine: &str) -> char {
    match machine {
        "IBM SP2" => 'o',
        "Cray T3D" => '^',
        "Intel Paragon" => '+',
        _ => 'x',
    }
}

/// The machines in the paper's presentation order.
pub fn machines() -> [Machine; 3] {
    [Machine::sp2(), Machine::paragon(), Machine::t3d()]
}

/// The six collectives of Figs. 1, 2, 4, and 5 (barrier is shown
/// separately in Fig. 3g).
pub const SIX_OPS: [OpClass; 6] = [
    OpClass::Bcast,
    OpClass::Alltoall,
    OpClass::Scatter,
    OpClass::Gather,
    OpClass::Scan,
    OpClass::Reduce,
];

/// Maps a machine display name back to its paper id.
pub fn machine_id(name: &str) -> Option<mpisim::MachineId> {
    match name {
        "IBM SP2" => Some(mpisim::MachineId::Sp2),
        "Cray T3D" => Some(mpisim::MachineId::T3d),
        "Intel Paragon" => Some(mpisim::MachineId::Paragon),
        _ => None,
    }
}

/// Relative error between simulated and published values, as
/// `sim / published` (1.0 = perfect).
pub fn ratio_to_paper(machine: &str, op: OpClass, m: u32, p: usize, sim_us: f64) -> Option<f64> {
    let id = machine_id(machine)?;
    let formula = paper::table3(id, op)?;
    let published = formula.predict_us(m, p);
    if published <= 0.0 {
        return None;
    }
    Some(sim_us / published)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_distinct() {
        let syms = [
            symbol("IBM SP2"),
            symbol("Cray T3D"),
            symbol("Intel Paragon"),
        ];
        assert_eq!(
            syms.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
        assert_eq!(symbol("Unknown"), 'x');
    }

    #[test]
    fn machine_ids_round_trip() {
        for m in machines() {
            assert_eq!(machine_id(m.name()), m.id());
        }
        assert!(machine_id("other").is_none());
    }

    #[test]
    fn ratio_computation() {
        let published = perfmodel::paper::table3(mpisim::MachineId::Sp2, OpClass::Alltoall)
            .unwrap()
            .predict_us(65_536, 64);
        let r = ratio_to_paper("IBM SP2", OpClass::Alltoall, 65_536, 64, published).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert!(ratio_to_paper("nope", OpClass::Bcast, 4, 2, 1.0).is_none());
    }
}
