//! The continuous-benchmarking pipeline behind `bench/perfgate`.
//!
//! A fixed suite (every collective on every machine at one
//! representative `(m, p)` point) is timed in interleaved round-robin
//! rounds — round `i` of every suite point runs before round `i + 1` of
//! any, so slow ambient drift (thermal throttling, a background build)
//! spreads across all points instead of biasing whichever ran last.
//! Per-point wall times are reduced to robust statistics (median, MAD,
//! min-of-best-K, bootstrap CI of the median) and compared against a
//! committed baseline with a noise-aware threshold, so the gate neither
//! cries wolf on timer jitter nor sleeps through a real 2x regression.
//!
//! Everything here is a library so the regression gate itself is
//! unit-testable; `src/bin/perfgate.rs` is a thin CLI on top.

use desim::SplitMix64;
use harness::{measure, Protocol};
use mpisim::comm::RunOptions;
use mpisim::{Machine, OpClass, Rank, SimMpiError};
use obs::Json;
use std::time::Instant;

/// Version stamp of the `BENCH_<date>.json` document layout. Bump on
/// any breaking change; [`BenchReport::from_json`] rejects mismatches.
pub const SCHEMA_VERSION: u64 = 1;

/// The representative message length of the fixed suite (bytes): large
/// enough that transmission matters, small enough that startup still
/// shows — the knee of the paper's Fig. 2 curves.
pub const SUITE_BYTES: u32 = 4096;

/// The representative machine size of the fixed suite.
pub const SUITE_NODES: usize = 64;

/// One suite entry: a collective on a machine at a fixed `(m, p)`.
#[derive(Debug, Clone)]
pub struct SuitePoint {
    /// The machine model to run on.
    pub machine: Machine,
    /// The collective.
    pub op: OpClass,
    /// Message length (0 for barrier).
    pub bytes: u32,
    /// Partition size.
    pub nodes: usize,
}

impl SuitePoint {
    /// Stable identifier, e.g. `sp2/alltoall`.
    pub fn label(&self) -> String {
        let mach = crate::machine_id(self.machine.name())
            .map(|id| id.name().to_ascii_lowercase())
            .unwrap_or_else(|| self.machine.name().to_ascii_lowercase());
        format!("{}/{}", mach, self.op.key())
    }
}

/// The fixed suite: all seven collectives on all three machines at the
/// representative point (barrier carries no message length).
pub fn default_suite() -> Vec<SuitePoint> {
    let mut suite = Vec::new();
    for machine in crate::machines() {
        for op in crate::SIX_OPS.into_iter().chain([OpClass::Barrier]) {
            suite.push(SuitePoint {
                machine: machine.clone(),
                op,
                bytes: if op == OpClass::Barrier {
                    0
                } else {
                    SUITE_BYTES
                },
                nodes: SUITE_NODES,
            });
        }
    }
    suite
}

/// One suite point's event-elision A/B measurement: the same point run
/// with the analytic fast path off and on, with total engine events,
/// the admission counters, and the wall clock of each run. The two
/// executions are timeline-identical by construction (the elision
/// equivalence gate certifies that); this measures what the fast path
/// *saves*.
#[derive(Debug, Clone)]
pub struct ElideAb {
    /// Suite-point identifier (`sp2/alltoall`).
    pub label: String,
    /// Messages sent (identical in both runs).
    pub messages: u64,
    /// Engine events fired with elision off.
    pub base_events: u64,
    /// Engine events fired with elision on.
    pub elided_events: u64,
    /// Transfers completed in closed form.
    pub admitted: u64,
    /// Transfers that fell back to the event-by-event wire walk.
    pub fallbacks: u64,
    /// Wall-clock of the elision-off run, µs.
    pub wall_off_us: f64,
    /// Wall-clock of the elision-on run, µs.
    pub wall_on_us: f64,
}

impl ElideAb {
    /// Events-per-message reduction factor, off over on.
    pub fn event_ratio(&self) -> f64 {
        if self.elided_events == 0 {
            0.0
        } else {
            self.base_events as f64 / self.elided_events as f64
        }
    }

    /// Fraction of send attempts the fast path admitted.
    pub fn admission_rate(&self) -> f64 {
        let attempts = self.admitted + self.fallbacks;
        if attempts == 0 {
            0.0
        } else {
            self.admitted as f64 / attempts as f64
        }
    }
}

/// Runs the elision A/B over a suite: each point twice, fast path off
/// then on. Event counts and admission counters are deterministic; the
/// wall clocks are host-side and only reported, never gated.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn elide_ab(suite: &[SuitePoint]) -> Result<Vec<ElideAb>, SimMpiError> {
    suite
        .iter()
        .map(|pt| {
            let comm = pt.machine.communicator(pt.nodes)?;
            let s = comm.schedule(pt.op, Rank(0), pt.bytes)?;
            let t0 = Instant::now();
            let (base, _) = comm.run_observed(&[&s], RunOptions::default())?;
            let wall_off_us = t0.elapsed().as_secs_f64() * 1e6;
            let t1 = Instant::now();
            let (fast, observed) = comm.run_observed(
                &[&s],
                RunOptions {
                    elide: true,
                    ..RunOptions::default()
                },
            )?;
            let wall_on_us = t1.elapsed().as_secs_f64() * 1e6;
            Ok(ElideAb {
                label: pt.label(),
                messages: fast.messages,
                base_events: base.events,
                elided_events: fast.events,
                admitted: observed.elide.admitted,
                fallbacks: observed.elide.attempts() - observed.elide.admitted,
                wall_off_us,
                wall_on_us,
            })
        })
        .collect()
}

/// Median of a sample set (mean of the middle pair for even counts).
/// Returns 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation around `center`.
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let dev: Vec<f64> = xs.iter().map(|&x| (x - center).abs()).collect();
    median(&dev)
}

/// Mean of the best (smallest) `k` samples — the paper-style
/// noise-rejecting point estimate for wall-clock timings, where all
/// noise is additive and positive.
pub fn min_of_best(xs: &[f64], k: usize) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let k = k.clamp(1, v.len());
    v[..k].iter().sum::<f64>() / k as f64
}

/// Seeded bootstrap confidence interval of the median:
/// `iters` resamples with replacement, central `conf` mass. The seed is
/// fixed by callers so gate decisions are reproducible.
pub fn bootstrap_ci_median(xs: &[f64], iters: usize, conf: f64, seed: u64) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    if xs.len() == 1 {
        return (xs[0], xs[0]);
    }
    let mut rng = SplitMix64::new(seed);
    let mut medians = Vec::with_capacity(iters);
    let mut resample = vec![0.0; xs.len()];
    for _ in 0..iters {
        for slot in &mut resample {
            let idx = (rng.next_u64() % xs.len() as u64) as usize;
            *slot = xs[idx];
        }
        medians.push(median(&resample));
    }
    medians.sort_by(f64::total_cmp);
    let alpha = (1.0 - conf.clamp(0.0, 1.0)) / 2.0;
    let lo_idx = ((iters as f64 * alpha) as usize).min(iters - 1);
    let hi_idx = ((iters as f64 * (1.0 - alpha)) as usize).min(iters - 1);
    (medians[lo_idx], medians[hi_idx])
}

/// Robust per-point summary of one suite entry's wall-clock rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Suite-point identifier (`sp2/alltoall`).
    pub label: String,
    /// Raw per-round wall-clock times of one `measure()` call, µs.
    pub rounds_us: Vec<f64>,
    /// Median of the rounds, µs — the headline estimate.
    pub median_us: f64,
    /// Median absolute deviation, µs — the noise scale.
    pub mad_us: f64,
    /// Mean of the best 3 rounds, µs.
    pub min_of_best_us: f64,
    /// Bootstrap 95% CI of the median, lower bound, µs.
    pub ci_low_us: f64,
    /// Upper bound, µs.
    pub ci_high_us: f64,
    /// Simulated collective time at this point, µs (model drift signal,
    /// independent of host speed).
    pub sim_time_us: f64,
}

impl PointResult {
    /// Reduces raw rounds to the robust summary.
    pub fn from_rounds(label: String, rounds_us: Vec<f64>, sim_time_us: f64) -> PointResult {
        let med = median(&rounds_us);
        let mad_us = mad(&rounds_us, med);
        let (lo, hi) = bootstrap_ci_median(&rounds_us, 200, 0.95, 0x9e37_79b9);
        PointResult {
            label,
            median_us: med,
            mad_us,
            min_of_best_us: min_of_best(&rounds_us, 3),
            ci_low_us: lo,
            ci_high_us: hi,
            sim_time_us,
            rounds_us,
        }
    }

    /// Relative noise scale: `max(3·MAD, CI half-width) / median`.
    /// 0 when the median is 0.
    pub fn rel_noise(&self) -> f64 {
        if self.median_us <= 0.0 {
            return 0.0;
        }
        let ci_half = (self.ci_high_us - self.ci_low_us) / 2.0;
        (3.0 * self.mad_us).max(ci_half) / self.median_us
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("label", Json::str(&self.label)),
            (
                "rounds_us",
                Json::Array(self.rounds_us.iter().map(|&x| Json::Float(x)).collect()),
            ),
            ("median_us", Json::Float(self.median_us)),
            ("mad_us", Json::Float(self.mad_us)),
            ("min_of_best_us", Json::Float(self.min_of_best_us)),
            ("ci_low_us", Json::Float(self.ci_low_us)),
            ("ci_high_us", Json::Float(self.ci_high_us)),
            ("sim_time_us", Json::Float(self.sim_time_us)),
        ])
    }

    fn from_json(j: &Json) -> Result<PointResult, String> {
        let f = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("point missing numeric field '{k}'"))
        };
        let rounds_us = j
            .get("rounds_us")
            .and_then(Json::as_array)
            .ok_or("point missing 'rounds_us' array")?
            .iter()
            .map(|x| x.as_f64().ok_or("non-numeric round"))
            .collect::<Result<Vec<f64>, _>>()?;
        Ok(PointResult {
            label: j
                .get("label")
                .and_then(Json::as_str)
                .ok_or("point missing 'label'")?
                .to_string(),
            rounds_us,
            median_us: f("median_us")?,
            mad_us: f("mad_us")?,
            min_of_best_us: f("min_of_best_us")?,
            ci_low_us: f("ci_low_us")?,
            ci_high_us: f("ci_high_us")?,
            sim_time_us: f("sim_time_us")?,
        })
    }
}

/// A full benchmark run: provenance, per-point results, and the metric
/// snapshot (fit-quality gauges, sweep metering) taken alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Document layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// ISO date (`YYYY-MM-DD`) the run started.
    pub date: String,
    /// True when the reduced protocol was used.
    pub quick: bool,
    /// Timing rounds per suite point.
    pub rounds: usize,
    /// Per-point robust summaries.
    pub points: Vec<PointResult>,
    /// Metrics snapshot exported with the run (fit diagnostics etc.).
    pub metrics: Json,
}

impl BenchReport {
    /// Finds a point by label.
    pub fn point(&self, label: &str) -> Option<&PointResult> {
        self.points.iter().find(|p| p.label == label)
    }

    /// Serializes to the schema-versioned JSON document.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema_version", Json::UInt(self.schema_version)),
            ("date", Json::str(&self.date)),
            ("quick", Json::Bool(self.quick)),
            ("rounds", Json::UInt(self.rounds as u64)),
            (
                "points",
                Json::Array(self.points.iter().map(PointResult::to_json).collect()),
            ),
            ("metrics", self.metrics.clone()),
        ])
    }

    /// Parses and validates a report document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first structural problem: bad JSON,
    /// missing fields, or a schema-version mismatch.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let j = obs::validate(text)?;
        let version = j
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing 'schema_version'")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema version {version} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let points = j
            .get("points")
            .and_then(Json::as_array)
            .ok_or("missing 'points' array")?
            .iter()
            .map(PointResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version: version,
            date: j
                .get("date")
                .and_then(Json::as_str)
                .ok_or("missing 'date'")?
                .to_string(),
            quick: matches!(j.get("quick"), Some(Json::Bool(true))),
            rounds: j.get("rounds").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            points,
            metrics: j.get("metrics").cloned().unwrap_or(Json::Null),
        })
    }
}

/// Gate decision for one suite point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within the noise envelope of the baseline.
    Ok,
    /// Significantly faster than baseline (consider refreshing it).
    Faster,
    /// Slower than baseline beyond the noise-aware threshold.
    Regression,
    /// Not present in the baseline.
    New,
}

impl GateStatus {
    /// Verdict label for the summary table.
    pub fn label(self) -> &'static str {
        match self {
            GateStatus::Ok => "ok",
            GateStatus::Faster => "faster",
            GateStatus::Regression => "REGRESSION",
            GateStatus::New => "new",
        }
    }
}

/// One row of the gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Suite-point identifier.
    pub label: String,
    /// Current median, µs.
    pub current_us: f64,
    /// Baseline median, µs (`None` for new points).
    pub baseline_us: Option<f64>,
    /// Relative threshold the comparison used (0.10 = ±10%).
    pub threshold: f64,
    /// The decision.
    pub status: GateStatus,
}

/// Relative regression threshold floor: changes under 10% are treated
/// as noise regardless of how tight the measured CIs are, because CI
/// wall-clock on shared machines drifts more than that run to run.
pub const MIN_THRESHOLD: f64 = 0.10;

/// Absolute slowdown guard: a point slower than baseline by more than
/// this survives even full drift normalization. This is what catches an
/// engine-wide regression (every point 2x slower looks exactly like
/// host drift to the normalizer); the price is that uniform host drift
/// beyond 30% also fails, which is the right side to err on.
pub const ABS_GUARD: f64 = 0.30;

/// Minimum shared points before the suite-median drift estimate is
/// trusted; below this, drift is taken as 1.0 (no normalization).
pub const DRIFT_MIN_POINTS: usize = 5;

/// Suite-wide host-drift estimate: the median over shared points of
/// `current.median / baseline.median`. Uniform machine slowdown
/// (thermal state, noisy neighbors) moves every point together; the
/// median ratio captures that common factor while staying anchored by
/// the unchanged majority when only a few points genuinely regress.
/// Returns 1.0 when fewer than [`DRIFT_MIN_POINTS`] points are shared.
pub fn drift(current: &BenchReport, baseline: &BenchReport) -> f64 {
    let ratios: Vec<f64> = current
        .points
        .iter()
        .filter_map(|p| {
            baseline
                .point(&p.label)
                .filter(|b| b.median_us > 0.0 && p.median_us > 0.0)
                .map(|b| p.median_us / b.median_us)
        })
        .collect();
    if ratios.len() < DRIFT_MIN_POINTS {
        return 1.0;
    }
    let d = median(&ratios);
    if d > 0.0 {
        d
    } else {
        1.0
    }
}

/// Compares a run against a baseline, one verdict per current point.
///
/// Each point's ratio is first normalized by the suite-median [`drift`]
/// (so uniform host slowdown doesn't fail every point), then judged
/// against the noise-aware threshold
/// `max(MIN_THRESHOLD, current.rel_noise(), baseline.rel_noise())`.
/// The raw, un-normalized ratio is additionally held to
/// [`ABS_GUARD`], which is what still catches a uniform engine-wide
/// slowdown that the normalizer would otherwise absorb.
pub fn compare(current: &BenchReport, baseline: &BenchReport) -> Vec<Verdict> {
    let d = drift(current, baseline);
    current
        .points
        .iter()
        .map(|p| {
            let Some(base) = baseline.point(&p.label) else {
                return Verdict {
                    label: p.label.clone(),
                    current_us: p.median_us,
                    baseline_us: None,
                    threshold: MIN_THRESHOLD,
                    status: GateStatus::New,
                };
            };
            let threshold = MIN_THRESHOLD.max(p.rel_noise()).max(base.rel_noise());
            let status = if base.median_us <= 0.0 {
                GateStatus::New
            } else {
                let ratio = p.median_us / base.median_us;
                let adjusted = ratio / d;
                if adjusted > 1.0 + threshold || ratio > 1.0 + ABS_GUARD.max(threshold) {
                    GateStatus::Regression
                } else if adjusted < 1.0 - threshold {
                    GateStatus::Faster
                } else {
                    GateStatus::Ok
                }
            };
            Verdict {
                label: p.label.clone(),
                current_us: p.median_us,
                baseline_us: Some(base.median_us),
                threshold,
                status,
            }
        })
        .collect()
}

/// Adapts gate verdicts + current points into [`report::perf`] rows.
pub fn perf_rows(current: &BenchReport, verdicts: &[Verdict]) -> Vec<report::perf::PerfRow> {
    verdicts
        .iter()
        .map(|v| {
            let p = current.point(&v.label);
            report::perf::PerfRow {
                label: v.label.clone(),
                wall_us: v.current_us,
                ci_low_us: p.map_or(0.0, |p| p.ci_low_us),
                ci_high_us: p.map_or(0.0, |p| p.ci_high_us),
                baseline_us: v.baseline_us,
                verdict: v.status.label().to_string(),
            }
        })
        .collect()
}

/// Knobs for one [`run_suite`] invocation.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Interleaved round-robin timing rounds (at least 1).
    pub rounds: usize,
    /// Whether the reduced protocol is in use (recorded in the report).
    pub quick: bool,
    /// Worker threads for the untimed setup stage (0 = auto-detect).
    pub threads: usize,
}

/// Runs the suite: `cfg.rounds` interleaved round-robin timing rounds
/// over `suite`, each round timing one full `measure()` call per point.
/// `progress(done, total)` is invoked after each timed call.
///
/// `cfg.threads` parallelizes only the *untimed* setup (communicator
/// construction). The timed calls themselves always run serialized on
/// the calling thread — one point at a time, rounds interleaved in
/// suite order — because concurrent wall-clock measurement points would
/// contend for cores and stop being comparable to the committed
/// baseline. Pinning the measurement to one worker keeps `--threads N`
/// report numbers identical in meaning to `--threads 1`.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run_suite(
    suite: &[SuitePoint],
    protocol: &Protocol,
    cfg: SuiteConfig,
    date: String,
    metrics: Json,
    mut progress: impl FnMut(usize, usize),
) -> Result<BenchReport, SimMpiError> {
    let SuiteConfig {
        rounds,
        quick,
        threads,
    } = cfg;
    let rounds = rounds.max(1);
    let mut walls: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); suite.len()];
    let mut sim_times = vec![0.0f64; suite.len()];
    // Reuse communicators across rounds: building one is cheap, but it
    // is not what the gate measures — so this is the one stage safe to
    // shard across workers.
    let (comms, _) = harness::par::run_indexed(
        suite.len(),
        threads,
        |i| suite[i].machine.communicator(suite[i].nodes),
        &|_, _| {},
    );
    let comms = comms?;
    let total = rounds * suite.len();
    let mut done = 0;
    for _round in 0..rounds {
        for (i, pt) in suite.iter().enumerate() {
            let t0 = Instant::now();
            let m = measure(&comms[i], pt.op, pt.bytes, protocol)?;
            walls[i].push(t0.elapsed().as_secs_f64() * 1e6);
            sim_times[i] = m.time_us;
            done += 1;
            progress(done, total);
        }
    }
    let points = suite
        .iter()
        .zip(walls)
        .zip(sim_times)
        .map(|((pt, w), sim)| PointResult::from_rounds(pt.label(), w, sim))
        .collect();
    Ok(BenchReport {
        schema_version: SCHEMA_VERSION,
        date,
        quick,
        rounds,
        points,
        metrics,
    })
}

/// `YYYY-MM-DD` from a Unix timestamp (civil-from-days, Gregorian).
pub fn iso_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(medians: &[(&str, f64)], noise_rel: f64) -> BenchReport {
        let points = medians
            .iter()
            .map(|&(label, med)| {
                // Five rounds tightly clustered around the median.
                let rounds: Vec<f64> = (0..5)
                    .map(|i| med * (1.0 + noise_rel * (i as f64 - 2.0) / 2.0))
                    .collect();
                PointResult::from_rounds(label.to_string(), rounds, med)
            })
            .collect();
        BenchReport {
            schema_version: SCHEMA_VERSION,
            date: "2026-08-06".into(),
            quick: true,
            rounds: 5,
            points,
            metrics: Json::Null,
        }
    }

    #[test]
    fn robust_stats_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 3.0, 100.0], 2.5), 1.0);
        assert_eq!(min_of_best(&[5.0, 1.0, 3.0, 2.0], 2), 1.5);
        let (lo, hi) = bootstrap_ci_median(&[10.0, 11.0, 9.0, 10.5, 10.2], 200, 0.95, 42);
        assert!(lo <= 10.2 && hi >= 10.0, "({lo}, {hi})");
        // Deterministic under a fixed seed.
        assert_eq!(
            bootstrap_ci_median(&[1.0, 2.0, 3.0], 100, 0.9, 7),
            bootstrap_ci_median(&[1.0, 2.0, 3.0], 100, 0.9, 7)
        );
    }

    #[test]
    fn default_suite_covers_all_pairs() {
        let suite = default_suite();
        assert_eq!(suite.len(), 21, "7 collectives x 3 machines");
        let labels: std::collections::HashSet<String> =
            suite.iter().map(SuitePoint::label).collect();
        assert_eq!(labels.len(), 21, "labels unique");
        assert!(labels.contains("sp2/alltoall"));
        assert!(labels.contains("t3d/barrier"));
        for pt in &suite {
            if pt.op == OpClass::Barrier {
                assert_eq!(pt.bytes, 0);
            } else {
                assert_eq!(pt.bytes, SUITE_BYTES);
            }
        }
    }

    #[test]
    fn identical_reports_all_pass() {
        let a = report_with(&[("sp2/bcast", 100.0), ("t3d/barrier", 20.0)], 0.02);
        let verdicts = compare(&a, &a.clone());
        assert!(verdicts.iter().all(|v| v.status == GateStatus::Ok));
    }

    #[test]
    fn synthetic_2x_slowdown_detected() {
        let base = report_with(&[("sp2/bcast", 100.0), ("t3d/barrier", 20.0)], 0.02);
        let slowed = report_with(&[("sp2/bcast", 200.0), ("t3d/barrier", 40.0)], 0.02);
        let verdicts = compare(&slowed, &base);
        assert!(
            verdicts.iter().all(|v| v.status == GateStatus::Regression),
            "{verdicts:?}"
        );
        // And the inverse direction reads as faster, not regression.
        let verdicts = compare(&base, &slowed);
        assert!(verdicts.iter().all(|v| v.status == GateStatus::Faster));
    }

    #[test]
    fn noise_widens_the_threshold() {
        let base = report_with(&[("sp2/bcast", 100.0)], 0.0);
        // 12% slower with tight noise: regression (10% floor).
        let slow = report_with(&[("sp2/bcast", 112.0)], 0.0);
        assert_eq!(compare(&slow, &base)[0].status, GateStatus::Regression);
        // Same 12% but the baseline itself is noisy at ±30%: tolerated.
        let noisy_base = report_with(&[("sp2/bcast", 100.0)], 0.3);
        let v = &compare(&slow, &noisy_base)[0];
        assert!(v.threshold > 0.10, "threshold {v:?}");
        assert_eq!(v.status, GateStatus::Ok);
    }

    #[test]
    fn uniform_host_drift_tolerated() {
        // Six points, all 18% slower — looks like thermal/neighbor drift,
        // not a code regression; the suite-median normalizer absorbs it.
        let labels = [
            ("sp2/bcast", 100.0),
            ("sp2/scan", 200.0),
            ("t3d/bcast", 50.0),
            ("t3d/barrier", 20.0),
            ("paragon/gather", 80.0),
            ("paragon/reduce", 90.0),
        ];
        let base = report_with(&labels, 0.02);
        let drifted: Vec<(&str, f64)> = labels.iter().map(|&(l, m)| (l, m * 1.18)).collect();
        let cur = report_with(&drifted, 0.02);
        assert!((drift(&cur, &base) - 1.18).abs() < 1e-9);
        let verdicts = compare(&cur, &base);
        assert!(
            verdicts.iter().all(|v| v.status == GateStatus::Ok),
            "{verdicts:?}"
        );
    }

    #[test]
    fn uniform_2x_slowdown_caught_by_absolute_guard() {
        // Every point 2x slower IS indistinguishable from host drift to
        // the normalizer — the absolute guard must still fail it.
        let labels = [
            ("sp2/bcast", 100.0),
            ("sp2/scan", 200.0),
            ("t3d/bcast", 50.0),
            ("t3d/barrier", 20.0),
            ("paragon/gather", 80.0),
            ("paragon/reduce", 90.0),
        ];
        let base = report_with(&labels, 0.02);
        let slowed: Vec<(&str, f64)> = labels.iter().map(|&(l, m)| (l, m * 2.0)).collect();
        let cur = report_with(&slowed, 0.02);
        let verdicts = compare(&cur, &base);
        assert!(
            verdicts.iter().all(|v| v.status == GateStatus::Regression),
            "{verdicts:?}"
        );
    }

    #[test]
    fn localized_regression_survives_drift_normalization() {
        // One point +50%, the rest unchanged: the median drift stays ~1
        // (anchored by the unchanged majority), so the hot point fails
        // while its neighbors pass.
        let labels = [
            ("sp2/bcast", 100.0),
            ("sp2/scan", 200.0),
            ("t3d/bcast", 50.0),
            ("t3d/barrier", 20.0),
            ("paragon/gather", 80.0),
            ("paragon/reduce", 90.0),
        ];
        let base = report_with(&labels, 0.02);
        let mut cur_pts: Vec<(&str, f64)> = labels.to_vec();
        cur_pts[1].1 *= 1.5; // sp2/scan regresses
        let cur = report_with(&cur_pts, 0.02);
        assert!((drift(&cur, &base) - 1.0).abs() < 1e-9);
        let verdicts = compare(&cur, &base);
        for v in &verdicts {
            if v.label == "sp2/scan" {
                assert_eq!(v.status, GateStatus::Regression, "{v:?}");
            } else {
                assert_eq!(v.status, GateStatus::Ok, "{v:?}");
            }
        }
    }

    #[test]
    fn new_points_flagged_not_failed() {
        let base = report_with(&[("sp2/bcast", 100.0)], 0.02);
        let cur = report_with(&[("sp2/bcast", 100.0), ("sp2/scan", 50.0)], 0.02);
        let verdicts = compare(&cur, &base);
        assert_eq!(verdicts[0].status, GateStatus::Ok);
        assert_eq!(verdicts[1].status, GateStatus::New);
        assert_eq!(verdicts[1].baseline_us, None);
    }

    #[test]
    fn json_round_trip() {
        let r = report_with(&[("sp2/bcast", 100.0), ("paragon/gather", 64.5)], 0.05);
        let text = r.to_json().to_string_pretty();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.date, r.date);
        assert_eq!(back.points.len(), 2);
        let (a, b) = (&back.points[0], &r.points[0]);
        assert_eq!(a.label, b.label);
        assert!((a.median_us - b.median_us).abs() < 1e-9);
        assert_eq!(a.rounds_us.len(), b.rounds_us.len());
    }

    #[test]
    fn schema_mismatch_and_malformed_rejected() {
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{}")
            .unwrap_err()
            .contains("schema_version"));
        let wrong = Json::object([
            ("schema_version", Json::UInt(99)),
            ("date", Json::str("2026-01-01")),
            ("points", Json::Array(vec![])),
        ])
        .to_string_compact();
        let err = BenchReport::from_json(&wrong).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
        let missing_points = Json::object([
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("date", Json::str("2026-01-01")),
        ])
        .to_string_compact();
        assert!(BenchReport::from_json(&missing_points)
            .unwrap_err()
            .contains("points"));
    }

    #[test]
    fn tiny_real_suite_runs_and_serializes() {
        // One cheap point, three rounds: exercises the real timing loop.
        let suite = vec![SuitePoint {
            machine: Machine::t3d(),
            op: OpClass::Bcast,
            bytes: 256,
            nodes: 8,
        }];
        let mut calls = 0;
        let r = run_suite(
            &suite,
            &Protocol::quick(),
            SuiteConfig {
                rounds: 3,
                quick: true,
                threads: 2,
            },
            iso_date(1_754_438_400),
            Json::Null,
            |done, total| {
                calls += 1;
                assert!(done <= total);
            },
        )
        .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(r.points.len(), 1);
        let p = &r.points[0];
        assert_eq!(p.label, "t3d/bcast");
        assert_eq!(p.rounds_us.len(), 3);
        assert!(p.median_us > 0.0, "wall-clock measured");
        assert!(p.sim_time_us > 0.0, "simulated time captured");
        assert!(p.ci_low_us <= p.median_us && p.median_us <= p.ci_high_us);
        let back = BenchReport::from_json(&r.to_json().to_string_pretty()).unwrap();
        assert_eq!(back.points[0].label, "t3d/bcast");
        // A run compared against itself passes the gate.
        assert!(compare(&r, &back)
            .iter()
            .all(|v| v.status == GateStatus::Ok));
    }

    #[test]
    fn iso_dates() {
        assert_eq!(iso_date(0), "1970-01-01");
        assert_eq!(iso_date(86_400), "1970-01-02");
        assert_eq!(iso_date(1_754_438_400), "2025-08-06");
        assert_eq!(iso_date(1_785_974_400), "2026-08-06");
        assert_eq!(iso_date(951_782_400), "2000-02-29", "leap day");
    }

    #[test]
    fn perf_rows_adapt_verdicts() {
        let base = report_with(&[("sp2/bcast", 100.0)], 0.02);
        let cur = report_with(&[("sp2/bcast", 250.0), ("t3d/scan", 10.0)], 0.02);
        let rows = perf_rows(&cur, &compare(&cur, &base));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].verdict, "REGRESSION");
        assert_eq!(rows[0].baseline_us, Some(100.0));
        assert_eq!(rows[1].verdict, "new");
        let text = report::perf::render(&rows);
        assert!(text.contains("REGRESSION"), "{text}");
    }
}
