//! Fig. 5 — aggregated bandwidths `R∞(p)` of the collective operations
//! on the three machines, for p = 8, 32, and 128 (64 for the T3D).
//!
//! `R∞(p) = lim_{m→∞} f(m, p) / D(m, p)` from the fitted per-byte
//! surface (§8, Eq. 4).

use bench::{machines, timed, Cli, SIX_OPS};
use harness::SweepBuilder;
use perfmodel::bandwidth_series;
use report::Table;

fn main() {
    let cli = Cli::parse();
    let data = timed("fig5 sweep", || {
        SweepBuilder::new()
            .machines(machines())
            .ops(SIX_OPS)
            .message_sizes([4, 1_024, 16_384, 65_536])
            .node_counts([2, 4, 8, 16, 32, 64, 128])
            .protocol(cli.protocol())
            .run()
            .expect("sweep")
    });
    cli.maybe_write_csv("fig5", &data);

    println!("\nFIGURE 5 — aggregated bandwidth R_inf(p) [MB/s]");
    for op in SIX_OPS {
        let mut table = Table::new(["Machine", "p=8", "p=32", "p=64", "p=128"]);
        for mach in machines() {
            let series = bandwidth_series(&data, mach.name(), op).expect("series");
            let cell = |p: usize| {
                series
                    .iter()
                    .find(|b| b.nodes == p)
                    .map(|b| format!("{:.0}", b.mb_s))
                    .unwrap_or_else(|| "-".into())
            };
            table.push_row([
                mach.name().to_string(),
                cell(8),
                cell(32),
                cell(64),
                cell(128),
            ]);
        }
        println!("\n-- {} --", op.paper_name());
        print!("{}", table.render());
    }
    println!(
        "\nPaper's §8 reference points (64-node total exchange): \n\
         T3D 1745 MB/s, Paragon 879 MB/s, SP2 818 MB/s."
    );
}
