//! Critical-path profiler driver: reconstruct the causal critical path
//! of a collective run, decompose its end-to-end latency into blame
//! categories (software overhead, wire, FIFO/link contention waits,
//! barrier sync), and report the contention census.
//!
//! ```text
//! cargo run -p bench --bin critpath -- --machine t3d --op scan -p 64 -m 4096
//! ```
//!
//! writes a Perfetto trace with a dedicated "critical path" track (flow
//! arrows at every rank hop) plus a `*.critpath.json` decomposition
//! document, and prints the blame table.
//!
//! `--suite [--threads N]` sweeps the fixed 21-point perfgate suite
//! instead, printing one decomposition row per point and writing a
//! single `critpath.json` artifact plus a `census.prom` exposition
//! file with the per-machine × op contention census (admission-set
//! fraction) as Prometheus gauges. The output is a pure function of
//! the simulation inputs, so the whole directory is byte-identical for
//! any `--threads N` — the CI determinism job compares a serial run
//! against `--threads 4` with `tracediff`. The suite run ends with the
//! scan-vs-bcast comparison the decomposition exists to answer: *why*
//! the T3D scan is slower than its bcast at the same `(m, p)`.
//!
//! `--trace-cap N` caps recorded message traces at N entries; capped
//! runs report how many messages the critical-path walk missed.

use mpisim::comm::RunOptions;
use mpisim::critpath::CritPath;
use mpisim::{observe, Machine, OpClass, Rank};
use obs::critpath::Blame;
use obs::{Json, MetricsRegistry};
use report::Table;

use bench::cli::{Accept, PointCli};

fn usage() -> ! {
    eprintln!(
        "usage: critpath {} [--out DIR] [--trace-cap N] [--elide]\n       critpath --suite [--threads N] [--out DIR] [--trace-cap N] [--elide]",
        bench::cli::POINT_USAGE
    );
    std::process::exit(2);
}

fn parse_args() -> PointCli {
    let mut cli = PointCli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match cli.accept(&a, || args.next()) {
            Accept::Consumed => continue,
            Accept::Invalid => usage(),
            Accept::Unknown => {}
        }
        match a.as_str() {
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    if !cli.selection_ok() {
        usage();
    }
    cli
}

/// One analyzed point: the critical path plus everything needed to
/// render and archive it.
struct Analyzed {
    cp: CritPath,
    trace: obs::ChromeTrace,
    manifest: obs::RunManifest,
    reg: MetricsRegistry,
    dropped: u64,
}

/// Runs one point under full observability + provenance and walks its
/// critical path. Pure: same inputs produce the same bytes.
fn analyze_point(
    machine: &Machine,
    op: OpClass,
    p: usize,
    m: u32,
    trace_cap: Option<usize>,
    elide: bool,
) -> Analyzed {
    let bytes = if op == OpClass::Barrier { 0 } else { m };
    let comm = machine.communicator(p).expect("communicator size");
    let schedule = comm.schedule(op, Rank(0), bytes).expect("schedule build");
    let (out, observed) = comm
        .run_observed(
            &[&schedule],
            RunOptions {
                provenance: true,
                trace_limit: trace_cap,
                elide,
                ..RunOptions::default()
            },
        )
        .expect("observed execution");
    let cp = mpisim::critpath::analyze(&out, &observed);
    let trace = observe::chrome_trace_with_critpath(machine.name(), &out, &observed, &cp);
    let manifest = obs::RunManifest::new(machine.name())
        .param("op", op.key())
        .param("p", p)
        .param("m_bytes", bytes)
        .param("end_rank", cp.end_rank)
        .param("chain_depth", cp.chain_depth.unwrap_or(0));
    let mut reg = MetricsRegistry::new();
    observe::export_metrics(&out, &observed, &mut reg);
    cp.export_metrics(&mut reg);
    Analyzed {
        cp,
        trace,
        manifest,
        reg,
        dropped: out.dropped_messages,
    }
}

/// The decomposition as a JSON document: absolute nanoseconds per
/// category (zeros included, so the schema is stable across points).
fn decomposition_json(machine: &Machine, op: OpClass, p: usize, m: u32, cp: &CritPath) -> Json {
    Json::object([
        ("machine", Json::str(machine.name())),
        ("op", Json::str(op.key())),
        ("p", Json::UInt(p as u64)),
        ("m_bytes", Json::UInt(u64::from(m))),
        ("elapsed_ns", Json::UInt(cp.decomposition.elapsed_ns())),
        ("end_rank", Json::UInt(cp.end_rank as u64)),
        (
            "chain_depth",
            Json::UInt(cp.chain_depth.unwrap_or(0) as u64),
        ),
        (
            "segments",
            Json::UInt(cp.decomposition.segments.len() as u64),
        ),
        (
            "blame_ns",
            Json::object(
                Blame::ALL
                    .iter()
                    .map(|&b| (b.key(), Json::UInt(cp.decomposition.get(b)))),
            ),
        ),
        (
            "census",
            Json::object([
                ("transfers", Json::UInt(cp.census.transfers)),
                ("uncontended", Json::UInt(cp.census.uncontended)),
                ("fraction", Json::Float(cp.census.fraction())),
            ]),
        ),
    ])
}

/// Stable per-point file stem, e.g. `critpath_cray_t3d_scan_p64_m4096`.
fn stem(machine: &Machine, op: OpClass, p: usize, bytes: u32) -> String {
    format!(
        "critpath_{}_{}_p{}_m{}",
        machine.name().to_ascii_lowercase().replace(' ', "_"),
        op.key(),
        p,
        bytes
    )
}

/// Per-category percentage cell, e.g. `41.3`.
fn pct(cp: &CritPath, b: Blame) -> String {
    format!("{:5.1}", 100.0 * cp.decomposition.fraction(b))
}

fn suite_table(rows: &[(String, String, CritPath)]) -> Table {
    let mut t = Table::new(
        ["machine", "op", "us"]
            .into_iter()
            .map(str::to_string)
            .chain(Blame::ALL.iter().map(|b| format!("{}%", b.key())))
            .chain(["census%".to_string()]),
    );
    for (machine, op, cp) in rows {
        t.push_row(
            [
                machine.clone(),
                op.clone(),
                format!("{:.1}", cp.decomposition.elapsed_ns() as f64 / 1_000.0),
            ]
            .into_iter()
            .chain(Blame::ALL.iter().map(|&b| pct(cp, b)))
            .chain([format!("{:5.1}", 100.0 * cp.census.fraction())]),
        );
    }
    t
}

/// The headline anomaly the decomposition explains: scan vs bcast on
/// each machine at the suite point, with the categories that differ.
fn scan_vs_bcast(rows: &[(String, String, CritPath)]) {
    println!("scan vs bcast at the suite point (m=4096, p=64):");
    for machine in ["IBM SP2", "Cray T3D", "Intel Paragon"] {
        let find = |op: &str| {
            rows.iter()
                .find(|(m, o, _)| m == machine && o == op)
                .map(|(_, _, cp)| cp)
        };
        let (Some(scan), Some(bcast)) = (find("scan"), find("bcast")) else {
            continue;
        };
        let s_us = scan.decomposition.elapsed_ns() as f64 / 1_000.0;
        let b_us = bcast.decomposition.elapsed_ns() as f64 / 1_000.0;
        let recv = |cp: &CritPath| cp.decomposition.get(Blame::RecvSw) as f64 / 1_000.0;
        let sends = |cp: &CritPath| {
            (cp.decomposition.get(Blame::SendSw) + cp.decomposition.get(Blame::Copy)) as f64
                / 1_000.0
        };
        println!(
            "  {machine:<13} scan {s_us:8.1} us = {:.2}x bcast {b_us:8.1} us  \
             (path recv_sw {:.1} vs {:.1} us, send+copy {:.1} vs {:.1} us, \
             {} vs {} path segments)",
            s_us / b_us,
            recv(scan),
            recv(bcast),
            sends(scan),
            sends(bcast),
            scan.decomposition.segments.len(),
            bcast.decomposition.segments.len(),
        );
    }
}

/// The fixed 21-point suite, analyzed with `threads` workers and written
/// in canonical order from the merged results.
fn run_suite(out_dir: &str, threads: usize, trace_cap: Option<usize>, elide: bool) {
    let suite = bench::perfgate::default_suite();
    std::fs::create_dir_all(out_dir).expect("create output directory");

    let (analyzed, stats) = harness::map_indexed(
        suite.len(),
        threads,
        |i| {
            let pt = &suite[i];
            let a = analyze_point(&pt.machine, pt.op, pt.nodes, pt.bytes, trace_cap, elide);
            let doc = decomposition_json(&pt.machine, pt.op, pt.nodes, pt.bytes, &a.cp);
            (
                pt.machine.name().to_string(),
                pt.op.key().to_string(),
                a,
                doc,
            )
        },
        &|_, _| {},
    );

    let rows: Vec<(String, String, CritPath)> = analyzed
        .iter()
        .map(|(m, o, a, _)| (m.clone(), o.clone(), a.cp.clone()))
        .collect();
    println!("critical-path blame decomposition ({} points):", rows.len());
    println!("{}", suite_table(&rows).render());
    let dropped: u64 = analyzed.iter().map(|(_, _, a, _)| a.dropped).sum();
    if dropped > 0 {
        println!("WARNING: {dropped} messages exceeded the trace cap and were not walked");
    }
    scan_vs_bcast(&rows);

    // The contention census as Prometheus gauges, one set per
    // machine × op — the admission-set fraction a quiet-network fast
    // path could elide.
    let mut census_reg = MetricsRegistry::new();
    for (machine, op, a, _) in &analyzed {
        let id = bench::machine_id(machine)
            .map(|id| id.name().to_ascii_lowercase())
            .unwrap_or_else(|| machine.to_ascii_lowercase().replace(' ', "_"));
        let base = format!("critpath.census.{id}.{op}");
        census_reg.gauge(format!("{base}.transfers"), a.cp.census.transfers as f64);
        census_reg.gauge(
            format!("{base}.uncontended"),
            a.cp.census.uncontended as f64,
        );
        census_reg.gauge(format!("{base}.frac"), a.cp.census.fraction());
    }
    let census_path = format!("{out_dir}/census.prom");
    std::fs::write(&census_path, obs::prom::text(&census_reg)).expect("write census");
    println!("wrote {census_path} ({} series)", census_reg.len());

    let artifact = Json::Array(analyzed.into_iter().map(|(_, _, _, doc)| doc).collect());
    let path = format!("{out_dir}/critpath.json");
    std::fs::write(&path, artifact.to_string_pretty()).expect("write artifact");
    println!(
        "wrote {path} ({} points, {} workers, {:.0}% utilization)",
        rows.len(),
        stats.threads,
        100.0 * stats.utilization()
    );
}

fn main() {
    let cli = parse_args();
    if cli.suite {
        run_suite(cli.out_dir(), cli.threads, cli.trace_cap, cli.elide);
        return;
    }

    let machine = cli.machine.as_ref().expect("checked in parse_args");
    let op = cli.op.expect("checked in parse_args");
    let bytes = if op == OpClass::Barrier { 0 } else { cli.m };
    let a = analyze_point(machine, op, cli.p, cli.m, cli.trace_cap, cli.elide);

    println!("{}", report::metrics::render(&a.manifest, &a.reg));
    println!();
    let mut t = Table::new(["category", "ns", "%"]);
    for &b in &Blame::ALL {
        let ns = a.cp.decomposition.get(b);
        if ns > 0 {
            t.push_row([
                format!("critpath.{}", b.key()),
                ns.to_string(),
                pct(&a.cp, b),
            ]);
        }
    }
    t.push_row([
        "total".to_string(),
        a.cp.decomposition.total_ns().to_string(),
        "100.0".to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "census: {}/{} remote transfers uncontended ({:.1}%) — elidable under a quiet-network fast path",
        a.cp.census.uncontended,
        a.cp.census.transfers,
        100.0 * a.cp.census.fraction()
    );

    std::fs::create_dir_all(cli.out_dir()).expect("create output directory");
    let file_stem = stem(machine, op, cli.p, bytes);
    let trace_path = format!("{}/{file_stem}.trace.json", cli.out_dir());
    let json_path = format!("{}/{file_stem}.critpath.json", cli.out_dir());
    std::fs::write(&trace_path, a.trace.to_json_string()).expect("write trace");
    let doc = decomposition_json(machine, op, cli.p, cli.m, &a.cp);
    std::fs::write(&json_path, doc.to_string_pretty()).expect("write decomposition");
    println!("wrote {trace_path} ({} events)", a.trace.len());
    println!("wrote {json_path}");
    println!("open the trace at https://ui.perfetto.dev (drag & drop the .trace.json)");
}
