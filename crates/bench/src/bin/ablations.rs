//! Design-choice ablations (DESIGN.md §5): quantify what each modeled
//! mechanism contributes by turning it off and re-measuring a reference
//! workload.
//!
//! * wormhole vs store-and-forward wire model;
//! * per-link contention on/off;
//! * NIC injection serialization on/off;
//! * vendor algorithm tables vs generic MPICH (kills the T3D hardware
//!   barrier);
//! * offload engines (Paragon co-processor / T3D BLT) vs CPU copies;
//! * rank placement: contiguous vs scattered node allocation (§9's
//!   "runtime node allocation" accuracy factor);
//! * alltoall algorithm: pairwise vs ring vs Bruck;
//! * broadcast/scatter/gather/reduce: binomial vs linear.

use bench::{timed, Cli};
use collectives::{alltoall, bcast, gather, reduce, scatter, Rank};
use harness::measure;
use mpisim::{AlgorithmPolicy, Machine, OpClass, Placement, SimMpiError, WireConfig};
use netmodel::SendEngine;
use report::Table;

const P: usize = 64;
const M: u32 = 16_384;

fn run_with(machine: &Machine, op: OpClass, m: u32, proto: &harness::Protocol) -> f64 {
    let comm = machine.communicator(P).expect("size");
    measure(&comm, op, m, proto).expect("measure").time_us
}

fn wire_ablations(cli: &Cli) {
    let proto = cli.protocol();
    println!("\n== Wire-model ablations (alltoall, {M} B x {P} nodes) ==");
    let mut t = Table::new([
        "Machine",
        "full model",
        "no contention",
        "no NIC serial.",
        "store&fwd",
        "ideal xbar",
    ]);
    for base in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
        let full = run_with(&base, OpClass::Alltoall, M, &proto);
        let no_contention = run_with(
            &base.clone().with_wire_config(WireConfig {
                link_contention: false,
                ..WireConfig::default()
            }),
            OpClass::Alltoall,
            M,
            &proto,
        );
        let no_nic = run_with(
            &base.clone().with_wire_config(WireConfig {
                nic_serialization: false,
                ..WireConfig::default()
            }),
            OpClass::Alltoall,
            M,
            &proto,
        );
        let saf = run_with(
            &base.clone().with_wire_config(WireConfig {
                wormhole: false,
                ..WireConfig::default()
            }),
            OpClass::Alltoall,
            M,
            &proto,
        );
        // Ideal network: same software stack on a contention-free
        // crossbar.
        let mut xbar_spec = base.spec().clone();
        xbar_spec.topology = netmodel::TopologyKind::Crossbar;
        let xbar = Machine::custom(xbar_spec).expect("valid spec");
        let ideal = run_with(&xbar, OpClass::Alltoall, M, &proto);
        t.push_row([
            base.name().to_string(),
            format!("{full:.0} us"),
            format!("{:.2}x", no_contention / full),
            format!("{:.2}x", no_nic / full),
            format!("{:.2}x", saf / full),
            format!("{:.2}x", ideal / full),
        ]);
    }
    print!("{}", t.render());
}

fn vendor_ablation(cli: &Cli) {
    let proto = cli.protocol();
    println!("\n== Vendor vs generic algorithms (barrier, {P} nodes) ==");
    let mut t = Table::new(["Machine", "vendor (us)", "generic MPICH (us)", "ratio"]);
    for base in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
        let vendor = run_with(&base, OpClass::Barrier, 0, &proto);
        let generic = run_with(
            &base.clone().with_policy(AlgorithmPolicy::Generic),
            OpClass::Barrier,
            0,
            &proto,
        );
        t.push_row([
            base.name().to_string(),
            format!("{vendor:.2}"),
            format!("{generic:.2}"),
            format!("{:.1}x", generic / vendor),
        ]);
    }
    print!("{}", t.render());
    println!("(the T3D row isolates the hardwired barrier's contribution)");
}

fn offload_ablation(cli: &Cli) {
    let proto = cli.protocol();
    println!("\n== Offload engines vs CPU copies (alltoall, 64 KB x {P} nodes) ==");
    let mut t = Table::new(["Machine", "with engine (ms)", "CPU only (ms)", "slowdown"]);
    for base in [Machine::paragon(), Machine::t3d()] {
        let with = run_with(&base, OpClass::Alltoall, 65_536, &proto);
        let mut spec = base.spec().clone();
        spec.send_engine = SendEngine::Cpu;
        let cpu_only = Machine::custom(spec).expect("valid spec");
        let without = run_with(&cpu_only, OpClass::Alltoall, 65_536, &proto);
        t.push_row([
            base.name().to_string(),
            format!("{:.1}", with / 1000.0),
            format!("{:.1}", without / 1000.0),
            format!("{:.2}x", without / with),
        ]);
    }
    print!("{}", t.render());
}

fn interconnect_ablation(cli: &Cli) {
    let proto = cli.protocol();
    println!("\n== SP2 interconnect abstraction: Omega vs fat tree vs crossbar ==");
    let mut t = Table::new(["Operation", "Omega (us)", "fat tree", "crossbar"]);
    let omega = Machine::sp2();
    let mut ft_spec = omega.spec().clone();
    ft_spec.topology = netmodel::TopologyKind::FatTree { radix: 4 };
    let fat_tree = Machine::custom(ft_spec).expect("valid spec");
    let mut xb_spec = omega.spec().clone();
    xb_spec.topology = netmodel::TopologyKind::Crossbar;
    let crossbar = Machine::custom(xb_spec).expect("valid spec");
    for (op, m) in [
        (OpClass::Bcast, 16_384u32),
        (OpClass::Alltoall, 16_384),
        (OpClass::Gather, 16_384),
    ] {
        let base = run_with(&omega, op, m, &proto);
        let ft = run_with(&fat_tree, op, m, &proto);
        let xb = run_with(&crossbar, op, m, &proto);
        t.push_row([
            op.paper_name().to_string(),
            format!("{base:.0}"),
            format!("{:.2}x", ft / base),
            format!("{:.2}x", xb / base),
        ]);
    }
    print!("{}", t.render());
    println!("(ratios near 1.0 mean the results do not hinge on the indirect-network abstraction)");
}

fn placement_ablation(cli: &Cli) {
    let proto = cli.protocol();
    println!(
        "\n== Rank placement: contiguous vs scattered allocation (bcast, 4 KB x {P} nodes) =="
    );
    let mut t = Table::new(["Machine", "contiguous (us)", "scattered (us)", "penalty"]);
    for base in [Machine::sp2(), Machine::paragon(), Machine::t3d()] {
        let contiguous = run_with(&base, OpClass::Bcast, 4_096, &proto);
        let scattered = run_with(
            &base
                .clone()
                .with_placement(Placement::Scattered { seed: 1997 }),
            OpClass::Bcast,
            4_096,
            &proto,
        );
        t.push_row([
            base.name().to_string(),
            format!("{contiguous:.0}"),
            format!("{scattered:.0}"),
            format!("{:.2}x", scattered / contiguous),
        ]);
    }
    print!("{}", t.render());
    println!("(the Omega network is placement-insensitive: uniform route lengths)");
}

fn algorithm_ablation() -> Result<(), SimMpiError> {
    println!("\n== Algorithm alternatives (SP2, {M} B x {P} nodes, cold start) ==");
    let machine = Machine::sp2();
    let comm = machine.communicator(P)?;
    let mut t = Table::new(["Operation", "Schedule", "time (us)", "messages"]);
    let rows: Vec<(&str, &str, collectives::Schedule)> = vec![
        (
            "Broadcast",
            "binomial (vendor)",
            bcast::binomial(P, Rank(0), M),
        ),
        ("Broadcast", "linear", bcast::linear(P, Rank(0), M)),
        (
            "Broadcast",
            "scatter-allgather",
            bcast::scatter_allgather(P, Rank(0), M),
        ),
        (
            "Broadcast",
            "pipelined chain",
            bcast::pipelined(P, Rank(0), M, 4_096),
        ),
        ("Scatter", "linear (vendor)", scatter::linear(P, Rank(0), M)),
        ("Scatter", "binomial", scatter::binomial(P, Rank(0), M)),
        ("Gather", "linear (vendor)", gather::linear(P, Rank(0), M)),
        ("Gather", "binomial", gather::binomial(P, Rank(0), M)),
        (
            "Reduce",
            "binomial (vendor)",
            reduce::binomial(P, Rank(0), M),
        ),
        ("Reduce", "linear", reduce::linear(P, Rank(0), M)),
        ("Alltoall", "pairwise (vendor)", alltoall::pairwise(P, M)),
        ("Alltoall", "ring", alltoall::ring(P, M)),
        ("Alltoall", "bruck", alltoall::bruck(P, M)),
    ];
    for (op, name, schedule) in rows {
        let out = comm.run(&schedule)?;
        t.push_row([
            op.to_string(),
            name.to_string(),
            format!("{:.0}", out.time().as_micros_f64()),
            out.messages().to_string(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn main() {
    let cli = Cli::parse();
    timed("wire ablations", || wire_ablations(&cli));
    timed("vendor ablation", || vendor_ablation(&cli));
    timed("offload ablation", || offload_ablation(&cli));
    timed("placement ablation", || placement_ablation(&cli));
    timed("interconnect ablation", || interconnect_ablation(&cli));
    timed("algorithm ablation", || {
        algorithm_ablation().expect("ablation")
    });
}
