//! Continuous-benchmark pipeline: runs the fixed perfgate suite, writes
//! a schema-versioned `BENCH_<date>.json`, and gates against the
//! committed `crates/bench/baseline.json`.
//!
//! ```text
//! cargo run -p bench --release --bin perfgate -- [options]
//!
//!   --quick              reduced measurement protocol (CI default)
//!   --rounds N           timing rounds per suite point (default 5)
//!   --threads N          worker threads for the untimed stages (fit
//!                        sweep, communicator setup); 0 = auto-detect.
//!                        The wall-clock measurement points themselves
//!                        always run pinned to one worker, serialized
//!                        within each interleaved round, so reported
//!                        numbers stay comparable to the committed
//!                        baseline at any thread count (default 1)
//!   --out FILE           report path (default BENCH_<date>.json)
//!   --baseline FILE      baseline path (default crates/bench/baseline.json)
//!   --update-baseline    overwrite the baseline with this run and exit
//!   --report-only        never fail on regressions (still fails on
//!                        schema/IO errors) — the CI perf job's mode
//!   --no-fit             skip the fit-quality drift sweep
//! ```
//!
//! Alongside the report, the `sweep.par.*` worker-utilization metrics
//! of the fit sweep are written to `<out stem>.par.json` so CI can
//! archive executor utilization next to the wall-clock numbers.
//!
//! Exit codes: 0 pass, 1 regression beyond the noise-aware threshold,
//! 2 schema or I/O error.

use bench::perfgate::{
    compare, default_suite, drift, elide_ab, iso_date, perf_rows, run_suite, BenchReport, ElideAb,
    GateStatus, SuiteConfig,
};
use harness::{Protocol, SweepBuilder};
use mpisim::OpClass;
use obs::MetricsRegistry;
use std::time::SystemTime;

struct Opts {
    quick: bool,
    rounds: usize,
    threads: usize,
    out: Option<String>,
    baseline: String,
    update_baseline: bool,
    report_only: bool,
    fit: bool,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        quick: false,
        rounds: 5,
        threads: 1,
        out: None,
        baseline: concat!(env!("CARGO_MANIFEST_DIR"), "/baseline.json").to_string(),
        update_baseline: false,
        report_only: false,
        fit: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--rounds" => {
                o.rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--rounds needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--threads" => {
                o.threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer (0 = auto)");
                    std::process::exit(2);
                });
            }
            "--out" => o.out = args.next(),
            "--baseline" => {
                o.baseline = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                });
            }
            "--update-baseline" => o.update_baseline = true,
            "--report-only" => o.report_only = true,
            "--no-fit" => o.fit = false,
            "--help" | "-h" => {
                eprintln!(
                    "options: --quick  --rounds N  --threads N  --out FILE  \
                     --baseline FILE  --update-baseline  --report-only  --no-fit"
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other}"),
        }
    }
    o
}

/// Fit-quality drift sweep: a small grid, fitted per (machine, op), with
/// R²/residual/accuracy gauges exported so each BENCH_*.json carries the
/// model-quality state alongside the wall-clock numbers.
fn fit_metrics(reg: &mut MetricsRegistry, threads: usize) -> Result<(), String> {
    let sweep = SweepBuilder::new()
        .ops(OpClass::COLLECTIVES)
        .message_sizes([64, 1024, 16_384])
        .node_counts([8, 16, 32, 64])
        .protocol(Protocol::quick())
        .threads(threads);
    let data = sweep.run_metered(reg).map_err(|e| e.to_string())?;
    for d in perfmodel::diagnose_all(&data) {
        d.export_metrics(reg);
    }
    Ok(())
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let opts = parse_opts();
    let date = iso_date(
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    );

    // Schema fail-fast: parse the committed baseline BEFORE spending
    // minutes on the fit sweep and timing suite, so a schema-version
    // drift between the baseline document and this writer dies in
    // seconds, not at the end of the run. A *missing* baseline is fine
    // (handled after the run, and irrelevant under --update-baseline).
    let baseline = if opts.update_baseline {
        None
    } else {
        match std::fs::read_to_string(&opts.baseline) {
            Ok(text) => match BenchReport::from_json(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("[perfgate] baseline {} invalid: {e}", opts.baseline);
                    eprintln!(
                        "[perfgate] refusing to run the suite against it — refresh with --update-baseline"
                    );
                    return 2;
                }
            },
            Err(_) => None,
        }
    };

    let mut reg = MetricsRegistry::new();
    if opts.fit {
        eprintln!(
            "[perfgate] fit-quality sweep ({} thread(s))…",
            harness::resolve_threads(opts.threads)
        );
        if let Err(e) = fit_metrics(&mut reg, opts.threads) {
            eprintln!("[perfgate] fit sweep failed: {e}");
            return 2;
        }
    }

    let suite = default_suite();

    // Event-elision A/B: every suite point with the analytic fast path
    // off and on. Deterministic counters land in the report's metrics
    // as net.elide.*; the table prints alongside the gate verdicts.
    eprintln!(
        "[perfgate] event-elision A/B ({} points x 2 runs)…",
        suite.len()
    );
    let elide_rows = match elide_ab(&suite) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("[perfgate] elision A/B failed: {e}");
            return 2;
        }
    };
    let (mut admitted, mut fallbacks) = (0u64, 0u64);
    for r in &elide_rows {
        let stem = r.label.replace('/', ".");
        reg.gauge(format!("net.elide.{stem}.events_off"), r.base_events as f64);
        reg.gauge(
            format!("net.elide.{stem}.events_on"),
            r.elided_events as f64,
        );
        reg.gauge(format!("net.elide.{stem}.event_ratio"), r.event_ratio());
        reg.gauge(
            format!("net.elide.{stem}.admission_rate"),
            r.admission_rate(),
        );
        admitted += r.admitted;
        fallbacks += r.fallbacks;
    }
    reg.counter("net.elide.admitted", admitted);
    reg.counter("net.elide.fallback", fallbacks);
    reg.gauge(
        "net.elide.admission_rate",
        if admitted + fallbacks == 0 {
            0.0
        } else {
            admitted as f64 / (admitted + fallbacks) as f64
        },
    );

    let protocol = if opts.quick {
        Protocol::quick()
    } else {
        Protocol::paper()
    };
    eprintln!(
        "[perfgate] timing {} suite points x {} rounds ({})…",
        suite.len(),
        opts.rounds,
        if opts.quick { "quick" } else { "paper" }
    );
    let current = match run_suite(
        &suite,
        &protocol,
        SuiteConfig {
            rounds: opts.rounds,
            quick: opts.quick,
            threads: opts.threads,
        },
        date.clone(),
        reg.snapshot(),
        |done, total| {
            if done % suite_progress_stride(total) == 0 || done == total {
                eprintln!("[perfgate]   {done}/{total}");
            }
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[perfgate] suite failed: {e}");
            return 2;
        }
    };

    let out_path = opts.out.clone().unwrap_or(format!("BENCH_{date}.json"));
    let doc = current.to_json().to_string_pretty();
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("[perfgate] cannot write {out_path}: {e}");
        return 2;
    }
    eprintln!("[perfgate] wrote {out_path}");

    // Executor-utilization sidecar: the sweep.par.* subset of the fit
    // sweep's metrics, archived by CI next to the report artifact.
    let par_path = format!("{}.par.json", out_path.trim_end_matches(".json"));
    let par_doc = match reg.snapshot() {
        obs::Json::Object(all) => obs::Json::Object(
            all.into_iter()
                .filter(|(k, _)| k.starts_with("sweep.par."))
                .collect(),
        ),
        other => other,
    };
    if let Err(e) = std::fs::write(&par_path, par_doc.to_string_pretty()) {
        eprintln!("[perfgate] cannot write {par_path}: {e}");
        return 2;
    }
    eprintln!("[perfgate] wrote {par_path}");

    println!("{}", render_elide_table(&elide_rows));

    if opts.update_baseline {
        if let Err(e) = std::fs::write(&opts.baseline, &doc) {
            eprintln!("[perfgate] cannot write baseline {}: {e}", opts.baseline);
            return 2;
        }
        println!(
            "baseline updated: {} ({} points)",
            opts.baseline,
            current.points.len()
        );
        return 0;
    }

    // Parsed (and schema-checked) before the suite ran.
    let Some(baseline) = baseline else {
        println!(
            "no baseline at {} — run with --update-baseline to create one",
            opts.baseline
        );
        let verdicts = compare(&current, &empty_baseline(&current));
        println!("{}", report::perf::render(&perf_rows(&current, &verdicts)));
        return 0;
    };

    let verdicts = compare(&current, &baseline);
    println!(
        "perfgate {date} vs baseline {} ({} rounds, {}); host drift {:+.1}% (normalized out):",
        baseline.date,
        current.rounds,
        if current.quick { "quick" } else { "paper" },
        (drift(&current, &baseline) - 1.0) * 100.0
    );
    println!("{}", report::perf::render(&perf_rows(&current, &verdicts)));

    let regressions: Vec<_> = verdicts
        .iter()
        .filter(|v| v.status == GateStatus::Regression)
        .collect();
    if regressions.is_empty() {
        println!("gate: PASS ({} points)", verdicts.len());
        0
    } else {
        println!(
            "gate: {} regression(s): {}",
            regressions.len(),
            regressions
                .iter()
                .map(|v| v.label.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        if opts.report_only {
            println!("(report-only mode: not failing the build)");
            0
        } else {
            1
        }
    }
}

fn suite_progress_stride(total: usize) -> usize {
    (total / 10).max(1)
}

/// The elision A/B as a table: events per message off vs on, the
/// reduction factor, the admission rate, and the (host-side, unguarded)
/// wall clocks of the paired runs.
fn render_elide_table(rows: &[ElideAb]) -> String {
    let mut t = report::Table::new([
        "point",
        "msgs",
        "ev/msg off",
        "ev/msg on",
        "ratio",
        "admit%",
        "wall off us",
        "wall on us",
    ]);
    for r in rows {
        let per_msg = |events: u64| {
            if r.messages == 0 {
                format!("{events}")
            } else {
                format!("{:.1}", events as f64 / r.messages as f64)
            }
        };
        t.push_row([
            r.label.clone(),
            r.messages.to_string(),
            per_msg(r.base_events),
            per_msg(r.elided_events),
            format!("{:.1}x", r.event_ratio()),
            format!("{:.1}", 100.0 * r.admission_rate()),
            format!("{:.0}", r.wall_off_us),
            format!("{:.0}", r.wall_on_us),
        ]);
    }
    let mut out = String::from("event elision A/B (net.elide.*, analytic fast path off vs on):\n");
    out.push_str(&t.render());
    if let Some(best) = rows
        .iter()
        .filter(|r| r.elided_events > 0)
        .max_by(|a, b| a.event_ratio().total_cmp(&b.event_ratio()))
    {
        out.push_str(&format!(
            "best event cut: {} {:.1}x fewer events ({} of {} sends elided)\n",
            best.label,
            best.event_ratio(),
            best.admitted,
            best.admitted + best.fallbacks,
        ));
    }
    out
}

/// A baseline with no points, so every current point reads as `new`.
fn empty_baseline(current: &BenchReport) -> BenchReport {
    BenchReport {
        points: Vec::new(),
        metrics: obs::Json::Null,
        ..current.clone()
    }
}
