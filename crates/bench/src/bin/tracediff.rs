//! Differential run observability driver: structural comparison of run
//! artifacts with first-divergence explanation, plus the perf-trend
//! history across committed benchmark reports.
//!
//! Three modes:
//!
//! ```text
//! tracediff <A> <B>
//! ```
//! compares two artifacts — files or whole directories. Run-record
//! documents (`*.record.json`) are compared structurally: on divergence
//! the report names the first divergent event in time order with its
//! causal ancestor window (walked through the provenance edges), the
//! ranks involved, and expected-vs-got. Other files fall back to a
//! byte comparison that still points at the first differing line — a
//! drop-in replacement for the CI determinism gate's `diff -r`.
//!
//! ```text
//! tracediff --suite [--threads N] [--perturb | --elide] [--trace-cap N] [--out DIR]
//! ```
//! runs every point of the fixed 21-point perfgate suite twice
//! in-process and diffs the two records. Without `--perturb` both runs
//! are identical seeds and the suite certifies 21/21 byte-identical;
//! with `--perturb` the second run deliberately inverts the
//! send-completion FIFO tie-break (the eager-delivery failure mode) and
//! every divergence is explained. With `--elide` the second run takes
//! the event-elision fast path and the pair is judged through the
//! *canonical* oracle (`RunRecord::canonicalized`): elision posts one
//! bulk-completion per admitted message instead of the per-hop chain,
//! so scheduling seqs and provenance parents differ by construction,
//! but the canonical projection — event multiset with instants,
//! transfers, spans, finish matrix, blame totals, census — must be
//! byte-identical, and the suite certifies 21/21. On failure the
//! first-divergence explanation is printed and, with `--out`, written
//! to `<point>.divergence.txt` so CI can upload it as an artifact.
//! Sharded via `harness::par`; output is byte-identical at any
//! `--threads` value.
//!
//! ```text
//! tracediff --history [--bench-dir DIR] [--out FILE]
//! ```
//! renders the performance trajectory across `baseline.json` and all
//! committed `BENCH_*.json` reports as a trend table, flagging
//! regressions between the two most recent reports with the perfgate's
//! noise-aware thresholds.

use bench::perfgate::{self, BenchReport, GateStatus};
use obs::record::RunRecord;
use report::Table;
use std::path::Path;

struct Args {
    paths: Vec<String>,
    suite: bool,
    perturb: bool,
    elide: bool,
    history: bool,
    bench_dir: String,
    threads: usize,
    trace_cap: Option<usize>,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tracediff <A> <B>            compare two run artifacts (files or directories)\n       tracediff --suite [--threads N] [--perturb | --elide] [--trace-cap N] [--out DIR]\n       tracediff --history [--bench-dir DIR] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        paths: Vec::new(),
        suite: false,
        perturb: false,
        elide: false,
        history: false,
        bench_dir: "crates/bench".to_string(),
        threads: 1,
        trace_cap: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--suite" => parsed.suite = true,
            "--perturb" => parsed.perturb = true,
            "--elide" => parsed.elide = true,
            "--history" => parsed.history = true,
            "--bench-dir" => parsed.bench_dir = value(),
            "--threads" => parsed.threads = value().parse().unwrap_or_else(|_| usage()),
            "--trace-cap" => parsed.trace_cap = Some(value().parse().unwrap_or_else(|_| usage())),
            "--out" => parsed.out = Some(value()),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage();
            }
            path => parsed.paths.push(path.to_string()),
        }
    }
    let modes = usize::from(parsed.suite) + usize::from(parsed.history);
    if modes > 1 || (modes == 1 && !parsed.paths.is_empty()) {
        usage();
    }
    if modes == 0 && parsed.paths.len() != 2 {
        usage();
    }
    // --elide is a B-side variant of the suite mode, exclusive with
    // --perturb (each replaces the second run).
    if parsed.elide && (!parsed.suite || parsed.perturb) {
        usage();
    }
    parsed
}

/// Truncates a line for display, keeping the divergence readable.
fn clip(line: &str) -> String {
    const MAX: usize = 160;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let cut: String = line.chars().take(MAX).collect();
        format!("{cut}… ({} bytes)", line.len())
    }
}

/// Compares two files. Run records get the structural treatment; other
/// content gets a byte comparison that names the first differing line.
/// Returns true when the pair is certified byte-identical.
fn compare_files(a_path: &Path, b_path: &Path, label: &str) -> bool {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let (a_text, b_text) = match (read(a_path), read(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            println!("{label}: ERROR: {e}");
            return false;
        }
    };
    let records = (RunRecord::from_json(&a_text), RunRecord::from_json(&b_text));
    if let (Ok(a), Ok(b)) = records {
        // Structural path: even byte-equal records go through the
        // comparator so certification (dropped-message refusal) applies.
        let diff = obs::diff::diff(&a, &b);
        print!("{}", report::diff::render_report(label, &diff));
        return diff.verdict == obs::Verdict::ByteIdentical && diff.certified;
    }
    if a_text == b_text {
        println!("{label}: byte-identical");
        return true;
    }
    let line = a_text
        .lines()
        .zip(b_text.lines())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a_text.lines().count().min(b_text.lines().count()));
    println!("{label}: DIVERGENT (first at line {})", line + 1);
    let side = |text: &str| {
        text.lines()
            .nth(line)
            .map_or("<end of file>".to_string(), clip)
    };
    println!("  expected: {}", side(&a_text));
    println!("  got:      {}", side(&b_text));
    false
}

/// All regular files under `dir`, as sorted relative paths.
fn walk(dir: &Path) -> Vec<String> {
    fn visit(root: &Path, sub: &Path, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(sub) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                visit(root, &path, out);
            } else if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().into_owned());
            }
        }
    }
    let mut files = Vec::new();
    visit(dir, dir, &mut files);
    files.sort();
    files
}

/// Directory comparison over the union of both trees.
fn compare_dirs(a_dir: &Path, b_dir: &Path) -> bool {
    let mut names = walk(a_dir);
    for n in walk(b_dir) {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    names.sort();
    if names.is_empty() {
        println!(
            "no files found under {} or {}",
            a_dir.display(),
            b_dir.display()
        );
        return false;
    }
    let mut ok = true;
    for name in &names {
        let (a, b) = (a_dir.join(name), b_dir.join(name));
        match (a.is_file(), b.is_file()) {
            (true, true) => ok &= compare_files(&a, &b, name),
            (present_a, _) => {
                let missing = if present_a { b_dir } else { a_dir };
                println!("{name}: DIVERGENT (missing from {})", missing.display());
                ok = false;
            }
        }
    }
    println!(
        "{} file{} compared: {}",
        names.len(),
        if names.len() == 1 { "" } else { "s" },
        if ok {
            "all byte-identical"
        } else {
            "DIVERGENCES FOUND"
        }
    );
    ok
}

fn run_pair(a: &str, b: &str) -> bool {
    let (a, b) = (Path::new(a), Path::new(b));
    match (a.is_dir(), b.is_dir()) {
        (true, true) => compare_dirs(a, b),
        (false, false) => compare_files(a, b, &format!("{} vs {}", a.display(), b.display())),
        _ => {
            eprintln!("cannot compare a directory against a file");
            std::process::exit(2);
        }
    }
}

/// Runs every suite point twice and diffs the records. The second run
/// is an identical seed (determinism certification), the
/// tie-break-inverted variant (`--perturb`) whose divergence the report
/// explains, or the event-elision fast path (`--elide`), judged through
/// the canonical oracle since elision changes scheduling bookkeeping
/// but must not change the execution.
fn run_suite(args: &Args) -> bool {
    let suite = perfgate::default_suite();
    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let (results, stats) = harness::map_indexed(
        suite.len(),
        args.threads,
        |i| {
            let pt = &suite[i];
            let a = bench::diffsuite::record_suite_point(
                pt,
                mpisim::TieBreakPolicy::InsertionOrder,
                args.trace_cap,
                false,
            );
            let b = bench::diffsuite::record_suite_point(
                pt,
                if args.perturb {
                    mpisim::TieBreakPolicy::InvertAll
                } else {
                    mpisim::TieBreakPolicy::InsertionOrder
                },
                args.trace_cap,
                args.elide,
            );
            // Elided runs legitimately differ in seqs/parents; the
            // canonical projection is exactly what they must preserve.
            let diff = if args.elide {
                obs::diff::diff(&a.canonicalized(), &b.canonicalized())
            } else {
                obs::diff::diff(&a, &b)
            };
            let ok = diff.verdict == obs::Verdict::ByteIdentical && diff.certified;
            let rendered = report::diff::render_report(&pt.label(), &diff);
            (
                pt.label(),
                a.to_json_string(),
                b.to_json_string(),
                rendered,
                ok,
            )
        },
        &|_, _| {},
    );
    let mut identical = 0usize;
    for (label, rec_a, rec_b, rendered, ok) in &results {
        print!("{rendered}");
        identical += usize::from(*ok);
        if let Some(dir) = &args.out {
            let file_stem = bench::diffsuite::label_stem(label);
            std::fs::write(format!("{dir}/{file_stem}.record.json"), rec_a).expect("write record");
            if args.perturb {
                std::fs::write(format!("{dir}/{file_stem}.perturbed.record.json"), rec_b)
                    .expect("write perturbed record");
            }
            if args.elide {
                std::fs::write(format!("{dir}/{file_stem}.elided.record.json"), rec_b)
                    .expect("write elided record");
            }
            if !ok {
                // The first-divergence explanation as a standalone
                // artifact, so a tripped CI gate uploads it instead of
                // letting it die in the job log.
                std::fs::write(format!("{dir}/{file_stem}.divergence.txt"), rendered)
                    .expect("write divergence explanation");
            }
        }
    }
    // Worker accounting goes to stderr so stdout stays byte-identical
    // at any --threads value.
    println!(
        "{identical}/{} certified {}",
        results.len(),
        if args.elide {
            "canonically-identical (elision oracle)"
        } else {
            "byte-identical"
        }
    );
    eprintln!(
        "({} workers, {:.0}% utilization)",
        stats.threads,
        100.0 * stats.utilization()
    );
    identical == results.len()
}

/// Loads `baseline.json` plus every `BENCH_*.json` under the bench
/// directory, oldest first (baseline, then date order — the dated
/// filenames sort lexically).
fn load_history(dir: &str) -> Vec<(String, BenchReport)> {
    let mut reports = Vec::new();
    let baseline = Path::new(dir).join("baseline.json");
    if let Ok(text) = std::fs::read_to_string(&baseline) {
        match BenchReport::from_json(&text) {
            Ok(r) => reports.push(("baseline".to_string(), r)),
            Err(e) => eprintln!("skipping {}: {e}", baseline.display()),
        }
    }
    let mut dated: Vec<String> = walk(Path::new(dir))
        .into_iter()
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    dated.sort();
    for name in dated {
        let path = Path::new(dir).join(&name);
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::from_json(&text))
        {
            Ok(r) => {
                let label = name
                    .trim_start_matches("BENCH_")
                    .trim_end_matches(".json")
                    .to_string();
                reports.push((label, r));
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    reports
}

/// The perf trajectory across all committed reports: one column per
/// report, medians in µs, and a noise-aware flag on the latest
/// transition.
fn render_history(reports: &[(String, BenchReport)]) -> String {
    let mut labels: Vec<String> = Vec::new();
    for pt in perfgate::default_suite() {
        labels.push(pt.label());
    }
    for (_, r) in reports {
        for p in &r.points {
            if !labels.contains(&p.label) {
                labels.push(p.label.clone());
            }
        }
    }

    let verdicts = match reports {
        [.., prev, last] => perfgate::compare(&last.1, &prev.1),
        _ => Vec::new(),
    };
    let mut headers: Vec<String> = vec!["point".to_string()];
    headers.extend(reports.iter().map(|(name, _)| format!("{name} (µs)")));
    if !verdicts.is_empty() {
        headers.push("latest".to_string());
    }
    let mut table = Table::new(headers);
    for label in &labels {
        let mut row = vec![label.clone()];
        for (_, r) in reports {
            row.push(
                r.point(label)
                    .map_or(String::new(), |p| format!("{:.1}", p.median_us)),
            );
        }
        if !verdicts.is_empty() {
            let flag = verdicts
                .iter()
                .find(|v| &v.label == label)
                .map_or("", |v| match v.status {
                    GateStatus::Ok => "",
                    s => s.label(),
                });
            row.push(flag.to_string());
        }
        table.push_row(row);
    }

    let mut out = format!("perf trend across {} reports\n\n", reports.len());
    out.push_str(&table.render());
    if let [.., prev, last] = reports {
        let drift = perfgate::drift(&last.1, &prev.1);
        let regressions: Vec<&str> = verdicts
            .iter()
            .filter(|v| v.status == GateStatus::Regression)
            .map(|v| v.label.as_str())
            .collect();
        out.push_str(&format!(
            "\nlatest transition {} -> {}: median drift {:+.1}%, {}\n",
            prev.0,
            last.0,
            100.0 * (drift - 1.0),
            if regressions.is_empty() {
                "no regressions".to_string()
            } else {
                format!("REGRESSIONS: {}", regressions.join(", "))
            }
        ));
    }
    out
}

fn run_history(args: &Args) -> bool {
    let reports = load_history(&args.bench_dir);
    if reports.is_empty() {
        eprintln!(
            "no benchmark reports (baseline.json / BENCH_*.json) under {}",
            args.bench_dir
        );
        return false;
    }
    let rendered = render_history(&reports);
    match &args.out {
        Some(path) => {
            std::fs::write(path, &rendered).expect("write history report");
            println!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    reports
        .last()
        .map(|(_, r)| !r.points.is_empty())
        .unwrap_or(false)
}

fn main() {
    let args = parse_args();
    let ok = if args.history {
        run_history(&args)
    } else if args.suite {
        run_suite(&args)
    } else {
        run_pair(&args.paths[0], &args.paths[1])
    };
    std::process::exit(i32::from(!ok));
}
