//! One-command consolidated report: runs the full measurement pipeline,
//! fits every surface, scores it against the paper's published formulas,
//! and emits a markdown report (stdout, or a file with `--out PATH`).
//!
//! ```sh
//! cargo run -p bench --release --bin full_report -- --quick --out report.md
//! ```

use bench::{machine_id, machines, timed, Cli, SIX_OPS};
use harness::{SweepBuilder, PAPER_MESSAGE_SIZES, PAPER_NODE_COUNTS};
use mpisim::OpClass;
use perfmodel::{bandwidth_series, fit_surface, paper, score};
use report::Table;
use std::fmt::Write as _;

fn main() {
    let cli = Cli::parse();
    let out_path = cli.out.clone();

    let data = timed("full sweep", || {
        SweepBuilder::new()
            .machines(machines())
            .ops(SIX_OPS.iter().copied().chain([OpClass::Barrier]))
            .message_sizes(PAPER_MESSAGE_SIZES)
            .node_counts(PAPER_NODE_COUNTS)
            .protocol(cli.protocol())
            .run()
            .expect("sweep")
    });
    cli.maybe_write_csv("full_report", &data);

    let mut md = String::new();
    let _ = writeln!(md, "# Consolidated reproduction report\n");
    let _ = writeln!(
        md,
        "Protocol: {} warm-up + {} iterations × {} repetitions; {} grid points.\n",
        cli.protocol().warmup,
        cli.protocol().iterations,
        cli.protocol().repetitions,
        data.len()
    );

    // Fitted formulas and accuracy vs the published Table 3.
    let _ = writeln!(md, "## Fitted timing surfaces vs published Table 3\n");
    let mut table = Table::new([
        "Operation",
        "Machine",
        "Fitted T(m,p) [us]",
        "MAPE vs published",
        "bias",
    ]);
    for op in SIX_OPS.iter().copied().chain([OpClass::Barrier]) {
        for mach in machines() {
            let fitted = fit_surface(&data, mach.name(), op).expect("fit");
            let (mape, bias) = machine_id(mach.name())
                .and_then(|id| paper::table3(id, op))
                .and_then(|published| score(&data, mach.name(), op, &published))
                .map(|a| (format!("{:.0}%", a.mape * 100.0), format!("{:.2}", a.bias)))
                .unwrap_or_else(|| ("-".into(), "-".into()));
            table.push_row([
                op.paper_name().to_string(),
                mach.name().to_string(),
                fitted.to_string(),
                mape,
                bias,
            ]);
        }
    }
    md.push_str(&table.render_markdown());

    // Aggregated bandwidth headline.
    let _ = writeln!(md, "\n## Aggregated bandwidth, 64-node total exchange\n");
    let mut bw = Table::new(["Machine", "simulated (GB/s)", "published (GB/s)"]);
    for (id, published) in paper::ALLTOALL_64_BANDWIDTH_GB_S {
        let name = mpisim::Machine::from_id(id).name().to_string();
        let sim = bandwidth_series(&data, &name, OpClass::Alltoall)
            .ok()
            .and_then(|s| s.iter().find(|b| b.nodes == 64).map(|b| b.mb_s / 1000.0));
        bw.push_row([
            name,
            sim.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
            format!("{published:.3}"),
        ]);
    }
    md.push_str(&bw.render_markdown());

    // Per-figure qualitative checklist.
    let _ = writeln!(md, "\n## Qualitative checks\n");
    let t = |m: &str, op: OpClass, bytes: u32, p: usize| {
        data.at(m, op, bytes, p)
            .map(|x| x.time_us)
            .unwrap_or(f64::NAN)
    };
    let checks: Vec<(String, bool)> = vec![
        (
            "T3D barrier ≈ 3 µs".into(),
            (2.0..5.0).contains(&t("Cray T3D", OpClass::Barrier, 0, 64)),
        ),
        (
            "T3D fastest 64-node alltoall (short)".into(),
            t("Cray T3D", OpClass::Alltoall, 16, 64)
                <= t("IBM SP2", OpClass::Alltoall, 16, 64).min(t(
                    "Intel Paragon",
                    OpClass::Alltoall,
                    16,
                    64,
                )) * 1.05,
        ),
        (
            "SP2 beats Paragon, short scatter".into(),
            t("IBM SP2", OpClass::Scatter, 16, 64) < t("Intel Paragon", OpClass::Scatter, 16, 64),
        ),
        (
            "Paragon beats SP2, long scatter".into(),
            t("Intel Paragon", OpClass::Scatter, 65_536, 64)
                < t("IBM SP2", OpClass::Scatter, 65_536, 64),
        ),
        (
            "SP2 keeps long reduce".into(),
            t("IBM SP2", OpClass::Reduce, 65_536, 64)
                < t("Intel Paragon", OpClass::Reduce, 65_536, 64),
        ),
        (
            "Paragon scan beats T3D".into(),
            t("Intel Paragon", OpClass::Scan, 16, 64) < t("Cray T3D", OpClass::Scan, 16, 64),
        ),
    ];
    let mut qt = Table::new(["Claim", "Holds"]);
    for (claim, holds) in checks {
        qt.push_row([
            claim,
            if holds {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    md.push_str(&qt.render_markdown());

    match out_path {
        Some(path) => {
            std::fs::write(&path, &md).expect("write report");
            eprintln!("wrote {path}");
        }
        None => print!("{md}"),
    }
}
