//! Tables 1 and 2 of the paper: the collective operations being
//! evaluated and the performance metrics of the model. Both are
//! definitional; this binary renders them from the library's own
//! metadata so documentation and code cannot drift.

use mpisim::OpClass;
use report::Table;

fn main() {
    println!("TABLE 1 — MPI collective operations being evaluated\n");
    let mut t1 = Table::new(["Operation", "MPI function", "Description"]);
    for op in OpClass::COLLECTIVES {
        t1.push_row([
            op.paper_name().to_string(),
            op.mpi_function().to_string(),
            op.table1_description().to_string(),
        ]);
    }
    print!("{}", t1.render());

    println!("\nTABLE 2 — performance metrics of collective communication\n");
    let mut t2 = Table::new(["Metric", "Definition"]);
    t2.push_row([
        "Collective messaging time (us)".to_string(),
        "T(m, p) = T0(p) + D(m, p)".to_string(),
    ]);
    t2.push_row([
        "Startup latency (us)".to_string(),
        "T0(p): software overhead establishing the operation over p nodes \
         (approximated by the short-message timing)"
            .to_string(),
    ]);
    t2.push_row([
        "Transmission delay (us)".to_string(),
        "D(m, p) = f(m, p) / R(m, p): time for the payload through network \
         and memory hierarchy"
            .to_string(),
    ]);
    t2.push_row([
        "Aggregated bandwidth (MB/s)".to_string(),
        "R_inf(p) = lim_{m->inf} f(m, p) / D(m, p), with f the aggregated \
         message volume (m(p-1); m*p(p-1) for total exchange)"
            .to_string(),
    ]);
    print!("{}", t2.render());
}
